//! Property-based tests for the tracing substrate: interpreter semantics
//! vs a reference evaluator, compression invariance, and DDDG structure.

use hpcnet_trace::{identify, BinOp, Dddg, Expr, Interpreter, Program, Stmt};
use proptest::prelude::*;
use std::collections::HashMap;

/// A small random straight-line program over scalars a, b, c and one
/// array `arr[4]`: a sequence of assignments with a trailing loop.
#[derive(Debug, Clone)]
struct RandomProgram {
    stmts: Vec<Stmt>,
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-3.0f64..3.0).prop_map(Expr::Const),
        prop::sample::select(vec!["a", "b", "c"]).prop_map(Expr::var),
        (0usize..4).prop_map(|i| Expr::idx("arr", Expr::c(i as f64))),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        (
            prop::sample::select(vec![BinOp::Add, BinOp::Sub, BinOp::Mul]),
            inner.clone(),
            inner,
        )
            .prop_map(|(op, l, r)| Expr::bin(op, l, r))
    })
}

fn program_strategy() -> impl Strategy<Value = RandomProgram> {
    (
        prop::collection::vec(
            (prop::sample::select(vec!["a", "b", "c"]), expr_strategy()),
            1..6,
        ),
        2usize..8,
        expr_strategy(),
    )
        .prop_map(|(assigns, loop_len, body_expr)| {
            let mut stmts: Vec<Stmt> = assigns
                .into_iter()
                .map(|(name, e)| Stmt::assign(name, e))
                .collect();
            // Accumulation loop: c = c + <body_expr involving arr/i-free>
            stmts.push(Stmt::for_loop(
                "i",
                Expr::c(0.0),
                Expr::c(loop_len as f64),
                vec![Stmt::assign(
                    "c",
                    Expr::bin(BinOp::Add, Expr::var("c"), body_expr),
                )],
            ));
            RandomProgram { stmts }
        })
}

fn run(program: &Program, compress: bool) -> (Interpreter, hpcnet_trace::TraceSet) {
    let mut it = Interpreter::new();
    it.compress_loops = compress;
    it.set_scalar("a", 1.5);
    it.set_scalar("b", -0.5);
    it.set_scalar("c", 2.0);
    it.set_array("arr", vec![0.5, -1.0, 2.0, 0.25]);
    let trace = it.run(program).unwrap();
    (it, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compression never changes program semantics (final variable
    /// values identical) nor the identified signature.
    #[test]
    fn compression_preserves_semantics_and_signature(rp in program_strategy()) {
        let program = Program::region_only(rp.stmts.clone(), vec!["c"]);
        let (it_plain, tr_plain) = run(&program, false);
        let (it_comp, tr_comp) = run(&program, true);
        prop_assert_eq!(it_plain.scalar("a"), it_comp.scalar("a"));
        prop_assert_eq!(it_plain.scalar("b"), it_comp.scalar("b"));
        prop_assert_eq!(it_plain.scalar("c"), it_comp.scalar("c"));
        // Dynamic operation counts agree through record weights.
        prop_assert_eq!(tr_plain.dynamic_len(), tr_comp.dynamic_len());

        let sizes: HashMap<String, usize> = [("arr".to_string(), 4usize)].into();
        let sig_plain = identify(&tr_plain, &program.live_out, &sizes);
        let sig_comp = identify(&tr_comp, &program.live_out, &sizes);
        prop_assert_eq!(sig_plain, sig_comp);
    }

    /// The parallel DDDG construction equals the sequential reference on
    /// arbitrary traces, and its roots are exactly the externally-defined
    /// variables the region reads first.
    #[test]
    fn dddg_parallel_matches_sequential(rp in program_strategy()) {
        let program = Program::region_only(rp.stmts, vec!["c"]);
        let (_, trace) = run(&program, false);
        let par = Dddg::build(&trace.records);
        let seq = Dddg::build_sequential(&trace.records);
        prop_assert_eq!(&par.edges, &seq.edges);
        prop_assert_eq!(par.root_input_vars(), seq.root_input_vars());
        prop_assert_eq!(par.leaf_output_vars(), seq.leaf_output_vars());
        // Every root variable is one of the pre-seeded external inputs.
        for v in par.root_input_vars() {
            prop_assert!(["a", "b", "c", "arr"].contains(&v.as_str()), "unexpected root {v}");
        }
    }

    /// Identified inputs are externally-seeded variables; outputs are
    /// live-out; internals are disjoint from both.
    #[test]
    fn identify_partitions_variables(rp in program_strategy()) {
        let program = Program::region_only(rp.stmts, vec!["c"]);
        let (_, trace) = run(&program, false);
        let sizes: HashMap<String, usize> = [("arr".to_string(), 4usize)].into();
        let sig = identify(&trace, &program.live_out, &sizes);
        let inputs: Vec<&str> = sig.inputs.iter().map(|f| f.name.as_str()).collect();
        let outputs: Vec<&str> = sig.outputs.iter().map(|f| f.name.as_str()).collect();
        for o in &outputs {
            prop_assert!(!sig.internals.iter().any(|i| i == o));
        }
        for i in &inputs {
            prop_assert!(!sig.internals.iter().any(|n| n == i));
        }
        // c is written (every program ends with the accumulation loop) and
        // live-out, so it must be an output.
        prop_assert!(outputs.contains(&"c"));
    }
}
