//! The instrumenting interpreter: executes a [`Program`] while feeding a
//! [`Tracer`], with the paper's loop-trace compression.

use std::collections::HashMap;

use crate::ir::{Expr, Program, Stmt};
use crate::trace::{Location, OpKind, Phase, TraceSet, Tracer};
use crate::{Result, TraceError};

/// Interpreter state: the variable environment plus tracing options.
#[derive(Debug, Default)]
pub struct Interpreter {
    scalars: HashMap<String, f64>,
    arrays: HashMap<String, Vec<f64>>,
    /// Compress loop traces to a single iteration when safe (§3.1 Step 1).
    pub compress_loops: bool,
}

impl Interpreter {
    /// Fresh interpreter with an empty environment and compression off.
    pub fn new() -> Self {
        Interpreter::default()
    }

    /// Set a scalar input.
    pub fn set_scalar(&mut self, name: &str, v: f64) {
        self.scalars.insert(name.to_string(), v);
    }

    /// Set an array input.
    pub fn set_array(&mut self, name: &str, v: Vec<f64>) {
        self.arrays.insert(name.to_string(), v);
    }

    /// Read a scalar out of the environment.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars.get(name).copied()
    }

    /// Read an array out of the environment.
    pub fn array(&self, name: &str) -> Option<&[f64]> {
        self.arrays.get(name).map(Vec::as_slice)
    }

    /// Execute the whole program, returning the dynamic trace.
    pub fn run(&mut self, program: &Program) -> Result<TraceSet> {
        let mut tracer = Tracer::new();
        tracer.set_phase(Phase::Pre);
        self.exec_block(&program.pre, &mut tracer)?;
        tracer.set_phase(Phase::Region);
        self.exec_block(&program.region, &mut tracer)?;
        tracer.set_phase(Phase::Post);
        self.exec_block(&program.post, &mut tracer)?;
        Ok(tracer.finish())
    }

    /// Execute only the region statements without tracing — the fast path
    /// used when generating many training samples.
    pub fn run_region_untraced(&mut self, program: &Program) -> Result<()> {
        self.exec_untraced(&program.region)
    }

    /// Execute an arbitrary statement block without tracing.
    pub fn exec_untraced(&mut self, stmts: &[Stmt]) -> Result<()> {
        let mut tracer = Tracer::new();
        tracer.set_enabled(false);
        self.exec_block(stmts, &mut tracer)
    }

    fn exec_block(&mut self, stmts: &[Stmt], tracer: &mut Tracer) -> Result<()> {
        for s in stmts {
            self.exec_stmt(s, tracer)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Stmt, tracer: &mut Tracer) -> Result<()> {
        match stmt {
            Stmt::Assign(name, e) => {
                let mut reads = Vec::new();
                let v = self.eval(e, &mut reads)?;
                tracer.record(OpKind::Assign, reads, Some(Location::Scalar(name.clone())));
                self.scalars.insert(name.clone(), v);
            }
            Stmt::Store(name, idx, e) => {
                let mut reads = Vec::new();
                let i = self.eval_index(idx, &mut reads)?;
                let v = self.eval(e, &mut reads)?;
                let arr = self
                    .arrays
                    .get_mut(name)
                    .ok_or_else(|| TraceError::UndefinedVariable(name.clone()))?;
                let len = arr.len();
                let slot = arr.get_mut(i).ok_or(TraceError::IndexOutOfBounds {
                    array: name.clone(),
                    index: i as i64,
                    len,
                })?;
                *slot = v;
                tracer.record(OpKind::Store, reads, Some(Location::Elem(name.clone(), i)));
            }
            Stmt::AllocArray(name, len) => {
                self.arrays.insert(name.clone(), vec![0.0; *len]);
                tracer.record(OpKind::Alloc, Vec::new(), None);
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                let mut reads = Vec::new();
                let s = self.eval_index(start, &mut reads)?;
                let e = self.eval_index(end, &mut reads)?;
                tracer.record(OpKind::LoopHead, reads, Some(Location::Scalar(var.clone())));
                let n = e.saturating_sub(s);
                let compressible =
                    self.compress_loops && n > 1 && !body.iter().any(Stmt::contains_branch);
                if compressible {
                    // Trace iteration 0 with weight scaled by the trip
                    // count; run the rest untraced (semantics preserved).
                    let prev_weight = tracer.set_weight(tracer.weight() * n as u64);
                    self.scalars.insert(var.clone(), s as f64);
                    self.exec_block(body, tracer)?;
                    tracer.set_weight(prev_weight);
                    let was_enabled = tracer.enabled();
                    tracer.set_enabled(false);
                    for i in s + 1..e {
                        self.scalars.insert(var.clone(), i as f64);
                        self.exec_block(body, tracer)?;
                    }
                    tracer.set_enabled(was_enabled);
                } else {
                    for i in s..e {
                        self.scalars.insert(var.clone(), i as f64);
                        self.exec_block(body, tracer)?;
                    }
                }
            }
            Stmt::If {
                lhs,
                op,
                rhs,
                then,
                els,
            } => {
                let mut reads = Vec::new();
                let a = self.eval(lhs, &mut reads)?;
                let b = self.eval(rhs, &mut reads)?;
                tracer.record(OpKind::Branch, reads, None);
                if op.apply(a, b) {
                    self.exec_block(then, tracer)?;
                } else {
                    self.exec_block(els, tracer)?;
                }
            }
        }
        Ok(())
    }

    fn eval(&self, e: &Expr, reads: &mut Vec<Location>) -> Result<f64> {
        match e {
            Expr::Const(v) => Ok(*v),
            Expr::Var(name) => {
                let v = self
                    .scalars
                    .get(name)
                    .copied()
                    .ok_or_else(|| TraceError::UndefinedVariable(name.clone()))?;
                reads.push(Location::Scalar(name.clone()));
                Ok(v)
            }
            Expr::Index(name, idx) => {
                let i = self.eval_index(idx, reads)?;
                let arr = self
                    .arrays
                    .get(name)
                    .ok_or_else(|| TraceError::UndefinedVariable(name.clone()))?;
                let v = *arr.get(i).ok_or(TraceError::IndexOutOfBounds {
                    array: name.clone(),
                    index: i as i64,
                    len: arr.len(),
                })?;
                reads.push(Location::Elem(name.clone(), i));
                Ok(v)
            }
            Expr::Bin(op, a, b) => {
                let va = self.eval(a, reads)?;
                let vb = self.eval(b, reads)?;
                Ok(op.apply(va, vb))
            }
            Expr::Un(op, a) => Ok(op.apply(self.eval(a, reads)?)),
        }
    }

    fn eval_index(&self, e: &Expr, reads: &mut Vec<Location>) -> Result<usize> {
        let v = self.eval(e, reads)?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(TraceError::NonIntegerIndex(v));
        }
        Ok(v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, CmpOp};

    /// region: s = 0; for i in 0..4 { s = s + a[i] * x }
    fn dot_like_program() -> Program {
        Program::region_only(
            vec![
                Stmt::assign("s", Expr::c(0.0)),
                Stmt::for_loop(
                    "i",
                    Expr::c(0.0),
                    Expr::var("n"),
                    vec![Stmt::assign(
                        "s",
                        Expr::bin(
                            BinOp::Add,
                            Expr::var("s"),
                            Expr::bin(BinOp::Mul, Expr::idx("a", Expr::var("i")), Expr::var("x")),
                        ),
                    )],
                ),
            ],
            vec!["s"],
        )
    }

    #[test]
    fn executes_dot_product_correctly() {
        let mut interp = Interpreter::new();
        interp.set_scalar("n", 4.0);
        interp.set_scalar("x", 2.0);
        interp.set_array("a", vec![1.0, 2.0, 3.0, 4.0]);
        interp.run(&dot_like_program()).unwrap();
        assert_eq!(interp.scalar("s"), Some(20.0));
    }

    #[test]
    fn compression_preserves_semantics_and_shrinks_trace() {
        let prog = dot_like_program();
        let mut plain = Interpreter::new();
        plain.set_scalar("n", 64.0);
        plain.set_scalar("x", 2.0);
        plain.set_array("a", (0..64).map(|i| i as f64).collect());
        let full = plain.run(&prog).unwrap();

        let mut comp = Interpreter::new();
        comp.compress_loops = true;
        comp.set_scalar("n", 64.0);
        comp.set_scalar("x", 2.0);
        comp.set_array("a", (0..64).map(|i| i as f64).collect());
        let compressed = comp.run(&prog).unwrap();

        assert_eq!(plain.scalar("s"), comp.scalar("s"), "semantics preserved");
        assert!(
            compressed.len() < full.len() / 10,
            "{} !< {}",
            compressed.len(),
            full.len()
        );
        // Dynamic operation counts agree thanks to record weights.
        assert_eq!(compressed.dynamic_len(), full.dynamic_len());
    }

    #[test]
    fn loops_with_branches_are_not_compressed() {
        let body = vec![Stmt::If {
            lhs: Expr::idx("a", Expr::var("i")),
            op: CmpOp::Gt,
            rhs: Expr::c(0.0),
            then: vec![Stmt::assign(
                "s",
                Expr::bin(BinOp::Add, Expr::var("s"), Expr::c(1.0)),
            )],
            els: vec![],
        }];
        let prog = Program::region_only(
            vec![
                Stmt::assign("s", Expr::c(0.0)),
                Stmt::for_loop("i", Expr::c(0.0), Expr::c(8.0), body),
            ],
            vec!["s"],
        );
        let mut interp = Interpreter::new();
        interp.compress_loops = true;
        interp.set_array("a", vec![1.0, -1.0, 2.0, -2.0, 3.0, -3.0, 4.0, -4.0]);
        let trace = interp.run(&prog).unwrap();
        assert_eq!(interp.scalar("s"), Some(4.0));
        // 8 branch records present: no compression happened.
        let branches = trace
            .records
            .iter()
            .filter(|r| r.op == OpKind::Branch)
            .count();
        assert_eq!(branches, 8);
    }

    #[test]
    fn undefined_variable_errors() {
        let prog = Program::region_only(vec![Stmt::assign("y", Expr::var("ghost"))], vec![]);
        let mut interp = Interpreter::new();
        assert!(matches!(
            interp.run(&prog),
            Err(TraceError::UndefinedVariable(v)) if v == "ghost"
        ));
    }

    #[test]
    fn out_of_bounds_errors() {
        let prog = Program::region_only(vec![Stmt::store("a", Expr::c(9.0), Expr::c(1.0))], vec![]);
        let mut interp = Interpreter::new();
        interp.set_array("a", vec![0.0; 3]);
        assert!(matches!(
            interp.run(&prog),
            Err(TraceError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn alloc_array_creates_zeroed_storage() {
        let prog = Program::region_only(
            vec![
                Stmt::AllocArray("buf".into(), 4),
                Stmt::store("buf", Expr::c(2.0), Expr::c(7.0)),
            ],
            vec!["buf"],
        );
        let mut interp = Interpreter::new();
        interp.run(&prog).unwrap();
        assert_eq!(interp.array("buf"), Some(&[0.0, 0.0, 7.0, 0.0][..]));
    }

    #[test]
    fn nested_compressed_loops_multiply_weights() {
        let prog = Program::region_only(
            vec![
                Stmt::assign("s", Expr::c(0.0)),
                Stmt::for_loop(
                    "i",
                    Expr::c(0.0),
                    Expr::c(4.0),
                    vec![Stmt::for_loop(
                        "j",
                        Expr::c(0.0),
                        Expr::c(5.0),
                        vec![Stmt::assign(
                            "s",
                            Expr::bin(BinOp::Add, Expr::var("s"), Expr::c(1.0)),
                        )],
                    )],
                ),
            ],
            vec!["s"],
        );
        let mut interp = Interpreter::new();
        interp.compress_loops = true;
        let trace = interp.run(&prog).unwrap();
        assert_eq!(interp.scalar("s"), Some(20.0));
        // The innermost assign is recorded once, with weight 4*5 = 20.
        let inner = trace
            .records
            .iter()
            .filter(|r| r.op == OpKind::Assign && r.weight == 20)
            .count();
        assert_eq!(inner, 1);
    }
}
