//! A textual front-end for the mini-IR.
//!
//! The paper's users annotate C/Fortran source with two directives; this
//! parser is the analogous entry point for our substrate — a kernel is
//! written as plain text with `pre`/`region`/`post` sections and a
//! `live_out` list, and parses into a [`Program`] ready for tracing:
//!
//! ```text
//! # PCG-style saxpy region
//! region {
//!     for i in 0..n {
//!         y[i] = alpha * x[i] + y[i]
//!     }
//! }
//! post {
//!     first = y[0]
//! }
//! live_out first, y
//! ```
//!
//! Statements: `name = expr`, `name[idx] = expr`, `alloc name[len]`,
//! `for v in a..b { ... }`, `if a < b { ... } else { ... }`.
//! Expressions: numbers, identifiers, indexing, `+ - * /`, unary `-`,
//! `sqrt/exp/ln/abs(x)`, `max/min(a, b)`, parentheses.

use crate::ir::{BinOp, CmpOp, Expr, Program, Stmt, UnOp};
use crate::{Result, TraceError};

/// Parse a full program (sections may appear in any order; missing
/// sections are empty).
///
/// # Examples
///
/// ```
/// use hpcnet_trace::{parse_program, Interpreter};
/// let program = parse_program(
///     "region { s = 0.0 \n for i in 0..3 { s = s + a[i] } } live_out s",
/// ).unwrap();
/// let mut it = Interpreter::new();
/// it.set_array("a", vec![1.0, 2.0, 3.0]);
/// it.run(&program).unwrap();
/// assert_eq!(it.scalar("s"), Some(6.0));
/// ```
pub fn parse_program(src: &str) -> Result<Program> {
    let mut p = Parser::new(src);
    let mut program = Program {
        pre: vec![],
        region: vec![],
        post: vec![],
        live_out: vec![],
    };
    let mut saw_region = false;
    while !p.at_end() {
        match p.peek_word() {
            Some("pre") => {
                p.expect_word("pre")?;
                program.pre = p.parse_block()?;
            }
            Some("region") => {
                p.expect_word("region")?;
                program.region = p.parse_block()?;
                saw_region = true;
            }
            Some("post") => {
                p.expect_word("post")?;
                program.post = p.parse_block()?;
            }
            Some("live_out") => {
                p.expect_word("live_out")?;
                loop {
                    program.live_out.push(p.parse_ident()?);
                    if !p.eat(",") {
                        break;
                    }
                }
            }
            other => {
                return Err(TraceError::Malformed(format!(
                    "expected a section keyword (pre/region/post/live_out), found {other:?}"
                )))
            }
        }
    }
    if !saw_region {
        return Err(TraceError::Malformed(
            "program needs a `region { ... }` section".into(),
        ));
    }
    Ok(program)
}

/// Parse a bare statement block (for tests and embedding).
pub fn parse_block(src: &str) -> Result<Vec<Stmt>> {
    let mut p = Parser::new(src);
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.parse_stmt()?);
    }
    Ok(stmts)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && (self.src[self.pos] as char).is_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b'#' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }

    fn peek_char(&mut self) -> Option<char> {
        self.skip_ws();
        self.src.get(self.pos).map(|&b| b as char)
    }

    fn peek_word(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let start = self.pos;
        let mut end = start;
        while end < self.src.len()
            && ((self.src[end] as char).is_alphanumeric() || self.src[end] == b'_')
        {
            end += 1;
        }
        if end > start {
            std::str::from_utf8(&self.src[start..end]).ok()
        } else {
            None
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token.as_bytes()) {
            // Word tokens must not glue to a following identifier char.
            let last = token.as_bytes()[token.len() - 1] as char;
            if last.is_alphanumeric() || last == '_' {
                if let Some(&next) = self.src.get(self.pos + token.len()) {
                    if (next as char).is_alphanumeric() || next == b'_' {
                        return false;
                    }
                }
            }
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<()> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(TraceError::Malformed(format!(
                "expected `{token}` at byte {} (near `{}`)",
                self.pos,
                self.context()
            )))
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<()> {
        self.expect(word)
    }

    fn context(&self) -> String {
        let end = (self.pos + 16).min(self.src.len());
        String::from_utf8_lossy(&self.src[self.pos..end]).into_owned()
    }

    fn parse_ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && ((self.src[self.pos] as char).is_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start || (self.src[start] as char).is_numeric() {
            return Err(TraceError::Malformed(format!(
                "expected identifier near `{}`",
                self.context()
            )));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn parse_number(&mut self) -> Result<f64> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && matches!(self.src[self.pos], b'0'..=b'9' | b'.' | b'e' | b'E')
        {
            // A `.` followed by another `.` is the range operator, not a
            // decimal point (`0..n`).
            if self.src[self.pos] == b'.' && self.src.get(self.pos + 1) == Some(&b'.') {
                break;
            }
            // allow exponent sign
            self.pos += 1;
            if self.pos < self.src.len()
                && matches!(self.src[self.pos - 1], b'e' | b'E')
                && matches!(self.src[self.pos], b'+' | b'-')
            {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| TraceError::Malformed(format!("bad number near `{}`", self.context())))
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>> {
        self.expect("{")?;
        let mut stmts = Vec::new();
        loop {
            if self.eat("}") {
                return Ok(stmts);
            }
            if self.at_end() {
                return Err(TraceError::Malformed("unterminated block".into()));
            }
            stmts.push(self.parse_stmt()?);
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        match self.peek_word() {
            Some("for") => {
                self.expect_word("for")?;
                let var = self.parse_ident()?;
                self.expect_word("in")?;
                let start = self.parse_expr()?;
                self.expect("..")?;
                let end = self.parse_expr()?;
                let body = self.parse_block()?;
                Ok(Stmt::For {
                    var,
                    start,
                    end,
                    body,
                })
            }
            Some("if") => {
                self.expect_word("if")?;
                let lhs = self.parse_expr()?;
                let op = self.parse_cmp()?;
                let rhs = self.parse_expr()?;
                let then = self.parse_block()?;
                let els = if self.eat("else") {
                    self.parse_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    lhs,
                    op,
                    rhs,
                    then,
                    els,
                })
            }
            Some("alloc") => {
                self.expect_word("alloc")?;
                let name = self.parse_ident()?;
                self.expect("[")?;
                let len = self.parse_number()? as usize;
                self.expect("]")?;
                Ok(Stmt::AllocArray(name, len))
            }
            _ => {
                let name = self.parse_ident()?;
                if self.eat("[") {
                    let idx = self.parse_expr()?;
                    self.expect("]")?;
                    self.expect("=")?;
                    let value = self.parse_expr()?;
                    Ok(Stmt::Store(name, idx, value))
                } else {
                    self.expect("=")?;
                    let value = self.parse_expr()?;
                    Ok(Stmt::Assign(name, value))
                }
            }
        }
    }

    fn parse_cmp(&mut self) -> Result<CmpOp> {
        for (tok, op) in [
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("==", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat(tok) {
                return Ok(op);
            }
        }
        Err(TraceError::Malformed(format!(
            "expected comparison operator near `{}`",
            self.context()
        )))
    }

    /// expr := term (('+' | '-') term)*
    fn parse_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_term()?;
        loop {
            // Careful: `..` must not be parsed as two unary issues; and
            // `-` only binds when not part of `..`.
            self.skip_ws();
            if self.src[self.pos..].starts_with(b"..") {
                return Ok(lhs);
            }
            if self.eat("+") {
                let rhs = self.parse_term()?;
                lhs = Expr::bin(BinOp::Add, lhs, rhs);
            } else if self.eat("-") {
                let rhs = self.parse_term()?;
                lhs = Expr::bin(BinOp::Sub, lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    /// term := factor (('*' | '/') factor)*
    fn parse_term(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_factor()?;
        loop {
            if self.eat("*") {
                let rhs = self.parse_factor()?;
                lhs = Expr::bin(BinOp::Mul, lhs, rhs);
            } else if self.eat("/") {
                let rhs = self.parse_factor()?;
                lhs = Expr::bin(BinOp::Div, lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    /// factor := '-' factor | number | func '(' args ')' | ident ('[' expr ']')? | '(' expr ')'
    fn parse_factor(&mut self) -> Result<Expr> {
        if self.eat("(") {
            let e = self.parse_expr()?;
            self.expect(")")?;
            return Ok(e);
        }
        if self.eat("-") {
            return Ok(Expr::Un(UnOp::Neg, Box::new(self.parse_factor()?)));
        }
        match self.peek_char() {
            Some(c) if c.is_ascii_digit() || c == '.' => Ok(Expr::Const(self.parse_number()?)),
            _ => {
                let name = self.parse_ident()?;
                // Unary functions.
                let un = match name.as_str() {
                    "sqrt" => Some(UnOp::Sqrt),
                    "exp" => Some(UnOp::Exp),
                    "ln" => Some(UnOp::Ln),
                    "abs" => Some(UnOp::Abs),
                    _ => None,
                };
                if let Some(op) = un {
                    self.expect("(")?;
                    let arg = self.parse_expr()?;
                    self.expect(")")?;
                    return Ok(Expr::Un(op, Box::new(arg)));
                }
                // Binary functions.
                let bin = match name.as_str() {
                    "max" => Some(BinOp::Max),
                    "min" => Some(BinOp::Min),
                    _ => None,
                };
                if let Some(op) = bin {
                    self.expect("(")?;
                    let a = self.parse_expr()?;
                    self.expect(",")?;
                    let b = self.parse_expr()?;
                    self.expect(")")?;
                    return Ok(Expr::bin(op, a, b));
                }
                if self.eat("[") {
                    let idx = self.parse_expr()?;
                    self.expect("]")?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;

    #[test]
    fn parses_and_runs_a_saxpy_program() {
        let src = r#"
            # classic saxpy with a post-region consumer
            region {
                for i in 0..n {
                    y[i] = alpha * x[i] + y[i]
                }
            }
            post {
                first = y[0]
            }
            live_out first, y
        "#;
        let program = parse_program(src).unwrap();
        assert_eq!(program.live_out, vec!["first", "y"]);
        let mut it = Interpreter::new();
        it.set_scalar("n", 3.0);
        it.set_scalar("alpha", 2.0);
        it.set_array("x", vec![1.0, 2.0, 3.0]);
        it.set_array("y", vec![10.0, 10.0, 10.0]);
        it.run(&program).unwrap();
        assert_eq!(it.array("y").unwrap(), &[12.0, 14.0, 16.0]);
        assert_eq!(it.scalar("first"), Some(12.0));
    }

    #[test]
    fn precedence_and_parentheses() {
        let stmts = parse_block("r = 2.0 + 3.0 * 4.0 \n q = (2.0 + 3.0) * 4.0").unwrap();
        let mut it = Interpreter::new();
        it.exec_untraced(&stmts).unwrap();
        assert_eq!(it.scalar("r"), Some(14.0));
        assert_eq!(it.scalar("q"), Some(20.0));
    }

    #[test]
    fn unary_and_functions() {
        let stmts = parse_block(
            "a = -2.0 * -3.0 \n b = sqrt(16.0) \n c = max(1.0, exp(0.0) + 1.0) \n d = abs(0.0 - 5.0)",
        )
        .unwrap();
        let mut it = Interpreter::new();
        it.exec_untraced(&stmts).unwrap();
        assert_eq!(it.scalar("a"), Some(6.0));
        assert_eq!(it.scalar("b"), Some(4.0));
        assert_eq!(it.scalar("c"), Some(2.0));
        assert_eq!(it.scalar("d"), Some(5.0));
    }

    #[test]
    fn if_else_and_alloc() {
        let src = r#"
            region {
                alloc buf[4]
                if x > 0.0 {
                    buf[0] = 1.0
                } else {
                    buf[0] = 0.0 - 1.0
                }
            }
            live_out buf
        "#;
        let program = parse_program(src).unwrap();
        let mut it = Interpreter::new();
        it.set_scalar("x", -3.0);
        it.run(&program).unwrap();
        assert_eq!(it.array("buf").unwrap()[0], -1.0);
    }

    #[test]
    fn for_range_expressions() {
        let src = "region { s = 0.0 \n for i in 1..n-1 { s = s + i } } live_out s";
        let program = parse_program(src).unwrap();
        let mut it = Interpreter::new();
        it.set_scalar("n", 6.0);
        it.run(&program).unwrap();
        assert_eq!(it.scalar("s"), Some(1.0 + 2.0 + 3.0 + 4.0));
    }

    #[test]
    fn keyword_prefix_identifiers_parse() {
        // `format`/`iffy` start with keywords; the word-boundary rule must
        // keep them identifiers.
        let stmts = parse_block("format = 1.0 \n iffy = format + 1.0").unwrap();
        let mut it = Interpreter::new();
        it.exec_untraced(&stmts).unwrap();
        assert_eq!(it.scalar("iffy"), Some(2.0));
    }

    #[test]
    fn errors_are_informative() {
        assert!(matches!(
            parse_program("post { x = 1.0 }"),
            Err(TraceError::Malformed(_))
        ));
        assert!(parse_program("region { x = }").is_err());
        assert!(parse_program("region { for i in 0..n x = 1.0 }").is_err());
        assert!(parse_program("region { x = 1.0").is_err());
    }

    /// The parsed program is analyzable end to end: trace + identify.
    #[test]
    fn parsed_program_supports_identification() {
        let src = r#"
            region {
                s = 0.0
                for i in 0..4 {
                    s = s + a[i] * w
                }
            }
            live_out s
        "#;
        let program = parse_program(src).unwrap();
        let mut it = Interpreter::new();
        it.set_array("a", vec![1.0; 4]);
        it.set_scalar("w", 0.5);
        let trace = it.run(&program).unwrap();
        let sizes = [("a".to_string(), 4usize)].into();
        let sig = crate::identify::identify(&trace, &program.live_out, &sizes);
        let ins: Vec<&str> = sig.inputs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(ins, vec!["a", "w"]);
        let outs: Vec<&str> = sig.outputs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(outs, vec!["s"]);
    }
}
