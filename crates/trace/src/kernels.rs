//! Example region kernels expressed in the mini-IR.
//!
//! These mirror (at small scale) the code regions the paper replaces:
//! a PCG-style solver iteration (Algorithm 1), a Black–Scholes-like
//! closed-form formula, and a Jacobi smoother (the MG building block).
//! They drive the trace/DDDG/identification tests and the cross-check
//! against the Rust-native applications' declared region specs.

use crate::interp::Interpreter;
use crate::ir::{BinOp, CmpOp, Expr, Program, Stmt, UnOp};

/// A named IR kernel with a canonical environment initializer.
pub struct IrKernel {
    /// Human-readable name.
    pub name: &'static str,
    /// The program (pre/region/post + live-outs).
    pub program: Program,
    /// Initializes the canonical input environment.
    pub setup: fn(&mut Interpreter),
}

/// `y[i] = alpha * x[i] + y[i]` over `n` elements.
pub fn saxpy(n: usize) -> IrKernel {
    let program = Program {
        pre: vec![Stmt::assign("n", Expr::c(n as f64))],
        region: vec![Stmt::for_loop(
            "i",
            Expr::c(0.0),
            Expr::var("n"),
            vec![Stmt::store(
                "y",
                Expr::var("i"),
                Expr::bin(
                    BinOp::Add,
                    Expr::bin(
                        BinOp::Mul,
                        Expr::var("alpha"),
                        Expr::idx("x", Expr::var("i")),
                    ),
                    Expr::idx("y", Expr::var("i")),
                ),
            )],
        )],
        post: vec![Stmt::assign("first", Expr::idx("y", Expr::c(0.0)))],
        live_out: vec!["first".to_string(), "y".to_string()],
    };
    fn setup(it: &mut Interpreter) {
        it.set_scalar("alpha", 2.0);
        it.set_array("x", (0..8).map(|i| i as f64 * 0.5).collect());
        it.set_array("y", vec![1.0; 8]);
    }
    IrKernel {
        name: "saxpy",
        program,
        setup,
    }
}

/// One PCG-style iteration over a dense `n x n` matrix stored row-major in
/// array `A` (paper Algorithm 1, lines 4-11, with the RAW dependencies the
/// paper highlights).
pub fn pcg_iteration(n: usize) -> IrKernel {
    let nf = n as f64;
    let i = || Expr::var("i");
    let j = || Expr::var("j");
    // Ap[i] = sum_j A[i*n+j] * p[j]
    let matvec = Stmt::for_loop(
        "i",
        Expr::c(0.0),
        Expr::c(nf),
        vec![
            Stmt::store("Ap", i(), Expr::c(0.0)),
            Stmt::for_loop(
                "j",
                Expr::c(0.0),
                Expr::c(nf),
                vec![Stmt::store(
                    "Ap",
                    i(),
                    Expr::bin(
                        BinOp::Add,
                        Expr::idx("Ap", i()),
                        Expr::bin(
                            BinOp::Mul,
                            Expr::idx(
                                "A",
                                Expr::bin(BinOp::Add, Expr::bin(BinOp::Mul, i(), Expr::c(nf)), j()),
                            ),
                            Expr::idx("p", j()),
                        ),
                    ),
                )],
            ),
        ],
    );
    // rr = r.r ; pAp = p.Ap ; alpha = rr / pAp
    let dots = vec![
        Stmt::assign("rr", Expr::c(0.0)),
        Stmt::assign("pAp", Expr::c(0.0)),
        Stmt::for_loop(
            "i",
            Expr::c(0.0),
            Expr::c(nf),
            vec![
                Stmt::assign(
                    "rr",
                    Expr::bin(
                        BinOp::Add,
                        Expr::var("rr"),
                        Expr::bin(BinOp::Mul, Expr::idx("r", i()), Expr::idx("r", i())),
                    ),
                ),
                Stmt::assign(
                    "pAp",
                    Expr::bin(
                        BinOp::Add,
                        Expr::var("pAp"),
                        Expr::bin(BinOp::Mul, Expr::idx("p", i()), Expr::idx("Ap", i())),
                    ),
                ),
            ],
        ),
        Stmt::assign(
            "alpha",
            Expr::bin(BinOp::Div, Expr::var("rr"), Expr::var("pAp")),
        ),
    ];
    // x += alpha p ; r -= alpha Ap  (RAW chain of Algorithm 1 lines 7-9)
    let updates = Stmt::for_loop(
        "i",
        Expr::c(0.0),
        Expr::c(nf),
        vec![
            Stmt::store(
                "x",
                i(),
                Expr::bin(
                    BinOp::Add,
                    Expr::idx("x", i()),
                    Expr::bin(BinOp::Mul, Expr::var("alpha"), Expr::idx("p", i())),
                ),
            ),
            Stmt::store(
                "r",
                i(),
                Expr::bin(
                    BinOp::Sub,
                    Expr::idx("r", i()),
                    Expr::bin(BinOp::Mul, Expr::var("alpha"), Expr::idx("Ap", i())),
                ),
            ),
        ],
    );
    // residual norm for the convergence check (post phase consumes it)
    let norm = vec![
        Stmt::assign("rnorm", Expr::c(0.0)),
        Stmt::for_loop(
            "i",
            Expr::c(0.0),
            Expr::c(nf),
            vec![Stmt::assign(
                "rnorm",
                Expr::bin(
                    BinOp::Add,
                    Expr::var("rnorm"),
                    Expr::bin(BinOp::Mul, Expr::idx("r", i()), Expr::idx("r", i())),
                ),
            )],
        ),
        Stmt::assign("rnorm", Expr::Un(UnOp::Sqrt, Box::new(Expr::var("rnorm")))),
    ];

    let mut region = vec![matvec];
    region.extend(dots);
    region.push(updates);
    region.extend(norm);

    let program = Program {
        pre: vec![],
        region,
        post: vec![Stmt::If {
            lhs: Expr::var("rnorm"),
            op: CmpOp::Lt,
            rhs: Expr::c(1e-8),
            then: vec![Stmt::assign("converged", Expr::c(1.0))],
            els: vec![Stmt::assign("converged", Expr::c(0.0))],
        }],
        live_out: vec!["x".to_string(), "converged".to_string()],
    };
    fn setup(it: &mut Interpreter) {
        let n = 4usize;
        // Diagonally dominant SPD matrix.
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = if i == j {
                    4.0
                } else {
                    1.0 / (1.0 + (i as f64 - j as f64).abs())
                };
            }
        }
        let b = vec![1.0, 2.0, 3.0, 4.0];
        it.set_array("A", a);
        it.set_array("x", vec![0.0; n]);
        it.set_array("r", b.clone());
        it.set_array("p", b);
        it.set_array("Ap", vec![0.0; n]);
    }
    debug_assert!(n == 4, "canonical setup assumes n = 4");
    IrKernel {
        name: "pcg_iteration",
        program,
        setup,
    }
}

/// A Black–Scholes-like closed-form pricing region:
/// `price = s * exp(-q) * max(s - k, 0) + r * sqrt(t)` — structurally a
/// branch-free scalar formula with exp/sqrt, the shape that PARSEC's
/// `BlkSchlsEqEuroNoDiv` presents to the tracer.
pub fn blackscholes_like() -> IrKernel {
    let region = vec![
        Stmt::assign(
            "disc",
            Expr::Un(
                UnOp::Exp,
                Box::new(Expr::Un(UnOp::Neg, Box::new(Expr::var("q")))),
            ),
        ),
        Stmt::assign(
            "intrinsic",
            Expr::bin(
                BinOp::Max,
                Expr::bin(BinOp::Sub, Expr::var("s"), Expr::var("k")),
                Expr::c(0.0),
            ),
        ),
        Stmt::assign(
            "timeval",
            Expr::bin(
                BinOp::Mul,
                Expr::var("r"),
                Expr::Un(UnOp::Sqrt, Box::new(Expr::var("t"))),
            ),
        ),
        Stmt::assign(
            "price",
            Expr::bin(
                BinOp::Add,
                Expr::bin(
                    BinOp::Mul,
                    Expr::bin(BinOp::Mul, Expr::var("s"), Expr::var("disc")),
                    Expr::var("intrinsic"),
                ),
                Expr::var("timeval"),
            ),
        ),
    ];
    let program = Program::region_only(region, vec!["price"]);
    fn setup(it: &mut Interpreter) {
        it.set_scalar("s", 100.0);
        it.set_scalar("k", 95.0);
        it.set_scalar("q", 0.02);
        it.set_scalar("r", 0.05);
        it.set_scalar("t", 1.5);
    }
    IrKernel {
        name: "blackscholes_like",
        program,
        setup,
    }
}

/// One weighted-Jacobi smoothing sweep on a 1-D Poisson stencil — the MG
/// smoother: `u_new[i] = u[i] + w * (f[i] - (2u[i] - u[i-1] - u[i+1])) / 2`.
pub fn jacobi_smoother(n: usize) -> IrKernel {
    let i = || Expr::var("i");
    let region = vec![Stmt::for_loop(
        "i",
        Expr::c(1.0),
        Expr::c((n - 1) as f64),
        vec![Stmt::store(
            "unew",
            i(),
            Expr::bin(
                BinOp::Add,
                Expr::idx("u", i()),
                Expr::bin(
                    BinOp::Mul,
                    Expr::var("w"),
                    Expr::bin(
                        BinOp::Div,
                        Expr::bin(
                            BinOp::Sub,
                            Expr::idx("f", i()),
                            Expr::bin(
                                BinOp::Sub,
                                Expr::bin(BinOp::Mul, Expr::c(2.0), Expr::idx("u", i())),
                                Expr::bin(
                                    BinOp::Add,
                                    Expr::idx("u", Expr::bin(BinOp::Sub, i(), Expr::c(1.0))),
                                    Expr::idx("u", Expr::bin(BinOp::Add, i(), Expr::c(1.0))),
                                ),
                            ),
                        ),
                        Expr::c(2.0),
                    ),
                ),
            ),
        )],
    )];
    let program = Program {
        pre: vec![],
        region,
        post: vec![Stmt::assign(
            "mid",
            Expr::idx("unew", Expr::c((n / 2) as f64)),
        )],
        live_out: vec!["unew".to_string(), "mid".to_string()],
    };
    fn setup(it: &mut Interpreter) {
        let n = 16usize;
        it.set_scalar("w", 0.6667);
        it.set_array("u", (0..n).map(|i| (i as f64 * 0.3).sin()).collect());
        it.set_array("f", vec![1.0; n]);
        it.set_array("unew", vec![0.0; n]);
    }
    debug_assert!(n == 16, "canonical setup assumes n = 16");
    IrKernel {
        name: "jacobi_smoother",
        program,
        setup,
    }
}

/// STREAM-triad (`a[i] = b[i] + s * c[i]`) — the bandwidth-bound kernel
/// shape, with a reduction over the result in the post phase.
pub fn stream_triad(n: usize) -> IrKernel {
    let i = || Expr::var("i");
    let program = Program {
        pre: vec![],
        region: vec![Stmt::for_loop(
            "i",
            Expr::c(0.0),
            Expr::c(n as f64),
            vec![Stmt::store(
                "a",
                i(),
                Expr::bin(
                    BinOp::Add,
                    Expr::idx("b", i()),
                    Expr::bin(BinOp::Mul, Expr::var("s"), Expr::idx("c", i())),
                ),
            )],
        )],
        post: vec![
            Stmt::assign("sum", Expr::c(0.0)),
            Stmt::for_loop(
                "i",
                Expr::c(0.0),
                Expr::c(n as f64),
                vec![Stmt::assign(
                    "sum",
                    Expr::bin(BinOp::Add, Expr::var("sum"), Expr::idx("a", Expr::var("i"))),
                )],
            ),
        ],
        live_out: vec!["sum".to_string()],
    };
    fn setup(it: &mut Interpreter) {
        let n = 32usize;
        it.set_scalar("s", 3.0);
        it.set_array("a", vec![0.0; n]);
        it.set_array("b", (0..n).map(|i| i as f64).collect());
        it.set_array("c", (0..n).map(|i| (i as f64) * 0.5).collect());
    }
    debug_assert!(n == 32, "canonical setup assumes n = 32");
    IrKernel {
        name: "stream_triad",
        program,
        setup,
    }
}

/// A 2-D 5-point stencil sweep over a `side x side` grid stored row-major
/// in `u`, writing `unew` — the structured-grid shape (MG/AMG substrate).
pub fn stencil_2d(side: usize) -> IrKernel {
    let sf = side as f64;
    let idx = |r: Expr, c: Expr| Expr::bin(BinOp::Add, Expr::bin(BinOp::Mul, r, Expr::c(sf)), c);
    let r = || Expr::var("r");
    let c = || Expr::var("c");
    let body = Stmt::store(
        "unew",
        idx(r(), c()),
        Expr::bin(
            BinOp::Mul,
            Expr::c(0.25),
            Expr::bin(
                BinOp::Add,
                Expr::bin(
                    BinOp::Add,
                    Expr::idx("u", idx(Expr::bin(BinOp::Sub, r(), Expr::c(1.0)), c())),
                    Expr::idx("u", idx(Expr::bin(BinOp::Add, r(), Expr::c(1.0)), c())),
                ),
                Expr::bin(
                    BinOp::Add,
                    Expr::idx("u", idx(r(), Expr::bin(BinOp::Sub, c(), Expr::c(1.0)))),
                    Expr::idx("u", idx(r(), Expr::bin(BinOp::Add, c(), Expr::c(1.0)))),
                ),
            ),
        ),
    );
    let program = Program {
        pre: vec![],
        region: vec![Stmt::for_loop(
            "r",
            Expr::c(1.0),
            Expr::c(sf - 1.0),
            vec![Stmt::for_loop(
                "c",
                Expr::c(1.0),
                Expr::c(sf - 1.0),
                vec![body],
            )],
        )],
        post: vec![Stmt::assign(
            "center",
            Expr::idx("unew", Expr::c(((side / 2) * side + side / 2) as f64)),
        )],
        live_out: vec!["unew".to_string(), "center".to_string()],
    };
    fn setup(it: &mut Interpreter) {
        let side = 8usize;
        it.set_array(
            "u",
            (0..side * side)
                .map(|i| ((i as f64) * 0.17).sin())
                .collect(),
        );
        it.set_array("unew", vec![0.0; side * side]);
    }
    debug_assert!(side == 8, "canonical setup assumes side = 8");
    IrKernel {
        name: "stencil_2d",
        program,
        setup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dddg::Dddg;
    use crate::identify::{identify, ArraySizes, FeatureKind};

    fn run_and_identify(k: &IrKernel, arrays: &[&str]) -> crate::identify::RegionSignature {
        let mut it = Interpreter::new();
        (k.setup)(&mut it);
        let trace = it.run(&k.program).unwrap();
        let sizes: ArraySizes = arrays
            .iter()
            .filter_map(|n| it.array(n).map(|a| (n.to_string(), a.len())))
            .collect();
        identify(&trace, &k.program.live_out, &sizes)
    }

    #[test]
    fn saxpy_signature() {
        let k = saxpy(8);
        let sig = run_and_identify(&k, &["x", "y"]);
        let ins: Vec<&str> = sig.inputs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(ins, vec!["alpha", "n", "x", "y"]);
        let outs: Vec<&str> = sig.outputs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(outs, vec!["y"]);
    }

    #[test]
    fn pcg_signature_matches_algorithm_one() {
        let k = pcg_iteration(4);
        let sig = run_and_identify(&k, &["A", "x", "r", "p", "Ap"]);
        let ins: Vec<&str> = sig.inputs.iter().map(|f| f.name.as_str()).collect();
        // A, p, r, x flow in; Ap is zeroed before first read (internal-ish
        // but written then read then live? Ap is not read post-region and
        // not in live_out, but IS written before read -> not input).
        assert_eq!(ins, vec!["A", "p", "r", "x"]);
        let outs: Vec<&str> = sig.outputs.iter().map(|f| f.name.as_str()).collect();
        // x updated and live-out; rnorm read by post convergence check.
        assert_eq!(outs, vec!["rnorm", "x"]);
        assert!(sig.internals.contains(&"Ap".to_string()));
        // Array grouping: A is one 16-wide feature, not 16 scalars.
        let a_spec = sig.inputs.iter().find(|f| f.name == "A").unwrap();
        assert_eq!(a_spec.kind, FeatureKind::Array(16));
        assert_eq!(sig.input_width(), 16 + 4 + 4 + 4);
    }

    #[test]
    fn blackscholes_signature_is_all_scalars() {
        let k = blackscholes_like();
        let sig = run_and_identify(&k, &[]);
        let ins: Vec<&str> = sig.inputs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(ins, vec!["k", "q", "r", "s", "t"]);
        let outs: Vec<&str> = sig.outputs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(outs, vec!["price"]);
        assert!(sig.inputs.iter().all(|f| f.kind == FeatureKind::Scalar));
    }

    #[test]
    fn jacobi_signature() {
        let k = jacobi_smoother(16);
        let sig = run_and_identify(&k, &["u", "f", "unew"]);
        let ins: Vec<&str> = sig.inputs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(ins, vec!["f", "u", "w"]);
        let outs: Vec<&str> = sig.outputs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(outs, vec!["unew"]);
    }

    #[test]
    fn stream_triad_signature() {
        let k = stream_triad(32);
        let sig = run_and_identify(&k, &["a", "b", "c"]);
        let ins: Vec<&str> = sig.inputs.iter().map(|f| f.name.as_str()).collect();
        // `a` is write-only in the region: b, c, s flow in.
        assert_eq!(ins, vec!["b", "c", "s"]);
        let outs: Vec<&str> = sig.outputs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(outs, vec!["a"]);
        assert_eq!(sig.input_width(), 32 + 32 + 1);
    }

    #[test]
    fn stencil_2d_signature_and_semantics() {
        let k = stencil_2d(8);
        let sig = run_and_identify(&k, &["u", "unew"]);
        let ins: Vec<&str> = sig.inputs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(ins, vec!["u"]);
        let outs: Vec<&str> = sig.outputs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(outs, vec!["unew"]);
        // Semantics: interior average of neighbors.
        let mut it = Interpreter::new();
        (k.setup)(&mut it);
        it.run(&k.program).unwrap();
        let u: Vec<f64> = it.array("u").unwrap().to_vec();
        let unew = it.array("unew").unwrap();
        let side = 8;
        let got = unew[3 * side + 4];
        let want = 0.25 * (u[2 * side + 4] + u[4 * side + 4] + u[3 * side + 3] + u[3 * side + 5]);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn dddg_roots_agree_with_identified_inputs() {
        // The DDDG view and the identification pass must agree on region
        // inputs for kernels whose regions read no region-written data
        // before writing it.
        for k in [saxpy(8), blackscholes_like()] {
            let mut it = Interpreter::new();
            (k.setup)(&mut it);
            let trace = it.run(&k.program).unwrap();
            let region_recs: Vec<_> = trace.phase(crate::trace::Phase::Region).cloned().collect();
            let g = Dddg::build_sequential(&region_recs);
            let sizes = ArraySizes::new();
            let sig = identify(&trace, &k.program.live_out, &sizes);
            let mut sig_inputs: Vec<String> = sig.inputs.iter().map(|f| f.name.clone()).collect();
            sig_inputs.sort();
            assert_eq!(g.root_input_vars(), sig_inputs, "kernel {}", k.name);
        }
    }

    #[test]
    fn pcg_region_executes_one_cg_step_correctly() {
        let k = pcg_iteration(4);
        let mut it = Interpreter::new();
        (k.setup)(&mut it);
        it.run(&k.program).unwrap();
        // After one CG step from x=0, residual must strictly decrease.
        let rnorm = it.scalar("rnorm").unwrap();
        let b_norm = (1.0f64 + 4.0 + 9.0 + 16.0).sqrt();
        assert!(rnorm < b_norm, "one CG step must reduce the residual");
        assert_eq!(it.scalar("converged"), Some(0.0));
    }
}
