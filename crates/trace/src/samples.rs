//! Training-sample generation (paper §3.1 Step 3): run the application
//! repeatedly, perturbing the identified input variables with a Gaussian
//! `X' ~ N(μ, σ²)`, and collect the region's responding outputs as
//! ground-truth pairs for surrogate training.

use serde::{Deserialize, Serialize};

use crate::identify::{FeatureKind, RegionSignature};
use crate::interp::Interpreter;
use crate::ir::Program;
use crate::{Result, TraceError};

/// Gaussian perturbation applied to each input feature element.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PerturbSpec {
    /// Mean of the additive perturbation (usually 0).
    pub mean: f64,
    /// Standard deviation of the additive perturbation.
    pub std: f64,
}

impl Default for PerturbSpec {
    fn default() -> Self {
        PerturbSpec {
            mean: 0.0,
            std: 0.1,
        }
    }
}

/// A collected training set: flattened input/output feature vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleSet {
    /// One flattened input vector per sample, in signature order.
    pub inputs: Vec<Vec<f64>>,
    /// One flattened output vector per sample, in signature order.
    pub outputs: Vec<Vec<f64>>,
}

impl SampleSet {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// Read the flattened input features out of an interpreter environment.
pub fn read_features(
    interp: &Interpreter,
    specs: &[crate::identify::FeatureSpec],
) -> Result<Vec<f64>> {
    let mut out = Vec::new();
    for spec in specs {
        match spec.kind {
            FeatureKind::Scalar => out.push(
                interp
                    .scalar(&spec.name)
                    .ok_or_else(|| TraceError::UndefinedVariable(spec.name.clone()))?,
            ),
            FeatureKind::Array(len) => {
                let arr = interp
                    .array(&spec.name)
                    .ok_or_else(|| TraceError::UndefinedVariable(spec.name.clone()))?;
                if arr.len() != len {
                    return Err(TraceError::Malformed(format!(
                        "array `{}` resized: expected {len}, found {}",
                        spec.name,
                        arr.len()
                    )));
                }
                out.extend_from_slice(arr);
            }
        }
    }
    Ok(out)
}

/// Write flattened input features back into an interpreter environment.
pub fn write_features(
    interp: &mut Interpreter,
    specs: &[crate::identify::FeatureSpec],
    values: &[f64],
) -> Result<()> {
    let mut cursor = 0usize;
    for spec in specs {
        match spec.kind {
            FeatureKind::Scalar => {
                interp.set_scalar(&spec.name, values[cursor]);
                cursor += 1;
            }
            FeatureKind::Array(len) => {
                interp.set_array(&spec.name, values[cursor..cursor + len].to_vec());
                cursor += len;
            }
        }
    }
    if cursor != values.len() {
        return Err(TraceError::Malformed(format!(
            "feature vector length {} does not match signature width {cursor}",
            values.len()
        )));
    }
    Ok(())
}

/// Generate `n` training samples.
///
/// For each sample: run `setup` + the program's pre-phase to reach the
/// region boundary, perturb the identified inputs, execute the region, and
/// read the identified outputs. Perturbing discrete-looking inputs (like
/// loop bounds) is the caller's responsibility to avoid via `frozen`:
/// features named there are captured but never perturbed.
pub fn generate_samples<F>(
    program: &Program,
    signature: &RegionSignature,
    n: usize,
    perturb: PerturbSpec,
    frozen: &[&str],
    seed: u64,
    setup: F,
) -> Result<SampleSet>
where
    F: Fn(&mut Interpreter),
{
    let mut rng = hpcnet_tensor::rng::seeded(seed, "sample-gen");
    let mut inputs = Vec::with_capacity(n);
    let mut outputs = Vec::with_capacity(n);
    for _ in 0..n {
        let mut interp = Interpreter::new();
        setup(&mut interp);
        interp.exec_untraced(&program.pre)?;

        let mut x = read_features(&interp, &signature.inputs)?;
        // Perturb feature elements, skipping frozen variables.
        let mut cursor = 0usize;
        for spec in &signature.inputs {
            let width = spec.width();
            if !frozen.contains(&spec.name.as_str()) {
                for v in &mut x[cursor..cursor + width] {
                    *v += hpcnet_tensor::rng::normal(&mut rng, perturb.mean, perturb.std);
                }
            }
            cursor += width;
        }
        write_features(&mut interp, &signature.inputs, &x)?;

        interp.run_region_untraced(program)?;
        let y = read_features(&interp, &signature.outputs)?;
        inputs.push(x);
        outputs.push(y);
    }
    Ok(SampleSet { inputs, outputs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::{identify, ArraySizes};
    use crate::ir::{BinOp, Expr, Stmt};

    /// region: y = 3*x + b  (scalar affine map)
    fn affine_program() -> Program {
        Program::region_only(
            vec![Stmt::assign(
                "y",
                Expr::bin(
                    BinOp::Add,
                    Expr::bin(BinOp::Mul, Expr::c(3.0), Expr::var("x")),
                    Expr::var("b"),
                ),
            )],
            vec!["y"],
        )
    }

    fn affine_signature(prog: &Program) -> RegionSignature {
        let mut interp = Interpreter::new();
        interp.set_scalar("x", 1.0);
        interp.set_scalar("b", 0.5);
        let trace = interp.run(prog).unwrap();
        identify(&trace, &prog.live_out, &ArraySizes::new())
    }

    #[test]
    fn samples_respect_the_ground_truth_function() {
        let prog = affine_program();
        let sig = affine_signature(&prog);
        let set = generate_samples(&prog, &sig, 50, PerturbSpec::default(), &[], 42, |it| {
            it.set_scalar("x", 1.0);
            it.set_scalar("b", 0.5);
        })
        .unwrap();
        assert_eq!(set.len(), 50);
        for (x, y) in set.inputs.iter().zip(&set.outputs) {
            // signature order is [b, x] (sorted); y = 3x + b.
            let expected = 3.0 * x[1] + x[0];
            assert!((y[0] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn perturbation_actually_varies_inputs() {
        let prog = affine_program();
        let sig = affine_signature(&prog);
        let set = generate_samples(
            &prog,
            &sig,
            20,
            PerturbSpec {
                mean: 0.0,
                std: 0.5,
            },
            &[],
            7,
            |it| {
                it.set_scalar("x", 1.0);
                it.set_scalar("b", 0.5);
            },
        )
        .unwrap();
        let xs: Vec<f64> = set.inputs.iter().map(|v| v[1]).collect();
        let distinct = xs.windows(2).any(|w| w[0] != w[1]);
        assert!(distinct, "inputs must vary across samples");
    }

    #[test]
    fn frozen_features_stay_fixed() {
        let prog = affine_program();
        let sig = affine_signature(&prog);
        let set = generate_samples(
            &prog,
            &sig,
            10,
            PerturbSpec {
                mean: 0.0,
                std: 1.0,
            },
            &["b"],
            9,
            |it| {
                it.set_scalar("x", 1.0);
                it.set_scalar("b", 0.5);
            },
        )
        .unwrap();
        assert!(set.inputs.iter().all(|v| v[0] == 0.5), "b must stay frozen");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let prog = affine_program();
        let sig = affine_signature(&prog);
        let gen = |seed| {
            generate_samples(&prog, &sig, 5, PerturbSpec::default(), &[], seed, |it| {
                it.set_scalar("x", 1.0);
                it.set_scalar("b", 0.5);
            })
            .unwrap()
        };
        let a = gen(1);
        let b = gen(1);
        let c = gen(2);
        assert_eq!(a.inputs, b.inputs);
        assert_ne!(a.inputs, c.inputs);
    }
}
