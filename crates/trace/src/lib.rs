//! Compiler-based feature acquisition (paper §3).
//!
//! The paper instruments C/Fortran applications with an LLVM pass
//! (LLVM-Tracer) to produce a dynamic instruction trace, builds a dynamic
//! data-dependency graph (DDDG) from it, and identifies the input/output
//! variables of a user-annotated code region. LLVM is not available to a
//! pure-Rust workspace, so this crate supplies the equivalent substrate:
//!
//! * a small structured IR ([`ir`]) in which region kernels are expressed —
//!   the analog of the paper's annotated C code region,
//! * an interpreter with an instrumenting tracer ([`interp`], [`trace`])
//!   that records every load/store/op with operand metadata, including the
//!   paper's **loop-trace compression** (one traced iteration for loops
//!   with no control divergence),
//! * **parallel DDDG construction** ([`dddg`]) — instruction chunks are
//!   analyzed by multiple threads and stitched sequentially, mirroring the
//!   paper's §3.1 "Second" extension,
//! * input/output identification with **array grouping** and liveness over
//!   the post-region trace ([`identify`], the §3.1 "First" extension), and
//! * training-sample generation by Gaussian perturbation of the identified
//!   inputs ([`samples`], §3.1 Step 3).
//!
//! The structure of the analysis object — a dynamic trace of instructions
//! with memory metadata — matches the paper's; only the front-end language
//! differs (documented in DESIGN.md).

pub mod dddg;
pub mod identify;
pub mod interp;
pub mod ir;
pub mod kernels;
pub mod parser;
pub mod samples;
pub mod trace;

pub use dddg::Dddg;
pub use identify::identify;
pub use identify::{FeatureKind, FeatureSpec, RegionSignature};
pub use interp::Interpreter;
pub use ir::{BinOp, CmpOp, Expr, Program, Stmt};
pub use parser::{parse_block, parse_program};
pub use samples::{generate_samples, PerturbSpec, SampleSet};
pub use trace::{Location, Phase, TraceRecord, TraceSet};

/// Errors from IR execution or analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A variable was read before any definition reached it.
    UndefinedVariable(String),
    /// An array index fell outside the array.
    IndexOutOfBounds {
        /// Array name.
        array: String,
        /// Offending index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// A loop bound or index expression was not an integer-valued scalar.
    NonIntegerIndex(f64),
    /// The program or spec was malformed.
    Malformed(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::UndefinedVariable(v) => write!(f, "undefined variable `{v}`"),
            TraceError::IndexOutOfBounds { array, index, len } => {
                write!(f, "index {index} out of bounds for `{array}` (len {len})")
            }
            TraceError::NonIntegerIndex(v) => write!(f, "non-integer index {v}"),
            TraceError::Malformed(m) => write!(f, "malformed program: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TraceError>;
