//! Input/output identification for the annotated region (paper §3.1
//! Step 2), combining the DDDG view with liveness over the post-region
//! trace and use-def information, plus the array-grouping extension.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::trace::{Location, Phase, TraceSet};

/// Whether a feature is a scalar or a whole (grouped) array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// A single scalar variable.
    Scalar,
    /// A whole array of the given length — the paper's grouping rule: if
    /// variables come from the same array, the array (not individual
    /// elements) is the feature, preserving array semantics for the
    /// feature-reduction stage.
    Array(usize),
}

/// One input or output feature of the region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Variable name.
    pub name: String,
    /// Scalar or grouped array.
    pub kind: FeatureKind,
}

impl FeatureSpec {
    /// Number of f64 slots this feature occupies in a flattened vector.
    pub fn width(&self) -> usize {
        match self.kind {
            FeatureKind::Scalar => 1,
            FeatureKind::Array(n) => n,
        }
    }
}

/// The identified input/output signature of a region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionSignature {
    /// Input features, sorted by name (deterministic ordering).
    pub inputs: Vec<FeatureSpec>,
    /// Output features, sorted by name.
    pub outputs: Vec<FeatureSpec>,
    /// Variables touched by the region but neither input nor output.
    pub internals: Vec<String>,
}

impl RegionSignature {
    /// Total flattened input width.
    pub fn input_width(&self) -> usize {
        self.inputs.iter().map(FeatureSpec::width).sum()
    }

    /// Total flattened output width.
    pub fn output_width(&self) -> usize {
        self.outputs.iter().map(FeatureSpec::width).sum()
    }
}

/// Sizes of array variables at identification time (needed to size the
/// grouped array features).
pub type ArraySizes = HashMap<String, usize>;

/// Identify the region's inputs, outputs, and internals from a full
/// program trace.
///
/// * **input**: some element of the variable is read inside the region
///   before that element is written inside the region (its value flows in
///   from outside).
/// * **output**: the variable is written inside the region, and either
///   (a) it appears in `live_out`, or (b) some element written in the
///   region is read in the post-phase before the post-phase overwrites it
///   (liveness + use-def over the following code).
/// * **internal**: touched in the region, neither input nor output.
pub fn identify(trace: &TraceSet, live_out: &[String], sizes: &ArraySizes) -> RegionSignature {
    // --- region-phase element-level classification ---
    let mut written_in_region: HashSet<Location> = HashSet::new();
    let mut region_written_vars: HashSet<String> = HashSet::new();
    let mut region_touched_vars: HashSet<String> = HashSet::new();
    let mut input_vars: HashSet<String> = HashSet::new();

    for rec in trace.phase(Phase::Region) {
        for loc in &rec.reads {
            region_touched_vars.insert(loc.base().to_string());
            if !written_in_region.contains(loc) {
                input_vars.insert(loc.base().to_string());
            }
        }
        if let Some(w) = &rec.write {
            region_touched_vars.insert(w.base().to_string());
            region_written_vars.insert(w.base().to_string());
            written_in_region.insert(w.clone());
        }
    }

    // --- post-phase liveness: which region writes survive to a use? ---
    let mut output_vars: HashSet<String> = HashSet::new();
    for v in live_out {
        if region_written_vars.contains(v) {
            output_vars.insert(v.clone());
        }
    }
    let mut overwritten_in_post: HashSet<Location> = HashSet::new();
    for rec in trace.phase(Phase::Post) {
        for loc in &rec.reads {
            if written_in_region.contains(loc) && !overwritten_in_post.contains(loc) {
                output_vars.insert(loc.base().to_string());
            }
        }
        if let Some(w) = &rec.write {
            overwritten_in_post.insert(w.clone());
        }
    }

    // --- assemble, applying array grouping ---
    let to_spec = |name: &String| -> FeatureSpec {
        match sizes.get(name) {
            Some(&len) => FeatureSpec {
                name: name.clone(),
                kind: FeatureKind::Array(len),
            },
            None => FeatureSpec {
                name: name.clone(),
                kind: FeatureKind::Scalar,
            },
        }
    };
    let mut inputs: Vec<FeatureSpec> = input_vars.iter().map(to_spec).collect();
    let mut outputs: Vec<FeatureSpec> = output_vars.iter().map(to_spec).collect();
    let mut internals: Vec<String> = region_touched_vars
        .iter()
        .filter(|v| !input_vars.contains(*v) && !output_vars.contains(*v))
        .cloned()
        .collect();
    inputs.sort_by(|a, b| a.name.cmp(&b.name));
    outputs.sort_by(|a, b| a.name.cmp(&b.name));
    internals.sort_unstable();
    RegionSignature {
        inputs,
        outputs,
        internals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::ir::{BinOp, Expr, Program, Stmt};

    fn sizes_of(interp: &Interpreter, names: &[&str]) -> ArraySizes {
        names
            .iter()
            .filter_map(|n| interp.array(n).map(|a| (n.to_string(), a.len())))
            .collect()
    }

    /// pre: b set up; region: y = A*x (matvec-ish); post: r uses y.
    fn matvec_program() -> Program {
        Program {
            pre: vec![Stmt::assign("two", Expr::c(2.0))],
            region: vec![Stmt::for_loop(
                "i",
                Expr::c(0.0),
                Expr::c(3.0),
                vec![Stmt::store(
                    "y",
                    Expr::var("i"),
                    Expr::bin(BinOp::Mul, Expr::var("two"), Expr::idx("x", Expr::var("i"))),
                )],
            )],
            post: vec![Stmt::assign("check", Expr::idx("y", Expr::c(0.0)))],
            live_out: vec!["check".to_string()],
        }
    }

    #[test]
    fn identifies_matvec_signature() {
        let prog = matvec_program();
        let mut interp = Interpreter::new();
        interp.set_array("x", vec![1.0, 2.0, 3.0]);
        interp.set_array("y", vec![0.0; 3]);
        let trace = interp.run(&prog).unwrap();
        let sizes = sizes_of(&interp, &["x", "y"]);
        let sig = identify(&trace, &prog.live_out, &sizes);

        let input_names: Vec<&str> = sig.inputs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(input_names, vec!["two", "x"]);
        let output_names: Vec<&str> = sig.outputs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(output_names, vec!["y"]);
        assert_eq!(sig.input_width(), 1 + 3);
        assert_eq!(sig.output_width(), 3);
        // Loop counter is internal.
        assert!(sig.internals.contains(&"i".to_string()));
    }

    #[test]
    fn region_written_live_out_is_output_even_without_post_reads() {
        let prog =
            Program::region_only(vec![Stmt::assign("result", Expr::var("a"))], vec!["result"]);
        let mut interp = Interpreter::new();
        interp.set_scalar("a", 5.0);
        let trace = interp.run(&prog).unwrap();
        let sig = identify(&trace, &prog.live_out, &ArraySizes::new());
        assert_eq!(
            sig.outputs,
            vec![FeatureSpec {
                name: "result".into(),
                kind: FeatureKind::Scalar
            }]
        );
        assert_eq!(
            sig.inputs,
            vec![FeatureSpec {
                name: "a".into(),
                kind: FeatureKind::Scalar
            }]
        );
    }

    #[test]
    fn post_overwrite_kills_liveness() {
        // Region writes tmp; post overwrites tmp before reading it.
        let prog = Program {
            pre: vec![],
            region: vec![Stmt::assign("tmp", Expr::var("a"))],
            post: vec![
                Stmt::assign("tmp", Expr::c(0.0)),
                Stmt::assign("use", Expr::var("tmp")),
            ],
            live_out: vec!["use".to_string()],
        };
        let mut interp = Interpreter::new();
        interp.set_scalar("a", 1.0);
        let trace = interp.run(&prog).unwrap();
        let sig = identify(&trace, &prog.live_out, &ArraySizes::new());
        assert!(
            sig.outputs.is_empty(),
            "dead region write must not be an output: {sig:?}"
        );
        assert!(sig.internals.contains(&"tmp".to_string()));
    }

    #[test]
    fn read_after_region_write_is_not_input() {
        // Region initializes s before reading it: s is not an input.
        let prog = Program::region_only(
            vec![
                Stmt::assign("s", Expr::c(0.0)),
                Stmt::assign("s", Expr::bin(BinOp::Add, Expr::var("s"), Expr::var("a"))),
            ],
            vec!["s"],
        );
        let mut interp = Interpreter::new();
        interp.set_scalar("a", 3.0);
        let trace = interp.run(&prog).unwrap();
        let sig = identify(&trace, &prog.live_out, &ArraySizes::new());
        let names: Vec<&str> = sig.inputs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a"]);
    }

    #[test]
    fn partially_external_array_is_grouped_input() {
        // t[0] is written first, but t[1] flows in from outside: the whole
        // array groups into one input feature.
        let prog = Program::region_only(
            vec![
                Stmt::store("t", Expr::c(0.0), Expr::c(5.0)),
                Stmt::assign(
                    "y",
                    Expr::bin(
                        BinOp::Add,
                        Expr::idx("t", Expr::c(0.0)),
                        Expr::idx("t", Expr::c(1.0)),
                    ),
                ),
            ],
            vec!["y"],
        );
        let mut interp = Interpreter::new();
        interp.set_array("t", vec![9.0, 7.0]);
        let trace = interp.run(&prog).unwrap();
        let sizes = sizes_of(&interp, &["t"]);
        let sig = identify(&trace, &prog.live_out, &sizes);
        assert!(sig.inputs.contains(&FeatureSpec {
            name: "t".into(),
            kind: FeatureKind::Array(2)
        }));
    }

    #[test]
    fn identification_is_stable_under_loop_compression() {
        // The paper's compression claim: array-granularity I/O identification
        // is unchanged when only one loop iteration is traced.
        let prog = matvec_program();
        let run = |compress: bool| {
            let mut interp = Interpreter::new();
            interp.compress_loops = compress;
            interp.set_array("x", vec![1.0, 2.0, 3.0]);
            interp.set_array("y", vec![0.0; 3]);
            let trace = interp.run(&prog).unwrap();
            let sizes = sizes_of(&interp, &["x", "y"]);
            identify(&trace, &prog.live_out, &sizes)
        };
        assert_eq!(run(false), run(true));
    }
}
