//! Dynamic-trace data model: what the instrumented interpreter records.
//!
//! Each [`TraceRecord`] is one executed statement-level operation with its
//! full memory metadata (locations read, location written), the analog of
//! one LLVM-Tracer instruction entry. Loop-compressed records carry a
//! `weight` — how many dynamic executions the single record stands for.

use serde::{Deserialize, Serialize};

/// A memory location at element granularity.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Location {
    /// A scalar variable.
    Scalar(String),
    /// One element of an array.
    Elem(String, usize),
}

impl Location {
    /// The base variable name (arrays collapse to their name — the paper's
    /// array-grouping rule operates at this granularity).
    pub fn base(&self) -> &str {
        match self {
            Location::Scalar(n) | Location::Elem(n, _) => n,
        }
    }

    /// Is this an array element?
    pub fn is_elem(&self) -> bool {
        matches!(self, Location::Elem(..))
    }
}

/// Which phase of the program produced a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Before the annotated region.
    Pre,
    /// Inside the annotated region.
    Region,
    /// After the annotated region.
    Post,
}

/// Operation kinds at statement granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Scalar assignment.
    Assign,
    /// Array-element store.
    Store,
    /// Loop-header evaluation (defines the loop variable).
    LoopHead,
    /// Branch-condition evaluation.
    Branch,
    /// Array allocation.
    Alloc,
}

/// One executed operation with memory metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Monotonically increasing id (program order).
    pub id: usize,
    /// Program phase.
    pub phase: Phase,
    /// Operation kind.
    pub op: OpKind,
    /// Locations read by the operation, in evaluation order.
    pub reads: Vec<Location>,
    /// Location written, if any.
    pub write: Option<Location>,
    /// Dynamic executions this record stands for (loop compression).
    pub weight: u64,
}

/// The full trace of one program execution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceSet {
    /// Records in program order.
    pub records: Vec<TraceRecord>,
}

impl TraceSet {
    /// Records belonging to one phase.
    pub fn phase(&self, phase: Phase) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.phase == phase)
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total dynamic operations represented (sum of weights) — what the
    /// trace length would have been without loop compression.
    pub fn dynamic_len(&self) -> u64 {
        self.records.iter().map(|r| r.weight).sum()
    }
}

/// Builds trace records during interpretation.
#[derive(Debug)]
pub struct Tracer {
    records: Vec<TraceRecord>,
    phase: Phase,
    enabled: bool,
    /// Compounded loop-compression multiplier.
    weight: u64,
    next_id: usize,
}

impl Tracer {
    /// A fresh tracer starting in the given phase.
    pub fn new() -> Self {
        Tracer {
            records: Vec::new(),
            phase: Phase::Pre,
            enabled: true,
            weight: 1,
            next_id: 0,
        }
    }

    /// Switch the phase tag for subsequent records.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// Current phase tag.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Is recording currently on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Toggle recording (used for compressed loop iterations 1..n).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Current weight multiplier.
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Set the weight multiplier; returns the previous value.
    pub fn set_weight(&mut self, w: u64) -> u64 {
        std::mem::replace(&mut self.weight, w)
    }

    /// Record one operation (no-op while disabled).
    pub fn record(&mut self, op: OpKind, reads: Vec<Location>, write: Option<Location>) {
        if !self.enabled {
            return;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.records.push(TraceRecord {
            id,
            phase: self.phase,
            op,
            reads,
            write,
            weight: self.weight,
        });
    }

    /// Finish and return the trace.
    pub fn finish(self) -> TraceSet {
        TraceSet {
            records: self.records,
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_records_in_order_with_weights() {
        let mut t = Tracer::new();
        t.record(
            OpKind::Assign,
            vec![Location::Scalar("a".into())],
            Some(Location::Scalar("b".into())),
        );
        t.set_weight(5);
        t.set_phase(Phase::Region);
        t.record(OpKind::Store, vec![], Some(Location::Elem("c".into(), 0)));
        let ts = t.finish();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.records[0].id, 0);
        assert_eq!(ts.records[1].id, 1);
        assert_eq!(ts.records[1].weight, 5);
        assert_eq!(ts.dynamic_len(), 6);
        assert_eq!(ts.phase(Phase::Region).count(), 1);
    }

    #[test]
    fn disabled_tracer_drops_records() {
        let mut t = Tracer::new();
        t.set_enabled(false);
        t.record(OpKind::Assign, vec![], None);
        assert!(t.finish().is_empty());
    }

    #[test]
    fn location_base_collapses_elements() {
        assert_eq!(Location::Elem("arr".into(), 7).base(), "arr");
        assert_eq!(Location::Scalar("x".into()).base(), "x");
        assert!(Location::Elem("arr".into(), 7).is_elem());
        assert!(!Location::Scalar("x".into()).is_elem());
    }
}
