//! Dynamic data-dependency graph construction (paper §3.1 Step 2).
//!
//! Vertices are executed operations (trace records); a directed edge
//! `a -> b` means `b` read a location whose last writer was `a`. Reads
//! with no prior writer in the trace are *external reads* — their base
//! variables are the candidate region inputs (the DDDG "roots"); writes
//! never read again inside the trace are the "leaves".
//!
//! Construction is parallelized exactly as the paper describes: the trace
//! is split into chunks processed concurrently (each chunk resolves its
//! internal dependencies and collects its unresolved boundary reads), then
//! a sequential stitch resolves cross-chunk dependencies against the
//! accumulated writer map.

use std::collections::HashMap;

use rayon::prelude::*;

use crate::trace::{Location, TraceRecord};

/// Chunk size for parallel construction.
const CHUNK: usize = 1024;

/// The dependency graph over a trace slice.
#[derive(Debug, Clone, Default)]
pub struct Dddg {
    /// Edges `(from_record_id, to_record_id)`, deduplicated.
    pub edges: Vec<(usize, usize)>,
    /// Reads that had no writer inside the analyzed slice: `(record id,
    /// location)` — the graph's root inputs.
    pub external_reads: Vec<(usize, Location)>,
    /// Locations whose final write inside the slice was never read again
    /// within it: `(record id, location)` — the graph's leaf outputs.
    pub final_writes: Vec<(usize, Location)>,
    /// Number of vertices (records analyzed).
    pub n_vertices: usize,
}

/// Per-chunk partial analysis result.
struct ChunkResult {
    edges: Vec<(usize, usize)>,
    /// Reads not satisfied within the chunk.
    unresolved: Vec<(usize, Location)>,
    /// Last writer per location within the chunk.
    writers: HashMap<Location, usize>,
    /// Locations read in this chunk (used to mark earlier writes as
    /// consumed during the stitch), with the position of the last read.
    reads: HashMap<Location, usize>,
}

impl Dddg {
    /// Build the graph from a trace slice, using rayon when the slice is
    /// large enough to amortize the fork-join.
    pub fn build(records: &[TraceRecord]) -> Dddg {
        if records.len() < 2 * CHUNK {
            return Self::build_sequential(records);
        }
        let partials: Vec<ChunkResult> =
            records.par_chunks(CHUNK).map(Self::analyze_chunk).collect();
        Self::stitch(partials, records.len())
    }

    /// Sequential reference construction (also used for small traces).
    pub fn build_sequential(records: &[TraceRecord]) -> Dddg {
        let partial = Self::analyze_chunk(records);
        Self::stitch(vec![partial], records.len())
    }

    fn analyze_chunk(records: &[TraceRecord]) -> ChunkResult {
        let mut writers: HashMap<Location, usize> = HashMap::new();
        let mut reads: HashMap<Location, usize> = HashMap::new();
        let mut edges = Vec::new();
        let mut unresolved = Vec::new();
        for rec in records {
            for loc in &rec.reads {
                match writers.get(loc) {
                    Some(&w) => edges.push((w, rec.id)),
                    None => unresolved.push((rec.id, loc.clone())),
                }
                reads.insert(loc.clone(), rec.id);
            }
            if let Some(w) = &rec.write {
                writers.insert(w.clone(), rec.id);
            }
        }
        ChunkResult {
            edges,
            unresolved,
            writers,
            reads,
        }
    }

    fn stitch(partials: Vec<ChunkResult>, n_vertices: usize) -> Dddg {
        let mut edges = Vec::new();
        let mut external_reads = Vec::new();
        // Global last-writer map accumulated across chunks, plus whether
        // that write has been read since.
        let mut writers: HashMap<Location, (usize, bool)> = HashMap::new();
        for chunk in partials {
            edges.extend(chunk.edges);
            for (rid, loc) in chunk.unresolved {
                match writers.get_mut(&loc) {
                    Some((w, consumed)) => {
                        edges.push((*w, rid));
                        *consumed = true;
                    }
                    None => external_reads.push((rid, loc)),
                }
            }
            // Reads in this chunk that *were* satisfied internally still
            // consume earlier global writes only if the location was first
            // read before being written in-chunk — the unresolved list
            // already covers that case. Writes within the chunk supersede
            // the global map.
            for (loc, wid) in chunk.writers {
                // Was the in-chunk final write read later in the chunk?
                // `reads` has the last read position; the final write was
                // consumed iff some read follows it.
                let consumed_in_chunk = chunk
                    .reads
                    .get(&loc)
                    .is_some_and(|&last_read| last_read > wid);
                writers.insert(loc, (wid, consumed_in_chunk));
            }
        }
        let final_writes = writers
            .into_iter()
            .filter(|(_, (_, consumed))| !consumed)
            .map(|(loc, (wid, _))| (wid, loc))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let mut dddg = Dddg {
            edges,
            external_reads,
            final_writes,
            n_vertices,
        };
        dddg.external_reads.sort_by_key(|(id, _)| *id);
        dddg.final_writes.sort_by_key(|(id, _)| *id);
        dddg
    }

    /// Distinct base variables among external reads (root inputs, after
    /// the paper's array grouping).
    pub fn root_input_vars(&self) -> Vec<String> {
        let mut vars: Vec<String> = self
            .external_reads
            .iter()
            .map(|(_, l)| l.base().to_string())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Distinct base variables among final writes (leaf outputs, grouped).
    pub fn leaf_output_vars(&self) -> Vec<String> {
        let mut vars: Vec<String> = self
            .final_writes
            .iter()
            .map(|(_, l)| l.base().to_string())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::ir::{BinOp, Expr, Program, Stmt};

    fn region_trace(prog: &Program, setup: impl FnOnce(&mut Interpreter)) -> Vec<TraceRecord> {
        let mut interp = Interpreter::new();
        setup(&mut interp);
        let trace = interp.run(prog).unwrap();
        trace.records
    }

    fn saxpy() -> Program {
        // for i in 0..n { y[i] = alpha * x[i] + y[i] }
        Program::region_only(
            vec![Stmt::for_loop(
                "i",
                Expr::c(0.0),
                Expr::var("n"),
                vec![Stmt::store(
                    "y",
                    Expr::var("i"),
                    Expr::bin(
                        BinOp::Add,
                        Expr::bin(
                            BinOp::Mul,
                            Expr::var("alpha"),
                            Expr::idx("x", Expr::var("i")),
                        ),
                        Expr::idx("y", Expr::var("i")),
                    ),
                )],
            )],
            vec!["y"],
        )
    }

    #[test]
    fn saxpy_roots_and_leaves() {
        let recs = region_trace(&saxpy(), |it| {
            it.set_scalar("n", 4.0);
            it.set_scalar("alpha", 2.0);
            it.set_array("x", vec![1.0; 4]);
            it.set_array("y", vec![1.0; 4]);
        });
        let g = Dddg::build_sequential(&recs);
        assert_eq!(g.root_input_vars(), vec!["alpha", "n", "x", "y"]);
        assert_eq!(g.leaf_output_vars(), vec!["y"]);
        assert_eq!(g.n_vertices, recs.len());
    }

    #[test]
    fn raw_dependency_creates_edge() {
        // a = 1; b = a + 1  =>  edge from record 0 to record 1.
        let prog = Program::region_only(
            vec![
                Stmt::assign("a", Expr::c(1.0)),
                Stmt::assign("b", Expr::bin(BinOp::Add, Expr::var("a"), Expr::c(1.0))),
            ],
            vec!["b"],
        );
        let recs = region_trace(&prog, |_| {});
        let g = Dddg::build_sequential(&recs);
        assert!(g.edges.contains(&(0, 1)));
        // `a`'s write was consumed, `b`'s was not.
        assert_eq!(g.leaf_output_vars(), vec!["b"]);
        assert!(g.external_reads.is_empty());
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // A long alternating read/write program crossing chunk boundaries.
        let n = 3000usize;
        let mut region = vec![Stmt::assign("acc", Expr::c(0.0))];
        region.push(Stmt::for_loop(
            "i",
            Expr::c(0.0),
            Expr::c(n as f64),
            vec![Stmt::assign(
                "acc",
                Expr::bin(
                    BinOp::Add,
                    Expr::var("acc"),
                    Expr::idx("data", Expr::var("i")),
                ),
            )],
        ));
        let prog = Program::region_only(region, vec!["acc"]);
        let recs = region_trace(&prog, |it| {
            it.set_array("data", vec![1.0; n]);
        });
        assert!(recs.len() > 2 * CHUNK, "need a multi-chunk trace");
        let par = Dddg::build(&recs);
        let seq = Dddg::build_sequential(&recs);
        assert_eq!(par.edges, seq.edges);
        assert_eq!(par.root_input_vars(), seq.root_input_vars());
        assert_eq!(par.leaf_output_vars(), seq.leaf_output_vars());
    }

    #[test]
    fn empty_trace_builds_empty_graph() {
        let g = Dddg::build_sequential(&[]);
        assert!(g.edges.is_empty());
        assert!(g.root_input_vars().is_empty());
        assert!(g.leaf_output_vars().is_empty());
    }
}
