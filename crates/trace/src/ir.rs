//! The mini-IR region kernels are expressed in.
//!
//! A [`Program`] is split into three phases by the paper's two annotation
//! directives: statements **before** the region, the **region** itself
//! (the candidate for surrogate replacement), and statements **after** it.
//! `live_out` lists the program's external outputs — variables the caller
//! consumes after the program finishes, which the liveness analysis treats
//! as live past the end of the trace.

use serde::{Deserialize, Serialize};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Maximum of two values.
    Max,
    /// Minimum of two values.
    Min,
}

impl BinOp {
    /// Apply the operator.
    #[inline]
    pub fn apply(&self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Max => a.max(b),
            BinOp::Min => a.min(b),
        }
    }

    /// Mnemonic used in trace dumps.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Max => "max",
            BinOp::Min => "min",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Negation.
    Neg,
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Absolute value.
    Abs,
}

impl UnOp {
    /// Apply the operator.
    #[inline]
    pub fn apply(&self, a: f64) -> f64 {
        match self {
            UnOp::Neg => -a,
            UnOp::Sqrt => a.sqrt(),
            UnOp::Exp => a.exp(),
            UnOp::Ln => a.ln(),
            UnOp::Abs => a.abs(),
        }
    }
}

/// Comparison operators for conditionals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equality (exact floating-point).
    Eq,
}

impl CmpOp {
    /// Apply the comparison.
    #[inline]
    pub fn apply(&self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
        }
    }
}

/// Expressions (pure; loads are recorded by the tracer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal constant.
    Const(f64),
    /// Read a scalar variable.
    Var(String),
    /// Read an array element `name[index]`.
    Index(String, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
}

impl Expr {
    /// `a op b` convenience.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// `name[idx]` convenience.
    pub fn idx(name: &str, idx: Expr) -> Expr {
        Expr::Index(name.to_string(), Box::new(idx))
    }

    /// `name` convenience.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Literal convenience.
    pub fn c(v: f64) -> Expr {
        Expr::Const(v)
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Scalar assignment `name = expr`.
    Assign(String, Expr),
    /// Array store `name[index] = expr`.
    Store(String, Expr, Expr),
    /// Allocate (or reallocate) an array of `len` zeros.
    AllocArray(String, usize),
    /// Counted loop `for var in start..end { body }` (integer-valued).
    For {
        /// Loop variable (a scalar, visible to the body).
        var: String,
        /// Inclusive start.
        start: Expr,
        /// Exclusive end.
        end: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Conditional.
    If {
        /// Left-hand side of the comparison.
        lhs: Expr,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand side of the comparison.
        rhs: Expr,
        /// Taken branch.
        then: Vec<Stmt>,
        /// Fallback branch.
        els: Vec<Stmt>,
    },
}

impl Stmt {
    /// `name = expr` convenience.
    pub fn assign(name: &str, e: Expr) -> Stmt {
        Stmt::Assign(name.to_string(), e)
    }

    /// `name[i] = expr` convenience.
    pub fn store(name: &str, i: Expr, e: Expr) -> Stmt {
        Stmt::Store(name.to_string(), i, e)
    }

    /// Counted-loop convenience.
    pub fn for_loop(var: &str, start: Expr, end: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var: var.to_string(),
            start,
            end,
            body,
        }
    }

    /// Does this statement tree contain a conditional? Loops containing
    /// control flow are excluded from trace compression (paper §3.1 Step 1:
    /// compress only loops with "no control flow divergence").
    pub fn contains_branch(&self) -> bool {
        match self {
            Stmt::If { .. } => true,
            Stmt::For { body, .. } => body.iter().any(Stmt::contains_branch),
            _ => false,
        }
    }
}

/// A program with an annotated region (the paper's two directives).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Statements before the region (set up region inputs).
    pub pre: Vec<Stmt>,
    /// The annotated region — the surrogate-replacement candidate.
    pub region: Vec<Stmt>,
    /// Statements after the region (consume region outputs).
    pub post: Vec<Stmt>,
    /// Variables the caller reads after the program ends.
    pub live_out: Vec<String>,
}

impl Program {
    /// A program that is nothing but a region (no pre/post code).
    pub fn region_only(region: Vec<Stmt>, live_out: Vec<&str>) -> Program {
        Program {
            pre: Vec::new(),
            region,
            post: Vec::new(),
            live_out: live_out.into_iter().map(str::to_string).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_apply() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinOp::Div.apply(3.0, 2.0), 1.5);
        assert_eq!(BinOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(BinOp::Min.apply(2.0, 3.0), 2.0);
    }

    #[test]
    fn unop_apply() {
        assert_eq!(UnOp::Neg.apply(2.0), -2.0);
        assert_eq!(UnOp::Sqrt.apply(9.0), 3.0);
        assert_eq!(UnOp::Abs.apply(-4.0), 4.0);
        assert!((UnOp::Exp.apply(0.0) - 1.0).abs() < 1e-12);
        assert!((UnOp::Ln.apply(1.0)).abs() < 1e-12);
    }

    #[test]
    fn cmp_apply() {
        assert!(CmpOp::Lt.apply(1.0, 2.0));
        assert!(CmpOp::Le.apply(2.0, 2.0));
        assert!(CmpOp::Gt.apply(3.0, 2.0));
        assert!(CmpOp::Ge.apply(2.0, 2.0));
        assert!(CmpOp::Eq.apply(2.0, 2.0));
        assert!(!CmpOp::Eq.apply(2.0, 2.1));
    }

    #[test]
    fn contains_branch_walks_nesting() {
        let plain = Stmt::for_loop(
            "i",
            Expr::c(0.0),
            Expr::c(4.0),
            vec![Stmt::assign("x", Expr::var("i"))],
        );
        assert!(!plain.contains_branch());
        let branchy = Stmt::for_loop(
            "i",
            Expr::c(0.0),
            Expr::c(4.0),
            vec![Stmt::If {
                lhs: Expr::var("i"),
                op: CmpOp::Gt,
                rhs: Expr::c(2.0),
                then: vec![],
                els: vec![],
            }],
        );
        assert!(branchy.contains_branch());
    }
}
