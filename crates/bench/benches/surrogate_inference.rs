//! Criterion benches of the surrogate online path: encoder + MLP
//! inference, dense and sparse, at the sizes the applications use —
//! the denominators of the paper's speedups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcnet_nn::{Autoencoder, Mlp, Topology};
use hpcnet_tensor::rng::{random_sparse_csr, seeded, uniform_vec};
use std::hint::black_box;

fn bench_mlp_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_predict");
    for &(input, hidden, output) in &[(16usize, 32usize, 8usize), (64, 64, 64), (256, 128, 256)] {
        let mut rng = seeded(1, "bench-mlp");
        let mlp = Mlp::new(&Topology::mlp(vec![input, hidden, output]), &mut rng).unwrap();
        let x = uniform_vec(&mut rng, input, -1.0, 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{input}x{hidden}x{output}")),
            &x,
            |b, x| b.iter(|| black_box(mlp.predict(black_box(x)).unwrap())),
        );
    }
    group.finish();
}

fn bench_encoder_paths(c: &mut Criterion) {
    // The CG-scale sparse input: 2352-wide with ~10% density.
    let d = 2352;
    let mut rng = seeded(2, "bench-enc");
    let ae = Autoencoder::new(d, 16, &mut rng).unwrap();
    let sparse = random_sparse_csr(&mut rng, 1, d, 0.10);
    let dense = sparse.to_dense_vector();

    let mut group = c.benchmark_group("encoder");
    group.bench_function("dense_encode_2352", |b| {
        b.iter(|| black_box(ae.encode(black_box(&dense)).unwrap()))
    });
    group.bench_function("sparse_encode_2352", |b| {
        b.iter(|| black_box(ae.encode_sparse(black_box(&sparse)).unwrap()))
    });
    group.finish();
}

fn bench_cnn_inference(c: &mut Criterion) {
    use hpcnet_nn::conv::{Cnn, CnnTopology};
    let mut group = c.benchmark_group("cnn_predict");
    for &(len, channels) in &[(64usize, 4usize), (256, 8)] {
        let mut rng = seeded(3, "bench-cnn");
        let topo = CnnTopology {
            input_len: len,
            output_dim: len,
            channels: vec![channels, channels],
            kernel: 3,
            pool: 2,
            head_width: 32,
            act: hpcnet_nn::Activation::Tanh,
        };
        let cnn = Cnn::new(&topo, &mut rng).unwrap();
        let x = uniform_vec(&mut rng, len, -1.0, 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("len{len}_ch{channels}")),
            &x,
            |b, x| b.iter(|| black_box(cnn.predict(black_box(x)).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mlp_inference, bench_encoder_paths, bench_cnn_inference);
criterion_main!(benches);
