//! Criterion benches of the surrogate online path: encoder + MLP
//! inference, dense and sparse, at the sizes the applications use —
//! the denominators of the paper's speedups — plus the serving-path
//! batch-size sweep (per-sample `run_model` vs `run_model_batch`),
//! recorded to `BENCH_serving.json` at the repo root.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use hpcnet_nn::{Autoencoder, Mlp, Topology};
use hpcnet_runtime::{Client, ModelBundle, Orchestrator, TensorStore};
use hpcnet_tensor::rng::{random_sparse_csr, seeded, uniform_vec};
use std::hint::black_box;

fn bench_mlp_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_predict");
    for &(input, hidden, output) in &[(16usize, 32usize, 8usize), (64, 64, 64), (256, 128, 256)] {
        let mut rng = seeded(1, "bench-mlp");
        let mlp = Mlp::new(&Topology::mlp(vec![input, hidden, output]), &mut rng).unwrap();
        let x = uniform_vec(&mut rng, input, -1.0, 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{input}x{hidden}x{output}")),
            &x,
            |b, x| b.iter(|| black_box(mlp.predict(black_box(x)).unwrap())),
        );
    }
    group.finish();
}

fn bench_encoder_paths(c: &mut Criterion) {
    // The CG-scale sparse input: 2352-wide with ~10% density.
    let d = 2352;
    let mut rng = seeded(2, "bench-enc");
    let ae = Autoencoder::new(d, 16, &mut rng).unwrap();
    let sparse = random_sparse_csr(&mut rng, 1, d, 0.10);
    let dense = sparse.to_dense_vector();

    let mut group = c.benchmark_group("encoder");
    group.bench_function("dense_encode_2352", |b| {
        b.iter(|| black_box(ae.encode(black_box(&dense)).unwrap()))
    });
    group.bench_function("sparse_encode_2352", |b| {
        b.iter(|| black_box(ae.encode_sparse(black_box(&sparse)).unwrap()))
    });
    group.finish();
}

fn bench_cnn_inference(c: &mut Criterion) {
    use hpcnet_nn::conv::{Cnn, CnnTopology};
    let mut group = c.benchmark_group("cnn_predict");
    for &(len, channels) in &[(64usize, 4usize), (256, 8)] {
        let mut rng = seeded(3, "bench-cnn");
        let topo = CnnTopology {
            input_len: len,
            output_dim: len,
            channels: vec![channels, channels],
            kernel: 3,
            pool: 2,
            head_width: 32,
            act: hpcnet_nn::Activation::Tanh,
        };
        let cnn = Cnn::new(&topo, &mut rng).unwrap();
        let x = uniform_vec(&mut rng, len, -1.0, 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("len{len}_ch{channels}")),
            &x,
            |b, x| b.iter(|| black_box(cnn.predict(black_box(x)).unwrap())),
        );
    }
    group.finish();
}

/// Launch an orchestrator serving one 64×64×64 MLP and return it with a
/// connected client and the pre-staged `(in_key, out_key)` pairs for
/// every sweep size.
fn serving_fixture(
    sizes: &[usize],
    telemetry: bool,
) -> (Orchestrator, Client, Vec<Vec<(String, String)>>) {
    let mut rng = seeded(9, "bench-serving");
    let mlp = Mlp::new(&Topology::mlp(vec![64, 64, 64]), &mut rng).unwrap();
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(2)
        .telemetry(telemetry)
        .build();
    orc.register_model(
        "serve",
        ModelBundle {
            surrogate: mlp.into(),
            autoencoder: None,
            scaler: None,
            output_scaler: None,
        },
    );
    let client = Client::connect(&orc);
    let keysets = sizes
        .iter()
        .map(|&batch| {
            (0..batch)
                .map(|i| {
                    let in_key = format!("b{batch}i{i}");
                    client
                        .put_tensor(&in_key, &uniform_vec(&mut rng, 64, -1.0, 1.0))
                        .unwrap();
                    (in_key, format!("b{batch}o{i}"))
                })
                .collect()
        })
        .collect();
    (orc, client, keysets)
}

const SWEEP: [usize; 4] = [1, 8, 64, 512];

fn bench_serving_batch(c: &mut Criterion) {
    let (_orc, client, keysets) = serving_fixture(&SWEEP, true);
    let mut group = c.benchmark_group("serving");
    for (batch, keys) in SWEEP.iter().zip(&keysets) {
        let pairs: Vec<(&str, &str)> = keys.iter().map(|(i, o)| (i.as_str(), o.as_str())).collect();
        group.throughput(Throughput::Elements(*batch as u64));
        group.bench_with_input(BenchmarkId::new("per_sample", batch), &pairs, |b, pairs| {
            b.iter(|| {
                for (in_key, out_key) in pairs {
                    client.run_model("serve", in_key, out_key).unwrap();
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", batch), &pairs, |b, pairs| {
            b.iter(|| client.run_model_batch("serve", black_box(pairs)).unwrap())
        });
    }
    group.finish();
}

/// Re-measure the sweep with plain wall-clock timing and record it as
/// `BENCH_serving.json` at the repo root, including client-observed
/// p50/p99 latencies per batch-size point (per `run_model` call on the
/// per-sample path, per `run_model_batch` call on the batched path).
/// Runs after the criterion benches on every
/// `cargo bench --bench surrogate_inference`.
fn record_serving_json() {
    use hpcnet_telemetry::Histogram;
    use std::time::Instant;
    let (orc, client, keysets) = serving_fixture(&SWEEP, true);
    let mut sweep = Vec::new();
    for (batch, keys) in SWEEP.iter().zip(&keysets) {
        let pairs: Vec<(&str, &str)> = keys.iter().map(|(i, o)| (i.as_str(), o.as_str())).collect();
        // Warm both paths before timing.
        for (in_key, out_key) in &pairs {
            client.run_model("serve", in_key, out_key).unwrap();
        }
        client.run_model_batch("serve", &pairs).unwrap();
        let reps = (2048 / batch).max(4);
        let per_sample_hist = Histogram::default();
        let t0 = Instant::now();
        for _ in 0..reps {
            for (in_key, out_key) in &pairs {
                let t = Instant::now();
                client.run_model("serve", in_key, out_key).unwrap();
                per_sample_hist.record_duration(t.elapsed());
            }
        }
        let per_sample_s = t0.elapsed().as_secs_f64();
        let batched_hist = Histogram::default();
        let t1 = Instant::now();
        for _ in 0..reps {
            let t = Instant::now();
            client.run_model_batch("serve", &pairs).unwrap();
            batched_hist.record_duration(t.elapsed());
        }
        let batched_s = t1.elapsed().as_secs_f64();
        let served = (reps * batch) as f64;
        let ps = per_sample_hist.snapshot();
        let bt = batched_hist.snapshot();
        sweep.push(serde_json::json!({
            "batch": batch,
            "requests": reps * batch,
            "per_sample_rps": served / per_sample_s,
            "batched_rps": served / batched_s,
            "speedup": per_sample_s / batched_s,
            "per_sample_p50_us": ps.p50 as f64 / 1e3,
            "per_sample_p99_us": ps.p99 as f64 / 1e3,
            "batched_call_p50_us": bt.p50 as f64 / 1e3,
            "batched_call_p99_us": bt.p99 as f64 / 1e3,
        }));
    }
    // Telemetry-overhead check: the same batched workload against an
    // orchestrator built with `.telemetry(false)` — the disabled
    // registry must not measurably change throughput.
    let measure_batched_rps = |telemetry: bool| {
        let (orc, client, keysets) = serving_fixture(&[64], telemetry);
        let pairs: Vec<(&str, &str)> = keysets[0]
            .iter()
            .map(|(i, o)| (i.as_str(), o.as_str()))
            .collect();
        client.run_model_batch("serve", &pairs).unwrap(); // warm
        let reps = 64;
        let t = Instant::now();
        for _ in 0..reps {
            client.run_model_batch("serve", &pairs).unwrap();
        }
        let rps = (reps * 64) as f64 / t.elapsed().as_secs_f64();
        drop(client);
        orc.shutdown();
        rps
    };
    let enabled_rps = measure_batched_rps(true);
    let disabled_rps = measure_batched_rps(false);

    let stats = orc.serving_stats();
    let report = serde_json::json!({
        "bench": "serving_batch_sweep",
        "model": "mlp 64x64x64",
        "workers": orc.worker_count(),
        "measured": true,
        "regenerate": "cargo bench --bench surrogate_inference",
        "sweep": sweep,
        "mean_batch_size_seen_by_server": stats.mean_batch_size(),
        "telemetry_overhead": {
            "batch": 64,
            "enabled_rps": enabled_rps,
            "disabled_rps": disabled_rps,
            "disabled_over_enabled": disabled_rps / enabled_rps,
        },
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    match std::fs::write(path, serde_json::to_string_pretty(&report).unwrap()) {
        Ok(()) => eprintln!("serving sweep recorded to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_mlp_inference,
    bench_encoder_paths,
    bench_cnn_inference,
    bench_serving_batch
);

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();
    record_serving_json();
}
