//! Criterion benches of the surrogate online path: encoder + MLP
//! inference, dense and sparse, at the sizes the applications use —
//! the denominators of the paper's speedups — plus the serving-path
//! batch-size sweep (per-sample `run_model` vs `run_model_batch`),
//! recorded to `BENCH_serving.json` at the repo root.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use hpcnet_nn::{Autoencoder, Mlp, Topology};
use hpcnet_tensor::rng::{random_sparse_csr, seeded, uniform_vec};
use std::hint::black_box;

fn bench_mlp_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_predict");
    for &(input, hidden, output) in &[(16usize, 32usize, 8usize), (64, 64, 64), (256, 128, 256)] {
        let mut rng = seeded(1, "bench-mlp");
        let mlp = Mlp::new(&Topology::mlp(vec![input, hidden, output]), &mut rng).unwrap();
        let x = uniform_vec(&mut rng, input, -1.0, 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{input}x{hidden}x{output}")),
            &x,
            |b, x| b.iter(|| black_box(mlp.predict(black_box(x)).unwrap())),
        );
    }
    group.finish();
}

fn bench_encoder_paths(c: &mut Criterion) {
    // The CG-scale sparse input: 2352-wide with ~10% density.
    let d = 2352;
    let mut rng = seeded(2, "bench-enc");
    let ae = Autoencoder::new(d, 16, &mut rng).unwrap();
    let sparse = random_sparse_csr(&mut rng, 1, d, 0.10);
    let dense = sparse.to_dense_vector();

    let mut group = c.benchmark_group("encoder");
    group.bench_function("dense_encode_2352", |b| {
        b.iter(|| black_box(ae.encode(black_box(&dense)).unwrap()))
    });
    group.bench_function("sparse_encode_2352", |b| {
        b.iter(|| black_box(ae.encode_sparse(black_box(&sparse)).unwrap()))
    });
    group.finish();
}

fn bench_cnn_inference(c: &mut Criterion) {
    use hpcnet_nn::conv::{Cnn, CnnTopology};
    let mut group = c.benchmark_group("cnn_predict");
    for &(len, channels) in &[(64usize, 4usize), (256, 8)] {
        let mut rng = seeded(3, "bench-cnn");
        let topo = CnnTopology {
            input_len: len,
            output_dim: len,
            channels: vec![channels, channels],
            kernel: 3,
            pool: 2,
            head_width: 32,
            act: hpcnet_nn::Activation::Tanh,
        };
        let cnn = Cnn::new(&topo, &mut rng).unwrap();
        let x = uniform_vec(&mut rng, len, -1.0, 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("len{len}_ch{channels}")),
            &x,
            |b, x| b.iter(|| black_box(cnn.predict(black_box(x)).unwrap())),
        );
    }
    group.finish();
}

const SWEEP: [usize; 4] = hpcnet_bench::serving::SWEEP;

fn bench_serving_batch(c: &mut Criterion) {
    let (_orc, client, keysets) = hpcnet_bench::serving::serving_fixture(&SWEEP, false);
    let mut group = c.benchmark_group("serving");
    for (batch, keys) in SWEEP.iter().zip(&keysets) {
        let pairs: Vec<(&str, &str)> = keys.iter().map(|(i, o)| (i.as_str(), o.as_str())).collect();
        group.throughput(Throughput::Elements(*batch as u64));
        group.bench_with_input(BenchmarkId::new("per_sample", batch), &pairs, |b, pairs| {
            b.iter(|| {
                for (in_key, out_key) in pairs {
                    client.run_model("serve", in_key, out_key).unwrap();
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", batch), &pairs, |b, pairs| {
            b.iter(|| client.run_model_batch("serve", black_box(pairs)).unwrap())
        });
    }
    group.finish();
}

/// Re-measure every sweep (kernel, serving f64/f32, net loopback) with
/// the shared harness in `hpcnet_bench::serving` and record the
/// schema-v2 report as `BENCH_serving.json` at the repo root. Runs
/// after the criterion benches on every
/// `cargo bench --bench surrogate_inference`; `hpcnet-serving-bench`
/// produces the same file without the criterion pass.
fn record_serving_json() {
    let measured_at = std::env::var("HPCNET_MEASURED_AT").ok();
    let report = hpcnet_bench::serving::full_report(false, measured_at.as_deref());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    match std::fs::write(path, serde_json::to_string_pretty(&report).unwrap()) {
        Ok(()) => eprintln!("serving sweep recorded to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_mlp_inference,
    bench_encoder_paths,
    bench_cnn_inference,
    bench_serving_batch
);

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();
    record_serving_json();
}
