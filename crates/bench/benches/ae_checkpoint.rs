//! A2 ablation bench: gradient-checkpointed vs plain backprop through a
//! deep autoencoder-shaped network — the time cost paid for the memory
//! savings of paper §4.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcnet_nn::checkpoint::loss_and_grads_checkpointed;
use hpcnet_nn::{Loss, Mlp, Topology};
use hpcnet_tensor::rng::{seeded, uniform_vec};
use hpcnet_tensor::Matrix;
use std::hint::black_box;

fn bench_checkpointing(c: &mut Criterion) {
    let mut rng = seeded(3, "bench-ckpt");
    // A deep hourglass: 256 -> ... -> 16 -> ... -> 256.
    let topo = Topology::mlp(vec![256, 128, 64, 16, 64, 128, 256]);
    let mlp = Mlp::new(&topo, &mut rng).unwrap();
    let batch = 16;
    let x = Matrix::from_vec(batch, 256, uniform_vec(&mut rng, batch * 256, -1.0, 1.0)).unwrap();

    let mut group = c.benchmark_group("ae_backprop");
    group.sample_size(20);
    group.bench_function("plain", |b| {
        b.iter(|| {
            black_box(
                mlp.loss_and_grads(black_box(&x), black_box(&x), Loss::Mse)
                    .unwrap(),
            )
        })
    });
    for segment in [1usize, 2, 3] {
        group.bench_with_input(
            BenchmarkId::new("checkpointed", segment),
            &segment,
            |b, &seg| {
                b.iter(|| {
                    black_box(
                        loss_and_grads_checkpointed(
                            &mlp,
                            black_box(&x),
                            black_box(&x),
                            Loss::Mse,
                            seg,
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();

    // Print the memory story once (criterion benches also document).
    let (_, _, s2) = loss_and_grads_checkpointed(&mlp, &x, &x, Loss::Mse, 2).unwrap();
    eprintln!(
        "checkpoint segment=2: retained {} vs plain {} activation elements ({:.1}% saved)",
        s2.retained_elements,
        s2.plain_elements,
        100.0 * s2.savings_ratio()
    );
}

criterion_group!(benches, bench_checkpointing);
criterion_main!(benches);
