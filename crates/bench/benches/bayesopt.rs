//! Benches of the Bayesian-optimization substrate: GP fitting/posterior
//! cost versus observation count, and full BO iterations — what bounds the
//! §7.2 steps-per-hour numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcnet_bayesopt::{BayesOpt, BoConfig, GaussianProcess, Kernel};
use hpcnet_tensor::rng::{seeded, uniform_vec};
use std::hint::black_box;

fn bench_gp_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_fit");
    for &n in &[10usize, 50, 150] {
        let mut rng = seeded(5, "bench-gp");
        let xs: Vec<Vec<f64>> = (0..n).map(|_| uniform_vec(&mut rng, 4, 0.0, 1.0)).collect();
        let ys: Vec<f64> = xs.iter().map(|p| p.iter().sum()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    GaussianProcess::fit(
                        Kernel::default_for_unit_cube(),
                        black_box(xs.clone()),
                        black_box(&ys),
                        1e-6,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_gp_posterior(c: &mut Criterion) {
    let mut rng = seeded(6, "bench-gpq");
    let xs: Vec<Vec<f64>> = (0..100)
        .map(|_| uniform_vec(&mut rng, 4, 0.0, 1.0))
        .collect();
    let ys: Vec<f64> = xs.iter().map(|p| p.iter().sum()).collect();
    let gp = GaussianProcess::fit(Kernel::default_for_unit_cube(), xs, &ys, 1e-6).unwrap();
    let q = uniform_vec(&mut rng, 4, 0.0, 1.0);
    c.bench_function("gp_posterior_n100", |b| {
        b.iter(|| black_box(gp.posterior(black_box(&q)).unwrap()))
    });
}

fn bench_bo_loop(c: &mut Criterion) {
    c.bench_function("bo_30_evals_sphere", |b| {
        b.iter(|| {
            let mut cfg = BoConfig::new(vec![(-1.0, 1.0); 3]);
            cfg.budget = 30;
            cfg.candidates_per_step = 128;
            let run = BayesOpt::new(cfg)
                .unwrap()
                .minimize(|x| Some(x.iter().map(|v| v * v).sum()))
                .unwrap();
            black_box(run.best_y)
        })
    });
}

criterion_group!(benches, bench_gp_fit, bench_gp_posterior, bench_bo_loop);
criterion_main!(benches);
