//! Benches of the feature-acquisition substrate: trace generation (with
//! and without loop compression) and parallel vs sequential DDDG
//! construction — the paper's §3.1 performance claims.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcnet_trace::{Dddg, Interpreter};
use std::hint::black_box;

fn long_trace(n: usize) -> Vec<hpcnet_trace::TraceRecord> {
    use hpcnet_trace::{BinOp, Expr, Program, Stmt};
    let prog = Program::region_only(
        vec![
            Stmt::assign("acc", Expr::c(0.0)),
            Stmt::for_loop(
                "i",
                Expr::c(0.0),
                Expr::c(n as f64),
                vec![Stmt::assign(
                    "acc",
                    Expr::bin(
                        BinOp::Add,
                        Expr::var("acc"),
                        Expr::idx("data", Expr::var("i")),
                    ),
                )],
            ),
        ],
        vec!["acc"],
    );
    let mut interp = Interpreter::new();
    interp.set_array("data", vec![1.0; n]);
    interp.run(&prog).unwrap().records
}

fn bench_trace_generation(c: &mut Criterion) {
    use hpcnet_trace::kernels;
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(20);
    for compress in [false, true] {
        let label = if compress {
            "pcg_compressed"
        } else {
            "pcg_full"
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let k = kernels::pcg_iteration(4);
                let mut interp = Interpreter::new();
                interp.compress_loops = compress;
                (k.setup)(&mut interp);
                black_box(interp.run(&k.program).unwrap().len())
            })
        });
    }
    group.finish();
}

fn bench_dddg_construction(c: &mut Criterion) {
    let records = long_trace(20_000);
    let mut group = c.benchmark_group("dddg_build");
    group.sample_size(20);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(Dddg::build_sequential(black_box(&records)).edges.len()))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(Dddg::build(black_box(&records)).edges.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_trace_generation, bench_dddg_construction);
criterion_main!(benches);
