//! Criterion benches of the exact numerical regions the surrogates
//! replace — the numerators of every speedup in the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcnet_apps::all_apps;
use std::hint::black_box;

fn bench_exact_regions(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_region");
    group.sample_size(20);
    for app in all_apps() {
        let x = app.gen_problem(0);
        group.bench_function(app.name(), |b| {
            b.iter(|| black_box(app.run_region_exact(black_box(&x))))
        });
    }
    group.finish();
}

fn bench_perforated_regions(c: &mut Criterion) {
    let mut group = c.benchmark_group("perforated_region_skip50");
    group.sample_size(20);
    for app in all_apps() {
        let x = app.gen_problem(0);
        if app.run_region_perforated(&x, 0.5).is_none() {
            continue;
        }
        group.bench_function(app.name(), |b| {
            b.iter(|| black_box(app.run_region_perforated(black_box(&x), 0.5)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_regions, bench_perforated_regions);
criterion_main!(benches);
