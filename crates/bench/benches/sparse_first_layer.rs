//! A3 ablation bench: the sparse first layer vs densify-then-multiply —
//! the online cost the paper's "TensorFlow embedding API" substitute
//! eliminates (§4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcnet_nn::{Activation, Dense, SparseDense};
use hpcnet_tensor::rng::{random_sparse_csr, seeded};
use hpcnet_tensor::Matrix;
use std::hint::black_box;

fn bench_first_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("first_layer_forward");
    for &(width, density) in &[(2352usize, 0.10f64), (4160, 0.05), (10100, 0.03)] {
        let mut rng = seeded(4, "bench-sfl");
        let dense_layer = Dense::new_random(width, 64, Activation::Tanh, &mut rng);
        let sparse_layer = SparseDense::from_dense(dense_layer.clone());
        let batch = random_sparse_csr(&mut rng, 8, width, density);

        group.bench_with_input(
            BenchmarkId::new("sparse_direct", width),
            &batch,
            |b, batch| b.iter(|| black_box(sparse_layer.forward_sparse(black_box(batch)).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("densify_then_dense", width),
            &batch,
            |b, batch| {
                b.iter(|| {
                    // The unrolling the paper's design avoids: transform the
                    // sparse format to dense, then multiply.
                    let dense: Matrix = batch.to_dense();
                    black_box(dense_layer.forward(black_box(&dense)).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_first_layer);
criterion_main!(benches);
