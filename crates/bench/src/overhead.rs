//! §7.3 overhead analysis: offline (trace/labeling, Bayesian optimization,
//! autoencoder training) and online (fetch / encode / load / infer) time.

use auto_hpcnet::evaluate::evaluate;
use hpcnet_apps::{BlackscholesApp, CannealApp, CgApp, HpcApp};
use hpcnet_runtime::{Client, Orchestrator, TensorStore};
use serde::{Deserialize, Serialize};

use crate::profile::{build_with_fallback, RunProfile};

/// Offline breakdown for one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineRow {
    /// Application.
    pub app: String,
    /// Labeling / trace-generation seconds.
    pub labeling_s: f64,
    /// Bayesian-optimization seconds (candidate training included).
    pub search_s: f64,
    /// Autoencoder-training seconds (inside the search).
    pub autoencoder_s: f64,
}

/// Online breakdown percentages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineRow {
    /// Application.
    pub app: String,
    /// `[fetch, encode, model-load, infer]` percentage split.
    pub percentages: [f64; 4],
}

/// Run the overhead study on three representative applications.
pub fn run(profile: RunProfile) -> (Vec<OfflineRow>, Vec<OnlineRow>) {
    let apps: Vec<Box<dyn HpcApp>> = vec![
        Box::new(CgApp::new(32)),
        Box::new(BlackscholesApp),
        Box::new(CannealApp::default()),
    ];
    let mut offline = Vec::new();
    let mut online = Vec::new();
    for app in apps {
        let app = app.as_ref();
        eprintln!("[overhead] {} ...", app.name());
        let (surrogate, mu) = match build_with_fallback(app, profile) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("[overhead] {}: failed: {e}", app.name());
                continue;
            }
        };
        offline.push(OfflineRow {
            app: app.name().to_string(),
            labeling_s: surrogate.offline.labeling_s,
            search_s: surrogate.offline.search_s,
            autoencoder_s: surrogate.offline.autoencoder_s,
        });

        // Drive the online path through the orchestrator so its timers see
        // fetch/encode/load/infer separately.
        let orc = Orchestrator::builder().store(TensorStore::new()).build();
        orc.register_model_from_json(app.name(), &surrogate.bundle.to_json())
            .expect("bundle deserializes");
        let client = Client::connect(&orc);
        // Enough inferences to amortize the one-time model load the way a
        // long-running simulation would.
        for i in 0..profile.n_eval().max(2_000) {
            let x = app.gen_problem((1 << 22) + i as u64);
            let key = format!("in:{i}");
            match app.sparse_row(&x) {
                Some(row) => client.put_sparse_tensor(&key, row),
                None => client.put_tensor(&key, &x),
            }
            .expect("store accepts the tensor");
            client
                .run_model(app.name(), &key, "out")
                .expect("inference runs");
        }
        online.push(OnlineRow {
            app: app.name().to_string(),
            percentages: orc.online_timers().percentages(),
        });
        // Keep the evaluation path exercised so numbers exist end to end.
        let _ = evaluate(app, &surrogate, 10, mu, false);
    }
    (offline, online)
}

/// Render both breakdowns.
pub fn render(offline: &[OfflineRow], online: &[OnlineRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "§7.3 — offline phase (paper: trace 24-59 min, BO 6-13 h, AE 1.4-2.2 h at DGX scale)\n",
    );
    out.push_str(&format!(
        "{:<14} {:>13} {:>13} {:>13}\n",
        "App", "labeling (s)", "BO (s)", "AE (s)"
    ));
    for r in offline {
        out.push_str(&format!(
            "{:<14} {:>13.2} {:>13.2} {:>13.2}\n",
            r.app, r.labeling_s, r.search_s, r.autoencoder_s
        ));
    }
    out.push_str(
        "\n§7.3 — online split (paper: fetch 21.2%, encode 10.1%, load 1.6%, infer 67.1%)\n",
    );
    out.push_str(&format!(
        "{:<14} {:>9} {:>9} {:>9} {:>9}\n",
        "App", "fetch", "encode", "load", "infer"
    ));
    for r in online {
        out.push_str(&format!(
            "{:<14} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%\n",
            r.app, r.percentages[0], r.percentages[1], r.percentages[2], r.percentages[3]
        ));
    }
    out
}
