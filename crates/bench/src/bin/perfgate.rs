//! `hpcnet-perfgate` — compare a fresh serving-bench run against the
//! committed `BENCH_serving.json` baseline and fail beyond a noise band.
//!
//! ```text
//! hpcnet-perfgate --fresh PATH [--baseline PATH] [--noise-band 0.25]
//! ```
//!
//! Exit status 0 when every comparison holds, 1 on any violation —
//! including a placeholder baseline (`"measured": false` kernel
//! section), which the gate refuses rather than trivially passing.

use hpcnet_bench::serving;

fn load(path: &str) -> serde_json::Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json").to_string();
    let mut fresh: Option<String> = None;
    let mut band = serving::DEFAULT_NOISE_BAND;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = args.next().expect("--baseline requires a path"),
            "--fresh" => fresh = Some(args.next().expect("--fresh requires a path")),
            "--noise-band" => {
                band = args
                    .next()
                    .expect("--noise-band requires a value")
                    .parse()
                    .expect("--noise-band must be a float in (0, 1)");
                assert!(
                    band > 0.0 && band < 1.0,
                    "--noise-band must be a float in (0, 1)"
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: hpcnet-perfgate --fresh PATH [--baseline PATH] [--noise-band 0.25]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(fresh) = fresh else {
        eprintln!("--fresh PATH is required (a report from hpcnet-serving-bench)");
        std::process::exit(2);
    };

    let report = serving::gate(&load(&baseline), &load(&fresh), band);
    for line in &report.checks {
        println!("{line}");
    }
    if report.passed() {
        println!(
            "perfgate: PASS ({} checks, noise band {band:.2})",
            report.checks.len()
        );
    } else {
        println!(
            "perfgate: FAIL ({} violations, noise band {band:.2})",
            report.violations.len()
        );
        std::process::exit(1);
    }
}
