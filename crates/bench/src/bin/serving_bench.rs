//! `hpcnet-serving-bench` — regenerate the schema-v2 `BENCH_serving.json`.
//!
//! ```text
//! hpcnet-serving-bench [--quick] [--out PATH] [--measured-at STR]
//! hpcnet-serving-bench --retrain [--quick]
//! ```
//!
//! `--quick` shrinks every sweep's rep counts for CI smoke runs.
//! `--measured-at` (or `HPCNET_MEASURED_AT`) stamps the report; the
//! harness never reads the clock itself, so an unstamped report carries
//! `"measured_at": null` instead of a fabricated time.
//! `--retrain` runs the online-retraining microbenchmarks instead and
//! prints them to stdout — informational only, never written into
//! `BENCH_serving.json` or compared by the perf gate.

use hpcnet_bench::{retrain, serving};

fn main() {
    let mut quick = false;
    let mut retrain_only = false;
    let mut out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json").to_string();
    let mut measured_at = std::env::var("HPCNET_MEASURED_AT").ok();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--retrain" => retrain_only = true,
            "--out" => out = args.next().expect("--out requires a path"),
            "--measured-at" => {
                measured_at = Some(args.next().expect("--measured-at requires a value"))
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: hpcnet-serving-bench [--quick] [--out PATH] [--measured-at STR]\n       hpcnet-serving-bench --retrain [--quick]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if retrain_only {
        eprintln!(
            "measuring online-retraining microbenchmarks ({} mode)",
            if quick { "quick" } else { "full" }
        );
        let report = retrain::run(quick);
        println!("{}", serde_json::to_string_pretty(&report).unwrap());
        return;
    }

    eprintln!(
        "measuring serving sweeps ({} mode) on {}",
        if quick { "quick" } else { "full" },
        serving::cpu_model()
    );
    let report = serving::full_report(quick, measured_at.as_deref());

    // Print the headline numbers so CI logs show them without the artifact.
    if let Some(entry) = report["kernel"]["sweep"]
        .as_array()
        .and_then(|s| s.iter().find(|e| e["batch"].as_u64() == Some(64)))
    {
        eprintln!(
            "kernel batch 64: seed {:.0} rows/s, fast f64 {:.0} ({:.2}x), fast f32 {:.0} ({:.2}x)",
            entry["seed_scalar_f64_rows_per_s"].as_f64().unwrap_or(0.0),
            entry["fast_f64_rows_per_s"].as_f64().unwrap_or(0.0),
            entry["fast_f64_speedup"].as_f64().unwrap_or(0.0),
            entry["fast_f32_rows_per_s"].as_f64().unwrap_or(0.0),
            entry["fast_f32_speedup"].as_f64().unwrap_or(0.0),
        );
        let f32x = entry["fast_f32_speedup"].as_f64().unwrap_or(0.0);
        if f32x < 2.0 {
            eprintln!("warning: fast f32 speedup {f32x:.2}x is below the 2x acceptance bar");
        }
    }

    match std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()) {
        Ok(()) => eprintln!("serving sweep recorded to {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            std::process::exit(1);
        }
    }
}
