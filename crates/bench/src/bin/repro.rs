//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p hpcnet-bench --release --bin repro -- <experiment> [--full]
//!
//! experiments:
//!   fig5         speedup + HitRate for the 11 applications
//!   table3       AMG counter study
//!   fig6         comparison vs ACCEPT / perforation / Autokeras
//!   bo-vs-grid   §7.2 search-efficiency comparison
//!   overhead     §7.3 offline/online breakdowns
//!   ablation-2d  hierarchical vs flat joint BO
//!   ablation-cnn MLP vs CNN surrogate family on MG
//!   all          everything above, in order
//! ```

use hpcnet_bench::{ablation, ablation_cnn, efficiency, fig5, fig6, overhead, table3, RunProfile};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let profile = RunProfile::from_flag(full);
    let experiment = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let run_fig5 = || {
        let rows = fig5::run(profile);
        println!("{}", fig5::render(&rows));
    };
    let run_table3 = || {
        let rows = table3::run(profile);
        println!("{}", table3::render(&rows));
    };
    let run_fig6 = || {
        let rows = fig6::run(profile);
        println!("{}", fig6::render(&rows));
    };
    let run_eff = || {
        let rows = efficiency::run(profile);
        println!("{}", efficiency::render(&rows));
    };
    let run_overhead = || {
        let (off, on) = overhead::run(profile);
        println!("{}", overhead::render(&off, &on));
    };
    let run_ablation = || {
        let arms = ablation::run(profile);
        println!("{}", ablation::render(&arms));
    };
    let run_ablation_cnn = || {
        let arms = ablation_cnn::run(profile);
        println!("{}", ablation_cnn::render(&arms));
    };

    match experiment {
        "fig5" => run_fig5(),
        "table3" => run_table3(),
        "fig6" => run_fig6(),
        "bo-vs-grid" => run_eff(),
        "overhead" => run_overhead(),
        "ablation-2d" => run_ablation(),
        "ablation-cnn" => run_ablation_cnn(),
        "all" => {
            run_fig5();
            run_table3();
            run_fig6();
            run_eff();
            run_overhead();
            run_ablation();
            run_ablation_cnn();
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!("expected: fig5 | table3 | fig6 | bo-vs-grid | overhead | ablation-2d | ablation-cnn | all");
            std::process::exit(2);
        }
    }
}
