//! Fig. 5: speedup and prediction HitRate for the 11 applications.

use auto_hpcnet::evaluate::{evaluate, Evaluation};
use auto_hpcnet::pipeline::OfflineTimes;
use hpcnet_apps::all_apps;
use hpcnet_tensor::stats;
use serde::{Deserialize, Serialize};

use crate::profile::{build_with_fallback, RunProfile};

/// One row of the Fig. 5 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Application name.
    pub app: String,
    /// Application type label.
    pub app_type: String,
    /// Measured CPU speedup (Eqn 2, data-load included).
    pub speedup: f64,
    /// Modeled GPU speedup (device model, labeled).
    pub gpu_speedup_modeled: f64,
    /// Prediction HitRate at μ = 10 % (Eqn 3).
    pub hit_rate: f64,
    /// Chosen reduced feature count.
    pub k: usize,
    /// Raw input width (for the reduction ratio).
    pub input_dim: usize,
    /// Offline timing (labeling / autoencoder / search seconds).
    pub offline: (f64, f64, f64),
}

/// Run the Fig. 5 experiment; returns the rows plus the evaluations.
pub fn run(profile: RunProfile) -> Vec<(Fig5Row, Evaluation)> {
    let mut rows = Vec::new();
    for app in all_apps() {
        eprintln!("[fig5] building surrogate for {} ...", app.name());
        let (surrogate, strict_mu) = match build_with_fallback(app.as_ref(), profile) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("[fig5] {}: pipeline failed: {e}", app.name());
                continue;
            }
        };
        let eval = match evaluate(app.as_ref(), &surrogate, profile.n_eval(), strict_mu, false) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("[fig5] {}: evaluation failed: {e}", app.name());
                continue;
            }
        };
        let OfflineTimes {
            labeling_s,
            autoencoder_s,
            search_s,
        } = surrogate.offline;
        rows.push((
            Fig5Row {
                app: app.name().to_string(),
                app_type: app.app_type().to_string(),
                speedup: eval.speedup,
                gpu_speedup_modeled: eval.gpu_speedup_modeled,
                hit_rate: eval.hit_rate,
                k: surrogate.k,
                input_dim: app.input_dim(),
                offline: (labeling_s, autoencoder_s, search_s),
            },
            eval,
        ));
    }
    rows
}

/// Render the figure as a text table, paper values alongside.
pub fn render(rows: &[(Fig5Row, Evaluation)]) -> String {
    let paper: &[(&str, f64, f64)] = &[
        ("CG", 4.2, 1.00),
        ("FFT", 3.5, 1.00),
        ("MG", 4.0, 0.93),
        ("Blackscholes", 16.8, 1.00),
        ("Canneal", 3.8, 0.93),
        ("fluidanimate", 10.1, 1.00),
        ("streamcluster", 3.2, 0.98),
        ("x264", 4.5, 1.00),
        ("miniQMC", 1.89, 1.00),
        ("AMG", 8.6, 0.94),
        ("Laghos", 2.5, 1.00),
    ];
    let mut out = String::new();
    out.push_str("Fig. 5 — Speedup and prediction HitRate (mu = 10%)\n");
    out.push_str(&format!(
        "{:<14} {:<9} {:>9} {:>13} {:>9} {:>11} {:>9} {:>9}\n",
        "App", "Type", "Speedup", "GPU(modeled)", "HitRate", "K/D", "paperSp", "paperHR"
    ));
    let mut speedups = Vec::new();
    for (row, _) in rows {
        let (psp, phr) = paper
            .iter()
            .find(|(n, ..)| *n == row.app)
            .map(|&(_, s, h)| (s, h))
            .unwrap_or((f64::NAN, f64::NAN));
        out.push_str(&format!(
            "{:<14} {:<9} {:>8.2}x {:>12.2}x {:>8.1}% {:>6}/{:<6} {:>8.2}x {:>8.0}%\n",
            row.app,
            row.app_type,
            row.speedup,
            row.gpu_speedup_modeled,
            100.0 * row.hit_rate,
            row.k,
            row.input_dim,
            psp,
            100.0 * phr,
        ));
        speedups.push(row.speedup.max(1e-6));
    }
    if !speedups.is_empty() {
        out.push_str(&format!(
            "harmonic-mean speedup: {:.2}x (paper: 5.50x across its platform)\n",
            stats::harmonic_mean(&speedups)
        ));
    }
    out
}
