//! Deterministic serving-path benchmark harness and perf gate.
//!
//! Produces the schema-v2 `BENCH_serving.json` at the repo root and
//! implements the comparison rules `hpcnet-perfgate` enforces in CI.
//! Three measurement families, each tagged with its own `measured` flag
//! so a report can honestly mix locally-measured and CI-filled sections:
//!
//! * **kernel** — single-threaded rows/s through two chained 64×64
//!   matmuls, comparing the seed's scalar zero-skip kernel against the
//!   unrolled fast kernels (f64 and f32) from `hpcnet_tensor::kernels`.
//!   Calls the row kernels directly so the numbers isolate the inner
//!   loops from rayon's row blocking.
//! * **serving** — in-process `run_model` vs `run_model_batch` RPS
//!   through a full [`Orchestrator`], once per precision (f64, and f32
//!   via [`OrchestratorBuilder::serve_f32`]).
//! * **net_loopback** — the same model served over TCP on 127.0.0.1
//!   through [`hpcnet_net::NetServer`] / [`hpcnet_net::RemoteClient`],
//!   measured by the same [`client_sweep_point`] helper as the
//!   in-process sweep (the harness is generic over
//!   [`hpcnet_runtime::ClientApi`], so it drives the cluster client
//!   unchanged too). Batches are pipelined over one connection.
//!
//! Cross-machine honesty: the gate never compares absolute RPS between
//! a fresh run and the committed baseline (different CPUs). It compares
//! *ratios* (fast/seed, batched/per-sample) within a noise band, plus
//! machine-free invariants the fresh run must satisfy on its own.

use hpcnet_nn::{Mlp, Topology};
use hpcnet_runtime::{Client, ClientApi, ModelBundle, Orchestrator, TensorStore};
use hpcnet_tensor::kernels;
use hpcnet_tensor::rng::{seeded, uniform_vec};
use serde_json::{json, Value};
use std::time::Instant;

/// Batch sizes every sweep measures.
pub const SWEEP: [usize; 4] = [1, 8, 64, 512];

/// Current `BENCH_serving.json` schema version. v1 reports predate the
/// per-section `measured` flags and are rejected by the gate.
pub const SCHEMA_VERSION: u64 = 2;

/// Default relative noise band for gate comparisons.
pub const DEFAULT_NOISE_BAND: f64 = 0.25;

/// Serial fast matmul mirroring `Matrix::matmul`'s per-row dispatch:
/// one density probe over the whole left operand, then either the
/// unrolled branchless row kernel or the zero-skip row kernel.
pub fn fast_matmul<T: kernels::Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut out = vec![T::ZERO; m * n];
    if m == 0 || k == 0 || n == 0 {
        return out;
    }
    let sparse = kernels::is_sparse(a);
    for (out_row, a_row) in out.chunks_mut(n).zip(a.chunks(k)) {
        if sparse {
            kernels::gemm_row_zskip(a_row, b, n, out_row);
        } else {
            kernels::gemm_row(a_row, b, n, out_row);
        }
    }
    out
}

fn kernel_reps(batch: usize, quick: bool) -> usize {
    let base = if quick { 4096 } else { 32768 };
    (base / batch).max(4)
}

/// Measure the kernel section: rows/s through two chained `batch×64 ·
/// 64×64` matmuls for the seed scalar kernel, the fast f64 kernels, and
/// the fast f32 kernels. Single-threaded by construction (direct row
/// kernel calls, no rayon), so the committed numbers and a CI re-run
/// exercise byte-identical inner loops.
pub fn kernel_sweep(quick: bool) -> Value {
    let mut rng = seeded(41, "bench-kernel");
    let dim = 64usize;
    let b1 = uniform_vec(&mut rng, dim * dim, -1.0, 1.0);
    let b2 = uniform_vec(&mut rng, dim * dim, -1.0, 1.0);
    let b1_32: Vec<f32> = b1.iter().map(|&v| v as f32).collect();
    let b2_32: Vec<f32> = b2.iter().map(|&v| v as f32).collect();
    let mut sweep = Vec::new();
    for &batch in &SWEEP {
        let a = uniform_vec(&mut rng, batch * dim, -1.0, 1.0);
        let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let reps = kernel_reps(batch, quick);
        let time = |f: &dyn Fn() -> f64| {
            // One warmup rep, then `reps` timed reps; the returned
            // checksum keeps the optimizer from deleting the work.
            let mut sink = f();
            let t = Instant::now();
            for _ in 0..reps {
                sink += f();
            }
            let secs = t.elapsed().as_secs_f64();
            assert!(sink.is_finite());
            (reps * batch) as f64 / secs
        };
        let seed_rows = time(&|| {
            let h = kernels::seed_scalar_matmul(&a, &b1, batch, dim, dim);
            let y = kernels::seed_scalar_matmul(&h, &b2, batch, dim, dim);
            y[0]
        });
        let fast64_rows = time(&|| {
            let h = fast_matmul(&a, &b1, batch, dim, dim);
            let y = fast_matmul(&h, &b2, batch, dim, dim);
            y[0]
        });
        let fast32_rows = time(&|| {
            let h = fast_matmul(&a32, &b1_32, batch, dim, dim);
            let y = fast_matmul(&h, &b2_32, batch, dim, dim);
            f64::from(y[0])
        });
        sweep.push(json!({
            "batch": batch,
            "reps": reps,
            "seed_scalar_f64_rows_per_s": seed_rows,
            "fast_f64_rows_per_s": fast64_rows,
            "fast_f32_rows_per_s": fast32_rows,
            "fast_f64_speedup": fast64_rows / seed_rows,
            "fast_f32_speedup": fast32_rows / seed_rows,
        }));
    }
    json!({
        "measured": true,
        "threads": 1,
        "workload": "two chained 64x64 matmuls, dense uniform(-1,1) inputs",
        "sweep": sweep,
    })
}

/// Launch an orchestrator serving one 64×64×64 MLP and return it with a
/// connected in-process client and pre-staged `(in_key, out_key)` pairs
/// for every sweep size.
pub fn serving_fixture(
    sizes: &[usize],
    serve_f32: bool,
) -> (Orchestrator, Client, Vec<Vec<(String, String)>>) {
    let mut rng = seeded(9, "bench-serving");
    let mlp = Mlp::new(&Topology::mlp(vec![64, 64, 64]), &mut rng).unwrap();
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(2)
        .telemetry(true)
        .serve_f32(serve_f32)
        .build();
    orc.register_model(
        "serve",
        ModelBundle {
            surrogate: mlp.into(),
            autoencoder: None,
            scaler: None,
            output_scaler: None,
        },
    );
    let client = Client::connect(&orc);
    let keysets = sizes
        .iter()
        .map(|&batch| {
            (0..batch)
                .map(|i| {
                    let in_key = format!("b{batch}i{i}");
                    client
                        .put_tensor(&in_key, &uniform_vec(&mut rng, 64, -1.0, 1.0))
                        .unwrap();
                    (in_key, format!("b{batch}o{i}"))
                })
                .collect()
        })
        .collect();
    (orc, client, keysets)
}

fn serving_reps(batch: usize, quick: bool) -> usize {
    if quick {
        (256 / batch).max(2)
    } else {
        (2048 / batch).max(4)
    }
}

/// Time one sweep point through any [`ClientApi`] transport: `reps`
/// passes of per-sample `run_model` and of `run_model_batch` over the
/// same pre-staged pairs, with client-observed latency percentiles.
///
/// The harness is generic over the trait, so the same measurement code
/// drives the in-process `Client`, the TCP `RemoteClient` (whose batch
/// override pipelines frames), and `hpcnet-cluster`'s `ClusterClient`
/// (whose batch override scatter/gathers across shards).
pub fn client_sweep_point(
    client: &dyn ClientApi,
    model: &str,
    pairs: &[(&str, &str)],
    reps: usize,
) -> Value {
    use hpcnet_telemetry::Histogram;
    // Warm both paths before timing.
    for (in_key, out_key) in pairs {
        client.run_model(model, in_key, out_key).unwrap();
    }
    client.run_model_batch(model, pairs).unwrap();
    let per_sample_hist = Histogram::default();
    let t0 = Instant::now();
    for _ in 0..reps {
        for (in_key, out_key) in pairs {
            let t = Instant::now();
            client.run_model(model, in_key, out_key).unwrap();
            per_sample_hist.record_duration(t.elapsed());
        }
    }
    let per_sample_s = t0.elapsed().as_secs_f64();
    let batched_hist = Histogram::default();
    let t1 = Instant::now();
    for _ in 0..reps {
        let t = Instant::now();
        client.run_model_batch(model, pairs).unwrap();
        batched_hist.record_duration(t.elapsed());
    }
    let batched_s = t1.elapsed().as_secs_f64();
    let served = (reps * pairs.len()) as f64;
    let ps = per_sample_hist.snapshot();
    let bt = batched_hist.snapshot();
    json!({
        "batch": pairs.len(),
        "requests": reps * pairs.len(),
        "per_sample_rps": served / per_sample_s,
        "batched_rps": served / batched_s,
        "speedup": per_sample_s / batched_s,
        "per_sample_p50_us": ps.p50 as f64 / 1e3,
        "per_sample_p99_us": ps.p99 as f64 / 1e3,
        "batched_call_p50_us": bt.p50 as f64 / 1e3,
        "batched_call_p99_us": bt.p99 as f64 / 1e3,
    })
}

/// Measure the in-process serving section at one precision: per-sample
/// `run_model` vs `run_model_batch` RPS and client-observed latency
/// percentiles per sweep point.
pub fn serving_sweep(quick: bool, serve_f32: bool) -> Value {
    let (orc, client, keysets) = serving_fixture(&SWEEP, serve_f32);
    let mut sweep = Vec::new();
    for (batch, keys) in SWEEP.iter().zip(&keysets) {
        let pairs: Vec<(&str, &str)> = keys.iter().map(|(i, o)| (i.as_str(), o.as_str())).collect();
        let reps = serving_reps(*batch, quick);
        sweep.push(client_sweep_point(&client, "serve", &pairs, reps));
    }
    let stats = orc.serving_stats();
    json!({
        "measured": true,
        "precision": if serve_f32 { "f32" } else { "f64" },
        "workers": orc.worker_count(),
        "mean_batch_size_seen_by_server": stats.mean_batch_size(),
        "f32_served": stats.f32_served,
        "f32_fallbacks": stats.f32_fallbacks,
        "sweep": sweep,
    })
}

fn net_reps(batch: usize, quick: bool) -> usize {
    if quick {
        (128 / batch).max(2)
    } else {
        (1024 / batch).max(4)
    }
}

/// Measure the net-loopback section: the same 64×64×64 model served
/// over TCP on 127.0.0.1, driven through [`hpcnet_net::RemoteClient`]
/// via the same generic [`client_sweep_point`] as the in-process sweep.
/// Per-sample round-trips go through the pooled connection; batches go
/// through `RemoteClient`'s pipelined `run_model_batch` override, so the
/// section's `speedup` column is the pipelining win over the wire.
pub fn net_loopback_sweep(quick: bool) -> Value {
    use hpcnet_net::{NetServer, RemoteClient};
    let mut rng = seeded(9, "bench-serving");
    let mlp = Mlp::new(&Topology::mlp(vec![64, 64, 64]), &mut rng).unwrap();
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(2)
        .telemetry(true)
        .build();
    orc.register_model(
        "serve",
        ModelBundle {
            surrogate: mlp.into(),
            autoencoder: None,
            scaler: None,
            output_scaler: None,
        },
    );
    let server = match NetServer::builder(orc).serve("127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            // Sandboxes without loopback sockets still get a report;
            // the section is just left unmeasured and the gate skips it.
            return json!({ "measured": false, "note": format!("loopback bind failed: {e}") });
        }
    };
    let addr = server.local_addr().to_string();
    let client = match RemoteClient::builder(&addr).pool(2).connect() {
        Ok(c) => c,
        Err(e) => {
            server.shutdown();
            return json!({ "measured": false, "note": format!("loopback connect failed: {e}") });
        }
    };
    let mut sweep = Vec::new();
    for &batch in &SWEEP {
        let keys: Vec<(String, String)> = (0..batch)
            .map(|i| {
                let in_key = format!("n{batch}i{i}");
                client
                    .put_tensor(&in_key, &uniform_vec(&mut rng, 64, -1.0, 1.0))
                    .unwrap();
                (in_key, format!("n{batch}o{i}"))
            })
            .collect();
        let pairs: Vec<(&str, &str)> = keys.iter().map(|(i, o)| (i.as_str(), o.as_str())).collect();
        let reps = net_reps(batch, quick);
        sweep.push(client_sweep_point(&client, "serve", &pairs, reps));
    }
    drop(client);
    server.shutdown();
    json!({
        "measured": true,
        "transport": "tcp loopback; batches pipelined over one connection",
        "sweep": sweep,
    })
}

/// CPU model string from `/proc/cpuinfo`, or `"unknown"`.
pub fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

/// Short git revision: `$GITHUB_SHA` when set (CI), else
/// `git rev-parse --short HEAD`, else `"unknown"`.
pub fn git_rev() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        let sha = sha.trim().to_string();
        if !sha.is_empty() {
            return sha.chars().take(12).collect();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Assemble the schema-v2 report from the four section values.
///
/// `measured_at` is passed in by the caller (CLI flag or
/// `HPCNET_MEASURED_AT`) rather than read from the ambient clock here,
/// so re-assembling a report from cached sections never silently
/// re-stamps it; `null` means "timestamp not supplied".
pub fn assemble_report(
    quick: bool,
    measured_at: Option<&str>,
    kernel: Value,
    serving_f64: Value,
    serving_f32: Value,
    net_loopback: Value,
) -> Value {
    let all_measured = [&kernel, &serving_f64, &serving_f32, &net_loopback]
        .iter()
        .all(|s| s["measured"].as_bool() == Some(true));
    json!({
        "bench": "serving_batch_sweep",
        "schema_version": SCHEMA_VERSION,
        "measured": all_measured,
        "measured_at": measured_at,
        "git_rev": git_rev(),
        "cpu_model": cpu_model(),
        "quick": quick,
        "model": "mlp 64x64x64",
        "regenerate": "cargo run -p hpcnet-bench --release --bin hpcnet-serving-bench -- --measured-at \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\"",
        "kernel": kernel,
        "serving": { "f64": serving_f64, "f32": serving_f32 },
        "net_loopback": net_loopback,
    })
}

/// Run every sweep and assemble the full report.
pub fn full_report(quick: bool, measured_at: Option<&str>) -> Value {
    let kernel = kernel_sweep(quick);
    let f64s = serving_sweep(quick, false);
    let f32s = serving_sweep(quick, true);
    let net = net_loopback_sweep(quick);
    assemble_report(quick, measured_at, kernel, f64s, f32s, net)
}

/// Outcome of a [`gate`] run: every comparison that was evaluated (or
/// explicitly skipped) and the subset that failed.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Human-readable line per comparison performed or skipped.
    pub checks: Vec<String>,
    /// Comparisons that failed; non-empty means the gate fails.
    pub violations: Vec<String>,
}

impl GateReport {
    fn check(&mut self, msg: impl Into<String>) {
        self.checks.push(msg.into());
    }
    fn violate(&mut self, msg: impl Into<String>) {
        let msg = msg.into();
        self.checks.push(format!("FAIL: {msg}"));
        self.violations.push(msg);
    }
    /// `true` when no comparison failed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn section_measured(sec: &Value) -> bool {
    sec["measured"].as_bool() == Some(true)
}

/// Look up the sweep entry for `batch` in `sec["sweep"]`.
fn sweep_entry(sec: &Value, batch: u64) -> Option<&Value> {
    sec["sweep"]
        .as_array()?
        .iter()
        .find(|e| e["batch"].as_u64() == Some(batch))
}

fn num(entry: &Value, field: &str) -> Option<f64> {
    entry[field].as_f64().filter(|v| v.is_finite() && *v > 0.0)
}

/// Compare a fresh report against the committed baseline.
///
/// Rules (`band` is the relative noise band, e.g. 0.25):
///
/// 1. The baseline must be schema v2 with a **measured** kernel section
///    — a placeholder baseline (`"measured": false`) is refused outright
///    so the gate can never green-light against fabricated numbers.
/// 2. Fresh-run internal invariants (machine-free): fast f64 at least
///    matches the seed scalar kernel at every batch size (within band),
///    and fast f32 at batch 64 holds the 2× acceptance bar (within band
///    on the fresh run, strictly on the baseline).
/// 3. Ratio regressions: the fresh fast/seed speedup must be within
///    band of the baseline's speedup at every batch size — ratios, not
///    absolute RPS, so the gate is portable across machines.
/// 4. Serving sections: fresh batched ≥ per-sample at batch 64 (within
///    band) and the batched/per-sample speedup within band of baseline.
///    Sections unmeasured on either side are skipped with a note.
pub fn gate(baseline: &Value, fresh: &Value, band: f64) -> GateReport {
    let mut report = GateReport::default();
    let keep = 1.0 - band;

    // Rule 1: refuse placeholder baselines.
    match baseline["schema_version"].as_u64() {
        Some(SCHEMA_VERSION) => report.check(format!("baseline schema v{SCHEMA_VERSION}")),
        v => {
            report.violate(format!(
                "baseline schema_version {v:?} != {SCHEMA_VERSION}; regenerate BENCH_serving.json"
            ));
            return report;
        }
    }
    if !section_measured(&baseline["kernel"]) {
        report.violate("baseline kernel section is a placeholder (measured != true); refusing to gate against it");
        return report;
    }
    if !section_measured(&fresh["kernel"]) {
        report.violate("fresh kernel section is unmeasured; rerun hpcnet-serving-bench");
        return report;
    }

    // Rules 2+3: kernel invariants and ratio regressions.
    for &batch in &SWEEP {
        let batch = batch as u64;
        let (Some(fe), Some(be)) = (
            sweep_entry(&fresh["kernel"], batch),
            sweep_entry(&baseline["kernel"], batch),
        ) else {
            report.violate(format!("kernel sweep missing batch {batch}"));
            continue;
        };
        let (Some(seed), Some(f64r), Some(f32r)) = (
            num(fe, "seed_scalar_f64_rows_per_s"),
            num(fe, "fast_f64_rows_per_s"),
            num(fe, "fast_f32_rows_per_s"),
        ) else {
            report.violate(format!(
                "kernel batch {batch}: missing or non-positive rates"
            ));
            continue;
        };
        if f64r >= seed * keep {
            report.check(format!(
                "kernel batch {batch}: fast f64 {:.2}x seed (floor {:.2})",
                f64r / seed,
                keep
            ));
        } else {
            report.violate(format!(
                "kernel batch {batch}: fast f64 {:.2}x seed, below {:.2} floor",
                f64r / seed,
                keep
            ));
        }
        if batch == 64 {
            if f32r >= 2.0 * seed * keep {
                report.check(format!(
                    "kernel batch 64: fast f32 {:.2}x seed (fresh floor {:.2})",
                    f32r / seed,
                    2.0 * keep
                ));
            } else {
                report.violate(format!(
                    "kernel batch 64: fast f32 {:.2}x seed, below fresh floor {:.2}",
                    f32r / seed,
                    2.0 * keep
                ));
            }
            match (
                num(be, "seed_scalar_f64_rows_per_s"),
                num(be, "fast_f32_rows_per_s"),
            ) {
                (Some(bs), Some(bf)) if bf >= 2.0 * bs => {
                    report.check(format!(
                        "baseline batch 64: fast f32 {:.2}x seed (>= 2x)",
                        bf / bs
                    ));
                }
                (Some(bs), Some(bf)) => report.violate(format!(
                    "baseline batch 64: fast f32 only {:.2}x seed; acceptance requires >= 2x",
                    bf / bs
                )),
                _ => report.violate("baseline batch 64: missing kernel rates".to_string()),
            }
        }
        // Ratio regression fresh vs baseline.
        for (field, fresh_rate) in [("fast_f64_rows_per_s", f64r), ("fast_f32_rows_per_s", f32r)] {
            let (Some(bs), Some(br)) = (num(be, "seed_scalar_f64_rows_per_s"), num(be, field))
            else {
                report.violate(format!("kernel batch {batch}: baseline missing {field}"));
                continue;
            };
            let fresh_ratio = fresh_rate / seed;
            let base_ratio = br / bs;
            if fresh_ratio >= base_ratio * keep {
                report.check(format!(
                    "kernel batch {batch} {field}: speedup {fresh_ratio:.2} vs baseline {base_ratio:.2}"
                ));
            } else {
                report.violate(format!(
                    "kernel batch {batch} {field}: speedup regressed to {fresh_ratio:.2} from baseline {base_ratio:.2} (band {band:.2})"
                ));
            }
        }
    }

    // Rule 4: serving sections, per precision.
    for precision in ["f64", "f32"] {
        let fs = &fresh["serving"][precision];
        let bs = &baseline["serving"][precision];
        if !section_measured(fs) || !section_measured(bs) {
            report.check(format!(
                "serving {precision}: skipped (fresh measured={}, baseline measured={})",
                section_measured(fs),
                section_measured(bs)
            ));
            continue;
        }
        let (Some(fe), Some(be)) = (sweep_entry(fs, 64), sweep_entry(bs, 64)) else {
            report.violate(format!("serving {precision}: sweep missing batch 64"));
            continue;
        };
        let (Some(fps), Some(fbr)) = (num(fe, "per_sample_rps"), num(fe, "batched_rps")) else {
            report.violate(format!("serving {precision} batch 64: missing rates"));
            continue;
        };
        if fbr >= fps * keep {
            report.check(format!(
                "serving {precision} batch 64: batched {:.2}x per-sample",
                fbr / fps
            ));
        } else {
            report.violate(format!(
                "serving {precision} batch 64: batched only {:.2}x per-sample (floor {keep:.2})",
                fbr / fps
            ));
        }
        match (num(be, "per_sample_rps"), num(be, "batched_rps")) {
            (Some(bps), Some(bbr)) => {
                let fresh_ratio = fbr / fps;
                let base_ratio = bbr / bps;
                if fresh_ratio >= base_ratio * keep {
                    report.check(format!(
                        "serving {precision} batch 64: speedup {fresh_ratio:.2} vs baseline {base_ratio:.2}"
                    ));
                } else {
                    report.violate(format!(
                        "serving {precision} batch 64: speedup regressed to {fresh_ratio:.2} from baseline {base_ratio:.2}"
                    ));
                }
            }
            _ => report.violate(format!(
                "serving {precision} batch 64: baseline missing rates"
            )),
        }
    }

    // Net loopback: informational; skip unless both sides measured.
    let (fnet, bnet) = (&fresh["net_loopback"], &baseline["net_loopback"]);
    if section_measured(fnet) && section_measured(bnet) {
        match (
            sweep_entry(fnet, 64).and_then(|e| num(e, "per_sample_rps")),
            sweep_entry(bnet, 64).and_then(|e| num(e, "per_sample_rps")),
        ) {
            (Some(f), Some(b)) => report.check(format!(
                "net_loopback batch 64: fresh {f:.0} rps, baseline {b:.0} rps (informational)"
            )),
            _ => report.check("net_loopback: batch 64 entry missing; skipped".to_string()),
        }
    } else {
        report.check(format!(
            "net_loopback: skipped (fresh measured={}, baseline measured={})",
            section_measured(fnet),
            section_measured(bnet)
        ));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal measured schema-v2 report with the given kernel rates
    /// at every sweep point (seed, fast_f64, fast_f32).
    fn kernel_report(seed: f64, f64r: f64, f32r: f64) -> Value {
        let sweep: Vec<Value> = SWEEP
            .iter()
            .map(|&b| {
                json!({
                    "batch": b,
                    "seed_scalar_f64_rows_per_s": seed,
                    "fast_f64_rows_per_s": f64r,
                    "fast_f32_rows_per_s": f32r,
                })
            })
            .collect();
        json!({
            "schema_version": SCHEMA_VERSION,
            "kernel": { "measured": true, "sweep": sweep },
            "serving": { "f64": { "measured": false }, "f32": { "measured": false } },
            "net_loopback": { "measured": false },
        })
    }

    #[test]
    fn fast_matmul_matches_seed_scalar_bitwise() {
        let mut rng = seeded(7, "gate-test");
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 5, 4), (17, 64, 9)] {
            let a = uniform_vec(&mut rng, m * k, -1.0, 1.0);
            let b = uniform_vec(&mut rng, k * n, -1.0, 1.0);
            assert_eq!(
                fast_matmul(&a, &b, m, k, n),
                kernels::seed_scalar_matmul(&a, &b, m, k, n)
            );
        }
    }

    #[test]
    fn fast_matmul_empty_shapes() {
        assert!(fast_matmul::<f64>(&[], &[], 0, 0, 5).is_empty());
        assert_eq!(fast_matmul::<f64>(&[], &[], 3, 0, 0), vec![]);
    }

    #[test]
    fn gate_refuses_placeholder_baseline() {
        let mut baseline = kernel_report(1e6, 2e6, 3e6);
        baseline["kernel"]["measured"] = json!(false);
        let fresh = kernel_report(1e6, 2e6, 3e6);
        let r = gate(&baseline, &fresh, DEFAULT_NOISE_BAND);
        assert!(!r.passed());
        assert!(r.violations[0].contains("placeholder"));
    }

    #[test]
    fn gate_refuses_v1_schema() {
        let mut baseline = kernel_report(1e6, 2e6, 3e6);
        baseline["schema_version"] = json!(1);
        let r = gate(&baseline, &kernel_report(1e6, 2e6, 3e6), DEFAULT_NOISE_BAND);
        assert!(!r.passed());
        assert!(r.violations[0].contains("schema_version"));
    }

    #[test]
    fn gate_passes_matching_measured_reports() {
        let baseline = kernel_report(1e6, 1.5e6, 3e6);
        let fresh = kernel_report(9e5, 1.4e6, 2.8e6);
        let r = gate(&baseline, &fresh, DEFAULT_NOISE_BAND);
        assert!(r.passed(), "violations: {:?}", r.violations);
        // Unmeasured serving/net sections are skipped, not failed.
        assert!(r.checks.iter().any(|c| c.contains("serving f64: skipped")));
        assert!(r.checks.iter().any(|c| c.contains("net_loopback: skipped")));
    }

    #[test]
    fn gate_catches_speedup_regression() {
        // Baseline says fast f64 is 2x seed; fresh run only reaches
        // 1.2x — outside the 25% band on the ratio.
        let baseline = kernel_report(1e6, 2e6, 3e6);
        let fresh = kernel_report(1e6, 1.2e6, 3e6);
        let r = gate(&baseline, &fresh, DEFAULT_NOISE_BAND);
        assert!(!r.passed());
        assert!(r.violations.iter().any(|v| v.contains("regressed")));
    }

    #[test]
    fn gate_enforces_f32_two_x_bar() {
        // Baseline f32 below 2x seed must fail regardless of band.
        let baseline = kernel_report(1e6, 1.5e6, 1.9e6);
        let fresh = kernel_report(1e6, 1.5e6, 1.9e6);
        let r = gate(&baseline, &fresh, DEFAULT_NOISE_BAND);
        assert!(!r.passed());
        assert!(r
            .violations
            .iter()
            .any(|v| v.contains("acceptance requires >= 2x")));
    }

    #[test]
    fn assemble_report_carries_sections_and_flags() {
        let kernel = json!({ "measured": true, "sweep": [] });
        let report = assemble_report(
            true,
            Some("2026-08-08T00:00:00Z"),
            kernel,
            json!({ "measured": false }),
            json!({ "measured": false }),
            json!({ "measured": false }),
        );
        assert_eq!(report["schema_version"], json!(SCHEMA_VERSION));
        assert_eq!(
            report["measured"],
            json!(false),
            "mixed sections are not fully measured"
        );
        assert_eq!(report["measured_at"], json!("2026-08-08T00:00:00Z"));
        assert_eq!(report["quick"], json!(true));
        assert!(report["cpu_model"].is_string());
    }
}
