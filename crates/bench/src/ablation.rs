//! A1 ablation: hierarchical (2D) Bayesian optimization vs a flat joint
//! `[K, θ]` optimization at the same evaluation budget — the design claim
//! of paper §5.2 that mixing the two parameter types "loses the parameter
//! semantics" and yields sub-optimal selections.

use hpcnet_apps::StreamclusterApp;
use hpcnet_nas::baselines::flat_joint_bo;
use hpcnet_nas::TwoDNas;
use serde::{Deserialize, Serialize};

use crate::profile::{config_for, RunProfile};

/// Outcome of one arm of the ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationArm {
    /// Arm label.
    pub method: String,
    /// Best feasible quality degradation found (∞ if none).
    pub f_e: f64,
    /// Cost (inference FLOPs) of the selected candidate.
    pub f_c: f64,
    /// Candidates evaluated.
    pub evaluations: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Run both arms on the streamcluster task with equal budgets.
pub fn run(profile: RunProfile) -> Vec<AblationArm> {
    let app = StreamclusterApp::default();
    let cfg = config_for(&app, profile);
    let dataset = auto_hpcnet::dataset::build_dataset(&app, cfg.n_train).expect("dataset");
    let quality_loss = 0.25;
    let budget = match profile {
        RunProfile::Quick => 8,
        RunProfile::Full => 16,
    };

    eprintln!("[ablation] hierarchical 2D NAS ...");
    let task = auto_hpcnet::dataset::build_task(&app, &dataset, cfg.n_quality, 1 << 20);
    let mut search = cfg.search.clone();
    search.quality_loss = quality_loss;
    // Split the budget: outer x inner ≈ total evaluations.
    search.outer_budget = 2;
    search.inner_budget = budget / 2;
    search.bayesian_init = 2;
    let hier = match TwoDNas::new(search, cfg.model.clone()).search(&task) {
        Ok(o) => AblationArm {
            method: "hierarchical (Algorithm 2)".into(),
            f_e: o.f_e,
            f_c: o.f_c,
            evaluations: o.history.len(),
            seconds: o.search_seconds,
        },
        Err(_) => AblationArm {
            method: "hierarchical (Algorithm 2)".into(),
            f_e: f64::INFINITY,
            f_c: f64::INFINITY,
            evaluations: 0,
            seconds: 0.0,
        },
    };

    eprintln!("[ablation] flat joint BO ...");
    let task = auto_hpcnet::dataset::build_task(&app, &dataset, cfg.n_quality, 1 << 20);
    let flat = match flat_joint_bo(
        &task,
        budget,
        cfg.search.k_bounds,
        quality_loss,
        &cfg.model,
        cfg.seed,
    ) {
        Ok(o) => AblationArm {
            method: "flat joint [K, θ] BO".into(),
            f_e: o.f_e,
            f_c: o.f_c,
            evaluations: o.history.len(),
            seconds: o.search_seconds,
        },
        Err(_) => AblationArm {
            method: "flat joint [K, θ] BO".into(),
            f_e: f64::INFINITY,
            f_c: f64::INFINITY,
            evaluations: 0,
            seconds: 0.0,
        },
    };

    vec![hier, flat]
}

/// Render the ablation table.
pub fn render(arms: &[AblationArm]) -> String {
    let mut out = String::new();
    out.push_str("A1 ablation — hierarchical vs flat joint Bayesian optimization\n");
    out.push_str(&format!(
        "{:<28} {:>10} {:>14} {:>8} {:>10}\n",
        "Method", "f_e", "f_c (FLOPs)", "evals", "secs"
    ));
    for a in arms {
        out.push_str(&format!(
            "{:<28} {:>10.4} {:>14.0} {:>8} {:>10.2}\n",
            a.method, a.f_e, a.f_c, a.evaluations, a.seconds
        ));
    }
    out
}
