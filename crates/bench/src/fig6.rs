//! Fig. 6: application speedup under Auto-HPCnet vs the prior approaches
//! (ACCEPT, loop perforation, Autokeras), all constrained to the same
//! 10 % quality requirement where the method supports one.

use auto_hpcnet::evaluate::evaluate_predictor;
use hpcnet_approx::{accept_like, tune_skip_rate};
use hpcnet_apps::{all_apps, AppType};
use hpcnet_nas::baselines::autokeras_like;
use serde::{Deserialize, Serialize};

use crate::profile::{build_with_fallback, config_for, RunProfile};

/// One application's comparison row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Application name.
    pub app: String,
    /// Auto-HPCnet speedup (measured CPU).
    pub auto_hpcnet: f64,
    /// Auto-HPCnet hit rate.
    pub auto_hpcnet_hr: f64,
    /// ACCEPT speedup (`None` outside Type-II, as in the paper).
    pub accept: Option<f64>,
    /// Loop-perforation speedup.
    pub perforation: f64,
    /// Autokeras-like speedup (dense-input NAS).
    pub autokeras: f64,
    /// Autokeras hit rate (collapses on sparse high-dim inputs).
    pub autokeras_hr: f64,
}

/// Run the comparison for every application.
pub fn run(profile: RunProfile) -> Vec<Fig6Row> {
    let n_eval = profile.n_eval();
    let mu = 0.10;
    let mut rows = Vec::new();

    for app in all_apps() {
        eprintln!("[fig6] {} ...", app.name());
        let app = app.as_ref();

        // --- Auto-HPCnet ---
        let (ah_speedup, ah_hr) = match build_with_fallback(app, profile) {
            Ok((surrogate, _)) => {
                let eval = evaluate_predictor(
                    app,
                    |x| match app.sparse_row(x) {
                        Some(row) => surrogate.predict_sparse(&row),
                        None => surrogate.predict(x),
                    },
                    n_eval,
                    mu,
                );
                (eval.speedup, eval.hit_rate)
            }
            Err(e) => {
                eprintln!("[fig6] {}: Auto-HPCnet failed: {e}", app.name());
                (0.0, 0.0)
            }
        };

        // --- shared training data for the NN baselines ---
        let cfg = config_for(app, profile);
        let dataset =
            auto_hpcnet::dataset::build_dataset(app, cfg.n_train).expect("dataset builds");

        // --- ACCEPT (Type-II only, user-fixed topology) ---
        let accept = if app.app_type() == AppType::TypeII {
            accept_like(
                &dataset.inputs,
                &dataset.outputs,
                &[32, 32],
                cfg.model.train.clone(),
            )
            .ok()
            .map(|model| evaluate_predictor(app, |x| model.predict(x), n_eval, mu).speedup)
        } else {
            None
        };

        // --- loop perforation (HPAC-tuned skip rate) ---
        let tuned = tune_skip_rate(app, mu, 6, 5_000);
        let perforation = evaluate_predictor(
            app,
            |x| {
                if tuned.skip == 0.0 {
                    // No perforation possible/beneficial: run the original.
                    Some(app.run_region_exact(x))
                } else {
                    app.run_region_perforated(x, tuned.skip).map(|(y, _)| y)
                }
            },
            n_eval,
            mu,
        )
        .speedup;

        // --- Autokeras-like (dense input, accuracy-only NAS) ---
        let task = auto_hpcnet::dataset::build_task(app, &dataset, cfg.n_quality, 1 << 20);
        let mut ak_model_cfg = cfg.model.clone();
        ak_model_cfg.train.epochs = ak_model_cfg.train.epochs.min(60);
        let (autokeras, autokeras_hr) = match autokeras_like(&task, 4, &ak_model_cfg, cfg.seed) {
            Ok(outcome) => {
                let scaler = outcome.scaler.clone();
                let output_scaler = outcome.output_scaler.clone();
                let mlp = outcome.surrogate.clone();
                let eval = evaluate_predictor(
                    app,
                    |x| {
                        // Dense-only handling: sparse inputs are used in
                        // their unrolled form (the gradient-overflow /
                        // giant-first-layer failure mode of §7.2).
                        let mut f = x.to_vec();
                        scaler.transform_vec(&mut f);
                        let mut out = mlp.predict(&f).ok()?;
                        output_scaler.inverse_transform_vec(&mut out);
                        Some(out)
                    },
                    n_eval,
                    mu,
                );
                (eval.speedup, eval.hit_rate)
            }
            Err(e) => {
                eprintln!("[fig6] {}: autokeras baseline failed: {e}", app.name());
                (0.0, 0.0)
            }
        };

        rows.push(Fig6Row {
            app: app.name().to_string(),
            auto_hpcnet: ah_speedup,
            auto_hpcnet_hr: ah_hr,
            accept,
            perforation,
            autokeras,
            autokeras_hr,
        });
    }
    rows
}

/// Render the comparison table.
pub fn render(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 6 — speedup comparison at the 10% quality requirement\n");
    out.push_str(&format!(
        "{:<14} {:>12} {:>9} {:>13} {:>11} {:>8} {:>8}\n",
        "App", "Auto-HPCnet", "ACCEPT", "Perforation", "Autokeras", "AH-HR", "AK-HR"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>11.2}x {:>9} {:>12.2}x {:>10.2}x {:>7.0}% {:>7.0}%\n",
            r.app,
            r.auto_hpcnet,
            r.accept.map_or("n/a".to_string(), |s| format!("{s:.2}x")),
            r.perforation,
            r.autokeras,
            100.0 * r.auto_hpcnet_hr,
            100.0 * r.autokeras_hr,
        ));
    }
    let wins = rows
        .iter()
        .filter(|r| {
            r.auto_hpcnet >= r.perforation
                && r.auto_hpcnet >= r.autokeras
                && r.accept.is_none_or(|a| r.auto_hpcnet >= a)
        })
        .count();
    out.push_str(&format!(
        "Auto-HPCnet best or tied on {wins}/{} applications (paper: consistently best on all)\n",
        rows.len()
    ));
    out
}
