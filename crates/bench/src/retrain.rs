//! Online-retraining microbenchmarks (DESIGN.md §17): what the
//! self-healing loop costs the serving path.
//!
//! Three numbers, all measured wall clock:
//!
//! * **replay throughput** — raw `ReplayBuffer` push and drain rates,
//!   the per-fallback bookkeeping the worker threads pay;
//! * **capture overhead** — guarded fallback RPS through a full
//!   [`Orchestrator`] with online retraining off vs on, isolating what
//!   sample capture adds to a request that already runs the fallback;
//! * **retrain pass** — wall clock of one `retrain_now()` fine-tune +
//!   hot-swap on a buffer of captured samples.
//!
//! Informational only: these numbers are printed (`hpcnet-serving-bench
//! --retrain`) but deliberately kept out of `BENCH_serving.json` and the
//! perf gate — fine-tune wall clock scales with epoch count, which is a
//! policy knob, not a kernel property.

use std::time::{Duration, Instant};

use hpcnet_nn::{Mlp, SurrogateNet, Topology};
use hpcnet_online::{ReplayBuffer, RetrainConfig};
use hpcnet_runtime::{ModelBundle, Orchestrator, QualityGuard, TensorStore};
use serde::Serialize;

/// One run of the retrain microbenchmarks.
#[derive(Debug, Clone, Serialize)]
pub struct RetrainBenchReport {
    /// Raw replay-buffer pushes per second (single producer).
    pub replay_pushes_per_s: f64,
    /// Raw replay-buffer drains per second at the bench batch size.
    pub replay_drains_per_s: f64,
    /// Guarded fallback requests per second, retraining off.
    pub fallback_rps_capture_off: f64,
    /// Guarded fallback requests per second, retraining on (capture).
    pub fallback_rps_capture_on: f64,
    /// Wall clock of one `retrain_now()` fine-tune + hot-swap.
    pub retrain_pass_seconds: f64,
    /// Model version after the measured pass (2 = the swap landed).
    pub version_after_pass: u64,
}

const MODEL: &str = "retrain-bench";
const DIM: usize = 8;

fn bundle() -> ModelBundle {
    let mut rng = hpcnet_tensor::rng::seeded(17, "retrain-bench");
    let mlp = Mlp::new(&Topology::mlp(vec![DIM, 16, 1]), &mut rng).expect("topology");
    ModelBundle {
        surrogate: SurrogateNet::from(mlp),
        autoencoder: None,
        scaler: None,
        output_scaler: None,
    }
}

fn probe(i: u64) -> Vec<f64> {
    (0..DIM)
        .map(|d| ((i * 31 + d as u64) as f64 * 0.13).sin())
        .collect()
}

/// Always-reject guard: every request exercises the fallback (and, with
/// retraining on, the capture path).
fn rejecting_guard() -> QualityGuard {
    QualityGuard::new(|_, _| false).with_fallback(|x| vec![x.iter().sum()])
}

fn replay_rates(samples: usize) -> (f64, f64) {
    let buffer = ReplayBuffer::new(samples);
    let rows: Vec<Vec<f64>> = (0..samples as u64).map(probe).collect();
    let start = Instant::now();
    for row in &rows {
        buffer.push(MODEL, row, &[1.0]);
    }
    let push_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let drained = buffer.drain(MODEL);
    let drain_s = start.elapsed().as_secs_f64();
    (
        samples as f64 / push_s.max(1e-9),
        drained.len() as f64 / drain_s.max(1e-9),
    )
}

fn fallback_rps(requests: u64, online: bool) -> f64 {
    let mut builder = Orchestrator::builder().store(TensorStore::new()).workers(2);
    if online {
        builder = builder.online_retraining(RetrainConfig {
            capacity: requests as usize + 1,
            // Never trigger during the measurement window: this measures
            // capture, not training.
            min_samples: usize::MAX,
            tick: Duration::from_secs(3600),
            ..RetrainConfig::default()
        });
    }
    let orc = builder.build();
    orc.register_guarded_model(MODEL, bundle(), rejecting_guard());
    let client = orc.client();
    let start = Instant::now();
    for i in 0..requests {
        let key = format!("rb/in{i}");
        client.put_tensor(&key, &probe(i)).expect("put");
        client.run_model(MODEL, &key, "rb/out").expect("run");
    }
    let took = start.elapsed().as_secs_f64();
    orc.shutdown();
    requests as f64 / took.max(1e-9)
}

fn retrain_pass(samples: u64, epochs: usize) -> (f64, u64) {
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(2)
        .online_retraining(RetrainConfig {
            min_samples: samples as usize,
            min_interval: Duration::ZERO,
            epochs,
            tick: Duration::from_secs(3600),
            ..RetrainConfig::default()
        })
        .build();
    orc.register_guarded_model(MODEL, bundle(), rejecting_guard());
    let client = orc.client();
    for i in 0..samples {
        let key = format!("rp/in{i}");
        client.put_tensor(&key, &probe(i)).expect("put");
        client.run_model(MODEL, &key, "rp/out").expect("run");
    }
    let start = Instant::now();
    orc.retrain_now();
    let took = start.elapsed().as_secs_f64();
    let version = orc.model_versions()[MODEL];
    orc.shutdown();
    (took, version)
}

/// Run the retrain microbenchmarks. `quick` shrinks the rep counts for
/// CI smoke runs.
pub fn run(quick: bool) -> RetrainBenchReport {
    let (replay_samples, requests, pass_samples, epochs) = if quick {
        (4_096, 256, 64, 20)
    } else {
        (65_536, 2_048, 256, 50)
    };
    let (replay_pushes_per_s, replay_drains_per_s) = replay_rates(replay_samples);
    let fallback_rps_capture_off = fallback_rps(requests, false);
    let fallback_rps_capture_on = fallback_rps(requests, true);
    let (retrain_pass_seconds, version_after_pass) = retrain_pass(pass_samples, epochs);
    RetrainBenchReport {
        replay_pushes_per_s,
        replay_drains_per_s,
        fallback_rps_capture_off,
        fallback_rps_capture_on,
        retrain_pass_seconds,
        version_after_pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_is_sane() {
        let report = run(true);
        assert!(report.replay_pushes_per_s > 0.0);
        assert!(report.replay_drains_per_s > 0.0);
        assert!(report.fallback_rps_capture_off > 0.0);
        assert!(report.fallback_rps_capture_on > 0.0);
        assert!(report.retrain_pass_seconds > 0.0);
        assert_eq!(report.version_after_pass, 2, "the measured pass must swap");
    }
}
