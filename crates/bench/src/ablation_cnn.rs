//! Extension ablation: MLP vs CNN surrogate family (`-initModel`) on a
//! field-structured region — MG's Poisson solve, whose input and output
//! are grids, the case Table 1's CNN option exists for.

use auto_hpcnet::evaluate::evaluate_predictor;
use auto_hpcnet::pipeline::AutoHpcnet;
use hpcnet_apps::{HpcApp, MgApp};
use hpcnet_nas::ModelFamily;
use serde::{Deserialize, Serialize};

use crate::profile::{config_for, RunProfile};

/// One family's result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyArm {
    /// "mlp" or "cnn".
    pub family: String,
    /// Search-time quality degradation of the selected model.
    pub f_e: f64,
    /// Inference FLOPs of the selected model.
    pub f_c: f64,
    /// Measured evaluation hit rate at μ = 10 %.
    pub hit_rate: f64,
    /// Measured CPU speedup.
    pub speedup: f64,
    /// Trainable parameters.
    pub params: usize,
}

/// Run both families on MG with the same budgets.
pub fn run(profile: RunProfile) -> Vec<FamilyArm> {
    let app = MgApp::default();
    let mut arms = Vec::new();
    for family in [ModelFamily::Mlp, ModelFamily::Cnn] {
        eprintln!("[ablation-cnn] {} {:?} ...", app.name(), family);
        let mut cfg = config_for(&app, profile);
        cfg.model.family = family;
        if family == ModelFamily::Cnn {
            // CNN training is costlier per epoch; keep the budget sane.
            cfg.model.train.epochs = cfg.model.train.epochs.min(120);
            cfg.mu = 0.10;
        }
        match AutoHpcnet::new(cfg).build_surrogate(&app) {
            Ok(surrogate) => {
                let eval =
                    evaluate_predictor(&app, |x| surrogate.predict(x), profile.n_eval(), 0.10);
                arms.push(FamilyArm {
                    family: surrogate.bundle.surrogate.family().to_string(),
                    f_e: surrogate.f_e,
                    f_c: surrogate.f_c,
                    hit_rate: eval.hit_rate,
                    speedup: eval.speedup,
                    params: surrogate.bundle.surrogate.param_count(),
                });
            }
            Err(e) => {
                eprintln!("[ablation-cnn] {family:?} failed: {e}");
                arms.push(FamilyArm {
                    family: format!("{family:?}").to_lowercase(),
                    f_e: f64::INFINITY,
                    f_c: f64::INFINITY,
                    hit_rate: 0.0,
                    speedup: 0.0,
                    params: 0,
                });
            }
        }
    }
    arms
}

/// Render the comparison.
pub fn render(arms: &[FamilyArm]) -> String {
    let mut out = String::new();
    out.push_str("Extension ablation — surrogate family (-initModel) on MG\n");
    out.push_str(&format!(
        "{:<8} {:>10} {:>14} {:>9} {:>10} {:>10}\n",
        "Family", "f_e", "f_c (FLOPs)", "HitRate", "Speedup", "params"
    ));
    for a in arms {
        out.push_str(&format!(
            "{:<8} {:>10.4} {:>14.0} {:>8.1}% {:>9.2}x {:>10}\n",
            a.family,
            a.f_e,
            a.f_c,
            100.0 * a.hit_rate,
            a.speedup,
            a.params
        ));
    }
    out
}
