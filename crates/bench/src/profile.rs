//! Run profiles and per-application pipeline tuning.

use auto_hpcnet::config::PipelineConfig;
use auto_hpcnet::pipeline::{AutoHpcnet, DeployedSurrogate};
use hpcnet_apps::HpcApp;

/// How much budget a harness run gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunProfile {
    /// Minutes-scale smoke run (default).
    Quick,
    /// The fuller laptop-scale evaluation.
    Full,
}

impl RunProfile {
    /// Parse from a CLI flag.
    pub fn from_flag(full: bool) -> Self {
        if full {
            RunProfile::Full
        } else {
            RunProfile::Quick
        }
    }

    /// Evaluation problems per application (the paper used 2 000).
    pub fn n_eval(&self) -> usize {
        match self {
            RunProfile::Quick => 40,
            RunProfile::Full => 200,
        }
    }

    /// Base pipeline configuration.
    pub fn pipeline(&self) -> PipelineConfig {
        match self {
            RunProfile::Quick => PipelineConfig::quick(),
            RunProfile::Full => PipelineConfig::full(),
        }
    }
}

/// Pipeline configuration tuned per application: sparse apps get a wider
/// K range and slightly smaller budgets (their autoencoders are the
/// expensive part).
pub fn config_for(app: &dyn HpcApp, profile: RunProfile) -> PipelineConfig {
    let mut cfg = profile.pipeline();
    let d = app.input_dim();
    cfg.search.k_bounds = if app.is_sparse() {
        (8, 48.min(d))
    } else {
        (4, 64.min(d))
    };
    if app.is_sparse() && profile == RunProfile::Quick {
        cfg.model.ae_epochs = cfg.model.ae_epochs.min(30);
    }
    cfg
}

/// Build a surrogate, relaxing the internal quality bound when the strict
/// μ-constrained search finds no feasible candidate — the evaluation still
/// scores at the strict μ, so a relaxed build shows up as HitRate < 100 %
/// exactly like the paper's MG/Canneal/streamcluster/AMG rows.
pub fn build_with_fallback(
    app: &dyn HpcApp,
    profile: RunProfile,
) -> Result<(DeployedSurrogate, f64), auto_hpcnet::PipelineError> {
    let cfg = config_for(app, profile);
    let strict_mu = cfg.mu;
    match AutoHpcnet::new(cfg.clone()).build_surrogate(app) {
        Ok(s) => Ok((s, strict_mu)),
        Err(auto_hpcnet::PipelineError::Nas(hpcnet_nas::NasError::NoFeasibleCandidate)) => {
            let mut relaxed = cfg;
            relaxed.mu = (strict_mu * 3.0).min(0.5);
            let s = AutoHpcnet::new(relaxed).build_surrogate(app)?;
            Ok((s, strict_mu))
        }
        Err(e) => Err(e),
    }
}
