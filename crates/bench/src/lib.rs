//! The benchmark harness regenerating every table and figure of the
//! Auto-HPCnet paper's evaluation (§7).
//!
//! | Module | Regenerates |
//! |---|---|
//! | [`fig5`] | Fig. 5 — speedup and prediction HitRate for 11 apps |
//! | [`table3`] | Table 3 — AMG counter study (FLOPs, L2 miss, BW, time) |
//! | [`fig6`] | Fig. 6 — Auto-HPCnet vs ACCEPT / perforation / Autokeras |
//! | [`efficiency`] | §7.2 — BO vs grid search steps per time unit |
//! | [`overhead`] | §7.3 — offline and online time breakdowns |
//! | [`ablation`] | A1 — hierarchical vs flat joint BO |
//! | [`ablation_cnn`] | extension — MLP vs CNN surrogate family |
//!
//! Every CPU number printed is measured wall clock; every GPU number is a
//! device-model output and is labeled `(modeled)`.

pub mod ablation;
pub mod ablation_cnn;
pub mod efficiency;
pub mod fig5;
pub mod fig6;
pub mod overhead;
pub mod profile;
pub mod retrain;
pub mod serving;
pub mod table3;

pub use profile::RunProfile;
