//! §7.2 "Effectiveness of Bayesian Optimization": search steps per time
//! unit to reach the same model quality, Bayesian optimization vs grid
//! search, grouped by application type.

use std::time::Instant;

use hpcnet_apps::{AppType, BlackscholesApp, CgApp, HpcApp, MiniQmcApp};
use hpcnet_nas::baselines::grid_nas;
use hpcnet_nas::{SearchConfig, SearchType, TwoDNas};
use serde::{Deserialize, Serialize};

use crate::profile::{config_for, RunProfile};

/// Search-efficiency measurement for one application type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EfficiencyRow {
    /// Application type.
    pub app_type: String,
    /// Representative application.
    pub app: String,
    /// Quality level both searches must reach.
    pub target_quality: f64,
    /// Productive BO steps per hour (extrapolated from measured seconds).
    pub bo_steps_per_hour: f64,
    /// Productive grid steps per hour.
    pub grid_steps_per_hour: f64,
    /// Steps BO needed to reach the target (0 = never reached).
    pub bo_steps_to_target: usize,
    /// Steps grid search needed.
    pub grid_steps_to_target: usize,
}

/// Steps until the running best `f_e` reaches `target`; `(steps, secs)`.
fn steps_to_target(history: &[hpcnet_nas::StepRecord], target: f64) -> (usize, f64) {
    let mut best = f64::INFINITY;
    let mut secs = 0.0;
    for (i, s) in history.iter().enumerate() {
        secs += s.elapsed_s;
        if s.f_e < best {
            best = s.f_e;
        }
        if best <= target {
            return (i + 1, secs);
        }
    }
    (0, secs)
}

/// Run the comparison on a representative app per type.
pub fn run(profile: RunProfile) -> Vec<EfficiencyRow> {
    let reps: Vec<(AppType, Box<dyn HpcApp>)> = vec![
        (AppType::TypeI, Box::new(CgApp::new(24))),
        (AppType::TypeII, Box::new(BlackscholesApp)),
        (AppType::TypeIII, Box::new(MiniQmcApp::default())),
    ];
    let budget = match profile {
        RunProfile::Quick => 8,
        RunProfile::Full => 16,
    };

    let mut rows = Vec::new();
    for (ty, app) in reps {
        eprintln!("[bo-vs-grid] {} ...", app.name());
        let app = app.as_ref();
        let cfg = config_for(app, profile);
        let dataset = auto_hpcnet::dataset::build_dataset(app, cfg.n_train).expect("dataset");
        let make_task = || auto_hpcnet::dataset::build_task(app, &dataset, cfg.n_quality, 1 << 20);

        // BO over θ (FullInput single-level search isolates BO-vs-grid).
        let task = make_task();
        let search = SearchConfig {
            search_type: SearchType::FullInput,
            inner_budget: budget,
            bayesian_init: 2,
            quality_loss: 10.0, // record everything; target applied post-hoc
            ..cfg.search.clone()
        };
        let t0 = Instant::now();
        let bo_history = match TwoDNas::new(search, cfg.model.clone()).search(&task) {
            Ok(o) => o.history,
            Err(hpcnet_nas::NasError::NoFeasibleCandidate) => Vec::new(),
            Err(e) => {
                eprintln!("[bo-vs-grid] {}: BO failed: {e}", app.name());
                Vec::new()
            }
        };
        let bo_total_secs = t0.elapsed().as_secs_f64();

        // Grid search over θ with the same budget.
        let task = make_task();
        let t1 = Instant::now();
        let grid_history = grid_nas(&task, 2, budget, &cfg.model, cfg.seed).unwrap_or_default();
        let grid_total_secs = t1.elapsed().as_secs_f64();

        // Quality target: the Bayesian search's final best — §7.2 counts
        // "search steps per time unit to reach the same model quality".
        // Grid search often cannot match it within the budget at all
        // (reported as `miss`), which is the paper's efficiency story.
        let best_of =
            |h: &[hpcnet_nas::StepRecord]| h.iter().map(|s| s.f_e).fold(f64::INFINITY, f64::min);
        let target = best_of(&bo_history) * (1.0 + 1e-9);
        let (bo_steps, bo_secs) = steps_to_target(&bo_history, target);
        let (grid_steps, grid_secs) = steps_to_target(&grid_history, target);

        // Steps/hour: productive steps divided by the time they took
        // (falling back to the whole run when the target was never hit).
        let rate = |steps: usize, secs: f64, total: f64| -> f64 {
            if steps > 0 && secs > 0.0 {
                steps as f64 / secs * 3600.0
            } else if total > 0.0 {
                0.0
            } else {
                0.0
            }
        };
        rows.push(EfficiencyRow {
            app_type: ty.to_string(),
            app: app.name().to_string(),
            target_quality: target,
            bo_steps_per_hour: rate(bo_steps, bo_secs, bo_total_secs),
            grid_steps_per_hour: rate(grid_steps, grid_secs, grid_total_secs),
            bo_steps_to_target: bo_steps,
            grid_steps_to_target: grid_steps,
        });
    }
    rows
}

/// Render the §7.2 comparison.
pub fn render(rows: &[EfficiencyRow]) -> String {
    let mut out = String::new();
    out.push_str("§7.2 — search efficiency: steps to reach equal model quality\n");
    out.push_str("(paper: BO 3.3/6.5/2.1 vs grid 1.6/3.2/1.9 steps/hour for Types I/II/III)\n");
    out.push_str(&format!(
        "{:<10} {:<14} {:>14} {:>15} {:>12} {:>13}\n",
        "Type", "App", "BO steps", "grid steps", "BO st/h", "grid st/h"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<14} {:>14} {:>15} {:>12.1} {:>13.1}\n",
            r.app_type,
            r.app,
            if r.bo_steps_to_target > 0 {
                r.bo_steps_to_target.to_string()
            } else {
                "miss".into()
            },
            if r.grid_steps_to_target > 0 {
                r.grid_steps_to_target.to_string()
            } else {
                "miss".into()
            },
            r.bo_steps_per_hour,
            r.grid_steps_per_hour,
        ));
    }
    out
}
