//! Table 3: the AMG counter study — CPU-only vs original-on-GPU vs
//! Auto-HPCnet-on-GPU (FLOPs, L2 miss rate, memory bandwidth, wall clock).

use std::time::Instant;

use hpcnet_apps::{AmgApp, HpcApp};
use hpcnet_runtime::{CacheSim, DeviceProfile, PerfReport};

use crate::profile::{build_with_fallback, RunProfile};

/// Number of problems timed for the wall-clock rows.
const TIMED_PROBLEMS: usize = 20;
/// Memory-trace length fed to the cache simulator.
const TRACE_LEN: usize = 200_000;

/// Run the counter study; returns the three report rows.
pub fn run(profile: RunProfile) -> Vec<PerfReport> {
    let app = AmgApp::default();
    let x = app.gen_problem(0);

    // --- exact solver characterization ---
    let (_, solver_flops) = app.run_region_counted(&x);
    let t0 = Instant::now();
    for i in 0..TIMED_PROBLEMS {
        let xi = app.gen_problem(i as u64);
        let _ = app.run_region_exact(&xi);
    }
    let solver_wall = t0.elapsed().as_secs_f64() / TIMED_PROBLEMS as f64;

    // Solver memory behaviour: CSR gather stream through an L2-scale cache.
    let trace = app.mem_trace(&x, TRACE_LEN).expect("AMG provides a trace");
    let mut solver_cache = CacheSim::l2_default();
    solver_cache.run(&trace);
    // Bytes moved per solve ≈ 8 bytes per traced access scaled to the
    // solve's full access count (flops-proportional).
    let solver_bytes = solver_flops * 6; // SpMV: ~6 bytes traffic per FLOP

    // --- surrogate characterization ---
    eprintln!("[table3] building the AMG surrogate ...");
    let (surrogate, _) = build_with_fallback(&app, profile).expect("AMG surrogate");
    let sur_flops = surrogate.f_c as u64;
    let t1 = Instant::now();
    for i in 0..TIMED_PROBLEMS {
        let xi = app.gen_problem(1_000 + i as u64);
        let row = app.sparse_row(&xi).expect("AMG inputs are sparse");
        let _ = surrogate.predict_sparse(&row);
    }
    let sur_wall = t1.elapsed().as_secs_f64() / TIMED_PROBLEMS as f64;
    // NN inference streams weight matrices sequentially: synthesize that
    // access pattern for the same cache.
    let mut sur_cache = CacheSim::l2_default();
    let param_bytes = (surrogate.bundle.surrogate.param_count() * 8) as u64;
    for pass in 0..3u64 {
        let mut a = 0x5000_0000u64;
        while a < 0x5000_0000 + param_bytes {
            sur_cache.access(a + pass % 2); // sequential re-walk
            a += 8;
        }
    }
    let sur_bytes = param_bytes * 2 + (app.input_dim() as u64) * 8;

    // --- assemble the three configurations ---
    let _cpu = DeviceProfile::xeon_40core();
    let gpu = DeviceProfile::v100();

    let cpu_row = PerfReport {
        label: "CPU-only".into(),
        flops: solver_flops,
        l2_miss_rate: solver_cache.miss_rate(),
        mem_bandwidth_mbs: solver_bytes as f64 / solver_wall / 1e6,
        wall_seconds: solver_wall,
        modeled: false,
    };

    // Original (irregular sparse solver) ported to the GPU: modeled, with
    // the same FLOPs but GPU-class bandwidth and poor irregular efficiency
    // — the AMGX comparison row.
    let gpu_orig_time = gpu.estimate(
        solver_flops,
        solver_bytes,
        (app.input_dim() * 8) as u64,
        false,
    );
    let gpu_orig_row = PerfReport {
        label: "Original code on GPU".into(),
        // The paper measured ~2.4x the CPU FLOPs on GPU (setup + padding
        // overheads of AMGX); we report the algorithmic count.
        flops: solver_flops,
        l2_miss_rate: solver_cache.miss_rate() * 0.7, // larger GPU L2
        mem_bandwidth_mbs: solver_bytes as f64 / gpu_orig_time.total() / 1e6,
        wall_seconds: gpu_orig_time.total(),
        modeled: true,
    };

    let gpu_sur_time = gpu.estimate(sur_flops, sur_bytes, (app.input_dim() * 8) as u64, true);
    let gpu_sur_row = PerfReport {
        label: "Auto-HPCnet on GPU".into(),
        flops: sur_flops,
        l2_miss_rate: sur_cache.miss_rate(),
        mem_bandwidth_mbs: sur_bytes as f64 / gpu_sur_time.total().max(1e-9) / 1e6,
        wall_seconds: gpu_sur_time.total(),
        modeled: true,
    };

    // Also record the *measured* CPU surrogate row for honesty.
    let cpu_sur_row = PerfReport {
        label: "Auto-HPCnet on CPU".into(),
        flops: sur_flops,
        l2_miss_rate: sur_cache.miss_rate(),
        mem_bandwidth_mbs: sur_bytes as f64 / sur_wall.max(1e-9) / 1e6,
        wall_seconds: sur_wall,
        modeled: false,
    };

    vec![cpu_row, gpu_orig_row, gpu_sur_row, cpu_sur_row]
}

/// Render as the paper's table, with its measured values quoted.
pub fn render(rows: &[PerfReport]) -> String {
    let mut out = String::new();
    out.push_str("Table 3 — AMG counter study (paper: CPU 30.66G/37.47%/3523MBs/2.47s; ");
    out.push_str(
        "GPU-orig 72.82G/26.31%/7519MBs/2.11s; AutoHPCnet-GPU 21.97G/17.81%/6736MBs/0.51s)\n",
    );
    out.push_str(&format!(
        "{:<24} {:>13} {:>11} {:>12} {:>13}\n",
        "Configuration", "FLOPs", "L2 miss", "BW (MB/s)", "Wall (s)"
    ));
    for r in rows {
        out.push_str(&r.row());
        out.push('\n');
    }
    // The shape claims.
    if rows.len() >= 3 {
        let flop_cut = 1.0 - rows[2].flops as f64 / rows[0].flops as f64;
        let miss_cut = 1.0 - rows[2].l2_miss_rate / rows[0].l2_miss_rate.max(1e-12);
        out.push_str(&format!(
            "surrogate cuts FLOPs by {:.1}% (paper 69.83%) and L2 misses by {:.1}% (paper 52.47%)\n",
            100.0 * flop_cut,
            100.0 * miss_cut
        ));
    }
    out
}
