//! Property-based tests for the wire protocol: arbitrary tensors (dense
//! and sparse, including NaN/Inf bit patterns) survive encode → frame →
//! decode bit-exactly, invalid keys are rejected at decode, and no
//! single-byte corruption of a valid frame ever passes validation.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use hpcnet_net::protocol::{
    decode_request, read_frame, write_frame, FrameOutcome, Request, WireError,
};
use hpcnet_telemetry::{SpanId, TraceContext, TraceId};
use hpcnet_tensor::{Coo, Csr};
use proptest::prelude::*;
use std::io::Cursor;

/// Any f64 bit pattern: normals, subnormals, ±0, ±Inf, and every NaN.
fn f64_bits() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn key_strategy() -> impl Strategy<Value = String> {
    "[a-z0-9_./-]{1,48}"
}

/// A valid CSR with distinct coordinates (sorted by construction).
fn sparse_strategy() -> impl Strategy<Value = Csr> {
    (1usize..6, 1usize..9).prop_flat_map(|(nrows, ncols)| {
        prop::collection::btree_map((0..nrows, 0..ncols), f64_bits(), 0..16).prop_map(
            move |entries| {
                let mut coo = Coo::new(nrows, ncols);
                for ((row, col), v) in entries {
                    coo.push(row, col, v);
                }
                coo.to_csr()
            },
        )
    })
}

fn roundtrip(req: &Request, seq: u32) -> Request {
    let mut wire = Vec::new();
    write_frame(&mut wire, req.opcode(), seq, &req.encode()).unwrap();
    match read_frame(&mut Cursor::new(&wire)).unwrap() {
        FrameOutcome::Frame(raw) => {
            assert_eq!(raw.seq, seq);
            decode_request(&raw).unwrap()
        }
        FrameOutcome::Corrupt { reason, .. } => panic!("pristine frame rejected: {reason}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dense tensors of arbitrary bit patterns round-trip bit-exactly.
    #[test]
    fn dense_put_roundtrips_bitwise(
        key in key_strategy(),
        values in prop::collection::vec(f64_bits(), 0..64),
        seq in any::<u32>(),
    ) {
        let req = Request::PutTensor { key: key.clone(), values: values.clone() };
        let Request::PutTensor { key: k2, values: v2 } = roundtrip(&req, seq) else {
            panic!("wrong variant");
        };
        prop_assert_eq!(k2, key);
        prop_assert_eq!(v2.len(), values.len());
        for (a, b) in values.iter().zip(&v2) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Sparse tensors round-trip with identical structure and bit-exact
    /// values.
    #[test]
    fn sparse_put_roundtrips_bitwise(
        key in key_strategy(),
        csr in sparse_strategy(),
        seq in any::<u32>(),
    ) {
        let req = Request::PutSparse { key, tensor: csr.clone() };
        let Request::PutSparse { tensor: back, .. } = roundtrip(&req, seq) else {
            panic!("wrong variant");
        };
        prop_assert_eq!(back.nrows(), csr.nrows());
        prop_assert_eq!(back.ncols(), csr.ncols());
        prop_assert_eq!(back.indptr(), csr.indptr());
        prop_assert_eq!(back.indices(), csr.indices());
        prop_assert_eq!(back.values().len(), csr.values().len());
        for (a, b) in csr.values().iter().zip(back.values()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// RunModel requests round-trip every field, including the deadline.
    #[test]
    fn run_model_roundtrips(
        model in "[A-Za-z0-9-]{1,24}",
        in_key in key_strategy(),
        out_key in key_strategy(),
        deadline_micros in any::<u64>(),
        seq in any::<u32>(),
    ) {
        let req = Request::RunModel { model, in_key, out_key, deadline_micros, trace: None };
        prop_assert_eq!(roundtrip(&req, seq), req);
    }

    /// Traced RunModel requests round-trip their trace context exactly,
    /// for any non-zero trace id and any parent-span value.
    #[test]
    fn traced_run_model_roundtrips(
        model in "[A-Za-z0-9-]{1,24}",
        in_key in key_strategy(),
        out_key in key_strategy(),
        deadline_micros in any::<u64>(),
        trace_id in 1u64..,
        parent in any::<u64>(),
        seq in any::<u32>(),
    ) {
        let trace = Some(TraceContext {
            trace_id: TraceId(trace_id),
            parent_span: (parent != 0).then_some(SpanId(parent)),
        });
        let req = Request::RunModel { model, in_key, out_key, deadline_micros, trace };
        prop_assert_eq!(roundtrip(&req, seq), req);
    }

    /// A zero-length key is rejected at decode for every keyed op.
    #[test]
    fn zero_length_keys_never_decode(values in prop::collection::vec(f64_bits(), 0..8)) {
        let reqs = vec![
            Request::PutTensor { key: String::new(), values },
            Request::GetTensor { key: String::new() },
            Request::Del { key: String::new() },
        ];
        for req in reqs {
            let mut wire = Vec::new();
            write_frame(&mut wire, req.opcode(), 0, &req.encode()).unwrap();
            let FrameOutcome::Frame(raw) = read_frame(&mut Cursor::new(&wire)).unwrap() else {
                panic!("framing is independent of payload validity");
            };
            prop_assert!(matches!(decode_request(&raw), Err(WireError::EmptyKey)));
        }
    }

    /// No single-byte corruption of a valid frame survives validation:
    /// the reader reports it as corrupt (recoverable) or fatal — never a
    /// clean frame.
    #[test]
    fn single_byte_corruption_is_always_detected(
        key in key_strategy(),
        values in prop::collection::vec(f64_bits(), 0..16),
        pos_fraction in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let req = Request::PutTensor { key, values };
        let mut wire = Vec::new();
        write_frame(&mut wire, req.opcode(), 42, &req.encode()).unwrap();
        let pos = ((wire.len() - 1) as f64 * pos_fraction) as usize;
        wire[pos] ^= mask;
        let detected = match read_frame(&mut Cursor::new(&wire)) {
            Ok(FrameOutcome::Frame(_)) => false,
            Ok(FrameOutcome::Corrupt { reason, .. }) => {
                prop_assert!(!reason.is_fatal());
                true
            }
            Err(e) => {
                prop_assert!(e.is_fatal());
                true
            }
        };
        prop_assert!(
            detected,
            "corruption at byte {} (mask {:#04x}) went undetected",
            pos,
            mask
        );
    }

    /// Truncating a valid frame anywhere yields a fatal I/O error, never
    /// a decoded frame and never a panic.
    #[test]
    fn truncation_is_fatal(
        values in prop::collection::vec(f64_bits(), 0..16),
        keep_fraction in 0.0f64..1.0,
    ) {
        let req = Request::PutTensor { key: "k".into(), values };
        let mut wire = Vec::new();
        write_frame(&mut wire, req.opcode(), 7, &req.encode()).unwrap();
        let keep = ((wire.len() - 1) as f64 * keep_fraction) as usize;
        wire.truncate(keep);
        let err = read_frame(&mut Cursor::new(&wire));
        prop_assert!(err.is_err(), "truncated frame accepted");
        prop_assert!(err.unwrap_err().is_fatal());
    }
}
