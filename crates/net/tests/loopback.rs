//! Loopback integration tests: a real [`NetServer`] on an ephemeral port,
//! driven by concurrent [`RemoteClient`]s.
//!
//! Run single-threaded (`--test-threads=1`) in CI: each test stands up
//! its own server and the overload/deadline tests depend on owning the
//! orchestrator's worker pool.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hpcnet_net::protocol::{
    decode_response, read_frame, write_frame_with_version, FrameOutcome, Request, Response,
};
use hpcnet_net::{demo_bundle, demo_input, NetServer, RemoteClient, DEMO_INPUT_DIM, DEMO_MODEL};
use hpcnet_runtime::conformance::{check_overload, Conformance};
use hpcnet_runtime::{ClientApi, Orchestrator, QualityGuard, RuntimeError, TensorStore};
use hpcnet_tensor::Coo;

fn demo_server(
    configure: impl FnOnce(hpcnet_runtime::OrchestratorBuilder) -> Orchestrator,
) -> NetServer {
    let orchestrator = configure(Orchestrator::builder().store(TensorStore::new()));
    orchestrator.register_model(DEMO_MODEL, demo_bundle());
    NetServer::builder(orchestrator)
        .serve("127.0.0.1:0")
        .expect("bind ephemeral port")
}

/// The value a metric line reports, summed over all label sets.
fn metric_total(text: &str, name: &str, label_needle: &str) -> f64 {
    text.lines()
        .filter(|l| l.starts_with(name) && l.contains(label_needle))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

#[test]
fn concurrent_remote_clients_bit_match_in_process() {
    const CLIENTS: usize = 4;
    const SAMPLES: u64 = 6;

    let server = demo_server(|b| b.workers(2).build());
    let addr = server.local_addr().to_string();

    // The in-process reference: the same deterministic bundle, predicted
    // directly.
    let reference = demo_bundle();

    let addr_shared = Arc::new(addr);
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr_shared.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                let client = RemoteClient::connect(addr.as_str()).expect("connect");
                for s in 0..SAMPLES {
                    let input = demo_input(c as u64 * SAMPLES + s);
                    let in_key = format!("c{c}/in{s}");
                    let out_key = format!("c{c}/out{s}");
                    client.put_tensor(&in_key, &input).expect("put");
                    client
                        .run_model(DEMO_MODEL, &in_key, &out_key)
                        .expect("run");
                    let remote = client.unpack_tensor(&out_key).expect("unpack");
                    let direct = reference.surrogate.predict(&input).expect("predict");
                    assert_eq!(remote.len(), direct.len());
                    for (r, d) in remote.iter().zip(&direct) {
                        assert_eq!(
                            r.to_bits(),
                            d.to_bits(),
                            "bit mismatch client {c} sample {s}"
                        );
                    }
                    // Deletion is visible and typed.
                    assert!(client.del_tensor(&out_key).expect("del"));
                    assert!(!client.del_tensor(&out_key).expect("del"));
                    assert!(matches!(
                        client.unpack_tensor(&out_key),
                        Err(RuntimeError::MissingTensor(_))
                    ));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // A sparse put round-trips through densification identically.
    let client = RemoteClient::connect(addr_shared.as_str()).expect("connect");
    let mut coo = Coo::new(1, 8);
    coo.push(0, 2, 1.25);
    coo.push(0, 7, -0.5);
    client
        .put_sparse_tensor("sparse-in", coo.to_csr())
        .expect("put sparse");
    let dense = client.unpack_tensor("sparse-in").expect("densify");
    assert_eq!(dense, vec![0.0, 0.0, 1.25, 0.0, 0.0, 0.0, 0.0, -0.5]);

    // Remote stats and metrics agree with the work done.
    let stats = client.serving_stats().expect("stats");
    let total = (CLIENTS as u64) * SAMPLES;
    assert_eq!(stats.requests, total);
    // The model-version gauge crosses the STATS wire: a freshly
    // registered model serves version 1.
    assert_eq!(stats.model_versions.get(DEMO_MODEL).copied(), Some(1));
    assert_eq!(client.model_versions().expect("versions")[DEMO_MODEL], 1);
    let metrics = client.metrics_text().expect("metrics");
    assert!(
        metric_total(&metrics, "hpcnet_net_connections_total", "") >= (CLIENTS + 1) as f64,
        "connection counter missing from:\n{metrics}"
    );
    assert_eq!(
        metric_total(&metrics, "hpcnet_net_requests_total", "op=\"run_model\""),
        total as f64
    );
    assert_eq!(
        metric_total(
            &metrics,
            "hpcnet_net_request_seconds_count",
            "op=\"run_model\""
        ),
        total as f64
    );
    assert!(metric_total(&metrics, "hpcnet_net_bytes_read_total", "") > 0.0);
    assert!(metric_total(&metrics, "hpcnet_net_bytes_written_total", "") > 0.0);

    let final_stats = server.shutdown();
    assert_eq!(final_stats.requests, total);
}

#[test]
fn remote_client_passes_the_shared_conformance_suite() {
    let server = demo_server(|b| b.workers(2).build());
    let client = RemoteClient::connect(server.local_addr().to_string()).expect("connect");
    let reference = demo_bundle();
    let predict = move |x: &[f64]| reference.surrogate.predict(x).expect("predict");
    Conformance::new(DEMO_MODEL, DEMO_INPUT_DIM, &predict)
        .key_prefix("remote")
        .check(&client);
    server.shutdown();
}

#[test]
fn pipelined_batches_stream_past_the_window() {
    // More pairs than the client keeps in flight (and than the server's
    // per-connection window): replies must interleave with writes instead
    // of deadlocking, and every output must bit-match the reference.
    const PAIRS: usize = 50;
    let server = demo_server(|b| b.workers(2).build());
    let client = RemoteClient::connect(server.local_addr().to_string()).expect("connect");
    let reference = demo_bundle();

    let keys: Vec<(String, String)> = (0..PAIRS)
        .map(|s| (format!("pl/in{s}"), format!("pl/out{s}")))
        .collect();
    for (s, (in_key, _)) in keys.iter().enumerate() {
        client
            .put_tensor(in_key, &demo_input(s as u64))
            .expect("put");
    }
    let pairs: Vec<(&str, &str)> = keys.iter().map(|(i, o)| (i.as_str(), o.as_str())).collect();
    client.run_model_batch(DEMO_MODEL, &pairs).expect("batch");
    for (s, (_, out_key)) in keys.iter().enumerate() {
        let got = client.unpack_tensor(out_key).expect("unpack");
        let want = reference
            .surrogate
            .predict(&demo_input(s as u64))
            .expect("predict");
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "pipelined pair {s} diverged");
        }
    }

    let stats = server.shutdown();
    assert_eq!(stats.requests, PAIRS as u64);
}

#[test]
fn overload_propagates_as_typed_remote_error() {
    // One worker, a queue of one, and a model whose quality validator
    // stalls the worker: the first request executes, the second fills the
    // queue, later ones are rejected at admission. The shared conformance
    // helper drives the saturation and asserts the typed rejection.
    let orchestrator = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(1)
        .queue_depth(1)
        .build();
    orchestrator.register_guarded_model(
        DEMO_MODEL,
        demo_bundle(),
        QualityGuard::new(|_in, _out| {
            std::thread::sleep(Duration::from_millis(400));
            true
        }),
    );
    let server = NetServer::builder(orchestrator)
        .serve("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr().to_string();

    check_overload(
        || RemoteClient::connect(addr.as_str()).expect("connect"),
        DEMO_MODEL,
        DEMO_INPUT_DIM,
    );
    server.shutdown();
}

#[test]
fn deadline_exceeded_propagates_as_typed_remote_error() {
    let orchestrator = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(1)
        .queue_depth(4)
        .build();
    orchestrator.register_guarded_model(
        DEMO_MODEL,
        demo_bundle(),
        QualityGuard::new(|_in, _out| {
            std::thread::sleep(Duration::from_millis(300));
            true
        }),
    );
    let server = NetServer::builder(orchestrator)
        .serve("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr().to_string();

    let occupant = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let client = RemoteClient::connect(addr.as_str()).expect("connect");
            client.put_tensor("in", &demo_input(0)).expect("put");
            client.run_model(DEMO_MODEL, "in", "out").expect("slow run");
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    // Queued behind a 300 ms validation with a 10 ms budget: answered
    // with the typed deadline error, never silently dropped.
    let client = RemoteClient::connect(addr.as_str()).expect("connect");
    client.put_tensor("late-in", &demo_input(1)).expect("put");
    let err = client
        .run_model_with_deadline(DEMO_MODEL, "late-in", "late-out", Duration::from_millis(10))
        .expect_err("deadline is unreachable");
    assert_eq!(err, RuntimeError::DeadlineExceeded);

    occupant.join().expect("occupant");
    server.shutdown();
}

#[test]
fn shutdown_drains_and_later_connects_fail_typed() {
    let server = demo_server(|b| b.workers(1).build());
    let addr = server.local_addr().to_string();

    let client = RemoteClient::connect(addr.as_str()).expect("connect");
    client.put_tensor("in", &demo_input(0)).expect("put");
    client.run_model(DEMO_MODEL, "in", "out").expect("run");

    let stats = server.shutdown();
    assert_eq!(stats.requests, 1);

    // The endpoint is gone: a fresh connect is a typed transport error.
    let err = RemoteClient::builder(addr)
        .retries(1)
        .backoff(Duration::from_millis(1), Duration::from_millis(2))
        .connect_timeout(Duration::from_millis(200))
        .connect()
        .unwrap_err();
    assert!(matches!(err, RuntimeError::Transport(_)), "got {err:?}");

    // The pooled connection of the old client is dead too; calls surface
    // transport errors instead of hanging.
    assert!(matches!(
        client.unpack_tensor("out"),
        Err(RuntimeError::Transport(_))
    ));
}

/// Send `req` as a hand-framed VERSION-1 frame and return the reply's
/// frame version and decoded response.
fn v1_call(stream: &mut TcpStream, seq: u32, req: &Request) -> (u8, Response) {
    write_frame_with_version(stream, 1, req.opcode(), seq, &req.encode()).expect("write v1 frame");
    match read_frame(stream).expect("read reply") {
        FrameOutcome::Frame(raw) => {
            assert_eq!(raw.seq, seq, "reply sequence mismatch");
            (raw.version, decode_response(&raw).expect("decode reply"))
        }
        FrameOutcome::Corrupt { reason, .. } => panic!("corrupt reply: {reason}"),
    }
}

#[test]
fn version_1_clients_are_served_by_the_version_2_server() {
    let server = demo_server(|b| b.workers(1).build());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect raw");

    // A v1 put + run is served, and every reply echoes version 1 so the
    // old client's reader accepts it.
    let put = Request::PutTensor {
        key: "v1/in".into(),
        values: demo_input(0),
    };
    let (version, resp) = v1_call(&mut stream, 1, &put);
    assert_eq!(version, 1, "reply must echo the request's version");
    assert!(matches!(resp, Response::Ok), "got {resp:?}");
    let run = Request::RunModel {
        model: DEMO_MODEL.into(),
        in_key: "v1/in".into(),
        out_key: "v1/out".into(),
        deadline_micros: 0,
        trace: None,
    };
    let (version, resp) = v1_call(&mut stream, 2, &run);
    assert_eq!(version, 1);
    assert!(matches!(resp, Response::Ok), "got {resp:?}");

    // A v1 frame asking for the v2-only trace dump gets a typed protocol
    // error naming both versions — never a dropped connection.
    let (version, resp) = v1_call(&mut stream, 3, &Request::Traces);
    assert_eq!(version, 1);
    let Response::Error(frame) = resp else {
        panic!("v1 Traces must be answered with an error frame, got {resp:?}");
    };
    let err = frame.to_runtime();
    let RuntimeError::Protocol(msg) = &err else {
        panic!("expected a protocol error, got {err:?}");
    };
    assert!(
        msg.contains("traces") && msg.contains('1') && msg.contains('2'),
        "error must name the op and both versions: {msg}"
    );

    // The connection survived the version error: the same socket keeps
    // serving v1 requests.
    let get = Request::GetTensor {
        key: "v1/out".into(),
    };
    let (version, resp) = v1_call(&mut stream, 4, &get);
    assert_eq!(version, 1);
    assert!(
        matches!(resp, Response::Tensor(v) if v.len() == 4),
        "connection must survive"
    );

    drop(stream);
    server.shutdown();
}

#[test]
fn one_trace_spans_both_sides_of_the_wire() {
    let server = demo_server(|b| b.workers(1).build());
    let client = RemoteClient::connect(server.local_addr().to_string()).expect("connect");

    // Fresh recorders on both sides: the first offered trace is always
    // sampled in (`seen % sample_every == 0`), so one clean request is
    // deterministically retained by client and server alike.
    client.put_tensor("traced/in", &demo_input(3)).expect("put");
    client
        .run_model(DEMO_MODEL, "traced/in", "traced/out")
        .expect("run");
    // A missing input is retained by the error rule, independent of
    // sampling phase.
    let err = client
        .run_model(DEMO_MODEL, "traced/missing-in", "traced/missing-out")
        .expect_err("input was never put");
    assert!(matches!(err, RuntimeError::MissingTensor(_)));

    let traces = client.trace_dump().expect("trace dump");
    // Both retained traces must stitch: the client half and the server
    // half merged under one trace id.
    let stitched: Vec<_> = traces
        .iter()
        .filter(|t| {
            t.spans.iter().any(|s| s.service == "remote_client")
                && t.spans.iter().any(|s| s.service == "orchestrator")
        })
        .collect();
    assert!(
        stitched.len() >= 2,
        "expected both requests to stitch across the wire, got {} of {} traces",
        stitched.len(),
        traces.len()
    );

    for t in &stitched {
        let client_root = t
            .spans
            .iter()
            .find(|s| s.service == "remote_client" && s.name == "request")
            .expect("client-side request span");
        assert!(client_root.parent.is_none(), "client span is the root");
        let server_root = t
            .spans
            .iter()
            .find(|s| s.service == "orchestrator" && s.name == "request")
            .expect("server-side request span");
        assert_eq!(
            server_root.parent,
            Some(client_root.span_id),
            "server request span must hang under the propagated client span"
        );
    }
    // The clean request's server half carries the per-stage children.
    let clean = stitched
        .iter()
        .find(|t| !t.has_error())
        .expect("sampled clean trace");
    for stage in ["queue_wait", "fetch", "infer"] {
        assert!(
            clean.spans.iter().any(|s| s.name == stage),
            "missing server-side `{stage}` span in {:?}",
            clean.stage_span_names()
        );
    }

    server.shutdown();
}

#[test]
fn panicking_validator_surfaces_as_typed_error_frame_over_tcp() {
    let orchestrator = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(1)
        .build();
    // demo_input(0) starts with sin(0.37) > 0, demo_input(9) with
    // sin(3.7) < 0 — one input trips the panic, the other is clean.
    orchestrator.register_guarded_model(
        DEMO_MODEL,
        demo_bundle(),
        QualityGuard::new(|raw, _out| {
            if raw.first().copied().unwrap_or(0.0) > 0.0 {
                panic!("validator blew up over TCP");
            }
            true
        }),
    );
    let server = NetServer::builder(orchestrator)
        .serve("127.0.0.1:0")
        .expect("bind");
    let client = RemoteClient::connect(server.local_addr().to_string()).expect("connect");

    client.put_tensor("bad-in", &demo_input(0)).expect("put");
    let err = client
        .run_model(DEMO_MODEL, "bad-in", "bad-out")
        .expect_err("panicking validator must fail the remote request");
    assert!(
        matches!(&err, RuntimeError::Inference(msg) if msg.contains("panick")),
        "expected a typed Inference error frame, got {err:?}"
    );
    assert!(
        matches!(
            client.unpack_tensor("bad-out"),
            Err(RuntimeError::MissingTensor(_))
        ),
        "a failed request must not leave an output tensor"
    );

    // Same connection, same single worker: a clean input is served.
    client.put_tensor("ok-in", &demo_input(9)).expect("put");
    client
        .run_model(DEMO_MODEL, "ok-in", "ok-out")
        .expect("worker and connection must survive the panic");
    assert_eq!(client.unpack_tensor("ok-out").expect("unpack").len(), 4);

    let stats = server.shutdown();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.errors, 1);
}
