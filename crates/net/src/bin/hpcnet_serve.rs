//! `hpcnet-serve`: stand up an orchestrator behind a TCP endpoint.
//!
//! ```text
//! hpcnet-serve --addr 127.0.0.1:7070 --demo
//! hpcnet-serve --addr 0.0.0.0:7070 --model AI-PCG-net=./saved_net.pt \
//!              --workers 4 --queue-depth 256 --default-deadline-ms 5000
//! ```
//!
//! The bound address is printed as `listening on <addr>` once the server
//! is accepting (scripts wait for that line). Graceful drain: send the
//! line `quit` on stdin — already-admitted requests finish, final stats
//! print, then the process exits. On stdin EOF the server keeps running
//! until the process is killed.

use std::io::BufRead;
use std::time::Duration;

use hpcnet_net::NetServer;
use hpcnet_runtime::{ModelBundle, Orchestrator, TensorStore};

struct Args {
    addr: String,
    workers: Option<usize>,
    queue_depth: Option<usize>,
    default_deadline_ms: Option<u64>,
    window: Option<usize>,
    store_cap: Option<usize>,
    models: Vec<(String, String)>,
    demo: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: hpcnet-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]\n\
         \x20                   [--default-deadline-ms N] [--window N] [--store-cap N]\n\
         \x20                   [--model NAME=PATH]... [--demo]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7070".to_string(),
        workers: None,
        queue_depth: None,
        default_deadline_ms: None,
        window: None,
        store_cap: None,
        models: Vec::new(),
        demo: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--workers" => args.workers = Some(parse_num(&value("--workers"), "--workers")),
            "--queue-depth" => {
                args.queue_depth = Some(parse_num(&value("--queue-depth"), "--queue-depth"))
            }
            "--default-deadline-ms" => {
                args.default_deadline_ms =
                    Some(parse_num(&value("--default-deadline-ms"), "--default-deadline-ms") as u64)
            }
            "--window" => args.window = Some(parse_num(&value("--window"), "--window")),
            "--store-cap" => args.store_cap = Some(parse_num(&value("--store-cap"), "--store-cap")),
            "--model" => {
                let spec = value("--model");
                match spec.split_once('=') {
                    Some((name, path)) if !name.is_empty() && !path.is_empty() => {
                        args.models.push((name.to_string(), path.to_string()))
                    }
                    _ => {
                        eprintln!("--model expects NAME=PATH, got `{spec}`");
                        usage()
                    }
                }
            }
            "--demo" => args.demo = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    if args.models.is_empty() && !args.demo {
        eprintln!("no models: pass --model NAME=PATH or --demo");
        usage()
    }
    args
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a number, got `{s}`");
        usage()
    })
}

fn main() {
    let args = parse_args();

    let store = match args.store_cap {
        Some(cap) => TensorStore::with_max_entries(cap),
        None => TensorStore::new(),
    };
    let mut builder = Orchestrator::builder().store(store);
    if let Some(w) = args.workers {
        builder = builder.workers(w);
    }
    if let Some(d) = args.queue_depth {
        builder = builder.queue_depth(d);
    }
    if let Some(ms) = args.default_deadline_ms {
        builder = builder.default_deadline(Duration::from_millis(ms));
    }
    let orchestrator = builder.build();

    if args.demo {
        orchestrator.register_model(hpcnet_net::DEMO_MODEL, hpcnet_net::demo_bundle());
        eprintln!("registered demo model `{}`", hpcnet_net::DEMO_MODEL);
    }
    for (name, path) in &args.models {
        let bundle = ModelBundle::load(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("loading model `{name}` from {path}: {e}");
            std::process::exit(1);
        });
        orchestrator.register_model(name, bundle);
        eprintln!("registered model `{name}` from {path}");
    }

    let mut server_builder = NetServer::builder(orchestrator);
    if let Some(w) = args.window {
        server_builder = server_builder.window(w);
    }
    let server = server_builder.serve(&args.addr).unwrap_or_else(|e| {
        eprintln!("binding {}: {e}", args.addr);
        std::process::exit(1);
    });
    // Scripts key off this exact line to know the port is accepting.
    println!("listening on {}", server.local_addr());

    // `quit` on stdin triggers the graceful drain; EOF keeps serving.
    let stdin = std::io::stdin();
    let mut saw_quit = false;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        match line.trim() {
            "quit" | "shutdown" => {
                saw_quit = true;
                break;
            }
            "" => {}
            other => eprintln!("unrecognized command `{other}` (try `quit`)"),
        }
    }
    if !saw_quit {
        // Detached from stdin (e.g. backgrounded with </dev/null): serve
        // until killed.
        loop {
            std::thread::park();
        }
    }

    eprintln!("draining...");
    let stats = server.shutdown();
    eprintln!(
        "drained: {} request(s), {} batch(es), {} error(s)",
        stats.requests, stats.batches, stats.errors
    );
}
