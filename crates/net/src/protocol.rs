//! The wire protocol (DESIGN.md §12): compact, length-prefixed,
//! checksummed binary frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! offset  size  field
//!      0     2  magic `b"HN"`
//!      2     1  protocol version (1 or 2 — see "Versioning" below)
//!      3     1  opcode
//!      4     4  sequence number (LE u32, echoed in the response)
//!      8     4  payload length N (LE u32, at most MAX_FRAME_PAYLOAD)
//!     12     N  payload (opcode-specific)
//!   12+N     4  CRC-32/IEEE (LE u32) over bytes [2, 12+N)
//! ```
//!
//! # Versioning
//!
//! The server negotiates per frame, not per connection: every version in
//! [`MIN_VERSION`]..=[`VERSION`] is accepted, and responses echo the
//! request frame's version, so a v1 client talking to a v2 server sees
//! pure v1 traffic. Version 2 adds two things (DESIGN.md §16):
//!
//! * an **optional trace-context tail** on `RunModel` payloads (a flags
//!   byte plus 16 bytes of [`TraceContext`]); a v2 frame without the
//!   tail is byte-identical to the v1 form;
//! * the **`Traces` opcode** (0x09), dumping the server's flight
//!   recorder as JSON. A v1 frame carrying it gets a typed protocol
//!   error naming both versions ([`WireError::VersionTooOld`]) — the
//!   connection stays usable.
//!
//! The checksum covers everything after the magic, so a flipped bit in
//! the version, opcode, sequence, length, or payload is detected. Errors
//! split into two classes: **fatal** ones (bad magic, oversized length,
//! truncated stream) mean the byte stream can no longer be framed and
//! the connection must close; **recoverable** ones (checksum mismatch,
//! unsupported version, unknown opcode, malformed payload) leave the
//! stream framed, so the server replies with a typed error frame and the
//! connection stays usable.
//!
//! All multi-byte integers are little-endian. `f64` values travel as
//! their IEEE-754 bit patterns, so NaN payloads and infinities round-trip
//! bit-exactly. Strings are UTF-8 with a `u16` length prefix; tensor keys
//! are additionally validated (non-empty, at most
//! [`hpcnet_runtime::store::MAX_KEY_BYTES`] bytes) at decode time.

use std::io::{Read, Write};

use hpcnet_runtime::store::MAX_KEY_BYTES;
use hpcnet_runtime::RuntimeError;
use hpcnet_telemetry::trace::TRACE_CONTEXT_WIRE_LEN;
use hpcnet_telemetry::TraceContext;
use hpcnet_tensor::Csr;

/// Frame preamble: "HN" for HPCnet.
pub const MAGIC: [u8; 2] = *b"HN";

/// Current protocol version: v2 adds the optional trace-context tail on
/// `RunModel` and the `Traces` opcode.
pub const VERSION: u8 = 2;

/// Oldest version still served. Frames carrying any version in
/// `MIN_VERSION..=VERSION` are accepted and answered in kind; anything
/// outside the range gets a protocol-error frame naming both bounds.
pub const MIN_VERSION: u8 = 1;

/// First protocol version that carries the `Traces` opcode.
pub const TRACES_MIN_VERSION: u8 = 2;

/// `RunModel` tail flag bit: a 16-byte [`TraceContext`] follows.
pub const RUN_MODEL_FLAG_TRACE: u8 = 0x01;

/// Fixed bytes before the payload.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a frame payload (64 MiB ≈ an 8M-element f64 tensor).
/// Larger declared lengths are treated as stream desynchronization.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32/IEEE over a contiguous buffer.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_parts(&[data])
}

/// CRC-32/IEEE over the concatenation of `parts` (without copying).
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Opcodes
// ---------------------------------------------------------------------

/// Request opcodes occupy 0x01–0x7F, responses 0x80–0xFF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Store a dense tensor.
    PutTensor = 0x01,
    /// Store a sparse (CSR) tensor.
    PutSparse = 0x02,
    /// Fetch a tensor, densified.
    GetTensor = 0x03,
    /// Run a registered model, with an optional deadline.
    RunModel = 0x04,
    /// Delete a tensor.
    Del = 0x05,
    /// Serving statistics as JSON text.
    Stats = 0x06,
    /// Prometheus text exposition of the server's telemetry.
    Metrics = 0x07,
    /// Liveness probe; the payload is echoed back.
    Ping = 0x08,
    /// Flight-recorder dump as JSON text (protocol ≥ 2).
    Traces = 0x09,
    /// Success with no payload.
    Ok = 0x81,
    /// A dense tensor payload.
    Tensor = 0x82,
    /// Result of a `Del`: whether the key existed.
    Deleted = 0x83,
    /// UTF-8 text payload (`Stats` / `Metrics` replies).
    Text = 0x84,
    /// `Ping` reply, echoing the request payload.
    Pong = 0x85,
    /// A typed error frame.
    Error = 0xEE,
}

impl Opcode {
    /// Parse a wire byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        Some(match b {
            0x01 => Opcode::PutTensor,
            0x02 => Opcode::PutSparse,
            0x03 => Opcode::GetTensor,
            0x04 => Opcode::RunModel,
            0x05 => Opcode::Del,
            0x06 => Opcode::Stats,
            0x07 => Opcode::Metrics,
            0x08 => Opcode::Ping,
            0x09 => Opcode::Traces,
            0x81 => Opcode::Ok,
            0x82 => Opcode::Tensor,
            0x83 => Opcode::Deleted,
            0x84 => Opcode::Text,
            0x85 => Opcode::Pong,
            0xEE => Opcode::Error,
            _ => return None,
        })
    }

    /// Stable lowercase name (telemetry label, error messages).
    pub fn name(&self) -> &'static str {
        match self {
            Opcode::PutTensor => "put_tensor",
            Opcode::PutSparse => "put_sparse",
            Opcode::GetTensor => "get_tensor",
            Opcode::RunModel => "run_model",
            Opcode::Del => "del",
            Opcode::Stats => "stats",
            Opcode::Metrics => "metrics",
            Opcode::Ping => "ping",
            Opcode::Traces => "traces",
            Opcode::Ok => "ok",
            Opcode::Tensor => "tensor",
            Opcode::Deleted => "deleted",
            Opcode::Text => "text",
            Opcode::Pong => "pong",
            Opcode::Error => "error",
        }
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Everything that can go wrong turning bytes into frames and frames
/// into messages.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed or ended mid-frame.
    Io(std::io::Error),
    /// The first two bytes were not [`MAGIC`] — the stream is not (or no
    /// longer) speaking this protocol.
    BadMagic([u8; 2]),
    /// The frame declared an implausible payload length.
    Oversize(u32),
    /// The frame arrived intact but carries an unsupported version.
    BadVersion(u8),
    /// The opcode needs a newer protocol version than the frame carries
    /// (e.g. a v1 frame asking for the v2-only `Traces` dump).
    VersionTooOld {
        /// Stable opcode name.
        op: &'static str,
        /// Minimum version the opcode requires.
        needs: u8,
        /// Version the frame carried.
        got: u8,
    },
    /// The checksum did not match the received bytes.
    Checksum {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried by the frame.
        received: u32,
    },
    /// The opcode byte is not assigned (or not valid in this direction).
    UnknownOpcode(u8),
    /// The payload did not decode as the opcode's schema.
    Malformed(String),
    /// A tensor key of zero length (always invalid).
    EmptyKey,
}

impl WireError {
    /// Fatal errors desynchronize the byte stream: the connection cannot
    /// be trusted to frame correctly afterwards and must close.
    /// Everything else is answerable with an error frame.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            WireError::Io(_) | WireError::BadMagic(_) | WireError::Oversize(_)
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::Oversize(n) => write!(f, "declared payload of {n} bytes exceeds limit"),
            WireError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this side speaks {MIN_VERSION} through {VERSION})"
                )
            }
            WireError::VersionTooOld { op, needs, got } => write!(
                f,
                "`{op}` requires protocol version {needs}, but the frame carries version {got}"
            ),
            WireError::Checksum { computed, received } => write!(
                f,
                "checksum mismatch: computed {computed:08x}, frame carries {received:08x}"
            ),
            WireError::UnknownOpcode(b) => write!(f, "unknown opcode 0x{b:02x}"),
            WireError::Malformed(m) => write!(f, "malformed payload: {m}"),
            WireError::EmptyKey => write!(f, "zero-length tensor key"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Wire faults map onto the runtime's typed errors: stream-level faults
/// are transport problems, everything else is a protocol violation.
impl From<WireError> for RuntimeError {
    fn from(e: WireError) -> Self {
        match &e {
            WireError::Io(_) => RuntimeError::Transport(e.to_string()),
            _ => RuntimeError::Protocol(e.to_string()),
        }
    }
}

/// Fixed-width slice → array conversion for slices whose length is
/// already guaranteed by `take`/`chunks_exact`/const-width indexing.
fn to_array<const N: usize>(bytes: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(bytes);
    out
}

// ---------------------------------------------------------------------
// Requests and responses
// ---------------------------------------------------------------------

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Store a dense tensor under `key`.
    PutTensor {
        /// Destination key.
        key: String,
        /// Row values.
        values: Vec<f64>,
    },
    /// Store a sparse tensor under `key` without densification.
    PutSparse {
        /// Destination key.
        key: String,
        /// The CSR payload.
        tensor: Csr,
    },
    /// Fetch the tensor under `key`, densified.
    GetTensor {
        /// Source key.
        key: String,
    },
    /// Run `model` over `in_key`, storing the output under `out_key`.
    RunModel {
        /// Registered model name.
        model: String,
        /// Input tensor key.
        in_key: String,
        /// Output tensor key.
        out_key: String,
        /// Per-request deadline in microseconds; 0 means "use the
        /// server's default" (or none, when the server has none).
        deadline_micros: u64,
        /// Propagated trace context (protocol ≥ 2): the server's request
        /// span joins the caller's trace instead of starting a new one.
        /// `None` encodes to the v1 payload form, byte for byte.
        trace: Option<TraceContext>,
    },
    /// Delete the tensor under `key`.
    Del {
        /// Key to delete.
        key: String,
    },
    /// Serving statistics (JSON text reply).
    Stats,
    /// Prometheus exposition (text reply).
    Metrics,
    /// Liveness probe; `payload` is echoed back verbatim.
    Ping {
        /// Opaque bytes to echo.
        payload: Vec<u8>,
    },
    /// Flight-recorder dump (JSON text reply; protocol ≥ 2).
    Traces,
}

impl Request {
    /// The opcode this request travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::PutTensor { .. } => Opcode::PutTensor,
            Request::PutSparse { .. } => Opcode::PutSparse,
            Request::GetTensor { .. } => Opcode::GetTensor,
            Request::RunModel { .. } => Opcode::RunModel,
            Request::Del { .. } => Opcode::Del,
            Request::Stats => Opcode::Stats,
            Request::Metrics => Opcode::Metrics,
            Request::Ping { .. } => Opcode::Ping,
            Request::Traces => Opcode::Traces,
        }
    }

    /// Encode the payload bytes (header excluded).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        match self {
            Request::PutTensor { key, values } => {
                w.str16(key);
                w.f64_slice(values);
            }
            Request::PutSparse { key, tensor } => {
                w.str16(key);
                w.u32(tensor.nrows() as u32);
                w.u32(tensor.ncols() as u32);
                w.u32(tensor.nnz() as u32);
                for &p in tensor.indptr() {
                    w.u32(p as u32);
                }
                for &i in tensor.indices() {
                    w.u32(i as u32);
                }
                for &v in tensor.values() {
                    w.f64(v);
                }
            }
            Request::GetTensor { key } | Request::Del { key } => w.str16(key),
            Request::RunModel {
                model,
                in_key,
                out_key,
                deadline_micros,
                trace,
            } => {
                w.str16(model);
                w.str16(in_key);
                w.str16(out_key);
                w.u64(*deadline_micros);
                // The v2 tail is only emitted when there is a context to
                // carry, so a trace-less v2 frame stays v1-identical.
                if let Some(ctx) = trace {
                    w.u8(RUN_MODEL_FLAG_TRACE);
                    w.bytes(&ctx.to_wire());
                }
            }
            Request::Stats | Request::Metrics | Request::Traces => {}
            Request::Ping { payload } => w.bytes(payload),
        }
        w.into_vec()
    }
}

/// An error frame's contents, mirroring [`RuntimeError`] across the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorFrame {
    /// One of the [`err_code`] constants.
    pub code: u8,
    /// Code-specific detail (the queue depth for `OVERLOADED`, else 0).
    pub detail: u32,
    /// Human-readable context (the missing key, the model name, ...).
    pub message: String,
}

/// Wire error codes carried by [`ErrorFrame::code`].
pub mod err_code {
    /// [`RuntimeError::MissingTensor`](hpcnet_runtime::RuntimeError::MissingTensor).
    pub const MISSING_TENSOR: u8 = 1;
    /// [`RuntimeError::MissingModel`](hpcnet_runtime::RuntimeError::MissingModel).
    pub const MISSING_MODEL: u8 = 2;
    /// [`RuntimeError::Inference`](hpcnet_runtime::RuntimeError::Inference).
    pub const INFERENCE: u8 = 3;
    /// [`RuntimeError::InvalidKey`](hpcnet_runtime::RuntimeError::InvalidKey).
    pub const INVALID_KEY: u8 = 4;
    /// [`RuntimeError::Overloaded`](hpcnet_runtime::RuntimeError::Overloaded)
    /// — `detail` carries the queue depth.
    pub const OVERLOADED: u8 = 5;
    /// [`RuntimeError::DeadlineExceeded`](hpcnet_runtime::RuntimeError::DeadlineExceeded).
    pub const DEADLINE_EXCEEDED: u8 = 6;
    /// [`RuntimeError::ShuttingDown`](hpcnet_runtime::RuntimeError::ShuttingDown).
    pub const SHUTTING_DOWN: u8 = 7;
    /// [`RuntimeError::QualityRejected`](hpcnet_runtime::RuntimeError::QualityRejected).
    pub const QUALITY_REJECTED: u8 = 8;
    /// [`RuntimeError::Disconnected`](hpcnet_runtime::RuntimeError::Disconnected).
    pub const DISCONNECTED: u8 = 9;
    /// [`RuntimeError::Protocol`](hpcnet_runtime::RuntimeError::Protocol)
    /// — the peer sent an unusable frame.
    pub const PROTOCOL: u8 = 10;
    /// [`RuntimeError::Transport`](hpcnet_runtime::RuntimeError::Transport).
    pub const TRANSPORT: u8 = 11;
}

impl ErrorFrame {
    /// The wire form of a [`RuntimeError`].
    pub fn from_runtime(e: &RuntimeError) -> ErrorFrame {
        let (code, detail, message) = match e {
            RuntimeError::MissingTensor(k) => (err_code::MISSING_TENSOR, 0, k.clone()),
            RuntimeError::MissingModel(m) => (err_code::MISSING_MODEL, 0, m.clone()),
            RuntimeError::Inference(m) => (err_code::INFERENCE, 0, m.clone()),
            RuntimeError::InvalidKey(m) => (err_code::INVALID_KEY, 0, m.clone()),
            RuntimeError::Overloaded { queue_depth } => {
                (err_code::OVERLOADED, *queue_depth as u32, String::new())
            }
            RuntimeError::DeadlineExceeded => (err_code::DEADLINE_EXCEEDED, 0, String::new()),
            RuntimeError::ShuttingDown => (err_code::SHUTTING_DOWN, 0, String::new()),
            RuntimeError::QualityRejected(m) => (err_code::QUALITY_REJECTED, 0, m.clone()),
            RuntimeError::Disconnected => (err_code::DISCONNECTED, 0, String::new()),
            RuntimeError::Protocol(m) => (err_code::PROTOCOL, 0, m.clone()),
            RuntimeError::Transport(m) => (err_code::TRANSPORT, 0, m.clone()),
        };
        ErrorFrame {
            code,
            detail,
            message,
        }
    }

    /// Decode back into the typed [`RuntimeError`] — the inverse of
    /// [`ErrorFrame::from_runtime`], so remote callers can match on the
    /// same variants as in-process ones.
    pub fn to_runtime(&self) -> RuntimeError {
        match self.code {
            err_code::MISSING_TENSOR => RuntimeError::MissingTensor(self.message.clone()),
            err_code::MISSING_MODEL => RuntimeError::MissingModel(self.message.clone()),
            err_code::INFERENCE => RuntimeError::Inference(self.message.clone()),
            err_code::INVALID_KEY => RuntimeError::InvalidKey(self.message.clone()),
            err_code::OVERLOADED => RuntimeError::Overloaded {
                queue_depth: self.detail as usize,
            },
            err_code::DEADLINE_EXCEEDED => RuntimeError::DeadlineExceeded,
            err_code::SHUTTING_DOWN => RuntimeError::ShuttingDown,
            err_code::QUALITY_REJECTED => RuntimeError::QualityRejected(self.message.clone()),
            err_code::DISCONNECTED => RuntimeError::Disconnected,
            err_code::TRANSPORT => RuntimeError::Transport(self.message.clone()),
            // PROTOCOL and anything a newer peer might add.
            _ => RuntimeError::Protocol(self.message.clone()),
        }
    }
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success with nothing to return.
    Ok,
    /// A densified tensor.
    Tensor(Vec<f64>),
    /// Whether the deleted key existed.
    Deleted(bool),
    /// UTF-8 text (stats JSON or Prometheus exposition).
    Text(String),
    /// Ping echo.
    Pong(Vec<u8>),
    /// A typed error.
    Error(ErrorFrame),
}

impl Response {
    /// The opcode this response travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Response::Ok => Opcode::Ok,
            Response::Tensor(_) => Opcode::Tensor,
            Response::Deleted(_) => Opcode::Deleted,
            Response::Text(_) => Opcode::Text,
            Response::Pong(_) => Opcode::Pong,
            Response::Error(_) => Opcode::Error,
        }
    }

    /// Encode the payload bytes (header excluded).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        match self {
            Response::Ok => {}
            Response::Tensor(values) => w.f64_slice(values),
            Response::Deleted(existed) => w.u8(u8::from(*existed)),
            Response::Text(text) => w.bytes(text.as_bytes()),
            Response::Pong(payload) => w.bytes(payload),
            Response::Error(e) => {
                w.u8(e.code);
                w.u32(e.detail);
                w.str16(&e.message);
            }
        }
        w.into_vec()
    }
}

// ---------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------

/// A validated frame: consistent header, matching checksum, supported
/// version. The payload is not yet interpreted.
#[derive(Debug, Clone, PartialEq)]
pub struct RawFrame {
    /// The protocol version the frame carried (within
    /// [`MIN_VERSION`]..=[`VERSION`] — [`read_frame`] checks). Servers
    /// echo it in the response so old clients see old-version traffic.
    pub version: u8,
    /// The opcode byte (possibly unassigned — decoding checks).
    pub opcode: u8,
    /// Correlation id, echoed by responses.
    pub seq: u32,
    /// Opcode-specific payload bytes.
    pub payload: Vec<u8>,
}

/// What reading one frame yielded: a usable frame, or a frame-shaped
/// region of the stream that failed validation but left the stream
/// framed (reply with an error, keep the connection).
#[derive(Debug)]
pub enum FrameOutcome {
    /// A well-formed frame.
    Frame(RawFrame),
    /// Header was consistent but the frame is unusable.
    Corrupt {
        /// Sequence number from the (checksum-unverified) header, so the
        /// error reply can still correlate.
        seq: u32,
        /// Why the frame was rejected.
        reason: WireError,
    },
}

/// Serialize one frame at the current [`VERSION`]. Returns the total
/// bytes written (for byte accounting).
pub fn write_frame(
    w: &mut impl Write,
    opcode: Opcode,
    seq: u32,
    payload: &[u8],
) -> Result<usize, WireError> {
    write_frame_with_version(w, VERSION, opcode, seq, payload)
}

/// Serialize one frame carrying an explicit protocol version — how the
/// server answers a v1 request with a v1 response (and how tests craft
/// old-version frames).
pub fn write_frame_with_version(
    w: &mut impl Write,
    version: u8,
    opcode: Opcode,
    seq: u32,
    payload: &[u8],
) -> Result<usize, WireError> {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD);
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    buf.extend_from_slice(&MAGIC);
    buf.push(version);
    buf.push(opcode as u8);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32(&buf[2..]);
    buf.extend_from_slice(&crc.to_le_bytes());
    w.write_all(&buf)?;
    Ok(buf.len())
}

/// Read and validate one frame. `Err` is fatal (close the connection);
/// [`FrameOutcome::Corrupt`] is recoverable (reply with an error frame).
pub fn read_frame(r: &mut impl Read) -> Result<FrameOutcome, WireError> {
    let mut head = [0u8; HEADER_LEN];
    r.read_exact(&mut head)?;
    if head[0..2] != MAGIC {
        return Err(WireError::BadMagic([head[0], head[1]]));
    }
    let version = head[2];
    let opcode = head[3];
    let seq = u32::from_le_bytes(to_array(&head[4..8]));
    let len = u32::from_le_bytes(to_array(&head[8..12]));
    if len as usize > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    let mut rest = vec![0u8; len as usize + 4];
    r.read_exact(&mut rest)?;
    let payload = &rest[..len as usize];
    let received = u32::from_le_bytes(to_array(&rest[len as usize..]));
    let computed = crc32_parts(&[&head[2..], payload]);
    if computed != received {
        return Ok(FrameOutcome::Corrupt {
            seq,
            reason: WireError::Checksum { computed, received },
        });
    }
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Ok(FrameOutcome::Corrupt {
            seq,
            reason: WireError::BadVersion(version),
        });
    }
    rest.truncate(len as usize);
    Ok(FrameOutcome::Frame(RawFrame {
        version,
        opcode,
        seq,
        payload: rest,
    }))
}

/// Total wire bytes of a frame with an `n`-byte payload.
pub fn frame_len(n: usize) -> usize {
    HEADER_LEN + n + 4
}

/// Decode a validated frame as a request (server side).
pub fn decode_request(frame: &RawFrame) -> Result<Request, WireError> {
    let op = Opcode::from_u8(frame.opcode).ok_or(WireError::UnknownOpcode(frame.opcode))?;
    let mut r = PayloadReader::new(&frame.payload);
    let req = match op {
        Opcode::PutTensor => {
            let key = r.key()?;
            let values = r.f64_vec()?;
            Request::PutTensor { key, values }
        }
        Opcode::PutSparse => {
            let key = r.key()?;
            let nrows = r.u32()? as usize;
            let ncols = r.u32()? as usize;
            let nnz = r.u32()? as usize;
            let indptr = r.usize_vec_u32(
                nrows
                    .checked_add(1)
                    .ok_or_else(|| WireError::Malformed("sparse row count overflows".into()))?,
            )?;
            let indices = r.usize_vec_u32(nnz)?;
            let values = r.f64_exact(nnz)?;
            let tensor = Csr::from_raw(nrows, ncols, indptr, indices, values)
                .map_err(|e| WireError::Malformed(format!("invalid CSR: {e}")))?;
            Request::PutSparse { key, tensor }
        }
        Opcode::GetTensor => Request::GetTensor { key: r.key()? },
        Opcode::RunModel => {
            let model = r.str16()?;
            let in_key = r.key()?;
            let out_key = r.key()?;
            let deadline_micros = r.u64()?;
            // The trace tail exists only on v2+ frames; on v1 frames any
            // trailing bytes are garbage and fail `finish()` below.
            let trace = if frame.version >= 2 && r.has_remaining() {
                let flags = r.u8()?;
                if flags & RUN_MODEL_FLAG_TRACE != 0 {
                    TraceContext::from_wire(&to_array(r.take(TRACE_CONTEXT_WIRE_LEN)?))
                } else {
                    None
                }
            } else {
                None
            };
            Request::RunModel {
                model,
                in_key,
                out_key,
                deadline_micros,
                trace,
            }
        }
        Opcode::Del => Request::Del { key: r.key()? },
        Opcode::Stats => Request::Stats,
        Opcode::Metrics => Request::Metrics,
        Opcode::Ping => Request::Ping {
            payload: r.remaining(),
        },
        Opcode::Traces => {
            if frame.version < TRACES_MIN_VERSION {
                return Err(WireError::VersionTooOld {
                    op: Opcode::Traces.name(),
                    needs: TRACES_MIN_VERSION,
                    got: frame.version,
                });
            }
            Request::Traces
        }
        Opcode::Ok
        | Opcode::Tensor
        | Opcode::Deleted
        | Opcode::Text
        | Opcode::Pong
        | Opcode::Error => return Err(WireError::UnknownOpcode(frame.opcode)),
    };
    r.finish()?;
    Ok(req)
}

/// Decode a validated frame as a response (client side).
pub fn decode_response(frame: &RawFrame) -> Result<Response, WireError> {
    let op = Opcode::from_u8(frame.opcode).ok_or(WireError::UnknownOpcode(frame.opcode))?;
    let mut r = PayloadReader::new(&frame.payload);
    let resp = match op {
        Opcode::Ok => Response::Ok,
        Opcode::Tensor => Response::Tensor(r.f64_vec()?),
        Opcode::Deleted => Response::Deleted(r.u8()? != 0),
        Opcode::Text => Response::Text(
            String::from_utf8(r.remaining())
                .map_err(|_| WireError::Malformed("text reply is not UTF-8".into()))?,
        ),
        Opcode::Pong => Response::Pong(r.remaining()),
        Opcode::Error => {
            let code = r.u8()?;
            let detail = r.u32()?;
            let message = r.str16()?;
            Response::Error(ErrorFrame {
                code,
                detail,
                message,
            })
        }
        Opcode::PutTensor
        | Opcode::PutSparse
        | Opcode::GetTensor
        | Opcode::RunModel
        | Opcode::Del
        | Opcode::Stats
        | Opcode::Metrics
        | Opcode::Ping
        | Opcode::Traces => return Err(WireError::UnknownOpcode(frame.opcode)),
    };
    r.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------
// Payload cursors
// ---------------------------------------------------------------------

struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    fn new() -> Self {
        PayloadWriter { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// u16 length prefix + UTF-8 bytes. Strings longer than `u16::MAX`
    /// bytes never occur (keys are capped far below; model names are
    /// short) — truncating would corrupt, so panic loudly in debug.
    fn str16(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize);
        self.buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// u32 count prefix + raw f64 bit patterns.
    fn f64_slice(&mut self, values: &[f64]) {
        self.u32(values.len() as u32);
        for &v in values {
            self.f64(v);
        }
    }

    fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError::Malformed("payload truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(to_array(self.take(2)?)))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(to_array(self.take(4)?)))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(to_array(self.take(8)?)))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str16(&mut self) -> Result<String, WireError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
    }

    /// A validated tensor key: non-empty, within the store's bound.
    fn key(&mut self) -> Result<String, WireError> {
        let s = self.str16()?;
        if s.is_empty() {
            return Err(WireError::EmptyKey);
        }
        if s.len() > MAX_KEY_BYTES {
            return Err(WireError::Malformed(format!(
                "key is {} bytes, max {MAX_KEY_BYTES}",
                s.len()
            )));
        }
        Ok(s)
    }

    /// u32 count prefix + that many f64s. The count is validated against
    /// the remaining bytes before allocation.
    fn f64_vec(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.u32()? as usize;
        self.f64_exact(n)
    }

    fn f64_exact(&mut self, n: usize) -> Result<Vec<f64>, WireError> {
        let bytes = self.take(
            n.checked_mul(8)
                .ok_or_else(|| WireError::Malformed("element count overflows".into()))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(to_array(c))))
            .collect())
    }

    fn usize_vec_u32(&mut self, n: usize) -> Result<Vec<usize>, WireError> {
        let bytes = self.take(
            n.checked_mul(4)
                .ok_or_else(|| WireError::Malformed("element count overflows".into()))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(to_array(c)) as usize)
            .collect())
    }

    /// Whether unconsumed bytes remain (gates optional payload tails).
    fn has_remaining(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Everything not yet consumed.
    fn remaining(&mut self) -> Vec<u8> {
        let rest = self.buf[self.pos..].to_vec();
        self.pos = self.buf.len();
        rest
    }

    /// Reject trailing garbage: a well-formed payload is fully consumed.
    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_request(req: Request) -> Request {
        let payload = req.encode();
        let mut wire = Vec::new();
        let n = write_frame(&mut wire, req.opcode(), 7, &payload).unwrap();
        assert_eq!(n, wire.len());
        assert_eq!(n, frame_len(payload.len()));
        let out = read_frame(&mut Cursor::new(&wire)).unwrap();
        let FrameOutcome::Frame(raw) = out else {
            panic!("frame did not validate");
        };
        assert_eq!(raw.seq, 7);
        decode_request(&raw).unwrap()
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_parts(&[b"1234", b"56789"]), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_request_roundtrips() {
        let reqs = vec![
            Request::PutTensor {
                key: "k".into(),
                values: vec![1.5, -2.25, f64::INFINITY],
            },
            Request::GetTensor { key: "k2".into() },
            Request::RunModel {
                model: "net".into(),
                in_key: "in".into(),
                out_key: "out".into(),
                deadline_micros: 5_000_000,
                trace: None,
            },
            Request::RunModel {
                model: "net".into(),
                in_key: "in".into(),
                out_key: "out".into(),
                deadline_micros: 0,
                trace: TraceContext::from_wire(&{
                    let mut b = [0u8; TRACE_CONTEXT_WIRE_LEN];
                    b[..8].copy_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
                    b[8..].copy_from_slice(&42u64.to_le_bytes());
                    b
                }),
            },
            Request::Traces,
            Request::Del { key: "k".into() },
            Request::Stats,
            Request::Metrics,
            Request::Ping {
                payload: b"hello".to_vec(),
            },
        ];
        for req in reqs {
            assert_eq!(roundtrip_request(req.clone()), req);
        }
    }

    #[test]
    fn sparse_request_roundtrips() {
        let mut coo = hpcnet_tensor::Coo::new(2, 6);
        coo.push(0, 1, 2.5);
        coo.push(1, 5, -0.125);
        let req = Request::PutSparse {
            key: "sp".into(),
            tensor: coo.to_csr(),
        };
        assert_eq!(roundtrip_request(req.clone()), req);
    }

    #[test]
    fn nan_payloads_roundtrip_bit_exactly() {
        let weird = f64::from_bits(0x7FF8_DEAD_BEEF_0001); // a payloaded NaN
        let req = Request::PutTensor {
            key: "nan".into(),
            values: vec![weird, f64::NAN, f64::NEG_INFINITY, -0.0],
        };
        let Request::PutTensor { values, .. } = roundtrip_request(req) else {
            panic!("wrong variant");
        };
        assert_eq!(values[0].to_bits(), 0x7FF8_DEAD_BEEF_0001);
        assert!(values[1].is_nan());
        assert_eq!(values[2], f64::NEG_INFINITY);
        assert_eq!(values[3].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn every_response_roundtrips() {
        let resps = vec![
            Response::Ok,
            Response::Tensor(vec![0.5, f64::NAN]),
            Response::Deleted(true),
            Response::Deleted(false),
            Response::Text("hpcnet_serving_requests_total 4\n".into()),
            Response::Pong(b"echo".to_vec()),
            Response::Error(ErrorFrame {
                code: err_code::OVERLOADED,
                detail: 64,
                message: String::new(),
            }),
        ];
        for resp in resps {
            let mut wire = Vec::new();
            write_frame(&mut wire, resp.opcode(), 3, &resp.encode()).unwrap();
            let FrameOutcome::Frame(raw) = read_frame(&mut Cursor::new(&wire)).unwrap() else {
                panic!("frame did not validate");
            };
            let back = decode_response(&raw).unwrap();
            match (&resp, &back) {
                // NaN != NaN, so compare tensors bitwise.
                (Response::Tensor(a), Response::Tensor(b)) => {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                _ => assert_eq!(resp, back),
            }
        }
    }

    #[test]
    fn error_frames_mirror_runtime_errors() {
        use hpcnet_runtime::RuntimeError as E;
        let errors = vec![
            E::MissingTensor("k".into()),
            E::MissingModel("m".into()),
            E::Inference("shape".into()),
            E::InvalidKey("empty key".into()),
            E::Overloaded { queue_depth: 128 },
            E::DeadlineExceeded,
            E::ShuttingDown,
            E::QualityRejected("residual".into()),
            E::Disconnected,
            E::Transport("refused".into()),
            E::Protocol("bad frame".into()),
        ];
        for e in errors {
            assert_eq!(ErrorFrame::from_runtime(&e).to_runtime(), e);
        }
    }

    #[test]
    fn zero_length_keys_are_rejected() {
        let mut w = PayloadWriter::new();
        w.str16("");
        let frame = RawFrame {
            version: VERSION,
            opcode: Opcode::GetTensor as u8,
            seq: 0,
            payload: w.into_vec(),
        };
        assert!(matches!(decode_request(&frame), Err(WireError::EmptyKey)));
        // And RunModel validates both of its keys.
        let mut w = PayloadWriter::new();
        w.str16("model");
        w.str16("");
        w.str16("out");
        w.u64(0);
        let frame = RawFrame {
            version: VERSION,
            opcode: Opcode::RunModel as u8,
            seq: 0,
            payload: w.into_vec(),
        };
        assert!(matches!(decode_request(&frame), Err(WireError::EmptyKey)));
    }

    #[test]
    fn corrupted_and_truncated_frames_classify_correctly() {
        let req = Request::Ping {
            payload: b"abc".to_vec(),
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, req.opcode(), 1, &req.encode()).unwrap();

        // Flip a payload bit: recoverable checksum failure, seq survives.
        let mut bad = wire.clone();
        bad[HEADER_LEN] ^= 0x40;
        match read_frame(&mut Cursor::new(&bad)).unwrap() {
            FrameOutcome::Corrupt { seq, reason } => {
                assert_eq!(seq, 1);
                assert!(matches!(reason, WireError::Checksum { .. }));
                assert!(!reason.is_fatal());
            }
            FrameOutcome::Frame(_) => panic!("corruption undetected"),
        }

        // Truncate: fatal.
        let cut = &wire[..wire.len() - 3];
        let err = read_frame(&mut Cursor::new(cut)).unwrap_err();
        assert!(matches!(err, WireError::Io(_)));
        assert!(err.is_fatal());

        // Wrong magic: fatal.
        let mut magic = wire.clone();
        magic[0] = b'X';
        assert!(read_frame(&mut Cursor::new(&magic)).unwrap_err().is_fatal());

        // Implausible length: fatal (checksum never consulted).
        let mut huge = wire.clone();
        huge[8..12].copy_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&huge)).unwrap_err(),
            WireError::Oversize(_)
        ));

        // Unsupported version: recoverable (the checksum is recomputed
        // over what was sent, so re-sign the frame).
        let mut vers = wire.clone();
        vers[2] = VERSION + 1;
        let crc = crc32(&vers[2..wire.len() - 4]);
        let n = vers.len();
        vers[n - 4..].copy_from_slice(&crc.to_le_bytes());
        match read_frame(&mut Cursor::new(&vers)).unwrap() {
            FrameOutcome::Corrupt { reason, .. } => {
                assert!(matches!(reason, WireError::BadVersion(_)))
            }
            FrameOutcome::Frame(_) => panic!("version mismatch undetected"),
        }
    }

    #[test]
    fn trailing_garbage_is_malformed() {
        let mut payload = Request::Del { key: "k".into() }.encode();
        payload.push(0xAB);
        let frame = RawFrame {
            version: VERSION,
            opcode: Opcode::Del as u8,
            seq: 0,
            payload,
        };
        assert!(matches!(
            decode_request(&frame),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn response_opcodes_are_not_requests_and_vice_versa() {
        let frame = RawFrame {
            version: VERSION,
            opcode: Opcode::Pong as u8,
            seq: 0,
            payload: Vec::new(),
        };
        assert!(matches!(
            decode_request(&frame),
            Err(WireError::UnknownOpcode(_))
        ));
        let frame = RawFrame {
            version: VERSION,
            opcode: Opcode::Ping as u8,
            seq: 0,
            payload: Vec::new(),
        };
        assert!(matches!(
            decode_response(&frame),
            Err(WireError::UnknownOpcode(_))
        ));
        assert!(Opcode::from_u8(0x42).is_none());
    }

    #[test]
    fn v1_frames_are_still_served() {
        // A v1 client's RunModel frame: same payload bytes, version 1.
        let req = Request::RunModel {
            model: "net".into(),
            in_key: "in".into(),
            out_key: "out".into(),
            deadline_micros: 1_000,
            trace: None,
        };
        let mut wire = Vec::new();
        write_frame_with_version(&mut wire, 1, req.opcode(), 9, &req.encode()).unwrap();
        let FrameOutcome::Frame(raw) = read_frame(&mut Cursor::new(&wire)).unwrap() else {
            panic!("v1 frame did not validate");
        };
        assert_eq!(raw.version, 1);
        assert_eq!(decode_request(&raw).unwrap(), req);
    }

    #[test]
    fn traceless_v2_run_model_payload_is_v1_identical() {
        let with_none = Request::RunModel {
            model: "net".into(),
            in_key: "in".into(),
            out_key: "out".into(),
            deadline_micros: 7,
            trace: None,
        }
        .encode();
        // The v1 form: three strings + deadline, nothing after.
        let mut w = PayloadWriter::new();
        w.str16("net");
        w.str16("in");
        w.str16("out");
        w.u64(7);
        assert_eq!(with_none, w.into_vec());
    }

    #[test]
    fn traced_run_model_roundtrips_with_context() {
        let ctx = TraceContext::from_wire(&{
            let mut b = [0u8; TRACE_CONTEXT_WIRE_LEN];
            b[..8].copy_from_slice(&0x1234_5678_9ABC_DEF0u64.to_le_bytes());
            b[8..].copy_from_slice(&0xFEEDu64.to_le_bytes());
            b
        });
        assert!(ctx.is_some());
        let req = Request::RunModel {
            model: "net".into(),
            in_key: "in".into(),
            out_key: "out".into(),
            deadline_micros: 0,
            trace: ctx,
        };
        assert_eq!(roundtrip_request(req.clone()), req);
    }

    #[test]
    fn v1_traces_request_gets_typed_version_error_not_a_hangup() {
        let mut wire = Vec::new();
        write_frame_with_version(&mut wire, 1, Opcode::Traces, 4, &[]).unwrap();
        let FrameOutcome::Frame(raw) = read_frame(&mut Cursor::new(&wire)).unwrap() else {
            panic!("v1 frame did not validate");
        };
        let err = decode_request(&raw).unwrap_err();
        match &err {
            WireError::VersionTooOld { op, needs, got } => {
                assert_eq!(*op, "traces");
                assert_eq!(*needs, TRACES_MIN_VERSION);
                assert_eq!(*got, 1);
            }
            other => panic!("expected VersionTooOld, got {other:?}"),
        }
        // Recoverable: the server answers with an error frame and keeps
        // the connection; the message names both versions.
        assert!(!err.is_fatal());
        let msg = err.to_string();
        assert!(msg.contains('1') && msg.contains('2'), "message: {msg}");
    }

    #[test]
    fn v1_run_model_with_trailing_trace_bytes_is_malformed() {
        // A trace tail on a v1 frame is not parsed — it's trailing
        // garbage, rejected rather than silently ignored.
        let req = Request::RunModel {
            model: "net".into(),
            in_key: "in".into(),
            out_key: "out".into(),
            deadline_micros: 0,
            trace: TraceContext::from_wire(&[0xAA; TRACE_CONTEXT_WIRE_LEN]),
        };
        let mut wire = Vec::new();
        write_frame_with_version(&mut wire, 1, req.opcode(), 2, &req.encode()).unwrap();
        let FrameOutcome::Frame(raw) = read_frame(&mut Cursor::new(&wire)).unwrap() else {
            panic!("frame did not validate");
        };
        assert!(matches!(decode_request(&raw), Err(WireError::Malformed(_))));
    }
}
