//! The TCP front end: a multi-threaded server exposing an
//! [`Orchestrator`] over the wire protocol.
//!
//! Thread model — one accept loop plus **two threads per connection**:
//!
//! * the *reader* owns the receive half: it frames bytes, decodes
//!   requests, and pushes jobs into a bounded channel;
//! * the *executor* owns the send half: it pops jobs, runs them against
//!   the orchestrator, and writes the reply frame.
//!
//! The channel between them is a [`std::sync::mpsc::sync_channel`] of
//! capacity [`NetServerBuilder::window`]: when a client pipelines more
//! requests than the window, the reader blocks on `send`, stops pulling
//! from the socket, and TCP flow control backpressures the sender — the
//! network analog of the orchestrator's bounded admission queue.
//!
//! Error handling mirrors [`crate::protocol::WireError::is_fatal`]:
//! recoverable frame
//! damage (checksum mismatch, bad version, malformed payload) is answered
//! with a typed error frame and the connection stays usable; fatal damage
//! (bad magic, oversize, mid-frame EOF) closes the connection.
//!
//! Graceful drain ([`NetServer::shutdown`]): stop accepting, half-close
//! the read side of every live connection (readers see EOF and hang up
//! their job channels), let executors finish answering everything already
//! queued, join all threads, then hand the orchestrator to
//! [`Orchestrator::shutdown`] for its own drain. Nothing already admitted
//! is dropped.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hpcnet_runtime::{Client, Orchestrator, Result, RuntimeError, ServingStats};
use hpcnet_telemetry::{Counter, Gauge, Registry};

use crate::protocol::{
    self, decode_request, read_frame, write_frame_with_version, ErrorFrame, FrameOutcome, Opcode,
    Request, Response,
};

/// Connections currently open.
pub const CONNECTIONS_GAUGE: &str = "hpcnet_net_connections";
/// Connections accepted since start.
pub const CONNECTIONS_TOTAL: &str = "hpcnet_net_connections_total";
/// Requests executed, labeled by `op`.
pub const NET_REQUESTS_TOTAL: &str = "hpcnet_net_requests_total";
/// Wire bytes read off client sockets.
pub const BYTES_READ_TOTAL: &str = "hpcnet_net_bytes_read_total";
/// Wire bytes written to client sockets.
pub const BYTES_WRITTEN_TOTAL: &str = "hpcnet_net_bytes_written_total";
/// Recoverable protocol violations answered with an error frame.
pub const PROTOCOL_ERRORS_TOTAL: &str = "hpcnet_net_protocol_errors_total";
/// End-to-end server-side request latency (decode to reply written),
/// labeled by `op`.
pub const REQUEST_SECONDS: &str = "hpcnet_net_request_seconds";

/// `# HELP` text for every `hpcnet_net_*` series, installed into the
/// orchestrator's registry when the server binds its instruments.
const NET_METRIC_HELP: &[(&str, &str)] = &[
    (CONNECTIONS_GAUGE, "Connections currently open."),
    (CONNECTIONS_TOTAL, "Connections accepted since start."),
    (NET_REQUESTS_TOTAL, "Requests executed, labeled by op."),
    (BYTES_READ_TOTAL, "Wire bytes read off client sockets."),
    (BYTES_WRITTEN_TOTAL, "Wire bytes written to client sockets."),
    (
        PROTOCOL_ERRORS_TOTAL,
        "Recoverable protocol violations answered with an error frame.",
    ),
    (
        REQUEST_SECONDS,
        "Server-side request latency from decode to reply written, labeled by op.",
    ),
];

/// Configures and starts a [`NetServer`].
///
/// ```no_run
/// use hpcnet_net::NetServer;
/// use hpcnet_runtime::Orchestrator;
///
/// let orchestrator = Orchestrator::builder().build();
/// let server = NetServer::builder(orchestrator)
///     .window(64)
///     .serve("127.0.0.1:0")
///     .unwrap();
/// println!("listening on {}", server.local_addr());
/// server.shutdown();
/// ```
pub struct NetServerBuilder {
    orchestrator: Orchestrator,
    window: usize,
}

impl NetServerBuilder {
    /// Per-connection in-flight window: how many decoded requests may sit
    /// between the reader and the executor before the reader stops
    /// pulling bytes off the socket. Clamped to at least 1; default 32.
    pub fn window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Bind `addr` and start serving. Port 0 picks an ephemeral port —
    /// read it back from [`NetServer::local_addr`]. Bind and spawn
    /// failures come back as [`RuntimeError::Transport`].
    pub fn serve(self, addr: impl ToSocketAddrs) -> Result<NetServer> {
        let listener =
            TcpListener::bind(addr).map_err(|e| RuntimeError::Transport(format!("bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| RuntimeError::Transport(format!("local addr: {e}")))?;
        let shared = Arc::new(ServerShared {
            orchestrator: self.orchestrator,
            metrics: NetMetrics::new(),
            window: self.window,
            stop: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(0),
            live: Mutex::new(HashMap::new()),
            joiners: Mutex::new(Vec::new()),
        });
        // Resolve instrument handles once, against the orchestrator's own
        // registry, so METRICS exposes serving and network series side by
        // side.
        shared
            .metrics
            .bind(&shared.orchestrator.telemetry_registry());
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("hpcnet-net-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .map_err(|e| RuntimeError::Transport(format!("spawn accept thread: {e}")))?
        };
        Ok(NetServer {
            shared,
            accept,
            local_addr,
        })
    }
}

/// A running TCP server over an orchestrator. Dropping the handle without
/// calling [`NetServer::shutdown`] detaches the threads (the process
/// keeps serving); call `shutdown` for the drained stop.
pub struct NetServer {
    shared: Arc<ServerShared>,
    accept: JoinHandle<()>,
    local_addr: std::net::SocketAddr,
}

impl NetServer {
    /// Start configuring a server around `orchestrator`.
    pub fn builder(orchestrator: Orchestrator) -> NetServerBuilder {
        NetServerBuilder {
            orchestrator,
            window: 32,
        }
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The orchestrator being served, for registering models after start.
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.shared.orchestrator
    }

    /// Gracefully drain and stop: refuse new connections, half-close
    /// every live connection's read side, answer everything already
    /// queued, join all connection threads, then drain the orchestrator
    /// itself. Returns the orchestrator's final serving stats.
    pub fn shutdown(self) -> ServingStats {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.accept.join();
        // EOF every reader: replies still flow on the write half.
        for stream in self
            .shared
            .live
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let joiners = std::mem::take(
            &mut *self
                .shared
                .joiners
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for j in joiners {
            let _ = j.join();
        }
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared.orchestrator.shutdown(),
            // Every server thread is joined, so this arm means a handle
            // leaked somewhere. Degrade to a stats snapshot (skipping the
            // orchestrator's own drain) instead of panicking mid-shutdown.
            Err(shared) => shared.orchestrator.serving_stats(),
        }
    }
}

struct ServerShared {
    orchestrator: Orchestrator,
    metrics: NetMetrics,
    window: usize,
    stop: AtomicBool,
    next_conn_id: AtomicU64,
    /// Live connection streams, for half-closing at shutdown.
    live: Mutex<HashMap<u64, TcpStream>>,
    /// Reader and executor handles of every connection ever accepted.
    joiners: Mutex<Vec<JoinHandle<()>>>,
}

/// Cached handles for the `hpcnet_net_*` series. Per-op instruments are
/// resolved lazily (the op set is small and fixed, but resolving on first
/// use keeps unused series out of the exposition).
struct NetMetrics {
    inner: Mutex<Option<BoundMetrics>>,
}

struct BoundMetrics {
    registry: Arc<Registry>,
    connections: Arc<Gauge>,
    connections_total: Arc<Counter>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    protocol_errors: Arc<Counter>,
}

impl NetMetrics {
    fn new() -> Self {
        NetMetrics {
            inner: Mutex::new(None),
        }
    }

    fn bind(&self, registry: &Arc<Registry>) {
        registry.set_helps(NET_METRIC_HELP);
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner) = Some(BoundMetrics {
            registry: registry.clone(),
            connections: registry.gauge(CONNECTIONS_GAUGE),
            connections_total: registry.counter(CONNECTIONS_TOTAL),
            bytes_read: registry.counter(BYTES_READ_TOTAL),
            bytes_written: registry.counter(BYTES_WRITTEN_TOTAL),
            protocol_errors: registry.counter(PROTOCOL_ERRORS_TOTAL),
        });
    }

    fn with(&self, f: impl FnOnce(&BoundMetrics)) {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(m) = guard.as_ref() {
            f(m);
        }
    }

    fn connection_opened(&self) {
        self.with(|m| {
            m.connections.inc();
            m.connections_total.inc();
        });
    }

    fn connection_closed(&self) {
        self.with(|m| m.connections.dec());
    }

    fn bytes_read(&self, n: usize) {
        self.with(|m| m.bytes_read.add(n as u64));
    }

    fn bytes_written(&self, n: usize) {
        self.with(|m| m.bytes_written.add(n as u64));
    }

    fn protocol_error(&self) {
        self.with(|m| m.protocol_errors.inc());
    }

    fn request(&self, op: Opcode, elapsed: Duration) {
        self.with(|m| {
            m.registry
                .counter_with(NET_REQUESTS_TOTAL, &[("op", op.name())])
                .inc();
            m.registry
                .time_histogram(REQUEST_SECONDS, &[("op", op.name())])
                .record_duration(elapsed);
        });
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    for incoming in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match incoming {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_nodelay(true);
        // relaxed: pure ID counter — uniqueness is all that matters, no
        // other memory is published through it.
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        // Three handles to one socket: reader half, shutdown handle (for
        // the half-close at drain), and the executor's write half. A
        // process that cannot duplicate the fd refuses the connection.
        let read_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let shutdown_handle = match read_half.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared
            .live
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(conn_id, shutdown_handle);
        shared.metrics.connection_opened();

        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(shared.window);
        let reader = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("hpcnet-net-read-{conn_id}"))
                .spawn(move || reader_loop(read_half, tx, shared))
        };
        let reader = match reader {
            Ok(h) => h,
            Err(_) => {
                // Out of threads: refuse the connection instead of
                // serving a half-wired one.
                drop_connection(&shared, conn_id);
                continue;
            }
        };
        let executor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("hpcnet-net-exec-{conn_id}"))
                .spawn(move || executor_loop(stream, rx, conn_id, shared))
        };
        let executor = match executor {
            Ok(h) => h,
            Err(_) => {
                // The reader is already running; half-closing the socket
                // makes it see EOF and exit (dropping `rx` above already
                // broke its channel). Keep its handle for shutdown.
                drop_connection(&shared, conn_id);
                shared
                    .joiners
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(reader);
                continue;
            }
        };
        let mut joiners = shared
            .joiners
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        joiners.push(reader);
        joiners.push(executor);
    }
}

/// Abandon a connection that never became fully wired: close the socket,
/// drop it from the live map, and rebalance the connection gauge.
fn drop_connection(shared: &ServerShared, conn_id: u64) {
    let removed = shared
        .live
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(&conn_id);
    if let Some(stream) = removed {
        let _ = stream.shutdown(Shutdown::Both);
    }
    shared.metrics.connection_closed();
}

/// One unit of work handed from the reader to the executor. Both carry
/// the request frame's protocol version so the reply can echo it — a v1
/// client of a v2 server sees pure v1 traffic.
enum Job {
    /// A decoded request to execute.
    Run {
        seq: u32,
        version: u8,
        request: Request,
        received: Instant,
    },
    /// A frame that failed validation or decoding: answer with a typed
    /// protocol error, do not execute anything.
    Reject {
        seq: u32,
        version: u8,
        message: String,
    },
}

fn reader_loop(mut stream: TcpStream, tx: SyncSender<Job>, shared: Arc<ServerShared>) {
    loop {
        let outcome = match read_frame(&mut stream) {
            Ok(o) => o,
            // Fatal: EOF, mid-frame truncation, bad magic, oversize.
            // Dropping `tx` is the hang-up signal for the executor.
            Err(_) => return,
        };
        let job = match outcome {
            FrameOutcome::Frame(raw) => {
                shared
                    .metrics
                    .bytes_read(protocol::frame_len(raw.payload.len()));
                match decode_request(&raw) {
                    Ok(request) => Job::Run {
                        seq: raw.seq,
                        version: raw.version,
                        request,
                        received: Instant::now(),
                    },
                    Err(e) => Job::Reject {
                        seq: raw.seq,
                        version: raw.version,
                        message: e.to_string(),
                    },
                }
            }
            // A corrupt frame has no trustworthy version byte; answer at
            // the current version.
            FrameOutcome::Corrupt { seq, reason } => Job::Reject {
                seq,
                version: protocol::VERSION,
                message: reason.to_string(),
            },
        };
        // Blocks when the in-flight window is full — TCP backpressure.
        if tx.send(job).is_err() {
            // Executor died (write error); nothing left to do.
            return;
        }
    }
}

fn executor_loop(
    mut stream: TcpStream,
    rx: Receiver<Job>,
    conn_id: u64,
    shared: Arc<ServerShared>,
) {
    let client = shared.orchestrator.client();
    // Drains naturally: once the reader drops `tx` (EOF or shutdown's
    // half-close), `recv` yields the queued remainder and then errors.
    while let Ok(job) = rx.recv() {
        let (seq, version, response, op, started) = match job {
            Job::Run {
                seq,
                version,
                request,
                received,
            } => {
                let op = request.opcode();
                let response = execute(&client, &shared.orchestrator, request);
                (seq, version, response, Some(op), received)
            }
            Job::Reject {
                seq,
                version,
                message,
            } => {
                shared.metrics.protocol_error();
                (
                    seq,
                    version,
                    Response::Error(ErrorFrame::from_runtime(&RuntimeError::Protocol(message))),
                    None,
                    Instant::now(),
                )
            }
        };
        let payload = response.encode();
        match write_frame_with_version(&mut stream, version, response.opcode(), seq, &payload) {
            Ok(n) => {
                let _ = stream.flush();
                shared.metrics.bytes_written(n);
            }
            Err(_) => break,
        }
        if let Some(op) = op {
            shared.metrics.request(op, started.elapsed());
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    shared
        .live
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(&conn_id);
    shared.metrics.connection_closed();
}

/// Execute one decoded request against the orchestrator, mapping every
/// failure into a typed error frame.
fn execute(client: &Client, orchestrator: &Orchestrator, request: Request) -> Response {
    let result: Result<Response> = match request {
        Request::PutTensor { key, values } => {
            client.put_tensor(&key, &values).map(|()| Response::Ok)
        }
        Request::PutSparse { key, tensor } => client
            .put_sparse_tensor(&key, tensor)
            .map(|()| Response::Ok),
        Request::GetTensor { key } => client.unpack_tensor(&key).map(Response::Tensor),
        Request::RunModel {
            model,
            in_key,
            out_key,
            deadline_micros,
            trace,
        } => {
            let deadline = (deadline_micros != 0).then(|| Duration::from_micros(deadline_micros));
            client
                .run_model_with_context(&model, &in_key, &out_key, deadline, trace)
                .map(|()| Response::Ok)
        }
        Request::Del { key } => client.del_tensor(&key).map(Response::Deleted),
        Request::Stats => serde_json::to_string(&orchestrator.serving_stats())
            .map(Response::Text)
            .map_err(|e| RuntimeError::Inference(format!("serializing stats: {e}"))),
        Request::Metrics => Ok(Response::Text(orchestrator.metrics_text())),
        Request::Ping { payload } => Ok(Response::Pong(payload)),
        Request::Traces => Ok(Response::Text(hpcnet_telemetry::trace::traces_to_json(
            &orchestrator.trace_dump(),
        ))),
    };
    result.unwrap_or_else(|e| Response::Error(ErrorFrame::from_runtime(&e)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::write_frame;
    use std::io::Read;

    fn request_response(stream: &mut TcpStream, req: &Request, seq: u32) -> Response {
        write_frame(stream, req.opcode(), seq, &req.encode()).unwrap();
        match read_frame(stream).unwrap() {
            FrameOutcome::Frame(raw) => {
                assert_eq!(raw.seq, seq);
                crate::protocol::decode_response(&raw).unwrap()
            }
            FrameOutcome::Corrupt { reason, .. } => panic!("corrupt reply: {reason}"),
        }
    }

    #[test]
    fn serves_puts_runs_and_stats_over_raw_tcp() {
        let orchestrator = Orchestrator::builder().workers(2).build();
        orchestrator.register_model(crate::DEMO_MODEL, crate::demo_bundle());
        let server = NetServer::builder(orchestrator)
            .serve("127.0.0.1:0")
            .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();

        let input = crate::demo_input(0);
        let r = request_response(
            &mut stream,
            &Request::PutTensor {
                key: "in".into(),
                values: input.clone(),
            },
            1,
        );
        assert_eq!(r, Response::Ok);
        let r = request_response(
            &mut stream,
            &Request::RunModel {
                model: crate::DEMO_MODEL.into(),
                in_key: "in".into(),
                out_key: "out".into(),
                deadline_micros: 0,
                trace: None,
            },
            2,
        );
        assert_eq!(r, Response::Ok);
        let Response::Tensor(out) =
            request_response(&mut stream, &Request::GetTensor { key: "out".into() }, 3)
        else {
            panic!("expected tensor");
        };
        assert_eq!(out.len(), 4);

        // Typed error for a missing key.
        let r = request_response(
            &mut stream,
            &Request::GetTensor {
                key: "absent".into(),
            },
            4,
        );
        let Response::Error(e) = r else {
            panic!("expected error frame");
        };
        assert_eq!(e.to_runtime(), RuntimeError::MissingTensor("absent".into()));

        // DEL reports existence.
        let r = request_response(&mut stream, &Request::Del { key: "out".into() }, 5);
        assert_eq!(r, Response::Deleted(true));
        let r = request_response(&mut stream, &Request::Del { key: "out".into() }, 6);
        assert_eq!(r, Response::Deleted(false));

        // STATS parses as JSON; METRICS carries net series.
        let Response::Text(stats) = request_response(&mut stream, &Request::Stats, 7) else {
            panic!("expected text");
        };
        assert!(stats.contains("\"requests\""));
        let Response::Text(metrics) = request_response(&mut stream, &Request::Metrics, 8) else {
            panic!("expected text");
        };
        assert!(metrics.contains(CONNECTIONS_TOTAL));
        assert!(metrics.contains(NET_REQUESTS_TOTAL));

        let stats = server.shutdown();
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn corrupted_frame_gets_error_reply_and_connection_survives() {
        let orchestrator = Orchestrator::builder().workers(1).build();
        let server = NetServer::builder(orchestrator)
            .serve("127.0.0.1:0")
            .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();

        // Hand-corrupt a PING frame's payload.
        let req = Request::Ping {
            payload: b"payload".to_vec(),
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, req.opcode(), 9, &req.encode()).unwrap();
        let n = wire.len();
        wire[n - 6] ^= 0x01;
        stream.write_all(&wire).unwrap();
        let FrameOutcome::Frame(raw) = read_frame(&mut stream).unwrap() else {
            panic!("reply frame should validate");
        };
        assert_eq!(raw.seq, 9);
        let Response::Error(e) = crate::protocol::decode_response(&raw).unwrap() else {
            panic!("expected protocol error");
        };
        assert!(matches!(e.to_runtime(), RuntimeError::Protocol(_)));

        // The same connection still answers a clean request.
        let r = request_response(
            &mut stream,
            &Request::Ping {
                payload: b"ok".to_vec(),
            },
            10,
        );
        assert_eq!(r, Response::Pong(b"ok".to_vec()));

        // Fatal garbage (bad magic) closes the connection.
        stream.write_all(b"XXnope-this-is-not-a-frame").unwrap();
        let mut buf = [0u8; 16];
        // Server closes; we eventually observe EOF (read returns Ok(0)).
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }
        server.shutdown();
    }
}
