//! Networked serving for the orchestrator (DESIGN.md §12): the deployed
//! surrogate as a *service* rather than an in-process library.
//!
//! The paper's deployment story (§6.3, Listing 1) has the application and
//! the surrogate in one address space. Real HPC deployments often split
//! them — the solver runs on compute nodes, the surrogate serves from a
//! node with the trained models — so this crate adds the wire between the
//! two halves without changing the surface the application programs
//! against:
//!
//! * [`protocol`] — a compact length-prefixed binary framing with CRC-32
//!   checksums, versioned frames, and typed error frames mirroring
//!   [`hpcnet_runtime::RuntimeError`],
//! * [`server`] — a multi-threaded TCP front end
//!   ([`NetServer`]) over an [`hpcnet_runtime::Orchestrator`]: one
//!   reader and one executor thread per connection, a bounded
//!   per-connection in-flight window, connection/byte/request telemetry
//!   recorded into the orchestrator's own registry, and graceful drain
//!   that reuses `Orchestrator::shutdown()`,
//! * [`client`] — [`RemoteClient`], the same Listing-1 surface as the
//!   in-process `Client` (both implement
//!   [`hpcnet_runtime::ClientApi`]), with connection pooling,
//!   configurable timeouts, and bounded-backoff reconnection.
//!
//! The `hpcnet-serve` binary wraps [`server`] for two-terminal use; see
//! `examples/remote_quickstart.rs` and the README's "Remote serving"
//! section.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{RemoteClient, RemoteClientBuilder};
pub use server::{NetServer, NetServerBuilder};

use hpcnet_nn::{Mlp, SurrogateNet, Topology};
use hpcnet_runtime::ModelBundle;

/// Name the demo model is registered under by `hpcnet-serve --demo`,
/// [`demo_bundle`] consumers, and the loopback tests.
pub const DEMO_MODEL: &str = "demo-surrogate";

/// Input width of the [`demo_bundle`] model.
pub const DEMO_INPUT_DIM: usize = 8;

/// A small deterministic surrogate (8 → 16 → 4 MLP, fixed seed). The same
/// weights are constructed on every call, so a client that builds the
/// bundle locally can bit-compare its own forward pass against outputs
/// produced by a remote `hpcnet-serve --demo` process.
pub fn demo_bundle() -> ModelBundle {
    let mut rng = hpcnet_tensor::rng::seeded(0xD0_0D, "hpcnet-net demo model");
    #[allow(clippy::expect_used)]
    let surrogate = Mlp::new(&Topology::mlp(vec![DEMO_INPUT_DIM, 16, 4]), &mut rng)
        // hpcnet-lint: allow(no-panic) -- constant topology, test-covered; cannot fail on user input
        .expect("demo topology is valid");
    ModelBundle {
        surrogate: SurrogateNet::Mlp(surrogate),
        autoencoder: None,
        scaler: None,
        output_scaler: None,
    }
}

/// A deterministic input row for the demo model: `sample` selects among
/// distinct but reproducible vectors.
pub fn demo_input(sample: u64) -> Vec<f64> {
    (0..DEMO_INPUT_DIM)
        .map(|i| ((sample as f64 + 1.0) * 0.37 + i as f64 * 0.11).sin())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_bundle_is_deterministic() {
        let a = demo_bundle();
        let b = demo_bundle();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(demo_input(3), demo_input(3));
        assert_ne!(demo_input(3), demo_input(4));
    }
}
