//! [`RemoteClient`]: the Listing-1 client surface over TCP.
//!
//! A `RemoteClient` is a drop-in stand-in for the in-process
//! `hpcnet_runtime::Client` — both implement
//! [`hpcnet_runtime::ClientApi`], so deployment code written against the
//! trait runs unchanged whether the orchestrator is in the same process
//! or across the network.
//!
//! Transport behavior:
//!
//! * **Pooling** — idle connections are kept (up to
//!   [`RemoteClientBuilder::pool`]) and reused; concurrent calls from
//!   clones of one client dial extra connections on demand.
//! * **Retries** — connect/read/write failures are retried with bounded
//!   exponential backoff ([`RemoteClientBuilder::retries`] /
//!   [`RemoteClientBuilder::backoff`]); when the budget is exhausted the
//!   call returns [`RuntimeError::Transport`]. Typed server errors
//!   (`Overloaded`, `DeadlineExceeded`, `MissingTensor`, ...) are *never*
//!   retried — they travel back exactly as their in-process counterparts.
//! * **At-least-once caveat** — a request whose reply is lost to a
//!   transport fault is re-sent on a fresh connection. Every operation
//!   but `run_model` is idempotent; a retried `run_model` re-executes the
//!   surrogate, which is deterministic, so the stored output is
//!   unchanged (only the server's request counters tick twice).

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use hpcnet_runtime::{ClientApi, Result, RuntimeError, ServingStats};
use hpcnet_telemetry::trace::{self, merge_traces, stage_names, traces_from_json};
use hpcnet_telemetry::{
    FlightRecorder, FlightRecorderConfig, SpanId, SpanTimer, Trace, TraceContext,
};
use hpcnet_tensor::Csr;

use crate::protocol::{decode_response, read_frame, write_frame, FrameOutcome, Request, Response};

/// Service label on spans this client records (DESIGN.md §16).
const TRACE_SERVICE: &str = "remote_client";

/// Configures a [`RemoteClient`].
#[derive(Debug, Clone)]
pub struct RemoteClientBuilder {
    addr: String,
    pool: usize,
    connect_timeout: Duration,
    read_timeout: Option<Duration>,
    retries: u32,
    backoff: Duration,
    max_backoff: Duration,
}

impl RemoteClientBuilder {
    /// Maximum idle connections kept for reuse (default 2). Concurrent
    /// calls beyond the pool dial extra connections that are dropped when
    /// the pool is full on return.
    pub fn pool(mut self, pool: usize) -> Self {
        self.pool = pool.max(1);
        self
    }

    /// TCP connect timeout (default 2 s).
    pub fn connect_timeout(mut self, t: Duration) -> Self {
        self.connect_timeout = t;
        self
    }

    /// Socket read timeout for replies (default 30 s; `None` blocks
    /// indefinitely).
    pub fn read_timeout(mut self, t: Option<Duration>) -> Self {
        self.read_timeout = t;
        self
    }

    /// Transport-failure retry budget per call (default 3 retries, i.e.
    /// up to 4 attempts).
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Initial backoff before the first retry (default 50 ms); doubles
    /// per retry, capped by [`RemoteClientBuilder::max_backoff`]
    /// (default 2 s).
    pub fn backoff(mut self, initial: Duration, max: Duration) -> Self {
        self.backoff = initial;
        self.max_backoff = max.max(initial);
        self
    }

    /// Dial the server and verify liveness with a PING. Fails with
    /// [`RuntimeError::Transport`] when the server is unreachable within
    /// the retry budget.
    pub fn connect(self) -> Result<RemoteClient> {
        let client = self.connect_lazy();
        client.ping()?;
        Ok(client)
    }

    /// Build the client without the liveness PING: nothing is dialed
    /// until the first call. For fleet-level callers (`hpcnet-cluster`)
    /// that must hold a handle to a currently-down endpoint and keep
    /// probing it until it comes back.
    pub fn connect_lazy(self) -> RemoteClient {
        RemoteClient {
            inner: Arc::new(ClientInner {
                config: self,
                pool: Mutex::new(Vec::new()),
                seq: AtomicU32::new(1),
                recorder: FlightRecorder::new(FlightRecorderConfig::default()),
            }),
        }
    }
}

/// A pooled, reconnecting TCP client for a [`crate::NetServer`].
///
/// Cheap to clone — clones share the connection pool.
#[derive(Clone)]
pub struct RemoteClient {
    inner: Arc<ClientInner>,
}

struct ClientInner {
    config: RemoteClientBuilder,
    pool: Mutex<Vec<TcpStream>>,
    seq: AtomicU32,
    /// Client-side halves of request traces (DESIGN.md §16): the root
    /// span of every `run_model` this client originates, retained under
    /// the same tail-sampling rules as the server's recorder.
    recorder: FlightRecorder,
}

impl RemoteClient {
    /// Start configuring a client for `addr` (e.g. `"127.0.0.1:4915"`).
    pub fn builder(addr: impl Into<String>) -> RemoteClientBuilder {
        RemoteClientBuilder {
            addr: addr.into(),
            pool: 2,
            connect_timeout: Duration::from_secs(2),
            read_timeout: Some(Duration::from_secs(30)),
            retries: 3,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }

    /// Connect with default settings.
    pub fn connect(addr: impl Into<String>) -> Result<RemoteClient> {
        RemoteClient::builder(addr).connect()
    }

    /// Round-trip a PING and verify the echo.
    pub fn ping(&self) -> Result<()> {
        // relaxed: pure ID counter — uniqueness is all that matters, no
        // other memory is published through it.
        let nonce = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let payload = nonce.to_le_bytes().to_vec();
        match self.call(Request::Ping {
            payload: payload.clone(),
        })? {
            Response::Pong(echo) if echo == payload => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// The server's cumulative serving statistics.
    pub fn serving_stats(&self) -> Result<ServingStats> {
        match self.call(Request::Stats)? {
            Response::Text(json) => serde_json::from_str(&json)
                .map_err(|e| RuntimeError::Protocol(format!("unparsable stats: {e}"))),
            other => Err(unexpected(&other)),
        }
    }

    /// The server's telemetry registry as Prometheus text (serving *and*
    /// `hpcnet_net_*` series).
    pub fn metrics_text(&self) -> Result<String> {
        match self.call(Request::Metrics)? {
            Response::Text(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Run a model carrying an upstream [`TraceContext`] verbatim: the
    /// server's request span joins the caller's trace and *no* local
    /// root span is recorded here. Fleet-level callers
    /// (`hpcnet-cluster`) use this so the shard hop appears exactly once
    /// in the tree — under the span id they minted, not a second root.
    pub fn run_model_with_context(
        &self,
        model: &str,
        in_key: &str,
        out_key: &str,
        deadline: Option<Duration>,
        trace: Option<TraceContext>,
    ) -> Result<()> {
        let deadline_micros = match deadline {
            None => 0,
            Some(d) if d.is_zero() => return Err(RuntimeError::DeadlineExceeded),
            // 0 on the wire means "server default", so a sub-microsecond
            // explicit deadline clamps to 1 µs.
            Some(d) => (d.as_micros() as u64).max(1),
        };
        self.expect_ok(Request::RunModel {
            model: model.to_string(),
            in_key: in_key.to_string(),
            out_key: out_key.to_string(),
            deadline_micros,
            trace,
        })
    }

    /// Originate a traced `run_model`: mint a root context, send its
    /// child context over the wire, and record the client-side root span
    /// (endpoint, model, any error) in the local flight recorder. The
    /// server's spans share the same trace id, so
    /// [`RemoteClient::trace_dump`] can merge the two halves.
    fn traced_run(
        &self,
        model: &str,
        in_key: &str,
        out_key: &str,
        deadline_micros: u64,
    ) -> Result<()> {
        let ctx = TraceContext::root();
        let root_id = SpanId(trace::next_id());
        let timer = SpanTimer::start();
        let result = self.expect_ok(Request::RunModel {
            model: model.to_string(),
            in_key: in_key.to_string(),
            out_key: out_key.to_string(),
            deadline_micros,
            trace: Some(ctx.child_of(root_id)),
        });
        let mut span = timer
            .finish(stage_names::REQUEST, TRACE_SERVICE)
            .annotate("model", model)
            .annotate("endpoint", &self.inner.config.addr);
        // The root's id went over the wire before the span finished, so
        // overwrite the freshly minted one.
        span.span_id = root_id;
        if let Err(e) = &result {
            span = span.with_error(e);
        }
        let mut t = Trace::new(ctx.trace_id);
        t.push(span);
        self.inner.recorder.record(t);
        result
    }

    /// Recent traces, merged across the wire: this client's root spans
    /// joined (by trace id) with the server's flight-recorder dump,
    /// fetched via the v2 `Traces` op. A v1-only or unreachable server
    /// degrades to the local half instead of failing — the local
    /// recorder always has the originating spans.
    pub fn trace_dump(&self) -> Result<Vec<Trace>> {
        let local = self.inner.recorder.snapshot();
        let remote = match self.call(Request::Traces) {
            Ok(Response::Text(json)) => traces_from_json(&json)
                .map_err(|e| RuntimeError::Protocol(format!("unparsable traces: {e}")))?,
            Ok(other) => return Err(unexpected(&other)),
            Err(_) => Vec::new(),
        };
        Ok(merge_traces(local.into_iter().chain(remote)))
    }

    /// One request/reply exchange with pooling and transport retries.
    fn call(&self, request: Request) -> Result<Response> {
        let cfg = &self.inner.config;
        let payload = request.encode();
        let opcode = request.opcode();
        let mut backoff = cfg.backoff;
        let mut last_err = String::new();
        for attempt in 0..=cfg.retries {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(cfg.max_backoff);
            }
            let mut stream = match self.checkout() {
                Ok(s) => s,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            // relaxed: pure ID counter — uniqueness is all that matters,
            // no other memory is published through it.
            let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = write_frame(&mut stream, opcode, seq, &payload) {
                last_err = format!("write: {e}");
                continue; // stream dropped; retry on a fresh connection
            }
            match read_frame(&mut stream) {
                Ok(FrameOutcome::Frame(raw)) => {
                    if raw.seq != seq {
                        // The stream is out of step (a stale reply from a
                        // previous, timed-out exchange) — don't reuse it.
                        return Err(RuntimeError::Protocol(format!(
                            "reply seq {} does not match request seq {seq}",
                            raw.seq
                        )));
                    }
                    let response =
                        decode_response(&raw).map_err(|e| RuntimeError::Protocol(e.to_string()))?;
                    self.checkin(stream);
                    return match response {
                        Response::Error(e) => Err(e.to_runtime()),
                        ok => Ok(ok),
                    };
                }
                Ok(FrameOutcome::Corrupt { reason, .. }) => {
                    // The reply was damaged in flight. The request may
                    // have executed; surface that instead of re-running.
                    return Err(RuntimeError::Protocol(format!("corrupt reply: {reason}")));
                }
                Err(e) => {
                    last_err = format!("read: {e}");
                    continue;
                }
            }
        }
        Err(RuntimeError::Transport(format!(
            "{} unreachable after {} attempt(s): {last_err}",
            cfg.addr,
            cfg.retries + 1
        )))
    }

    /// A connection from the pool, or a fresh dial.
    fn checkout(&self) -> std::result::Result<TcpStream, String> {
        if let Some(s) = self
            .inner
            .pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
        {
            return Ok(s);
        }
        self.dial()
    }

    /// Dial a fresh connection (never consults the pool — pipelined
    /// batches use this so a stale pooled stream cannot fail mid-batch).
    fn dial(&self) -> std::result::Result<TcpStream, String> {
        let cfg = &self.inner.config;
        let addrs: Vec<SocketAddr> = cfg
            .addr
            .to_socket_addrs()
            .map_err(|e| format!("resolve {}: {e}", cfg.addr))?
            .collect();
        let mut last = format!("{} resolved to no addresses", cfg.addr);
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, cfg.connect_timeout) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_read_timeout(cfg.read_timeout);
                    return Ok(s);
                }
                Err(e) => last = format!("connect {addr}: {e}"),
            }
        }
        Err(last)
    }

    /// Return a healthy connection to the pool (dropped when full).
    fn checkin(&self, stream: TcpStream) {
        let mut pool = self
            .inner
            .pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if pool.len() < self.inner.config.pool {
            pool.push(stream);
        }
    }

    fn expect_ok(&self, request: Request) -> Result<()> {
        match self.call(request)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Run a batch of `(in_key, out_key)` pairs *pipelined* over one
    /// dedicated connection: up to [`PIPELINE_WINDOW`] `RUN_MODEL` frames
    /// are kept in flight, and replies (which the server produces in
    /// request order per connection) are matched back by sequence number.
    /// Returns one result per pair, in pair order.
    ///
    /// The outer `Err` is a transport/protocol fault that interrupted the
    /// exchange — some pairs may have executed server-side (the usual
    /// at-least-once caveat; re-running a deterministic surrogate stores
    /// the same outputs). Inner errors are the per-pair typed failures.
    ///
    /// `deadline` covers the whole batch: each frame carries the budget
    /// remaining when it is written, and pairs whose budget is already
    /// exhausted are answered locally with
    /// [`RuntimeError::DeadlineExceeded`] without touching the wire.
    pub fn run_model_batch_results(
        &self,
        model: &str,
        pairs: &[(&str, &str)],
        deadline: Option<Duration>,
    ) -> Result<Vec<Result<()>>> {
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        let deadline_at = match deadline {
            Some(d) if d.is_zero() => return Err(RuntimeError::DeadlineExceeded),
            Some(d) => Instant::now().checked_add(d),
            None => None,
        };
        let mut stream = self.dial().map_err(RuntimeError::Transport)?;
        let mut results: Vec<Option<Result<()>>> = vec![None; pairs.len()];
        // Indices and sequence numbers of frames written but not yet
        // answered, in wire order.
        let mut inflight: VecDeque<(usize, u32)> = VecDeque::new();
        let mut next = 0usize;
        while next < pairs.len() || !inflight.is_empty() {
            while inflight.len() < PIPELINE_WINDOW && next < pairs.len() {
                let deadline_micros = match deadline_at {
                    None => 0,
                    Some(at) => {
                        let remaining = at.saturating_duration_since(Instant::now());
                        if remaining.is_zero() {
                            // Budget exhausted: every unsent pair gets the
                            // typed answer locally.
                            for slot in results.iter_mut().skip(next) {
                                slot.get_or_insert(Err(RuntimeError::DeadlineExceeded));
                            }
                            next = pairs.len();
                            break;
                        }
                        (remaining.as_micros() as u64).max(1)
                    }
                };
                if next >= pairs.len() {
                    break;
                }
                let (in_key, out_key) = pairs[next];
                // relaxed: pure ID counter — uniqueness is all that
                // matters, no other memory is published through it.
                let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
                let payload = Request::RunModel {
                    model: model.to_string(),
                    in_key: in_key.to_string(),
                    out_key: out_key.to_string(),
                    deadline_micros,
                    trace: None,
                }
                .encode();
                write_frame(
                    &mut stream,
                    crate::protocol::Opcode::RunModel,
                    seq,
                    &payload,
                )
                .map_err(|e| RuntimeError::Transport(format!("batch write: {e}")))?;
                inflight.push_back((next, seq));
                next += 1;
            }
            let Some((idx, seq)) = inflight.pop_front() else {
                continue;
            };
            match read_frame(&mut stream) {
                Ok(FrameOutcome::Frame(raw)) => {
                    if raw.seq != seq {
                        return Err(RuntimeError::Protocol(format!(
                            "batch reply seq {} does not match request seq {seq}",
                            raw.seq
                        )));
                    }
                    let response =
                        decode_response(&raw).map_err(|e| RuntimeError::Protocol(e.to_string()))?;
                    results[idx] = Some(match response {
                        Response::Ok => Ok(()),
                        Response::Error(e) => Err(e.to_runtime()),
                        other => Err(unexpected(&other)),
                    });
                }
                Ok(FrameOutcome::Corrupt { reason, .. }) => {
                    // The remaining replies on this stream cannot be
                    // trusted to frame correctly; surface the fault.
                    return Err(RuntimeError::Protocol(format!(
                        "corrupt batch reply: {reason}"
                    )));
                }
                Err(e) => {
                    return Err(RuntimeError::Transport(format!("batch read: {e}")));
                }
            }
        }
        self.checkin(stream);
        Ok(results
            .into_iter()
            .map(|r| r.unwrap_or(Err(RuntimeError::Disconnected)))
            .collect())
    }
}

/// Client-side cap on pipelined batch frames in flight per connection.
/// Kept below the server's default per-connection window (32) so the
/// executor's replies are always drained promptly and neither side can
/// wedge on a full TCP buffer.
pub const PIPELINE_WINDOW: usize = 16;

fn unexpected(r: &Response) -> RuntimeError {
    RuntimeError::Protocol(format!("unexpected {} reply", r.opcode().name()))
}

impl ClientApi for RemoteClient {
    fn put_tensor(&self, key: &str, value: &[f64]) -> Result<()> {
        self.expect_ok(Request::PutTensor {
            key: key.to_string(),
            values: value.to_vec(),
        })
    }

    fn put_sparse_tensor(&self, key: &str, value: Csr) -> Result<()> {
        self.expect_ok(Request::PutSparse {
            key: key.to_string(),
            tensor: value,
        })
    }

    fn run_model(&self, model: &str, in_key: &str, out_key: &str) -> Result<()> {
        self.traced_run(model, in_key, out_key, 0)
    }

    fn run_model_with_deadline(
        &self,
        model: &str,
        in_key: &str,
        out_key: &str,
        deadline: Duration,
    ) -> Result<()> {
        if deadline.is_zero() {
            // Mirror the in-process client's enqueue-time check: an
            // already-expired budget fails deterministically without
            // racing the server's clock over the wire.
            return Err(RuntimeError::DeadlineExceeded);
        }
        // 0 on the wire means "server default", so a sub-microsecond
        // explicit deadline clamps to 1 µs.
        self.traced_run(model, in_key, out_key, (deadline.as_micros() as u64).max(1))
    }

    fn run_model_batch(&self, model: &str, pairs: &[(&str, &str)]) -> Result<()> {
        first_error(self.run_model_batch_results(model, pairs, None)?)
    }

    fn run_model_batch_with_deadline(
        &self,
        model: &str,
        pairs: &[(&str, &str)],
        deadline: Duration,
    ) -> Result<()> {
        if pairs.is_empty() {
            return Ok(());
        }
        first_error(self.run_model_batch_results(model, pairs, Some(deadline))?)
    }

    fn unpack_tensor(&self, key: &str) -> Result<Vec<f64>> {
        match self.call(Request::GetTensor {
            key: key.to_string(),
        })? {
            Response::Tensor(values) => Ok(values),
            other => Err(unexpected(&other)),
        }
    }

    fn del_tensor(&self, key: &str) -> Result<bool> {
        match self.call(Request::Del {
            key: key.to_string(),
        })? {
            Response::Deleted(existed) => Ok(existed),
            other => Err(unexpected(&other)),
        }
    }

    fn ping(&self) -> Result<()> {
        RemoteClient::ping(self)
    }

    fn serving_stats(&self) -> Result<ServingStats> {
        RemoteClient::serving_stats(self)
    }

    fn metrics_text(&self) -> Result<String> {
        RemoteClient::metrics_text(self)
    }

    fn trace_dump(&self) -> Result<Vec<Trace>> {
        RemoteClient::trace_dump(self)
    }
}

/// Reduce per-pair batch results to the whole-batch contract: the first
/// error in pair order, or `Ok(())`.
fn first_error(results: Vec<Result<()>>) -> Result<()> {
    results
        .into_iter()
        .find_map(std::result::Result::err)
        .map_or(Ok(()), Err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreachable_server_yields_typed_transport_error() {
        // A port from the dynamic range with nothing listening; one
        // retry to keep the test fast.
        let err = RemoteClient::builder("127.0.0.1:1")
            .retries(1)
            .backoff(Duration::from_millis(1), Duration::from_millis(2))
            .connect_timeout(Duration::from_millis(200))
            .connect()
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Transport(_)), "got {err:?}");
    }
}
