//! Covariance kernels for Gaussian-process regression.

use serde::{Deserialize, Serialize};

/// Stationary covariance kernels over ℝⁿ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// Squared-exponential (RBF): `v · exp(-r² / 2ℓ²)`.
    Rbf {
        /// Length scale ℓ.
        length_scale: f64,
        /// Signal variance v.
        variance: f64,
    },
    /// Matérn 5/2 — rougher sample paths than RBF, the usual default for
    /// hyperparameter-tuning objectives.
    Matern52 {
        /// Length scale ℓ.
        length_scale: f64,
        /// Signal variance v.
        variance: f64,
    },
}

impl Kernel {
    /// Reasonable default for normalized (unit-cube) search spaces.
    pub fn default_for_unit_cube() -> Self {
        Kernel::Matern52 {
            length_scale: 0.3,
            variance: 1.0,
        }
    }

    /// Covariance between two points.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let r2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        match *self {
            Kernel::Rbf {
                length_scale,
                variance,
            } => variance * (-r2 / (2.0 * length_scale * length_scale)).exp(),
            Kernel::Matern52 {
                length_scale,
                variance,
            } => {
                let r = r2.sqrt() / length_scale;
                let s5 = 5.0f64.sqrt() * r;
                variance * (1.0 + s5 + 5.0 * r * r / 3.0) * (-s5).exp()
            }
        }
    }

    /// Signal variance (`k(x, x)`).
    pub fn variance(&self) -> f64 {
        match *self {
            Kernel::Rbf { variance, .. } | Kernel::Matern52 { variance, .. } => variance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNELS: [Kernel; 2] = [
        Kernel::Rbf {
            length_scale: 0.5,
            variance: 2.0,
        },
        Kernel::Matern52 {
            length_scale: 0.5,
            variance: 2.0,
        },
    ];

    #[test]
    fn self_covariance_is_variance() {
        let x = [0.3, -0.7];
        for k in KERNELS {
            assert!((k.eval(&x, &x) - 2.0).abs() < 1e-12);
            assert_eq!(k.variance(), 2.0);
        }
    }

    #[test]
    fn symmetry_and_decay() {
        let a = [0.0, 0.0];
        let b = [0.4, 0.1];
        let c = [2.0, 2.0];
        for k in KERNELS {
            assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
            assert!(k.eval(&a, &b) > k.eval(&a, &c), "closer points covary more");
            assert!(k.eval(&a, &c) > 0.0);
        }
    }

    #[test]
    fn rbf_known_value() {
        let k = Kernel::Rbf {
            length_scale: 1.0,
            variance: 1.0,
        };
        // r² = 2 ⇒ exp(-1)
        assert!((k.eval(&[0.0, 0.0], &[1.0, 1.0]) - (-1.0f64).exp()).abs() < 1e-12);
    }
}
