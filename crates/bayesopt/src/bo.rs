//! The Bayesian-optimization driver: update → generation → evaluation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::acquisition::Acquisition;
use crate::gp::GaussianProcess;
use crate::kernel::Kernel;
use crate::{BoError, Result};

/// One evaluated point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Observation {
    /// Where the objective was evaluated.
    pub x: Vec<f64>,
    /// Observed objective value (being minimized).
    pub y: f64,
}

/// Bayesian-optimization configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoConfig {
    /// Box bounds per dimension.
    pub bounds: Vec<(f64, f64)>,
    /// Random initial samples before the GP takes over (the paper's
    /// `-bayesianInit`, Table 1).
    pub init_samples: usize,
    /// Total evaluation budget (including the initial samples).
    pub budget: usize,
    /// GP kernel.
    pub kernel: Kernel,
    /// Acquisition function.
    pub acquisition: Acquisition,
    /// GP observation noise.
    pub noise: f64,
    /// Candidate pool size scanned per generation step.
    pub candidates_per_step: usize,
    /// RNG seed.
    pub seed: u64,
    /// Stop early when this many consecutive steps fail to improve the
    /// incumbent by more than `min_improvement` ("a continuing search does
    /// not lead to enough improvement", §5.2). 0 disables.
    pub stall_patience: usize,
    /// Improvement threshold for the stall counter.
    pub min_improvement: f64,
    /// Previously evaluated observations to condition on before sampling
    /// anything new — the checkpoint/restore path (paper §6.1). These do
    /// not count against `budget`.
    pub warm_start: Vec<Observation>,
}

impl BoConfig {
    /// A reasonable default over the given bounds.
    pub fn new(bounds: Vec<(f64, f64)>) -> Self {
        BoConfig {
            bounds,
            init_samples: 5,
            budget: 30,
            kernel: Kernel::default_for_unit_cube(),
            acquisition: Acquisition::ei(),
            noise: 1e-6,
            candidates_per_step: 256,
            seed: 0xb0,
            stall_patience: 0,
            min_improvement: 1e-9,
            warm_start: Vec::new(),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.bounds.is_empty() {
            return Err(BoError::BadConfig("empty bounds".into()));
        }
        if self.bounds.iter().any(|&(lo, hi)| !(lo < hi)) {
            return Err(BoError::BadConfig("each bound needs lo < hi".into()));
        }
        if self.budget == 0 || self.init_samples == 0 {
            return Err(BoError::BadConfig(
                "budget and init_samples must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Result of a BO run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoRun {
    /// Every evaluation in order.
    pub history: Vec<Observation>,
    /// Best point found.
    pub best_x: Vec<f64>,
    /// Best objective value found.
    pub best_y: f64,
}

/// Bayesian optimizer for a black-box objective (minimization).
///
/// # Examples
///
/// ```
/// use hpcnet_bayesopt::{BayesOpt, BoConfig};
/// let mut cfg = BoConfig::new(vec![(-1.0, 1.0), (-1.0, 1.0)]);
/// cfg.budget = 25;
/// let run = BayesOpt::new(cfg)
///     .unwrap()
///     .minimize(|x| Some(x.iter().map(|v| v * v).sum()))
///     .unwrap();
/// assert!(run.best_y < 0.5);
/// ```
pub struct BayesOpt {
    config: BoConfig,
}

impl BayesOpt {
    /// Create a BO driver; validates the configuration.
    pub fn new(config: BoConfig) -> Result<Self> {
        config.validate()?;
        Ok(BayesOpt { config })
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &BoConfig {
        &self.config
    }

    /// Run the optimization loop against `objective`.
    ///
    /// `objective` may return `None` for an infeasible/failed evaluation
    /// (e.g. a surrogate whose quality constraint could not be met); those
    /// are recorded with a large penalty so the GP steers away from them.
    pub fn minimize<F>(&self, mut objective: F) -> Result<BoRun>
    where
        F: FnMut(&[f64]) -> Option<f64>,
    {
        let cfg = &self.config;
        let mut rng = hpcnet_tensor::rng::seeded(cfg.seed, "bo");
        let mut history: Vec<Observation> = Vec::with_capacity(cfg.budget);

        let sample_uniform = |rng: &mut rand::rngs::StdRng| -> Vec<f64> {
            cfg.bounds
                .iter()
                .map(|&(lo, hi)| rng.gen_range(lo..hi))
                .collect()
        };

        // Penalty for failed evaluations: well above anything observed.
        let penalty = |hist: &[Observation]| -> f64 {
            hist.iter().map(|o| o.y).fold(1.0f64, f64::max) * 10.0 + 1e3
        };

        // --- warm start (checkpoint restore) + initialization phase ---
        history.extend(cfg.warm_start.iter().cloned());
        let fresh_budget = cfg.budget + cfg.warm_start.len();
        let init = if history.is_empty() {
            cfg.init_samples.min(cfg.budget)
        } else {
            0
        };
        for _ in 0..init {
            let x = sample_uniform(&mut rng);
            let y = objective(&x).unwrap_or_else(|| penalty(&history));
            history.push(Observation { x, y });
        }

        let mut stall = 0usize;
        let mut best_so_far = history.iter().map(|o| o.y).fold(f64::INFINITY, f64::min);

        // --- update / generation / evaluation loop ---
        while history.len() < fresh_budget {
            // Update: refit the GP on everything seen (normalized coords).
            let xs_norm: Vec<Vec<f64>> = history
                .iter()
                .map(|o| normalize(&o.x, &cfg.bounds))
                .collect();
            let ys: Vec<f64> = history.iter().map(|o| o.y).collect();
            let gp = GaussianProcess::fit(cfg.kernel, xs_norm, &ys, cfg.noise)?;
            let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);

            // Generation: score a random candidate pool, take the argmax.
            let mut best_cand: Option<(Vec<f64>, f64)> = None;
            for _ in 0..cfg.candidates_per_step {
                let cand = sample_uniform(&mut rng);
                let (m, v) = gp.posterior(&normalize(&cand, &cfg.bounds))?;
                let score = cfg.acquisition.score(m, v, best);
                if best_cand.as_ref().is_none_or(|(_, s)| score > *s) {
                    best_cand = Some((cand, score));
                }
            }
            let (x, _) = best_cand.expect("candidates_per_step > 0");

            // Evaluation.
            let y = objective(&x).unwrap_or_else(|| penalty(&history));
            history.push(Observation { x, y });

            if y < best_so_far - cfg.min_improvement {
                best_so_far = y;
                stall = 0;
            } else {
                stall += 1;
                if cfg.stall_patience > 0 && stall >= cfg.stall_patience {
                    break;
                }
            }
        }

        let (bi, _) = history
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.y.partial_cmp(&b.1.y).expect("no NaN objectives"))
            .ok_or(BoError::NoData)?;
        Ok(BoRun {
            best_x: history[bi].x.clone(),
            best_y: history[bi].y,
            history,
        })
    }
}

/// Map a point into `[0,1]ⁿ` for the GP's kernel length scales.
fn normalize(x: &[f64], bounds: &[(f64, f64)]) -> Vec<f64> {
    x.iter()
        .zip(bounds)
        .map(|(v, &(lo, hi))| (v - lo) / (hi - lo))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> Option<f64> {
        Some(x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum())
    }

    #[test]
    fn config_validation() {
        assert!(BayesOpt::new(BoConfig::new(vec![])).is_err());
        assert!(BayesOpt::new(BoConfig::new(vec![(1.0, 0.0)])).is_err());
        let mut c = BoConfig::new(vec![(0.0, 1.0)]);
        c.budget = 0;
        assert!(BayesOpt::new(c).is_err());
    }

    #[test]
    fn finds_sphere_minimum_in_2d() {
        let mut cfg = BoConfig::new(vec![(-1.0, 1.0), (-1.0, 1.0)]);
        cfg.budget = 40;
        cfg.seed = 7;
        let run = BayesOpt::new(cfg).unwrap().minimize(sphere).unwrap();
        assert!(run.best_y < 0.02, "best_y = {}", run.best_y);
        assert!((run.best_x[0] - 0.3).abs() < 0.2);
        assert_eq!(run.history.len(), 40);
    }

    #[test]
    fn bo_beats_random_search_on_same_budget() {
        // A statistical claim, so average over seeds.
        let budget = 25;
        let mut bo_wins = 0;
        for seed in 0..6u64 {
            let mut cfg = BoConfig::new(vec![(-2.0, 2.0), (-2.0, 2.0)]);
            cfg.budget = budget;
            cfg.seed = seed;
            let bo = BayesOpt::new(cfg).unwrap().minimize(sphere).unwrap().best_y;

            let mut rng = hpcnet_tensor::rng::seeded(seed, "rand-base");
            let mut best = f64::INFINITY;
            for _ in 0..budget {
                let x: Vec<f64> = (0..2).map(|_| rng.gen_range(-2.0..2.0)).collect();
                best = best.min(sphere(&x).unwrap());
            }
            if bo <= best {
                bo_wins += 1;
            }
        }
        assert!(bo_wins >= 4, "BO won only {bo_wins}/6 runs");
    }

    #[test]
    fn never_proposes_outside_bounds() {
        let mut cfg = BoConfig::new(vec![(2.0, 3.0), (-5.0, -4.0)]);
        cfg.budget = 20;
        let run = BayesOpt::new(cfg).unwrap().minimize(sphere).unwrap();
        for o in &run.history {
            assert!((2.0..3.0).contains(&o.x[0]));
            assert!((-5.0..-4.0).contains(&o.x[1]));
        }
    }

    #[test]
    fn failed_evaluations_are_penalized_not_fatal() {
        let mut cfg = BoConfig::new(vec![(0.0, 1.0)]);
        cfg.budget = 15;
        // Half the domain is infeasible.
        let run = BayesOpt::new(cfg)
            .unwrap()
            .minimize(|x| if x[0] > 0.5 { None } else { Some(x[0]) })
            .unwrap();
        assert!(run.best_x[0] <= 0.5);
        assert_eq!(run.history.len(), 15);
    }

    #[test]
    fn warm_start_conditions_the_search() {
        // Seed the optimizer with observations pinpointing the optimum;
        // it should exploit them instead of re-exploring from scratch.
        let mut cfg = BoConfig::new(vec![(-2.0, 2.0)]);
        cfg.budget = 5;
        cfg.warm_start = vec![
            Observation {
                x: vec![0.31],
                y: 0.0001,
            },
            Observation {
                x: vec![-1.5],
                y: 3.24,
            },
            Observation {
                x: vec![1.8],
                y: 2.25,
            },
            Observation {
                x: vec![0.0],
                y: 0.09,
            },
            Observation {
                x: vec![0.6],
                y: 0.09,
            },
        ];
        let run = BayesOpt::new(cfg).unwrap().minimize(sphere).unwrap();
        // 5 warm + 5 fresh evaluations recorded.
        assert_eq!(run.history.len(), 10);
        // The warm observations are exploited: at least one fresh point
        // lands near the known optimum and the run's best is excellent.
        let fresh = &run.history[5..];
        let near = fresh.iter().filter(|o| (o.x[0] - 0.3).abs() < 0.5).count();
        assert!(near >= 1, "no fresh points near optimum");
        assert!(run.best_y < 0.01, "best_y = {}", run.best_y);
    }

    #[test]
    fn stall_patience_stops_early() {
        let mut cfg = BoConfig::new(vec![(0.0, 1.0)]);
        cfg.budget = 100;
        cfg.stall_patience = 5;
        let run = BayesOpt::new(cfg).unwrap().minimize(|_| Some(1.0)).unwrap();
        assert!(run.history.len() < 100);
    }
}
