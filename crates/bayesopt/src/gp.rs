//! Gaussian-process regression via Cholesky factorization.

use hpcnet_tensor::Matrix;

use crate::kernel::Kernel;
use crate::{BoError, Result};

/// A fitted Gaussian-process posterior over `f: ℝⁿ → ℝ`.
///
/// This is the "model" of the paper's update/generation/evaluation cycle
/// (§5.2): `update` = refit on all observations, `generation` = optimize an
/// acquisition over [`Self::posterior`].
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    noise: f64,
    x: Vec<Vec<f64>>,
    /// Cholesky factor of `K + noise·I`.
    chol: Matrix,
    /// `alpha = (K + noise·I)⁻¹ (y - mean)`.
    alpha: Vec<f64>,
    /// Constant prior mean (set to the observation mean).
    mean: f64,
}

impl GaussianProcess {
    /// Fit a GP to observations `(x[i], y[i])` with homoscedastic noise.
    pub fn fit(kernel: Kernel, x: Vec<Vec<f64>>, y: &[f64], noise: f64) -> Result<Self> {
        if x.is_empty() || x.len() != y.len() {
            return Err(BoError::NoData);
        }
        let dim = x[0].len();
        if x.iter().any(|p| p.len() != dim) {
            return Err(BoError::BadConfig("ragged observation points".into()));
        }
        let n = x.len();
        let mean = y.iter().sum::<f64>() / n as f64;
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = kernel.eval(&x[i], &x[j]);
                *k.at_mut(i, j) = v;
                *k.at_mut(j, i) = v;
            }
        }
        let chol = k.cholesky(noise.max(1e-10))?;
        let centered: Vec<f64> = y.iter().map(|v| v - mean).collect();
        let tmp = chol.solve_lower(&centered)?;
        let alpha = chol.solve_lower_t(&tmp)?;
        Ok(GaussianProcess {
            kernel,
            noise,
            x,
            chol,
            alpha,
            mean,
        })
    }

    /// Number of observations the posterior conditions on.
    pub fn n_observations(&self) -> usize {
        self.x.len()
    }

    /// Observation noise used at fit time.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Posterior mean and variance at a query point.
    pub fn posterior(&self, q: &[f64]) -> Result<(f64, f64)> {
        let kstar: Vec<f64> = self.x.iter().map(|p| self.kernel.eval(p, q)).collect();
        let mean = self.mean
            + kstar
                .iter()
                .zip(&self.alpha)
                .map(|(k, a)| k * a)
                .sum::<f64>();
        // var = k(q,q) - k*ᵀ (K+σI)⁻¹ k* computed via v = L⁻¹ k*.
        let v = self.chol.solve_lower(&kstar)?;
        let var = self.kernel.eval(q, q) - v.iter().map(|vi| vi * vi).sum::<f64>();
        Ok((mean, var.max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|p| (p[0] * std::f64::consts::PI).sin())
            .collect();
        (xs, ys)
    }

    #[test]
    fn posterior_interpolates_with_tiny_noise() {
        let (xs, ys) = grid_points();
        let gp = GaussianProcess::fit(
            Kernel::Rbf {
                length_scale: 0.3,
                variance: 1.0,
            },
            xs.clone(),
            &ys,
            1e-8,
        )
        .unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (m, v) = gp.posterior(x).unwrap();
            assert!((m - y).abs() < 1e-3, "mean at {x:?}: {m} vs {y}");
            assert!(v < 1e-3, "variance at observed point: {v}");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (xs, ys) = grid_points();
        let gp = GaussianProcess::fit(
            Kernel::Matern52 {
                length_scale: 0.2,
                variance: 1.0,
            },
            xs,
            &ys,
            1e-6,
        )
        .unwrap();
        let (_, v_in) = gp.posterior(&[0.5]).unwrap();
        let (_, v_out) = gp.posterior(&[3.0]).unwrap();
        assert!(v_out > v_in, "{v_out} should exceed {v_in}");
        assert!(v_out <= 1.0 + 1e-9, "variance bounded by prior");
    }

    #[test]
    fn prediction_between_points_is_sane() {
        let (xs, ys) = grid_points();
        let gp = GaussianProcess::fit(
            Kernel::Rbf {
                length_scale: 0.3,
                variance: 1.0,
            },
            xs,
            &ys,
            1e-8,
        )
        .unwrap();
        let (m, _) = gp.posterior(&[0.5]).unwrap();
        assert!((m - 1.0).abs() < 0.05, "sin(pi/2) ≈ {m}");
    }

    #[test]
    fn fit_rejects_bad_data() {
        let k = Kernel::default_for_unit_cube();
        assert!(matches!(
            GaussianProcess::fit(k, vec![], &[], 1e-6),
            Err(BoError::NoData)
        ));
        assert!(
            GaussianProcess::fit(k, vec![vec![0.0], vec![0.0, 1.0]], &[1.0, 2.0], 1e-6).is_err()
        );
    }
}
