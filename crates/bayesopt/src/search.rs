//! Grid- and random-search baselines.
//!
//! §7.2 of the paper compares its Bayesian optimization against "a
//! traditional approach, grid search, which simply makes a complete search
//! over a given subset of the topologies space". These drivers share the
//! BO driver's objective signature so the search-efficiency experiment can
//! hold everything else constant.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bo::Observation;
use crate::{BoError, Result};

/// Outcome of a non-Bayesian search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Every evaluation in order.
    pub history: Vec<Observation>,
    /// Best point found.
    pub best_x: Vec<f64>,
    /// Best objective value found.
    pub best_y: f64,
}

fn finish(history: Vec<Observation>) -> Result<SearchOutcome> {
    let (bi, _) = history
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.y.partial_cmp(&b.1.y).expect("no NaN objectives"))
        .ok_or(BoError::NoData)?;
    Ok(SearchOutcome {
        best_x: history[bi].x.clone(),
        best_y: history[bi].y,
        history,
    })
}

/// Exhaustive grid search: `points_per_dim` levels per dimension, scanned
/// in lexicographic order up to `budget` evaluations.
pub fn grid_search<F>(
    bounds: &[(f64, f64)],
    points_per_dim: usize,
    budget: usize,
    mut objective: F,
) -> Result<SearchOutcome>
where
    F: FnMut(&[f64]) -> Option<f64>,
{
    if bounds.is_empty() || points_per_dim == 0 || budget == 0 {
        return Err(BoError::BadConfig(
            "grid search needs bounds, levels, budget".into(),
        ));
    }
    let dim = bounds.len();
    let mut idx = vec![0usize; dim];
    let mut history = Vec::new();
    let level = |d: usize, i: usize| -> f64 {
        let (lo, hi) = bounds[d];
        if points_per_dim == 1 {
            (lo + hi) / 2.0
        } else {
            lo + (hi - lo) * i as f64 / (points_per_dim - 1) as f64
        }
    };
    'outer: loop {
        let x: Vec<f64> = idx.iter().enumerate().map(|(d, &i)| level(d, i)).collect();
        if let Some(y) = objective(&x) {
            history.push(Observation { x, y });
            if history.len() >= budget {
                break;
            }
        }
        // Increment the mixed-radix counter.
        for d in (0..dim).rev() {
            idx[d] += 1;
            if idx[d] < points_per_dim {
                continue 'outer;
            }
            idx[d] = 0;
        }
        break; // grid exhausted
    }
    finish(history)
}

/// Uniform random search over the box.
pub fn random_search<F>(
    bounds: &[(f64, f64)],
    budget: usize,
    seed: u64,
    mut objective: F,
) -> Result<SearchOutcome>
where
    F: FnMut(&[f64]) -> Option<f64>,
{
    if bounds.is_empty() || budget == 0 {
        return Err(BoError::BadConfig(
            "random search needs bounds and budget".into(),
        ));
    }
    let mut rng = hpcnet_tensor::rng::seeded(seed, "random-search");
    let mut history = Vec::with_capacity(budget);
    let mut attempts = 0usize;
    while history.len() < budget && attempts < budget * 10 {
        attempts += 1;
        let x: Vec<f64> = bounds
            .iter()
            .map(|&(lo, hi)| rng.gen_range(lo..hi))
            .collect();
        if let Some(y) = objective(&x) {
            history.push(Observation { x, y });
        }
    }
    finish(history)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad(x: &[f64]) -> Option<f64> {
        Some(x.iter().map(|v| v * v).sum())
    }

    #[test]
    fn grid_search_hits_exact_gridpoint_minimum() {
        // With an odd level count the exact optimum 0 is on the grid.
        let out = grid_search(&[(-1.0, 1.0), (-1.0, 1.0)], 5, 25, quad).unwrap();
        assert_eq!(out.best_y, 0.0);
        assert_eq!(out.history.len(), 25);
    }

    #[test]
    fn grid_search_respects_budget() {
        let out = grid_search(&[(-1.0, 1.0), (-1.0, 1.0)], 10, 7, quad).unwrap();
        assert_eq!(out.history.len(), 7);
    }

    #[test]
    fn grid_search_single_level_uses_midpoint() {
        let out = grid_search(&[(2.0, 4.0)], 1, 5, quad).unwrap();
        assert_eq!(out.history.len(), 1);
        assert_eq!(out.best_x, vec![3.0]);
    }

    #[test]
    fn random_search_improves_with_budget() {
        let small = random_search(&[(-1.0, 1.0); 2], 5, 1, quad).unwrap();
        let large = random_search(&[(-1.0, 1.0); 2], 200, 1, quad).unwrap();
        assert!(large.best_y <= small.best_y);
    }

    #[test]
    fn searches_reject_empty_config() {
        assert!(grid_search(&[], 3, 10, quad).is_err());
        assert!(random_search(&[], 10, 0, quad).is_err());
        assert!(grid_search(&[(0.0, 1.0)], 0, 10, quad).is_err());
    }

    #[test]
    fn random_search_skips_infeasible() {
        let out = random_search(&[(0.0, 1.0)], 10, 3, |x| {
            if x[0] < 0.5 {
                None
            } else {
                Some(x[0])
            }
        })
        .unwrap();
        assert!(out.history.iter().all(|o| o.x[0] >= 0.5));
    }
}
