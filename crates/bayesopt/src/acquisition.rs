//! Acquisition functions deciding where the BO loop evaluates next.

use serde::{Deserialize, Serialize};

/// Acquisition functions (all formulated for **minimization**).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Acquisition {
    /// Expected improvement over the incumbent best, with exploration
    /// jitter `xi`.
    ExpectedImprovement {
        /// Exploration bonus subtracted from the incumbent.
        xi: f64,
    },
    /// Lower confidence bound `mean - kappa * std` (smaller = better).
    LowerConfidenceBound {
        /// Exploration weight on the posterior standard deviation.
        kappa: f64,
    },
}

impl Acquisition {
    /// Standard EI with a small jitter.
    pub fn ei() -> Self {
        Acquisition::ExpectedImprovement { xi: 0.01 }
    }

    /// Standard LCB.
    pub fn lcb() -> Self {
        Acquisition::LowerConfidenceBound { kappa: 2.0 }
    }

    /// Score a candidate from its posterior `(mean, variance)` and the
    /// incumbent best objective value. Larger scores are evaluated first.
    pub fn score(&self, mean: f64, variance: f64, best: f64) -> f64 {
        let std = variance.max(0.0).sqrt();
        match *self {
            Acquisition::ExpectedImprovement { xi } => {
                if std < 1e-12 {
                    return (best - xi - mean).max(0.0);
                }
                let z = (best - xi - mean) / std;
                // Clamp: the analytic EI is non-negative, but catastrophic
                // cancellation can produce a tiny negative value deep in
                // the no-improvement tail.
                ((best - xi - mean) * normal_cdf(z) + std * normal_pdf(z)).max(0.0)
            }
            Acquisition::LowerConfidenceBound { kappa } => -(mean - kappa * std),
        }
    }
}

/// Standard normal density.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max abs error ~1.5e-7, ample for acquisition ranking).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999999);
    }

    #[test]
    fn ei_is_nonnegative() {
        let acq = Acquisition::ei();
        for &(m, v, b) in &[
            (0.0, 1.0, 0.5),
            (2.0, 0.1, 0.0),
            (-1.0, 0.0, -2.0),
            (5.0, 4.0, 1.0),
        ] {
            assert!(acq.score(m, v, b) >= 0.0, "EI({m},{v},{b})");
        }
    }

    #[test]
    fn ei_prefers_lower_mean_at_equal_variance() {
        let acq = Acquisition::ei();
        let lo = acq.score(0.1, 0.5, 1.0);
        let hi = acq.score(0.9, 0.5, 1.0);
        assert!(lo > hi);
    }

    #[test]
    fn ei_prefers_higher_variance_at_equal_mean() {
        let acq = Acquisition::ei();
        let explore = acq.score(1.5, 2.0, 1.0);
        let exploit = acq.score(1.5, 0.01, 1.0);
        assert!(explore > exploit);
    }

    #[test]
    fn lcb_ranks_by_optimistic_bound() {
        let acq = Acquisition::lcb();
        // mean 1, std 1 → bound -1; mean 0.5, std 0 → bound 0.5.
        assert!(acq.score(1.0, 1.0, 0.0) > acq.score(0.5, 0.0, 0.0));
    }
}
