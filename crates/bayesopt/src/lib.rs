//! Gaussian-process regression and Bayesian optimization.
//!
//! The paper's 2D neural architecture search (§5) runs Bayesian
//! optimization at two levels — the outer loop over the reduced feature
//! count K, the inner loop over surrogate topology θ — each following the
//! classic update / generation / evaluation cycle with a Gaussian-process
//! model and an acquisition function. This crate supplies that machinery
//! plus the grid- and random-search baselines used in §7.2's
//! "Effectiveness of Bayesian Optimization" comparison.

pub mod acquisition;
pub mod bo;
pub mod gp;
pub mod kernel;
pub mod search;

pub use acquisition::Acquisition;
pub use bo::{BayesOpt, BoConfig, Observation};
pub use gp::GaussianProcess;
pub use kernel::Kernel;
pub use search::{grid_search, random_search, SearchOutcome};

/// Errors from GP fitting or optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum BoError {
    /// The underlying linear algebra failed (e.g. Cholesky breakdown).
    Tensor(hpcnet_tensor::TensorError),
    /// The configuration was unusable (empty bounds, zero budget, ...).
    BadConfig(String),
    /// No observations were available where some were required.
    NoData,
}

impl From<hpcnet_tensor::TensorError> for BoError {
    fn from(e: hpcnet_tensor::TensorError) -> Self {
        BoError::Tensor(e)
    }
}

impl std::fmt::Display for BoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoError::Tensor(e) => write!(f, "tensor error: {e}"),
            BoError::BadConfig(m) => write!(f, "bad configuration: {m}"),
            BoError::NoData => write!(f, "no observations"),
        }
    }
}

impl std::error::Error for BoError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BoError>;
