//! Property-based tests for Gaussian-process regression and the
//! Bayesian-optimization driver.

use hpcnet_bayesopt::{Acquisition, BayesOpt, BoConfig, GaussianProcess, Kernel};
use hpcnet_tensor::rng::{seeded, uniform_vec};
use proptest::prelude::*;

fn kernels() -> impl Strategy<Value = Kernel> {
    prop::sample::select(vec![
        Kernel::Rbf {
            length_scale: 0.3,
            variance: 1.0,
        },
        Kernel::Rbf {
            length_scale: 1.0,
            variance: 2.0,
        },
        Kernel::Matern52 {
            length_scale: 0.5,
            variance: 1.0,
        },
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The posterior mean interpolates observations (noise -> 0) and the
    /// posterior variance at observed points is (near) zero.
    #[test]
    fn gp_interpolates_observations(kernel in kernels(), seed in 0u64..10_000, n in 3usize..12) {
        let mut rng = seeded(seed, "gp-prop");
        // Distinct 2-D points (grid-jittered to avoid near-duplicates that
        // would make the covariance matrix numerically singular).
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    (i % 4) as f64 / 4.0 + 0.01 * uniform_vec(&mut rng, 1, -1.0, 1.0)[0],
                    (i / 4) as f64 / 4.0 + 0.01 * uniform_vec(&mut rng, 1, -1.0, 1.0)[0],
                ]
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|p| (3.0 * p[0]).sin() + p[1]).collect();
        let gp = GaussianProcess::fit(kernel, xs.clone(), &ys, 1e-9).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (m, v) = gp.posterior(x).unwrap();
            prop_assert!((m - y).abs() < 1e-2, "mean {m} vs {y}");
            prop_assert!(v < 1e-2, "variance {v} at observed point");
        }
    }

    /// Posterior variance is non-negative everywhere and bounded by the
    /// prior variance.
    #[test]
    fn gp_variance_bounds(kernel in kernels(), seed in 0u64..10_000) {
        let mut rng = seeded(seed, "gp-var");
        let xs: Vec<Vec<f64>> = (0..6).map(|_| uniform_vec(&mut rng, 2, 0.0, 1.0)).collect();
        let ys: Vec<f64> = xs.iter().map(|p| p[0] - p[1]).collect();
        let gp = GaussianProcess::fit(kernel, xs, &ys, 1e-6).unwrap();
        for _ in 0..20 {
            let q = uniform_vec(&mut rng, 2, -1.0, 2.0);
            let (_, v) = gp.posterior(&q).unwrap();
            prop_assert!(v >= 0.0);
            prop_assert!(v <= kernel.variance() + 1e-6);
        }
    }

    /// Expected improvement is non-negative for any posterior and best.
    #[test]
    fn ei_nonnegative(mean in -10.0f64..10.0, var in 0.0f64..25.0, best in -10.0f64..10.0) {
        let ei = Acquisition::ei().score(mean, var, best);
        prop_assert!(ei >= 0.0, "EI({mean},{var},{best}) = {ei}");
    }

    /// The BO driver stays inside its box bounds and respects its budget
    /// for arbitrary box shapes.
    #[test]
    fn bo_respects_bounds_and_budget(
        seed in 0u64..1_000,
        lo in -5.0f64..0.0,
        width in 0.5f64..5.0,
        budget in 6usize..15,
    ) {
        let mut cfg = BoConfig::new(vec![(lo, lo + width), (2.0 * lo, 2.0 * lo + width)]);
        cfg.budget = budget;
        cfg.init_samples = 3;
        cfg.seed = seed;
        cfg.candidates_per_step = 32;
        let run = BayesOpt::new(cfg)
            .unwrap()
            .minimize(|x| Some(x.iter().map(|v| v * v).sum()))
            .unwrap();
        prop_assert_eq!(run.history.len(), budget);
        for o in &run.history {
            prop_assert!(o.x[0] >= lo && o.x[0] < lo + width);
            prop_assert!(o.x[1] >= 2.0 * lo && o.x[1] < 2.0 * lo + width);
        }
        // best_y is the minimum of the history.
        let min = run.history.iter().map(|o| o.y).fold(f64::INFINITY, f64::min);
        prop_assert_eq!(run.best_y, min);
    }
}
