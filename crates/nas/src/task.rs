//! The dataset + quality interface the search optimizes against.

use hpcnet_tensor::{Csr, Matrix};

use crate::{NasError, Result};

/// A surrogate-construction task: training data plus the application-level
/// quality oracle.
///
/// The quality oracle receives a predictor (raw region input → predicted
/// region output) and returns the quality degradation `f_e` — in the full
/// pipeline this runs held-out input problems through the application's
/// QoI (Eqn 3 style); in isolation it can be any error functional. The
/// oracle is how the paper's "awareness of the final computational outcome
/// quality" (§6.2) enters the search.
pub struct NasTask<'a> {
    /// Raw input features, one row per sample.
    pub inputs: Matrix,
    /// Optional CSR form of the same inputs (sparse applications).
    pub sparse_inputs: Option<Csr>,
    /// Region outputs, one row per sample.
    pub outputs: Matrix,
    /// Application-level quality-degradation oracle.
    pub quality: Box<dyn Fn(&dyn Fn(&[f64]) -> Option<Vec<f64>>) -> f64 + 'a>,
}

impl<'a> NasTask<'a> {
    /// Validate dataset invariants.
    pub fn validate(&self) -> Result<()> {
        if self.inputs.rows() == 0 {
            return Err(NasError::BadConfig("empty training set".into()));
        }
        if self.inputs.rows() != self.outputs.rows() {
            return Err(NasError::BadConfig(format!(
                "sample mismatch: {} inputs vs {} outputs",
                self.inputs.rows(),
                self.outputs.rows()
            )));
        }
        if let Some(sp) = &self.sparse_inputs {
            if sp.nrows() != self.inputs.rows() || sp.ncols() != self.inputs.cols() {
                return Err(NasError::BadConfig(
                    "sparse/dense input shape mismatch".into(),
                ));
            }
        }
        Ok(())
    }

    /// Input feature width.
    pub fn input_dim(&self) -> usize {
        self.inputs.cols()
    }

    /// Output feature width.
    pub fn output_dim(&self) -> usize {
        self.outputs.cols()
    }

    /// A convenience quality oracle: mean relative L2 error of predictions
    /// over the last `n_val` samples of the dataset (used by tests and by
    /// callers that have no application in the loop).
    pub fn holdout_quality(
        inputs: Matrix,
        outputs: Matrix,
        n_val: usize,
    ) -> impl Fn(&dyn Fn(&[f64]) -> Option<Vec<f64>>) -> f64 + 'static {
        let start = inputs.rows().saturating_sub(n_val);
        move |predict| {
            let mut total = 0.0;
            let mut count = 0usize;
            for i in start..inputs.rows() {
                match predict(inputs.row(i)) {
                    Some(pred) => {
                        total += hpcnet_tensor::vecops::rel_l2_error(&pred, outputs.row(i));
                        count += 1;
                    }
                    None => return f64::INFINITY,
                }
            }
            if count == 0 {
                f64::INFINITY
            } else {
                total / count as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_task() -> (Matrix, Matrix) {
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let y = Matrix::from_vec(4, 1, vec![0.0, 1.0, 1.0, 2.0]).unwrap();
        (x, y)
    }

    #[test]
    fn validation_catches_mismatches() {
        let (x, y) = toy_task();
        let ok = NasTask {
            inputs: x.clone(),
            sparse_inputs: None,
            outputs: y.clone(),
            quality: Box::new(|_| 0.0),
        };
        assert!(ok.validate().is_ok());

        let bad = NasTask {
            inputs: Matrix::zeros(3, 2),
            sparse_inputs: None,
            outputs: y,
            quality: Box::new(|_| 0.0),
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn holdout_quality_zero_for_perfect_predictor() {
        let (x, y) = toy_task();
        let q = NasTask::holdout_quality(x.clone(), y.clone(), 2);
        let perfect = |inp: &[f64]| Some(vec![inp[0] + inp[1]]);
        assert_eq!(q(&perfect), 0.0);
        let broken = |_: &[f64]| None;
        assert_eq!(q(&broken), f64::INFINITY);
    }
}
