//! NAS baselines for the paper's comparisons.
//!
//! * [`autokeras_like`] — the Fig. 6 Autokeras comparator: Bayesian NAS
//!   over topologies with **no feature reduction**, an **accuracy-only
//!   objective** (inference cost ignored), and **dense-only input
//!   handling** (sparse inputs are unrolled) — the three deficiencies
//!   §7.2 attributes to it.
//! * [`flat_joint_bo`] — the A1 ablation: a single Bayesian optimization
//!   over the concatenated `[K, θ]` vector, the "arithmetically adding
//!   the two types of parameters loses the parameter semantics" strawman
//!   Algorithm 2 replaces.
//! * [`grid_nas`] — grid search over θ for the §7.2 search-efficiency
//!   comparison.

use std::cell::RefCell;
use std::time::Instant;

use hpcnet_bayesopt::{grid_search, BayesOpt, BoConfig};
use hpcnet_nn::autoencoder::AeTrainConfig;
use hpcnet_nn::train::Preprocessing;
use hpcnet_nn::{Autoencoder, Mlp, Trainer};
use hpcnet_tensor::Matrix;

use crate::config::ModelConfig;
use crate::space::TopologySpace;
use crate::task::NasTask;
use crate::twod::{NasOutcome, StepRecord};
use crate::{NasError, Result};

/// Autokeras-like NAS: accuracy-only BO over θ on the raw (densified)
/// input. Returns the best model found regardless of inference cost.
pub fn autokeras_like(
    task: &NasTask,
    budget: usize,
    model_cfg: &ModelConfig,
    seed: u64,
) -> Result<NasOutcome> {
    task.validate()?;
    let t0 = Instant::now();
    let space = TopologySpace::default();
    let mut cfg = BoConfig::new(space.bounds());
    cfg.budget = budget.max(1);
    cfg.init_samples = (budget / 2).clamp(1, 4);
    cfg.seed = seed;

    let history: RefCell<Vec<StepRecord>> = RefCell::new(Vec::new());
    type AkBest = (
        f64,
        Mlp,
        hpcnet_nn::train::FeatureScaler,
        hpcnet_nn::train::FeatureScaler,
        hpcnet_nn::Topology,
    );
    let best: RefCell<Option<AkBest>> = RefCell::new(None);

    let bo = BayesOpt::new(cfg)?;
    bo.minimize(|x| {
        let t_step = Instant::now();
        let topology = space.decode(x, task.input_dim(), task.output_dim());
        let mut rng = hpcnet_tensor::rng::seeded(seed, "autokeras-candidate");
        let mut mlp = Mlp::new(&topology, &mut rng).ok()?;
        let mut train_cfg = model_cfg.train.clone();
        train_cfg.preprocessing = Preprocessing::Standardize;
        let output_scaler = hpcnet_nn::train::FeatureScaler::fit(&task.outputs);
        let mut y = task.outputs.clone();
        output_scaler.transform_matrix(&mut y);
        let report = Trainer::new(train_cfg)
            .fit(&mut mlp, &task.inputs, &y)
            .ok()?;
        let scaler = report.scaler.clone();
        let predictor = |raw: &[f64]| -> Option<Vec<f64>> {
            let mut f = raw.to_vec();
            scaler.transform_vec(&mut f);
            let mut out = mlp.predict(&f).ok()?;
            output_scaler.inverse_transform_vec(&mut out);
            Some(out)
        };
        let f_e = (task.quality)(&predictor);
        history.borrow_mut().push(StepRecord {
            k: task.input_dim(),
            topology: topology.clone(),
            cnn: None,
            f_e,
            f_c: mlp.flops() as f64,
            feasible: true, // Autokeras has no quality constraint
            elapsed_s: t_step.elapsed().as_secs_f64(),
        });
        let mut b = best.borrow_mut();
        if b.as_ref().is_none_or(|(cur, ..)| f_e < *cur) {
            *b = Some((f_e, mlp, report.scaler, output_scaler, topology));
        }
        Some(f_e) // accuracy-only objective: cost never enters
    })?;

    let (f_e, surrogate, scaler, output_scaler, topology) =
        best.into_inner().ok_or(NasError::NoFeasibleCandidate)?;
    let f_c = surrogate.flops() as f64;
    Ok(NasOutcome {
        k: task.input_dim(),
        cnn: None,
        autoencoder: None,
        surrogate: surrogate.into(),
        scaler,
        output_scaler,
        topology,
        f_e,
        f_c,
        history: history.into_inner(),
        ae_train_seconds: 0.0,
        search_seconds: t0.elapsed().as_secs_f64(),
    })
}

/// A1 ablation: one flat BO over the concatenated `[K, θ]` vector. An
/// autoencoder is trained inside every evaluation (no reuse across θ for
/// the same K, since the flat space has no structure to exploit).
pub fn flat_joint_bo(
    task: &NasTask,
    budget: usize,
    k_bounds: (usize, usize),
    quality_loss: f64,
    model_cfg: &ModelConfig,
    seed: u64,
) -> Result<NasOutcome> {
    task.validate()?;
    let t0 = Instant::now();
    let d = task.input_dim();
    let (k_lo, k_hi) = (k_bounds.0.min(d).max(1), k_bounds.1.min(d).max(1));
    let space = TopologySpace::default();
    let mut bounds = vec![(k_lo as f64, k_hi as f64 + 0.999)];
    bounds.extend(space.bounds());
    let mut cfg = BoConfig::new(bounds);
    cfg.budget = budget.max(1);
    cfg.init_samples = (budget / 2).clamp(1, 4);
    cfg.seed = seed;

    let history: RefCell<Vec<StepRecord>> = RefCell::new(Vec::new());
    type Best = (
        f64,
        f64,
        f64,
        usize,
        Option<Autoencoder>,
        Mlp,
        hpcnet_nn::train::FeatureScaler,
        hpcnet_nn::train::FeatureScaler,
        hpcnet_nn::Topology,
    );
    let best: RefCell<Option<Best>> = RefCell::new(None);
    let ae_seconds = RefCell::new(0.0f64);

    let bo = BayesOpt::new(cfg)?;
    bo.minimize(|x| {
        let t_step = Instant::now();
        let k = (x[0].floor() as usize).clamp(k_lo, k_hi);
        // Train an AE for this K.
        let t_ae = Instant::now();
        let mut rng = hpcnet_tensor::rng::seeded(seed, "flat-ae");
        let mut ae = Autoencoder::new(d, k, &mut rng).ok()?;
        let ae_cfg = AeTrainConfig {
            epochs: model_cfg.ae_epochs,
            lr: model_cfg.ae_lr,
            ..AeTrainConfig::default()
        };
        match &task.sparse_inputs {
            Some(sp) => ae.train_sparse(sp, &ae_cfg).ok()?,
            None => ae.train_dense(&task.inputs, &ae_cfg).ok()?,
        };
        *ae_seconds.borrow_mut() += t_ae.elapsed().as_secs_f64();

        // Encode + train the candidate surrogate.
        let encoded = match &task.sparse_inputs {
            Some(sp) => ae.encode_sparse(sp).ok()?,
            None => {
                let mut out = Matrix::zeros(task.inputs.rows(), k);
                for i in 0..task.inputs.rows() {
                    let e = ae.encode(task.inputs.row(i)).ok()?;
                    out.row_mut(i).copy_from_slice(&e);
                }
                out
            }
        };
        let topology = space.decode(&x[1..], k, task.output_dim());
        let mut rng = hpcnet_tensor::rng::seeded(seed, "flat-candidate");
        let mut mlp = Mlp::new(&topology, &mut rng).ok()?;
        let mut train_cfg = model_cfg.train.clone();
        train_cfg.preprocessing = Preprocessing::Standardize;
        let output_scaler = hpcnet_nn::train::FeatureScaler::fit(&task.outputs);
        let mut y = task.outputs.clone();
        output_scaler.transform_matrix(&mut y);
        let report = Trainer::new(train_cfg).fit(&mut mlp, &encoded, &y).ok()?;
        let scaler = report.scaler.clone();
        let predictor = |raw: &[f64]| -> Option<Vec<f64>> {
            let mut f = ae.encode(raw).ok()?;
            scaler.transform_vec(&mut f);
            let mut out = mlp.predict(&f).ok()?;
            output_scaler.inverse_transform_vec(&mut out);
            Some(out)
        };
        let f_e = (task.quality)(&predictor);
        let encoder_flops = match &task.sparse_inputs {
            Some(sp) => ae.encoder_flops_sparse(sp.nnz() / sp.nrows().max(1)),
            None => ae.encoder_flops(),
        };
        let f_c = (encoder_flops + mlp.flops()) as f64;
        let feasible = f_e <= quality_loss;
        let score = if feasible {
            f_c.max(1.0).log10()
        } else {
            1_000.0 + f_e.min(1e6)
        };
        history.borrow_mut().push(StepRecord {
            k,
            topology: topology.clone(),
            cnn: None,
            f_e,
            f_c,
            feasible,
            elapsed_s: t_step.elapsed().as_secs_f64(),
        });
        let mut b = best.borrow_mut();
        if b.as_ref().is_none_or(|(cur, ..)| score < *cur) {
            *b = Some((
                score,
                f_e,
                f_c,
                k,
                Some(ae),
                mlp,
                report.scaler,
                output_scaler,
                topology,
            ));
        }
        Some(score)
    })?;

    let (_, f_e, f_c, k, autoencoder, surrogate, scaler, output_scaler, topology) =
        best.into_inner().ok_or(NasError::NoFeasibleCandidate)?;
    if f_e > quality_loss {
        return Err(NasError::NoFeasibleCandidate);
    }
    Ok(NasOutcome {
        k,
        cnn: None,
        autoencoder,
        surrogate: surrogate.into(),
        scaler,
        output_scaler,
        topology,
        f_e,
        f_c,
        history: history.into_inner(),
        ae_train_seconds: ae_seconds.into_inner(),
        search_seconds: t0.elapsed().as_secs_f64(),
    })
}

/// Grid-search NAS over θ (no feature reduction) for the §7.2 efficiency
/// comparison: returns the per-step quality trajectory.
pub fn grid_nas(
    task: &NasTask,
    levels: usize,
    budget: usize,
    model_cfg: &ModelConfig,
    seed: u64,
) -> Result<Vec<StepRecord>> {
    task.validate()?;
    let space = TopologySpace::default();
    let history: RefCell<Vec<StepRecord>> = RefCell::new(Vec::new());
    grid_search(&space.bounds(), levels, budget, |x| {
        let t_step = Instant::now();
        let topology = space.decode(x, task.input_dim(), task.output_dim());
        let mut rng = hpcnet_tensor::rng::seeded(seed, "grid-candidate");
        let mut mlp = Mlp::new(&topology, &mut rng).ok()?;
        let mut train_cfg = model_cfg.train.clone();
        train_cfg.preprocessing = Preprocessing::Standardize;
        let output_scaler = hpcnet_nn::train::FeatureScaler::fit(&task.outputs);
        let mut y = task.outputs.clone();
        output_scaler.transform_matrix(&mut y);
        let report = Trainer::new(train_cfg)
            .fit(&mut mlp, &task.inputs, &y)
            .ok()?;
        let scaler = report.scaler.clone();
        let predictor = |raw: &[f64]| -> Option<Vec<f64>> {
            let mut f = raw.to_vec();
            scaler.transform_vec(&mut f);
            let mut out = mlp.predict(&f).ok()?;
            output_scaler.inverse_transform_vec(&mut out);
            Some(out)
        };
        let f_e = (task.quality)(&predictor);
        history.borrow_mut().push(StepRecord {
            k: task.input_dim(),
            topology,
            cnn: None,
            f_e,
            f_c: mlp.flops() as f64,
            feasible: true,
            elapsed_s: t_step.elapsed().as_secs_f64(),
        });
        Some(f_e)
    })?;
    Ok(history.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_tensor::rng::{seeded, uniform_vec};

    fn linear_task(n: usize) -> (Matrix, Matrix) {
        let mut rng = seeded(5, "bl-task");
        let xs = uniform_vec(&mut rng, n * 6, -1.0, 1.0);
        let ys: Vec<f64> = xs.chunks(6).map(|c| c[0] - c[1] + 0.5 * c[2]).collect();
        (
            Matrix::from_vec(n, 6, xs).unwrap(),
            Matrix::from_vec(n, 1, ys).unwrap(),
        )
    }

    fn quick_model() -> ModelConfig {
        let mut m = ModelConfig::default();
        m.train.epochs = 40;
        m.ae_epochs = 25;
        m
    }

    #[test]
    fn autokeras_like_finds_an_accurate_model() {
        let (x, y) = linear_task(120);
        let task = NasTask {
            quality: Box::new(NasTask::holdout_quality(x.clone(), y.clone(), 24)),
            inputs: x,
            sparse_inputs: None,
            outputs: y,
        };
        let outcome = autokeras_like(&task, 4, &quick_model(), 1).unwrap();
        assert!(outcome.f_e < 0.5, "f_e = {}", outcome.f_e);
        assert!(
            outcome.autoencoder.is_none(),
            "no feature reduction by design"
        );
        assert_eq!(outcome.history.len(), 4);
    }

    #[test]
    fn flat_joint_bo_produces_a_reduced_model() {
        let (x, y) = linear_task(100);
        let task = NasTask {
            quality: Box::new(NasTask::holdout_quality(x.clone(), y.clone(), 20)),
            inputs: x,
            sparse_inputs: None,
            outputs: y,
        };
        let outcome = flat_joint_bo(&task, 6, (2, 6), 0.8, &quick_model(), 2).unwrap();
        assert!(outcome.k <= 6);
        assert!(outcome.autoencoder.is_some());
        assert!(outcome.f_e <= 0.8);
    }

    #[test]
    fn grid_nas_walks_the_lattice() {
        let (x, y) = linear_task(80);
        let task = NasTask {
            quality: Box::new(NasTask::holdout_quality(x.clone(), y.clone(), 16)),
            inputs: x,
            sparse_inputs: None,
            outputs: y,
        };
        let history = grid_nas(&task, 2, 5, &quick_model(), 3).unwrap();
        assert_eq!(history.len(), 5);
        assert!(history.iter().all(|s| s.f_e.is_finite()));
    }
}
