//! CNN surrogate search: the `-initModel cnn` arm of Table 1.
//!
//! §5.1's θ includes "#kernel sizes, #channel, #pooling size" — the CNN
//! hyperparameters. This module runs a Bayesian optimization over that
//! space, training a 1-D CNN per candidate. CNNs consume the raw field
//! directly (their weight sharing *is* the feature reduction), so no
//! autoencoder is involved.

use std::cell::RefCell;
use std::time::Instant;

use hpcnet_bayesopt::{BayesOpt, BoConfig};
use hpcnet_nn::conv::{Cnn, CnnTopology};
use hpcnet_nn::train::FeatureScaler;
use hpcnet_nn::{Activation, Topology};

use crate::config::ModelConfig;
use crate::task::NasTask;
use crate::twod::{NasOutcome, StepRecord};
use crate::{NasError, Result};

/// Bounds of the CNN hyperparameter space for the GP:
/// `[stages, log2(channels), kernel index, pool index, log2(head width)]`.
fn cnn_bounds() -> Vec<(f64, f64)> {
    vec![
        (1.0, 2.999), // conv stages
        (1.0, 4.0),   // channels = 2..16
        (0.0, 2.999), // kernel in {3, 5, 7}
        (0.0, 1.999), // pool in {1, 2}
        (3.0, 6.0),   // head width = 8..64
    ]
}

/// Decode a continuous point into a CNN topology.
fn decode(x: &[f64], input_len: usize, output_dim: usize) -> CnnTopology {
    let stages = (x[0].floor() as usize).clamp(1, 3);
    let channels = vec![(x[1].exp2().round() as usize).max(1); stages];
    let kernel = [3usize, 5, 7][(x[2].floor() as usize).min(2)];
    let mut pool = [1usize, 2][(x[3].floor() as usize).min(1)];
    // Keep the sequence from collapsing under pooling.
    while pool > 1 && input_len / pool.pow(stages as u32) == 0 {
        pool = 1;
    }
    CnnTopology {
        input_len,
        output_dim,
        channels,
        kernel,
        pool,
        head_width: (x[4].exp2().round() as usize).max(4),
        act: Activation::Tanh,
    }
}

/// Run the CNN search under the same quality constraint as the MLP path.
pub fn cnn_search(
    task: &NasTask,
    budget: usize,
    quality_loss: f64,
    model_cfg: &ModelConfig,
    seed: u64,
) -> Result<NasOutcome> {
    task.validate()?;
    let t0 = Instant::now();
    let mut cfg = BoConfig::new(cnn_bounds());
    cfg.budget = budget.max(1);
    cfg.init_samples = (budget / 2).clamp(1, 4);
    cfg.seed = seed;

    let history: RefCell<Vec<StepRecord>> = RefCell::new(Vec::new());
    type Best = (
        f64,
        f64,
        f64,
        Cnn,
        FeatureScaler,
        FeatureScaler,
        CnnTopology,
    );
    let best: RefCell<Option<Best>> = RefCell::new(None);

    let bo = BayesOpt::new(cfg)?;
    bo.minimize(|x| {
        let t_step = Instant::now();
        let topo = decode(x, task.input_dim(), task.output_dim());
        topo.validate().ok()?;
        let mut rng = hpcnet_tensor::rng::seeded(seed, "cnn-candidate");
        let mut cnn = Cnn::new(&topo, &mut rng).ok()?;

        // Standardize inputs and targets, as the MLP path does.
        let scaler = FeatureScaler::fit(&task.inputs);
        let mut xs = task.inputs.clone();
        scaler.transform(&mut xs);
        let output_scaler = FeatureScaler::fit(&task.outputs);
        let mut ys = task.outputs.clone();
        output_scaler.transform_matrix(&mut ys);

        cnn.fit(
            &xs,
            &ys,
            model_cfg.train.epochs,
            model_cfg.train.batch_size,
            model_cfg.train.lr,
            seed,
        )
        .ok()?;

        let predictor = |raw: &[f64]| -> Option<Vec<f64>> {
            let mut f = raw.to_vec();
            scaler.transform_vec(&mut f);
            let mut out = cnn.predict(&f).ok()?;
            output_scaler.inverse_transform_vec(&mut out);
            Some(out)
        };
        let f_e = (task.quality)(&predictor);
        let f_c = cnn.flops() as f64;
        let feasible = f_e <= quality_loss;
        let score = if feasible {
            f_c.max(1.0).log10() + 0.5 * (f_e / quality_loss)
        } else {
            1_000.0 + f_e.min(1e6)
        };
        history.borrow_mut().push(StepRecord {
            k: task.input_dim(),
            topology: Topology::mlp(vec![task.input_dim(), topo.head_width, task.output_dim()]),
            cnn: Some(topo.clone()),
            f_e,
            f_c,
            feasible,
            elapsed_s: t_step.elapsed().as_secs_f64(),
        });
        let mut b = best.borrow_mut();
        if b.as_ref().is_none_or(|(cur, ..)| score < *cur) {
            *b = Some((score, f_e, f_c, cnn, scaler, output_scaler, topo));
        }
        Some(score)
    })?;

    let (_, f_e, f_c, cnn, scaler, output_scaler, topo) =
        best.into_inner().ok_or(NasError::NoFeasibleCandidate)?;
    if f_e > quality_loss {
        return Err(NasError::NoFeasibleCandidate);
    }
    Ok(NasOutcome {
        k: task.input_dim(),
        cnn: Some(topo.clone()),
        autoencoder: None,
        surrogate: cnn.into(),
        scaler,
        output_scaler,
        topology: Topology::mlp(vec![task.input_dim(), topo.head_width, task.output_dim()]),
        f_e,
        f_c,
        history: history.into_inner(),
        ae_train_seconds: 0.0,
        search_seconds: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_tensor::rng::{seeded, uniform_vec};
    use hpcnet_tensor::Matrix;

    /// Dataset with convolutional structure: output = smoothed input.
    fn stencil_task(n: usize, len: usize) -> (Matrix, Matrix) {
        let mut rng = seeded(9, "cnn-task");
        let mut xs = Vec::with_capacity(n * len);
        let mut ys = Vec::with_capacity(n * len);
        for _ in 0..n {
            let row = uniform_vec(&mut rng, len, -1.0, 1.0);
            for p in 0..len {
                let l = if p > 0 { row[p - 1] } else { 0.0 };
                let r = if p + 1 < len { row[p + 1] } else { 0.0 };
                ys.push(0.25 * l + 0.5 * row[p] + 0.25 * r);
            }
            xs.extend(row);
        }
        (
            Matrix::from_vec(n, len, xs).unwrap(),
            Matrix::from_vec(n, len, ys).unwrap(),
        )
    }

    #[test]
    fn decode_is_total_over_the_bounds() {
        use rand::Rng;
        let mut rng = seeded(1, "cnn-dec");
        let bounds = cnn_bounds();
        for _ in 0..100 {
            let x: Vec<f64> = bounds
                .iter()
                .map(|&(lo, hi)| rng.gen_range(lo..hi))
                .collect();
            let t = decode(&x, 32, 8);
            assert!(t.validate().is_ok(), "{t:?}");
        }
    }

    #[test]
    fn cnn_search_finds_a_feasible_stencil_surrogate() {
        let (x, y) = stencil_task(120, 16);
        let task = NasTask {
            quality: Box::new(NasTask::holdout_quality(x.clone(), y.clone(), 24)),
            inputs: x,
            sparse_inputs: None,
            outputs: y,
        };
        let mut model = ModelConfig::default();
        model.train.epochs = 80;
        let outcome = cnn_search(&task, 4, 0.4, &model, 11).unwrap();
        assert!(outcome.f_e <= 0.4, "f_e = {}", outcome.f_e);
        assert!(outcome.cnn.is_some());
        assert_eq!(outcome.surrogate.family(), "cnn");
        assert_eq!(outcome.history.len(), 4);
        // Deployable end to end.
        let probe = vec![0.1; 16];
        assert_eq!(outcome.surrogate.predict(&probe).unwrap().len(), 16);
    }
}
