//! The topology search space θ and its continuous encoding for the GP.

use hpcnet_nn::{Activation, Topology};
use serde::{Deserialize, Serialize};

/// Continuous encoding of the surrogate-topology space:
/// `[depth, log2(w1), log2(w2), log2(w3), activation]`.
///
/// Depth is the number of hidden layers in `[1, 3]`; unused width slots
/// are ignored by [`TopologySpace::decode`], keeping the vector length
/// fixed (the GP needs a fixed-dimension Euclidean space).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpace {
    /// Maximum hidden layers.
    pub max_depth: usize,
    /// log2 of the minimum hidden width.
    pub min_log_width: f64,
    /// log2 of the maximum hidden width.
    pub max_log_width: f64,
}

impl Default for TopologySpace {
    fn default() -> Self {
        TopologySpace {
            max_depth: 3,
            min_log_width: 2.0,
            max_log_width: 7.0,
        }
    }
}

/// Candidate hidden activations. `Identity` makes purely linear
/// surrogates reachable — many solver regions are (near-)affine maps of
/// their inputs, and a linear surrogate then generalizes far better from
/// few samples than any saturating network.
const ACTIVATIONS: [Activation; 4] = [
    Activation::Tanh,
    Activation::Relu,
    Activation::Sigmoid,
    Activation::Identity,
];

impl TopologySpace {
    /// Bounds of the continuous encoding for the BO driver.
    pub fn bounds(&self) -> Vec<(f64, f64)> {
        let mut b = vec![(1.0, self.max_depth as f64 + 0.999)];
        for _ in 0..self.max_depth {
            b.push((self.min_log_width, self.max_log_width));
        }
        b.push((0.0, ACTIVATIONS.len() as f64 - 0.001));
        b
    }

    /// Decode a continuous point into a concrete topology for the given
    /// input/output widths.
    pub fn decode(&self, x: &[f64], in_dim: usize, out_dim: usize) -> Topology {
        debug_assert_eq!(x.len(), self.max_depth + 2);
        let depth = (x[0].floor() as usize).clamp(1, self.max_depth);
        let mut widths = Vec::with_capacity(depth + 2);
        widths.push(in_dim);
        for d in 0..depth {
            let w = x[1 + d].exp2().round() as usize;
            widths.push(w.max(1));
        }
        widths.push(out_dim);
        let act_idx = (x[self.max_depth + 1].floor() as usize).min(ACTIVATIONS.len() - 1);
        Topology {
            widths,
            hidden_act: ACTIVATIONS[act_idx],
            output_act: Activation::Identity,
        }
    }

    /// Encode a hidden-width list (e.g. a user model) into the continuous
    /// space, for warm-starting the search.
    pub fn encode_hidden(&self, hidden: &[usize], act_idx: usize) -> Vec<f64> {
        let mut x = vec![hidden.len().clamp(1, self.max_depth) as f64 + 0.5];
        for d in 0..self.max_depth {
            let w = hidden
                .get(d)
                .copied()
                .unwrap_or_else(|| hidden.last().copied().unwrap_or(16));
            x.push(
                (w as f64)
                    .log2()
                    .clamp(self.min_log_width, self.max_log_width),
            );
        }
        x.push(act_idx as f64 + 0.5);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_match_encoding_length() {
        let s = TopologySpace::default();
        assert_eq!(s.bounds().len(), s.max_depth + 2);
    }

    #[test]
    fn decode_respects_depth_and_widths() {
        let s = TopologySpace::default();
        let t = s.decode(&[2.3, 4.0, 5.0, 6.0, 0.2], 100, 7);
        assert_eq!(t.widths, vec![100, 16, 32, 7]);
        assert_eq!(t.hidden_act, Activation::Tanh);
        assert_eq!(t.output_dim(), 7);
    }

    #[test]
    fn decode_clamps_out_of_range_activation() {
        let s = TopologySpace::default();
        let t = s.decode(&[1.0, 3.0, 3.0, 3.0, 99.0], 10, 2);
        assert_eq!(t.hidden_act, Activation::Identity);
    }

    #[test]
    fn identity_activation_is_reachable() {
        let s = TopologySpace::default();
        let x = s.encode_hidden(&[32], 3);
        assert_eq!(s.decode(&x, 10, 2).hidden_act, Activation::Identity);
    }

    #[test]
    fn encode_decode_roundtrip_for_user_model() {
        let s = TopologySpace::default();
        let x = s.encode_hidden(&[16, 64], 0);
        let t = s.decode(&x, 50, 3);
        assert_eq!(t.widths, vec![50, 16, 64, 3]);
    }

    #[test]
    fn every_point_in_bounds_decodes_validly() {
        let s = TopologySpace::default();
        let bounds = s.bounds();
        let mut rng = hpcnet_tensor::rng::seeded(7, "space");
        use rand::Rng;
        for _ in 0..100 {
            let x: Vec<f64> = bounds
                .iter()
                .map(|&(lo, hi)| rng.gen_range(lo..hi))
                .collect();
            let t = s.decode(&x, 20, 4);
            assert!(t.validate().is_ok());
            assert_eq!(t.input_dim(), 20);
            assert_eq!(t.output_dim(), 4);
        }
    }
}
