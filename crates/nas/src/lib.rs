//! 2D neural architecture search (paper §5).
//!
//! The search jointly decides the reduced feature count K and the
//! surrogate topology θ under the constrained formulation of §5.1:
//! minimize the cost `f_c(K, θ)` subject to the quality-degradation bound
//! `f_e(K, θ) <= ε`. Because K and θ have incompatible physical semantics,
//! a single Euclidean optimization vector would "lose the parameter
//! semantics" (§5.2); the hierarchical Bayesian optimization of
//! Algorithm 2 instead runs an outer BO over K (training a customized
//! autoencoder per candidate) and an inner BO over θ (training a surrogate
//! per candidate), coordinating through the inner loop's best `(f_c, f_e)`.
//!
//! [`baselines`] holds the Autokeras-like comparison (no feature
//! reduction, accuracy-only objective, dense-only input) and the flat
//! joint-vector BO used by the A1 ablation.

pub mod baselines;
pub mod cnn_search;
pub mod config;
pub mod space;
pub mod task;
pub mod twod;

pub use cnn_search::cnn_search;
pub use config::{ModelConfig, ModelFamily, SearchConfig, SearchType};
pub use space::TopologySpace;
pub use task::NasTask;
pub use twod::{NasOutcome, SearchCheckpoint, StepRecord, TwoDNas};

/// Errors from the architecture search.
#[derive(Debug)]
pub enum NasError {
    /// Underlying NN training failed.
    Nn(hpcnet_nn::NnError),
    /// Underlying Bayesian optimization failed.
    Bo(hpcnet_bayesopt::BoError),
    /// The task or configuration was unusable.
    BadConfig(String),
    /// No candidate satisfied the quality constraint.
    NoFeasibleCandidate,
}

impl From<hpcnet_nn::NnError> for NasError {
    fn from(e: hpcnet_nn::NnError) -> Self {
        NasError::Nn(e)
    }
}

impl From<hpcnet_bayesopt::BoError> for NasError {
    fn from(e: hpcnet_bayesopt::BoError) -> Self {
        NasError::Bo(e)
    }
}

impl std::fmt::Display for NasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NasError::Nn(e) => write!(f, "nn error: {e}"),
            NasError::Bo(e) => write!(f, "bayesopt error: {e}"),
            NasError::BadConfig(m) => write!(f, "bad config: {m}"),
            NasError::NoFeasibleCandidate => write!(f, "no candidate met the quality constraint"),
        }
    }
}

impl std::error::Error for NasError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NasError>;
