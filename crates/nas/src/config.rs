//! Search- and model-level configuration, mirroring the paper's Table 1.

use hpcnet_nn::{Topology, TrainConfig};
use serde::{Deserialize, Serialize};

/// Table 1 `-searchType`: where the topology search starts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SearchType {
    /// Start from the Autokeras-style default topology.
    Autokeras,
    /// Start from a user-given topology (hidden widths only — input and
    /// output widths are derived from the task and K).
    UserModel(Vec<usize>),
    /// No feature reduction: the surrogate consumes the full input.
    FullInput,
}

/// Search-level knobs (Table 1, upper half).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchConfig {
    /// `-searchType`.
    pub search_type: SearchType,
    /// `-bayesianInit`: initial samples for each Bayesian loop.
    pub bayesian_init: usize,
    /// `-encodingLoss`: acceptable autoencoder σ_y.
    pub encoding_loss: f64,
    /// `-qualityLoss`: acceptable final-quality degradation ε
    /// (the constraint `f_e <= ε`).
    pub quality_loss: f64,
    /// Outer-loop (K) evaluation budget.
    pub outer_budget: usize,
    /// Inner-loop (θ) evaluation budget per outer step.
    pub inner_budget: usize,
    /// Bounds on the reduced feature count K.
    pub k_bounds: (usize, usize),
    /// Seed for every stochastic component of the search.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            search_type: SearchType::Autokeras,
            bayesian_init: 3,
            encoding_loss: 0.35,
            quality_loss: 0.10,
            outer_budget: 4,
            inner_budget: 6,
            k_bounds: (4, 64),
            seed: 0x2d,
        }
    }
}

/// Table 1 `-initModel`: the surrogate network family to search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ModelFamily {
    /// Multi-layer perceptron (the paper's default).
    #[default]
    Mlp,
    /// 1-D CNN — for regions whose inputs/outputs are fields on a grid.
    Cnn,
}

/// Model-level knobs (Table 1, lower half) — a thin wrapper over the NN
/// trainer configuration plus the autoencoder budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Surrogate training hyperparameters (`-numEpoch`, `-trainRatio`,
    /// `-batchSize`, `-lr`, `-preprocessing`).
    pub train: TrainConfig,
    /// Network family to search (`-initModel`).
    pub family: ModelFamily,
    /// Autoencoder training epochs.
    pub ae_epochs: usize,
    /// Autoencoder learning rate.
    pub ae_lr: f64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            train: TrainConfig {
                epochs: 120,
                patience: 15,
                lr: 3e-3,
                ..TrainConfig::default()
            },
            family: ModelFamily::Mlp,
            ae_epochs: 60,
            ae_lr: 3e-3,
        }
    }
}

impl SearchType {
    /// The starting hidden-layer widths for the inner search.
    pub fn initial_hidden(&self) -> Vec<usize> {
        match self {
            SearchType::Autokeras | SearchType::FullInput => vec![32, 32],
            SearchType::UserModel(widths) => widths.clone(),
        }
    }
}

/// Convert hidden widths into a full [`Topology`] for a task's dims.
pub fn topology_with_io(hidden: &[usize], in_dim: usize, out_dim: usize) -> Topology {
    let mut widths = Vec::with_capacity(hidden.len() + 2);
    widths.push(in_dim);
    widths.extend_from_slice(hidden);
    widths.push(out_dim);
    Topology::mlp(widths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = SearchConfig::default();
        assert!(s.quality_loss > 0.0 && s.quality_loss < 1.0);
        assert!(s.k_bounds.0 < s.k_bounds.1);
        let m = ModelConfig::default();
        assert!(m.train.epochs > 0);
    }

    #[test]
    fn search_type_initial_hidden() {
        assert_eq!(SearchType::Autokeras.initial_hidden(), vec![32, 32]);
        assert_eq!(SearchType::UserModel(vec![8]).initial_hidden(), vec![8]);
    }

    #[test]
    fn topology_with_io_wraps_hidden() {
        let t = topology_with_io(&[16, 8], 100, 5);
        assert_eq!(t.widths, vec![100, 16, 8, 5]);
    }

    #[test]
    fn config_serializes() {
        let s = SearchConfig::default();
        let json = serde_json::to_string(&s).unwrap();
        let back: SearchConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.k_bounds, s.k_bounds);
    }
}
