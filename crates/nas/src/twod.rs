//! The hierarchical (2D) Bayesian optimization of paper Algorithm 2.

use std::cell::RefCell;
use std::time::Instant;

use hpcnet_bayesopt::{BayesOpt, BoConfig, Observation};
use hpcnet_nn::autoencoder::AeTrainConfig;
use hpcnet_nn::conv::CnnTopology;
use hpcnet_nn::train::{FeatureScaler, Preprocessing};
use hpcnet_nn::{Autoencoder, Mlp, SurrogateNet, Topology, Trainer};
use hpcnet_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::config::{ModelConfig, SearchConfig, SearchType};
use crate::space::TopologySpace;
use crate::task::NasTask;
use crate::{NasError, Result};

/// Penalty offset separating infeasible candidates from any feasible cost.
const INFEASIBLE: f64 = 1_000.0;

/// One evaluated `(K, θ)` candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepRecord {
    /// Reduced feature count.
    pub k: usize,
    /// Candidate topology (for CNN candidates: a descriptive placeholder
    /// `[in, head, out]`; see `cnn`).
    pub topology: Topology,
    /// CNN candidate hyperparameters, when the candidate is a CNN.
    #[serde(default)]
    pub cnn: Option<CnnTopology>,
    /// Quality degradation (application-level, from the task oracle).
    pub f_e: f64,
    /// Cost: per-sample inference FLOPs (encoder + surrogate).
    pub f_c: f64,
    /// Did the candidate meet `f_e <= qualityLoss`?
    pub feasible: bool,
    /// Seconds spent evaluating this candidate (training included).
    pub elapsed_s: f64,
}

/// The search result: the deployable artifacts plus full history.
pub struct NasOutcome {
    /// Chosen reduced feature count.
    pub k: usize,
    /// CNN hyperparameters, when the selected surrogate is a CNN.
    pub cnn: Option<CnnTopology>,
    /// Trained feature-reduction autoencoder (`None` for full-input mode).
    pub autoencoder: Option<Autoencoder>,
    /// The trained surrogate (MLP, or CNN in `-initModel cnn` mode).
    pub surrogate: SurrogateNet,
    /// Scaler fitted on the (reduced) training inputs.
    pub scaler: FeatureScaler,
    /// Scaler fitted on the training outputs; the surrogate is trained on
    /// standardized targets and predictions must be inverse-transformed.
    pub output_scaler: FeatureScaler,
    /// Chosen topology.
    pub topology: Topology,
    /// Achieved quality degradation.
    pub f_e: f64,
    /// Achieved cost (per-sample inference FLOPs).
    pub f_c: f64,
    /// Every candidate evaluated, in order.
    pub history: Vec<StepRecord>,
    /// Seconds spent training autoencoders (the §7.3 offline breakdown).
    pub ae_train_seconds: f64,
    /// Total search wall-clock seconds.
    pub search_seconds: f64,
}

/// Serializable search state for stop/restore (paper §6.1).
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct SearchCheckpoint {
    /// Outer-loop observations `(k) -> score` accumulated so far.
    pub outer_observations: Vec<Observation>,
}

impl SearchCheckpoint {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self> {
        serde_json::from_str(s).map_err(|e| NasError::BadConfig(format!("bad checkpoint: {e}")))
    }
}

/// Artifacts of the best candidate seen so far.
struct BestBundle {
    k: usize,
    autoencoder: Option<Autoencoder>,
    surrogate: Mlp,
    scaler: FeatureScaler,
    output_scaler: FeatureScaler,
    topology: Topology,
    f_e: f64,
    f_c: f64,
    score: f64,
}

/// The 2D NAS driver.
pub struct TwoDNas {
    /// Search-level configuration (Table 1).
    pub search: SearchConfig,
    /// Model-level configuration (Table 1).
    pub model: ModelConfig,
    /// Topology space θ.
    pub space: TopologySpace,
}

impl TwoDNas {
    /// Build a driver with the default topology space.
    pub fn new(search: SearchConfig, model: ModelConfig) -> Self {
        TwoDNas {
            search,
            model,
            space: TopologySpace::default(),
        }
    }

    /// Run the full hierarchical search (Algorithm 2).
    pub fn search(&self, task: &NasTask) -> Result<NasOutcome> {
        self.search_with_checkpoint(task, None).map(|(o, _)| o)
    }

    /// Run the search, optionally resuming from a checkpoint; returns the
    /// outcome and a checkpoint capturing the outer loop's observations.
    pub fn search_with_checkpoint(
        &self,
        task: &NasTask,
        resume: Option<SearchCheckpoint>,
    ) -> Result<(NasOutcome, SearchCheckpoint)> {
        task.validate()?;
        let t_start = Instant::now();
        let d = task.input_dim();
        let (k_lo, k_hi) = (
            self.search.k_bounds.0.min(d).max(1),
            self.search.k_bounds.1.min(d).max(1),
        );

        let history: RefCell<Vec<StepRecord>> = RefCell::new(Vec::new());
        let best: RefCell<Option<BestBundle>> = RefCell::new(None);
        let ae_seconds = RefCell::new(0.0f64);

        if matches!(self.search.search_type, SearchType::FullInput) || k_lo >= d {
            // Single-level search over θ on the raw input.
            self.inner_search(task, None, d, &history, &best, &ae_seconds)?;
            let outcome = self.finish(
                history.into_inner(),
                best.into_inner(),
                ae_seconds.into_inner(),
                t_start,
            )?;
            return Ok((outcome, SearchCheckpoint::default()));
        }

        // --- outer loop: Bayesian optimization over K (Alg. 2, lines 2-13) ---
        let mut outer_cfg = BoConfig::new(vec![(k_lo as f64, k_hi as f64 + 0.999)]);
        outer_cfg.init_samples = self.search.bayesian_init.max(1);
        outer_cfg.budget = self.search.outer_budget.max(1);
        outer_cfg.seed = self.search.seed ^ 0x007e;
        outer_cfg.stall_patience = 0;
        if let Some(cp) = &resume {
            outer_cfg.warm_start = cp.outer_observations.clone();
        }

        let ae_hist = hpcnet_telemetry::global().time_histogram("hpcnet_nas_ae_train_seconds", &[]);
        let outer = BayesOpt::new(outer_cfg)?;
        let run = outer.minimize(|kx| {
            let k = (kx[0].floor() as usize).clamp(k_lo, k_hi);
            // Feature reduction: train a customized autoencoder for this K
            // (Alg. 2, line 4), then run the inner θ search on the reduced
            // features (lines 5-10) and report its best score (line 11).
            let t_ae = Instant::now();
            let ae = self.train_autoencoder(task, k).ok()?;
            let ae_elapsed = t_ae.elapsed();
            ae_hist.record_duration(ae_elapsed);
            *ae_seconds.borrow_mut() += ae_elapsed.as_secs_f64();
            self.inner_search(task, Some(ae), k, &history, &best, &ae_seconds)
                .ok()
        })?;

        let checkpoint = SearchCheckpoint {
            outer_observations: run.history,
        };
        let outcome = self.finish(
            history.into_inner(),
            best.into_inner(),
            ae_seconds.into_inner(),
            t_start,
        )?;
        Ok((outcome, checkpoint))
    }

    /// Train the feature-reduction autoencoder for a candidate K, using
    /// the sparse path when the task provides CSR inputs.
    fn train_autoencoder(&self, task: &NasTask, k: usize) -> Result<Autoencoder> {
        let mut rng = hpcnet_tensor::rng::seeded(self.search.seed, "nas-ae");
        let mut ae = Autoencoder::new(task.input_dim(), k, &mut rng)?;
        let cfg = AeTrainConfig {
            epochs: self.model.ae_epochs,
            lr: self.model.ae_lr,
            encoding_loss_bound: Some(self.search.encoding_loss),
            ..AeTrainConfig::default()
        };
        match &task.sparse_inputs {
            Some(sp) => ae.train_sparse(sp, &cfg)?,
            None => ae.train_dense(&task.inputs, &cfg)?,
        };
        Ok(ae)
    }

    /// Inner θ search (Alg. 2, lines 5-10). Returns the best score for the
    /// outer loop's Gaussian process.
    fn inner_search(
        &self,
        task: &NasTask,
        autoencoder: Option<Autoencoder>,
        k: usize,
        history: &RefCell<Vec<StepRecord>>,
        best: &RefCell<Option<BestBundle>>,
        _ae_seconds: &RefCell<f64>,
    ) -> Result<f64> {
        // Encode the dataset once per K.
        let encoded = match &autoencoder {
            Some(ae) => encode_dataset(ae, task)?,
            None => task.inputs.clone(),
        };

        // Search-progress telemetry (process-wide registry): candidate
        // throughput, per-candidate wall time, and the best feasible
        // (f_c, f_e) seen so far — watchable live from another thread.
        let telemetry = hpcnet_telemetry::global();
        let candidates_total = telemetry.counter("hpcnet_nas_candidates_total");
        let candidate_hist = telemetry.time_histogram("hpcnet_nas_candidate_seconds", &[]);
        let best_f_c_gauge = telemetry.gauge("hpcnet_nas_best_f_c");
        let best_f_e_gauge = telemetry.gauge("hpcnet_nas_best_f_e");

        let mut inner_cfg = BoConfig::new(self.space.bounds());
        inner_cfg.init_samples = self.search.bayesian_init.max(1);
        inner_cfg.budget = self.search.inner_budget.max(1);
        inner_cfg.seed = self.search.seed ^ (k as u64) << 8;
        // Warm starts evaluated before any BO proposal: the configured
        // initial topology (Table 1 `-searchType`) and a *linear*
        // candidate — solver regions are often (near-)affine, and a
        // linear surrogate is both the cheapest and the best-generalizing
        // model for them, so it always deserves one evaluation.
        let init_hidden = self.search.search_type.initial_hidden();
        let mut warm: Vec<Vec<f64>> = vec![
            self.space.encode_hidden(&init_hidden, 0),
            self.space.encode_hidden(&[32], 3), // depth-1, identity act
        ];
        warm.reverse(); // pop() order: configured first

        let inner_best = RefCell::new(f64::INFINITY);
        let bo = BayesOpt::new(inner_cfg)?;
        let warm = RefCell::new(warm);
        let run = bo.minimize(|theta_x| {
            // Drain the warm-start queue before following BO proposals.
            let point = warm.borrow_mut().pop().unwrap_or_else(|| theta_x.to_vec());
            let t0 = Instant::now();
            let topology = self.space.decode(&point, encoded.cols(), task.output_dim());
            let eval = self.evaluate_candidate(task, &autoencoder, &encoded, &topology);
            match eval {
                Ok((f_e, f_c, mlp, scaler, output_scaler)) => {
                    let feasible = f_e <= self.search.quality_loss;
                    // Feasible candidates are ranked by cost with a small
                    // quality-margin tie-break (at most half a decade of
                    // cost): among similar costs prefer the model with
                    // headroom below ε, which translates directly into
                    // per-problem HitRate at deployment.
                    let score = if feasible {
                        (f_c.max(1.0)).log10() + 0.5 * (f_e / self.search.quality_loss)
                    } else {
                        INFEASIBLE + f_e.min(1e6)
                    };
                    candidates_total.inc();
                    candidate_hist.record_duration(t0.elapsed());
                    history.borrow_mut().push(StepRecord {
                        k,
                        topology: topology.clone(),
                        cnn: None,
                        f_e,
                        f_c,
                        feasible,
                        elapsed_s: t0.elapsed().as_secs_f64(),
                    });
                    let mut b = best.borrow_mut();
                    if b.as_ref().is_none_or(|cur| score < cur.score) {
                        best_f_c_gauge.set(f_c);
                        best_f_e_gauge.set(f_e);
                        *b = Some(BestBundle {
                            k,
                            autoencoder: autoencoder.clone(),
                            surrogate: mlp,
                            scaler,
                            output_scaler,
                            topology,
                            f_e,
                            f_c,
                            score,
                        });
                    }
                    let mut ib = inner_best.borrow_mut();
                    if score < *ib {
                        *ib = score;
                    }
                    Some(score)
                }
                Err(_) => None,
            }
        })?;
        let _ = run;
        let score = *inner_best.borrow();
        Ok(score)
    }

    /// Train + evaluate one candidate topology on the encoded dataset.
    /// Returns `(f_e, f_c, surrogate, input scaler, output scaler)`.
    fn evaluate_candidate(
        &self,
        task: &NasTask,
        autoencoder: &Option<Autoencoder>,
        encoded: &Matrix,
        topology: &Topology,
    ) -> Result<(f64, f64, Mlp, FeatureScaler, FeatureScaler)> {
        let mut rng = hpcnet_tensor::rng::seeded(self.search.seed, "nas-candidate");
        let mut mlp = Mlp::new(topology, &mut rng)?;
        let mut train_cfg = self.model.train.clone();
        train_cfg.preprocessing = Preprocessing::Standardize;
        // Standardize targets too: region outputs live in physical units
        // with wildly different magnitudes, and regression on raw targets
        // stalls Adam. Predictions are inverse-transformed.
        let output_scaler = FeatureScaler::fit(&task.outputs);
        let mut y = task.outputs.clone();
        output_scaler.transform_matrix(&mut y);
        let report = Trainer::new(train_cfg).fit(&mut mlp, encoded, &y)?;

        // Application-level quality via the task oracle.
        let scaler = report.scaler.clone();
        let predictor = |raw: &[f64]| -> Option<Vec<f64>> {
            let mut features = match autoencoder {
                Some(ae) => ae.encode(raw).ok()?,
                None => raw.to_vec(),
            };
            scaler.transform_vec(&mut features);
            let mut out = mlp.predict(&features).ok()?;
            output_scaler.inverse_transform_vec(&mut out);
            Some(out)
        };
        let f_e = (task.quality)(&predictor);

        // Cost: per-sample inference FLOPs, encoder included — the online
        // path the paper's f_c measures. Sparse tasks are charged the
        // sparse first-layer cost (2·nnz·K), not the dense unrolled one.
        let encoder_flops = autoencoder
            .as_ref()
            .map_or(0, |ae| match &task.sparse_inputs {
                Some(sp) => {
                    let avg_nnz = sp.nnz() / sp.nrows().max(1);
                    ae.encoder_flops_sparse(avg_nnz)
                }
                None => ae.encoder_flops(),
            });
        let f_c = (encoder_flops + mlp.flops()) as f64;
        Ok((f_e, f_c, mlp, report.scaler, output_scaler))
    }

    fn finish(
        &self,
        history: Vec<StepRecord>,
        best: Option<BestBundle>,
        ae_train_seconds: f64,
        t_start: Instant,
    ) -> Result<NasOutcome> {
        let best = best.ok_or(NasError::NoFeasibleCandidate)?;
        if best.f_e > self.search.quality_loss {
            return Err(NasError::NoFeasibleCandidate);
        }
        Ok(NasOutcome {
            k: best.k,
            cnn: None,
            autoencoder: best.autoencoder,
            surrogate: best.surrogate.into(),
            scaler: best.scaler,
            output_scaler: best.output_scaler,
            topology: best.topology,
            f_e: best.f_e,
            f_c: best.f_c,
            history,
            ae_train_seconds,
            search_seconds: t_start.elapsed().as_secs_f64(),
        })
    }
}

/// Encode every dataset row with the trained encoder (sparse path when
/// available — the input is never densified).
fn encode_dataset(ae: &Autoencoder, task: &NasTask) -> Result<Matrix> {
    match &task.sparse_inputs {
        Some(sp) => Ok(ae.encode_sparse(sp)?),
        None => {
            let n = task.inputs.rows();
            let mut out = Matrix::zeros(n, ae.latent_dim());
            for i in 0..n {
                let enc = ae.encode(task.inputs.row(i))?;
                out.row_mut(i).copy_from_slice(&enc);
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_tensor::rng::{seeded, uniform_vec};

    /// A synthetic task: 20-D inputs living on a 3-D manifold, outputs a
    /// smooth function of the manifold coordinates.
    fn manifold_task(n: usize) -> (Matrix, Matrix) {
        let mut rng = seeded(11, "nas-task");
        let mut xs = Vec::with_capacity(n * 20);
        let mut ys = Vec::with_capacity(n * 2);
        for _ in 0..n {
            let t = uniform_vec(&mut rng, 3, -1.0, 1.0);
            for j in 0..20 {
                let ang = j as f64 * 0.37;
                xs.push(t[0] * ang.sin() + t[1] * ang.cos() + 0.3 * t[2] * (2.0 * ang).sin());
            }
            ys.push(t[0] + 0.5 * t[1]);
            ys.push(t[1] * t[2]);
        }
        (
            Matrix::from_vec(n, 20, xs).unwrap(),
            Matrix::from_vec(n, 2, ys).unwrap(),
        )
    }

    fn quick_driver() -> TwoDNas {
        let search = SearchConfig {
            outer_budget: 2,
            inner_budget: 3,
            bayesian_init: 2,
            k_bounds: (2, 10),
            quality_loss: 0.5,
            ..SearchConfig::default()
        };
        let mut model = ModelConfig::default();
        model.train.epochs = 40;
        model.ae_epochs = 30;
        TwoDNas::new(search, model)
    }

    #[test]
    fn two_d_search_finds_a_feasible_reduced_surrogate() {
        let (x, y) = manifold_task(150);
        let task = NasTask {
            quality: Box::new(NasTask::holdout_quality(x.clone(), y.clone(), 30)),
            inputs: x.clone(),
            sparse_inputs: None,
            outputs: y.clone(),
        };
        let outcome = quick_driver().search(&task).unwrap();
        assert!(outcome.f_e <= 0.5, "f_e = {}", outcome.f_e);
        assert!(outcome.k < 20, "feature reduction must shrink the input");
        assert!(outcome.autoencoder.is_some());
        assert!(!outcome.history.is_empty());
        assert!(outcome.ae_train_seconds > 0.0);
        // The deployed predictor works end to end.
        let ae = outcome.autoencoder.as_ref().unwrap();
        let mut f = ae.encode(x.row(0)).unwrap();
        outcome.scaler.transform_vec(&mut f);
        let mut pred = outcome.surrogate.predict(&f).unwrap();
        outcome.output_scaler.inverse_transform_vec(&mut pred);
        assert_eq!(pred.len(), 2);
    }

    #[test]
    fn full_input_mode_skips_the_autoencoder() {
        let (x, y) = manifold_task(100);
        let task = NasTask {
            quality: Box::new(NasTask::holdout_quality(x.clone(), y.clone(), 20)),
            inputs: x,
            sparse_inputs: None,
            outputs: y,
        };
        let mut driver = quick_driver();
        driver.search.search_type = SearchType::FullInput;
        let outcome = driver.search(&task).unwrap();
        assert!(outcome.autoencoder.is_none());
        assert_eq!(outcome.k, 20);
    }

    #[test]
    fn infeasible_quality_bound_errors() {
        let (x, y) = manifold_task(60);
        let task = NasTask {
            quality: Box::new(|_| 1.0), // nothing is ever good enough
            inputs: x,
            sparse_inputs: None,
            outputs: y,
        };
        let mut driver = quick_driver();
        driver.search.quality_loss = 1e-12;
        assert!(matches!(
            driver.search(&task),
            Err(NasError::NoFeasibleCandidate)
        ));
    }

    #[test]
    fn checkpoint_roundtrip_and_resume() {
        let (x, y) = manifold_task(100);
        let task = NasTask {
            quality: Box::new(NasTask::holdout_quality(x.clone(), y.clone(), 20)),
            inputs: x.clone(),
            sparse_inputs: None,
            outputs: y.clone(),
        };
        let driver = quick_driver();
        let (outcome1, cp) = driver.search_with_checkpoint(&task, None).unwrap();
        assert!(!cp.outer_observations.is_empty());
        let json = cp.to_json();
        let restored = SearchCheckpoint::from_json(&json).unwrap();
        assert_eq!(
            restored.outer_observations.len(),
            cp.outer_observations.len()
        );
        // Resume: conditions on prior observations, evaluates fresh ones.
        let (outcome2, cp2) = driver
            .search_with_checkpoint(&task, Some(restored))
            .unwrap();
        assert!(cp2.outer_observations.len() > cp.outer_observations.len());
        // Resumed search should do no worse.
        assert!(outcome2.f_e <= outcome1.f_e + 0.5);
    }
}
