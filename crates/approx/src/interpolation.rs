//! Table interpolation (paper §2.2's third traditional technique):
//! inverse-distance-weighted k-nearest-neighbor prediction over stored
//! samples.

use hpcnet_tensor::Matrix;

use crate::{ApproxError, Result};

/// A k-NN interpolator over stored `(input, output)` samples.
pub struct KnnInterpolator {
    inputs: Matrix,
    outputs: Matrix,
    k: usize,
}

impl KnnInterpolator {
    /// Build from stored samples.
    pub fn new(inputs: Matrix, outputs: Matrix, k: usize) -> Result<Self> {
        if inputs.rows() == 0 || inputs.rows() != outputs.rows() {
            return Err(ApproxError::BadConfig(
                "need matching non-empty samples".into(),
            ));
        }
        if k == 0 {
            return Err(ApproxError::BadConfig("k must be positive".into()));
        }
        Ok(KnnInterpolator {
            k: k.min(inputs.rows()),
            inputs,
            outputs,
        })
    }

    /// Inverse-distance-weighted prediction.
    pub fn predict(&self, query: &[f64]) -> Vec<f64> {
        // Collect the k nearest samples.
        let mut dists: Vec<(f64, usize)> = (0..self.inputs.rows())
            .map(|i| {
                let d: f64 = self
                    .inputs
                    .row(i)
                    .iter()
                    .zip(query)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (d, i)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN distances"));
        let nearest = &dists[..self.k];

        // Exact-match short circuit avoids a division by zero.
        if nearest[0].0 < 1e-24 {
            return self.outputs.row(nearest[0].1).to_vec();
        }
        let mut out = vec![0.0; self.outputs.cols()];
        let mut weight_sum = 0.0;
        for &(d, i) in nearest {
            let w = 1.0 / d.sqrt();
            weight_sum += w;
            for (o, &y) in out.iter_mut().zip(self.outputs.row(i)) {
                *o += w * y;
            }
        }
        for o in &mut out {
            *o /= weight_sum;
        }
        out
    }

    /// Per-query FLOP cost (distance scan dominates).
    pub fn flops_per_query(&self) -> u64 {
        (3 * self.inputs.rows() * self.inputs.cols()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_samples() -> (Matrix, Matrix) {
        // f(x) = 2x on a 1-D grid.
        let xs: Vec<f64> = (0..11).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x).collect();
        (
            Matrix::from_vec(11, 1, xs).unwrap(),
            Matrix::from_vec(11, 1, ys).unwrap(),
        )
    }

    #[test]
    fn interpolates_linear_function_well() {
        let (x, y) = grid_samples();
        let knn = KnnInterpolator::new(x, y, 2).unwrap();
        let pred = knn.predict(&[0.55]);
        assert!((pred[0] - 1.1).abs() < 0.05, "pred {}", pred[0]);
    }

    #[test]
    fn exact_match_returns_stored_output() {
        let (x, y) = grid_samples();
        let knn = KnnInterpolator::new(x, y, 3).unwrap();
        assert_eq!(knn.predict(&[0.3]), vec![0.6]);
    }

    #[test]
    fn rejects_bad_construction() {
        let x = Matrix::zeros(0, 1);
        let y = Matrix::zeros(0, 1);
        assert!(KnnInterpolator::new(x, y, 2).is_err());
        let (x, y) = grid_samples();
        assert!(KnnInterpolator::new(x, y, 0).is_err());
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let (x, y) = grid_samples();
        let knn = KnnInterpolator::new(x, y, 100).unwrap();
        let p = knn.predict(&[0.5]);
        assert!(p[0].is_finite());
    }
}
