//! ACCEPT-style NN approximation (Sampson et al.): the programmer supplies
//! the network topology; the tool trains it and swaps it in. No feature
//! reduction, no architecture search, no quality-aware objective — the
//! limitations paper §7.2 attributes to it.

use hpcnet_nn::train::{FeatureScaler, Preprocessing};
use hpcnet_nn::{Mlp, Topology, TrainConfig, Trainer};
use hpcnet_tensor::Matrix;

use crate::{ApproxError, Result};

/// A trained ACCEPT-style surrogate.
pub struct AcceptModel {
    /// The fixed-topology network.
    pub mlp: Mlp,
    /// Input scaler fitted at training time.
    pub scaler: FeatureScaler,
    /// Output scaler (network trains on standardized targets).
    pub output_scaler: FeatureScaler,
    /// Final training/validation loss.
    pub loss: f64,
}

impl AcceptModel {
    /// Predict region outputs from raw region inputs.
    pub fn predict(&self, raw: &[f64]) -> Option<Vec<f64>> {
        let mut f = raw.to_vec();
        self.scaler.transform_vec(&mut f);
        let mut out = self.mlp.predict(&f).ok()?;
        self.output_scaler.inverse_transform_vec(&mut out);
        Some(out)
    }
}

/// Train the user-specified topology on the samples. `hidden` is the
/// programmer's annotation (ACCEPT's `APPROX_TOPOLOGY`-style hint).
pub fn accept_like(
    inputs: &Matrix,
    outputs: &Matrix,
    hidden: &[usize],
    train: TrainConfig,
) -> Result<AcceptModel> {
    if hidden.is_empty() {
        return Err(ApproxError::BadConfig(
            "ACCEPT needs a user topology".into(),
        ));
    }
    let mut widths = Vec::with_capacity(hidden.len() + 2);
    widths.push(inputs.cols());
    widths.extend_from_slice(hidden);
    widths.push(outputs.cols());
    let topology = Topology::mlp(widths);
    let mut rng = hpcnet_tensor::rng::seeded(train.seed, "accept");
    let mut mlp = Mlp::new(&topology, &mut rng)?;
    let cfg = TrainConfig {
        preprocessing: Preprocessing::Standardize,
        ..train
    };
    let output_scaler = FeatureScaler::fit(outputs);
    let mut y = outputs.clone();
    output_scaler.transform_matrix(&mut y);
    let report = Trainer::new(cfg).fit(&mut mlp, inputs, &y)?;
    Ok(AcceptModel {
        mlp,
        scaler: report.scaler,
        output_scaler,
        loss: report.best_loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_tensor::rng::{seeded, uniform_vec};

    fn dataset(n: usize) -> (Matrix, Matrix) {
        let mut rng = seeded(1, "accept-ds");
        let xs = uniform_vec(&mut rng, n * 4, -1.0, 1.0);
        let ys: Vec<f64> = xs.chunks(4).map(|c| c[0] * c[1] + c[2]).collect();
        (
            Matrix::from_vec(n, 4, xs).unwrap(),
            Matrix::from_vec(n, 1, ys).unwrap(),
        )
    }

    #[test]
    fn accept_trains_the_given_topology() {
        let (x, y) = dataset(150);
        let model = accept_like(
            &x,
            &y,
            &[16, 16],
            TrainConfig {
                epochs: 150,
                lr: 5e-3,
                patience: 0,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        assert_eq!(model.mlp.topology().widths, vec![4, 16, 16, 1]);
        // Loss is in standardized target units (unit variance).
        assert!(model.loss < 0.15, "loss = {}", model.loss);
        let pred = model.predict(&[0.5, 0.5, 0.0, 0.0]).unwrap();
        assert!((pred[0] - 0.25).abs() < 0.3, "pred {}", pred[0]);
    }

    #[test]
    fn empty_topology_rejected() {
        let (x, y) = dataset(10);
        assert!(accept_like(&x, &y, &[], TrainConfig::default()).is_err());
    }
}
