//! HPAC-style loop perforation: find the most aggressive skip rate that
//! keeps the application QoI within the user's bound, then apply it.

use hpcnet_apps::HpcApp;
use serde::{Deserialize, Serialize};

/// The tuned perforation configuration for one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerforationOutcome {
    /// Chosen skip rate in `[0, 1)`.
    pub skip: f64,
    /// Fraction of calibration problems within the quality bound at the
    /// chosen rate.
    pub calibration_hit_rate: f64,
    /// Mean FLOP reduction factor (exact / perforated) at the chosen rate.
    pub flop_reduction: f64,
}

/// Tune the skip rate on `n_cal` calibration problems: the largest rate on
/// a fixed grid whose per-problem QoI error `|V' - V| <= mu * |V|` holds on
/// every calibration problem (HPAC tunes "how frequently the loop
/// iterations can be skipped without causing significant quality
/// degradation").
pub fn tune_skip_rate(
    app: &dyn HpcApp,
    mu: f64,
    n_cal: usize,
    problem_base: u64,
) -> PerforationOutcome {
    const GRID: [f64; 7] = [0.9, 0.75, 0.6, 0.5, 0.35, 0.25, 0.1];
    for &skip in &GRID {
        if let Some(outcome) = evaluate_rate(app, skip, mu, n_cal, problem_base) {
            if outcome.calibration_hit_rate >= 1.0 {
                return outcome;
            }
        } else {
            // Region not perforable at all.
            break;
        }
    }
    PerforationOutcome {
        skip: 0.0,
        calibration_hit_rate: 1.0,
        flop_reduction: 1.0,
    }
}

/// Evaluate one skip rate; `None` if the region is not perforable.
pub fn evaluate_rate(
    app: &dyn HpcApp,
    skip: f64,
    mu: f64,
    n_cal: usize,
    problem_base: u64,
) -> Option<PerforationOutcome> {
    let mut hits = 0usize;
    let mut reduction_sum = 0.0;
    for i in 0..n_cal {
        let x = app.gen_problem(problem_base + i as u64);
        let (exact_out, exact_flops) = app.run_region_counted(&x);
        let (perf_out, perf_flops) = app.run_region_perforated(&x, skip)?;
        let v = app.qoi(&x, &exact_out);
        let v_perf = app.qoi(&x, &perf_out);
        if (v_perf - v).abs() <= mu * v.abs() {
            hits += 1;
        }
        reduction_sum += exact_flops as f64 / perf_flops.max(1) as f64;
    }
    Some(PerforationOutcome {
        skip,
        calibration_hit_rate: hits as f64 / n_cal.max(1) as f64,
        flop_reduction: reduction_sum / n_cal.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_apps::{BlackscholesApp, FftApp, StreamclusterApp};

    #[test]
    fn tuner_returns_zero_for_non_perforable_regions() {
        let out = tune_skip_rate(&FftApp::default(), 0.1, 4, 100);
        assert_eq!(out.skip, 0.0);
        assert_eq!(out.flop_reduction, 1.0);
    }

    #[test]
    fn tuner_finds_nonzero_rate_for_tolerant_regions() {
        // streamcluster's local search converges early; skipping trailing
        // rounds barely moves the QoI.
        let out = tune_skip_rate(&StreamclusterApp::default(), 0.1, 4, 100);
        assert!(out.skip > 0.0, "expected a usable skip rate");
        assert!(out.flop_reduction > 1.0);
        assert_eq!(out.calibration_hit_rate, 1.0);
    }

    #[test]
    fn chosen_rate_respects_quality_on_fresh_problems() {
        let app = BlackscholesApp;
        let out = tune_skip_rate(&app, 0.1, 4, 100);
        // Validate on problems outside the calibration set.
        let eval = evaluate_rate(&app, out.skip.max(1e-9), 0.1, 6, 500).unwrap();
        assert!(
            eval.calibration_hit_rate >= 0.5,
            "tuned rate should mostly generalize, got {}",
            eval.calibration_hit_rate
        );
    }

    #[test]
    fn stricter_bounds_give_smaller_skips() {
        let app = StreamclusterApp::default();
        let loose = tune_skip_rate(&app, 0.5, 4, 100);
        let tight = tune_skip_rate(&app, 0.001, 4, 100);
        assert!(tight.skip <= loose.skip);
    }
}
