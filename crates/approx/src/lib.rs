//! Approximate-computing baselines the paper compares against (Fig. 6).
//!
//! * [`perforation`] — HPAC-style loop perforation: tune the largest skip
//!   rate whose quality degradation stays within the user bound, then run
//!   the perforated region.
//! * [`accept`] — ACCEPT-style NN approximation: a *user-specified* fixed
//!   topology trained on the samples, no feature reduction, no
//!   quality-aware architecture search (the two deficiencies §7.2 cites).
//! * [`interpolation`] — the classic table-interpolation approximation
//!   (k-nearest-neighbor prediction over stored samples), §2.2's third
//!   traditional technique.

pub mod accept;
pub mod interpolation;
pub mod perforation;

pub use accept::{accept_like, AcceptModel};
pub use interpolation::KnnInterpolator;
pub use perforation::{tune_skip_rate, PerforationOutcome};

/// Errors from baseline construction.
#[derive(Debug)]
pub enum ApproxError {
    /// NN training failed (ACCEPT baseline).
    Nn(hpcnet_nn::NnError),
    /// The region does not support the requested approximation.
    Unsupported(&'static str),
    /// Bad configuration or data.
    BadConfig(String),
}

impl From<hpcnet_nn::NnError> for ApproxError {
    fn from(e: hpcnet_nn::NnError) -> Self {
        ApproxError::Nn(e)
    }
}

impl std::fmt::Display for ApproxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApproxError::Nn(e) => write!(f, "nn error: {e}"),
            ApproxError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ApproxError::BadConfig(m) => write!(f, "bad config: {m}"),
        }
    }
}

impl std::error::Error for ApproxError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ApproxError>;
