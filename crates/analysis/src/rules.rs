//! The project-specific lint rules.
//!
//! Six rules: four concurrency-correctness invariants of the serving
//! stack (see DESIGN.md §13), one precision invariant of the
//! dual-precision kernel modules (DESIGN.md §14), and one tracing
//! invariant (DESIGN.md §16):
//!
//! * `no-panic` — no `unwrap`/`expect`/panicking macro in non-test code
//!   of the serving crates. A panic on the serving path kills a worker or
//!   poisons a lock, stranding queued requests.
//! * `relaxed-ordering` — every `Ordering::Relaxed` must carry a
//!   `// relaxed: <invariant>` justification comment (pure counters are
//!   fine; cross-thread flags are not — the comment forces the author to
//!   say which one it is).
//! * `guard-across-blocking` — a `let`-bound lock guard must not be live
//!   across a blocking channel/I-O call (`send`, `recv`, `join`, frame
//!   I/O, …): that turns a short critical section into a convoy or a
//!   deadlock.
//! * `result-error-type` — `pub fn`s in `hpcnet-runtime`/`hpcnet-net`
//!   returning `Result` must use `RuntimeError`-convertible error types
//!   (`RuntimeError` itself or `WireError`), not `io::Result` — callers
//!   get one coherent error surface.
//! * `f64-literal` — in files declaring themselves dual-precision kernel
//!   modules (a `hpcnet-kernel: dual-precision` marker comment), no
//!   `f64`-suffixed or unsuffixed float literal in non-test code: an
//!   unsuffixed literal silently infers to `f64` and an `f64`-suffixed
//!   one can't instantiate at `f32`, so either breaks or skews the f32
//!   twin of the kernel. Use the `Scalar::ZERO` associated const (or an
//!   explicitly justified literal) instead.
//! * `stage-name-literal` — stage/span names in serving-crate non-test
//!   code must come from the `hpcnet_telemetry::trace::stage_names`
//!   const table, never be written as string literals: a typo'd or
//!   drifted name silently splits a request's span tree and its
//!   per-stage metrics across two labels.
//!
//! Escape hatch: `// hpcnet-lint: allow(<rule>) -- <reason>` on the
//! offending line or the line above. An allow without a reason is itself
//! a violation (`allow-without-reason`).

use std::path::{Path, PathBuf};

use crate::lexer::{strip, FileMap};

/// A single diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (e.g. `no-panic`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which rules run for a given crate.
#[derive(Debug, Clone, Copy)]
pub struct RuleSet {
    /// Enforce `no-panic`.
    pub no_panic: bool,
    /// Enforce `relaxed-ordering`.
    pub relaxed_ordering: bool,
    /// Enforce `guard-across-blocking`.
    pub guard_blocking: bool,
    /// Enforce `result-error-type`.
    pub result_error_type: bool,
    /// Enforce `f64-literal` (only fires in files carrying the
    /// [`KERNEL_MARKER`] comment).
    pub f64_literal: bool,
    /// Enforce `stage-name-literal`.
    pub stage_name_literal: bool,
}

impl RuleSet {
    /// The full rule set (runtime, net, cluster).
    pub fn serving() -> Self {
        RuleSet {
            no_panic: true,
            relaxed_ordering: true,
            guard_blocking: true,
            result_error_type: true,
            f64_literal: true,
            stage_name_literal: true,
        }
    }

    /// Telemetry: everything except the error-type rule (telemetry has
    /// no `RuntimeError` dependency by design) and the stage-name rule
    /// (telemetry is where the `stage_names` const table is *defined*).
    pub fn telemetry() -> Self {
        RuleSet {
            result_error_type: false,
            stage_name_literal: false,
            ..Self::serving()
        }
    }

    /// Math crates (tensor, nn): only the dual-precision literal rule —
    /// their non-serving code legitimately unwraps, panics on shape
    /// bugs, and returns crate-local error types.
    pub fn kernels() -> Self {
        RuleSet {
            no_panic: false,
            relaxed_ordering: false,
            guard_blocking: false,
            result_error_type: false,
            f64_literal: true,
            stage_name_literal: false,
        }
    }
}

/// Marker comment a file uses to declare itself a dual-precision kernel
/// module and opt into the `f64-literal` rule.
pub const KERNEL_MARKER: &str = "hpcnet-kernel: dual-precision";

/// Error types accepted by `result-error-type`: `RuntimeError` itself and
/// types with a `From` conversion into it.
const CONVERTIBLE_ERRORS: &[&str] = &["RuntimeError", "WireError", "Self"];

/// Method calls that block on a channel, a thread, or a socket. Matched
/// as `.name(`; no-argument calls are matched with the closing paren so
/// `Vec::join(sep)` and `Read::read(buf)` do not collide.
const BLOCKING_CALLS: &[&str] = &[
    ".send(",
    ".try_send(",
    ".recv(",
    ".recv_timeout(",
    ".join()",
    ".flush()",
    ".write_all(",
    ".read_exact(",
    ".accept()",
    "read_frame(",
    "write_frame(",
    "sleep(",
    "TcpStream::connect",
];

/// Macros that panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// The canonical span/stage names. Source of truth is
/// `hpcnet_telemetry::trace::stage_names`; this crate is deliberately
/// dependency-free, so the values are mirrored here and pinned against
/// drift by the telemetry crate's own tests.
const STAGE_NAMES: &[&str] = &[
    "request",
    "queue_wait",
    "fetch",
    "encode",
    "infer",
    "infer_f32",
    "guard",
    "fallback",
    "shard",
    "retrain",
];

/// Per-line allow annotations parsed from comments.
#[derive(Debug, Default)]
struct Allows {
    /// `(line, rule)` pairs; `line` is 0-based.
    entries: Vec<(usize, String)>,
}

impl Allows {
    fn permits(&self, line: usize, rule: &str) -> bool {
        self.entries
            .iter()
            .any(|(l, r)| *l == line && (r == rule || r == "all"))
    }
}

/// Parse `hpcnet-lint: allow(rule, rule) -- reason` annotations. The
/// allow applies to its own line and, when the line holds no code, to the
/// next line that does.
fn parse_allows(map: &FileMap, file: &Path, violations: &mut Vec<Violation>) -> Allows {
    let mut allows = Allows::default();
    for (idx, comment) in map.comments.iter().enumerate() {
        let Some(pos) = comment.find("hpcnet-lint:") else {
            continue;
        };
        let rest = &comment[pos + "hpcnet-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: "allow-without-reason",
                message: "malformed hpcnet-lint annotation (expected `allow(<rule>) -- <reason>`)"
                    .to_string(),
            });
            continue;
        };
        let after = &rest[open + "allow(".len()..];
        let Some(close) = after.find(')') else {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: "allow-without-reason",
                message: "unclosed hpcnet-lint allow(...)".to_string(),
            });
            continue;
        };
        let reason_ok = after[close..]
            .split_once("--")
            .map(|(_, reason)| reason.trim().len() >= 3)
            .unwrap_or(false);
        if !reason_ok {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: "allow-without-reason",
                message: "hpcnet-lint allow without a `-- <reason>` justification".to_string(),
            });
            continue;
        }
        let mut targets = vec![idx];
        if map.code[idx].trim().is_empty() {
            // Standalone comment line: the allow covers the next code line.
            if let Some(next) = (idx + 1..map.len()).find(|&l| !map.code[l].trim().is_empty()) {
                targets.push(next);
            }
        }
        for rule in after[..close].split(',') {
            let rule = rule.trim().to_string();
            for &t in &targets {
                allows.entries.push((t, rule.clone()));
            }
        }
    }
    allows
}

/// Mark the lines belonging to `#[cfg(test)]`-gated items.
fn test_lines(map: &FileMap) -> Vec<bool> {
    let mut in_test = vec![false; map.len()];
    let mut idx = 0;
    while idx < map.len() {
        let code = &map.code[idx];
        let is_test_attr = code.contains("#[cfg(test)]")
            || code.contains("#[cfg(all(test")
            || code.contains("#[cfg(any(test");
        if !is_test_attr {
            idx += 1;
            continue;
        }
        // Skip to the attributed item's opening brace, then brace-match.
        let mut depth = 0i64;
        let mut opened = false;
        let mut l = idx;
        while l < map.len() {
            in_test[l] = true;
            for ch in map.code[l].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened && depth == 0 => {
                        // Braceless item (e.g. `#[cfg(test)] use x;`).
                        opened = true;
                        depth = 0;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            l += 1;
        }
        idx = l + 1;
    }
    in_test
}

/// Does `line` contain a call of the form `.name(` where `name` is the
/// exact method identifier?
fn has_method_call(line: &str, name: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(name) {
        let start = from + pos;
        let end = start + name.len();
        let before_ok = start > 0 && bytes[start - 1] == b'.';
        let after_ok = bytes.get(end).copied() == Some(b'(');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Does `line` invoke the macro `name!`?
fn has_macro(line: &str, name: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(name) {
        let start = from + pos;
        let end = start + name.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = bytes.get(end).copied() == Some(b'!');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Does `line` use `Relaxed` as a standalone path segment / identifier?
fn uses_relaxed(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("Relaxed") {
        let start = from + pos;
        let end = start + "Relaxed".len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = bytes.get(end).copied().map(is_ident_byte) != Some(true);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Is there a `// relaxed: ...` invariant comment on `line` or in the
/// contiguous comment block directly above it?
fn has_relaxed_invariant(map: &FileMap, line: usize) -> bool {
    if map.comments[line].to_lowercase().contains("relaxed:") {
        return true;
    }
    let mut l = line;
    while l > 0 {
        l -= 1;
        let has_comment = !map.comments[l].trim().is_empty();
        let has_code = !map.code[l].trim().is_empty();
        if has_code || !has_comment {
            return false;
        }
        if map.comments[l].to_lowercase().contains("relaxed:") {
            return true;
        }
    }
    false
}

/// Detect a `let`-bound lock guard: `let [mut] name = <chain>.lock();`
/// (or `.read()` / `.write()`), optionally followed by one
/// `.unwrap_or_else(..)` / `.expect(..)` adapter before the `;`.
fn guard_binding(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    for pat in [".lock()", ".read()", ".write()"] {
        let Some(pos) = code.find(pat) else {
            continue;
        };
        let tail = code[pos + pat.len()..].trim();
        if tail == ";" {
            return Some(name);
        }
        // One poison adapter is allowed before the `;`. Anything after the
        // adapter's closing paren (`.get(..)`, an enclosing call's `)`)
        // means the guard is a temporary, not a live binding.
        for adapter in [".unwrap_or_else(", ".expect(", ".unwrap("] {
            if let Some(rest) = tail.strip_prefix(adapter) {
                if let Some(close) = matching_paren(rest) {
                    if rest[close + 1..].trim() == ";" {
                        return Some(name);
                    }
                }
            }
        }
    }
    None
}

/// Float literals in one code line that the `f64-literal` rule flags:
/// `f64`-suffixed literals and unsuffixed float literals (which infer to
/// `f64` when unconstrained). Integer literals, radix-prefixed literals,
/// and literals with any other suffix (`f32`, `usize`, …) pass. Returns
/// the offending tokens in order of appearance.
fn f64_literals(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut found = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        // A numeric token starts at a digit not glued to an identifier
        // (`x1`) or a field access (`t.0`).
        if !b.is_ascii_digit() || (i > 0 && (is_ident_byte(bytes[i - 1]) || bytes[i - 1] == b'.')) {
            i += 1;
            continue;
        }
        let start = i;
        if b == b'0' && matches!(bytes.get(i + 1), Some(b'x' | b'o' | b'b')) {
            // Radix-prefixed integer: consume and ignore.
            i += 2;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            continue;
        }
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
        let mut is_float = false;
        if bytes.get(i) == Some(&b'.') && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
            is_float = true;
            i += 1;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
        if matches!(bytes.get(i), Some(b'e' | b'E')) {
            let mut j = i + 1;
            if matches!(bytes.get(j), Some(b'+' | b'-')) {
                j += 1;
            }
            if bytes.get(j).is_some_and(u8::is_ascii_digit) {
                is_float = true;
                i = j;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
            }
        }
        let suffix_start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let suffix = &line[suffix_start..i];
        if suffix == "f64" || (suffix.is_empty() && is_float) {
            found.push(line[start..i].to_string());
        }
    }
    found
}

/// Index of the `)` closing an already-open paren at the start of `s`.
fn matching_paren(s: &str) -> Option<usize> {
    let mut depth = 1i64;
    for (i, ch) in s.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Run every enabled rule over one file.
pub fn check_file(file: &Path, source: &str, rules: RuleSet) -> Vec<Violation> {
    let map = strip(source);
    let mut violations = Vec::new();
    let allows = parse_allows(&map, file, &mut violations);
    let tests = test_lines(&map);
    // `f64-literal` only fires in self-declared dual-precision kernel
    // modules; the marker lives in a comment, so look at the raw source.
    let dual_precision = rules.f64_literal && source.contains(KERNEL_MARKER);

    let push = |line: usize, rule: &'static str, message: String, v: &mut Vec<Violation>| {
        if !allows.permits(line, rule) {
            v.push(Violation {
                file: file.to_path_buf(),
                line: line + 1,
                rule,
                message,
            });
        }
    };

    // Active lock guards for guard-across-blocking: (name, depth at decl).
    let mut depth = 0i64;
    let mut guards: Vec<(String, i64)> = Vec::new();

    for idx in 0..map.len() {
        let code = &map.code[idx];
        let in_test = tests[idx];

        if !in_test && rules.no_panic {
            for name in ["unwrap", "expect"] {
                if has_method_call(code, name) {
                    push(
                        idx,
                        "no-panic",
                        format!(
                            "`.{name}()` in serving-crate non-test code; \
                             return a typed RuntimeError or recover (e.g. \
                             `unwrap_or_else(PoisonError::into_inner)`)"
                        ),
                        &mut violations,
                    );
                }
            }
            for name in PANIC_MACROS {
                if has_macro(code, name) {
                    push(
                        idx,
                        "no-panic",
                        format!("`{name}!` in serving-crate non-test code"),
                        &mut violations,
                    );
                }
            }
        }

        if !in_test && dual_precision {
            for token in f64_literals(code) {
                let kind = if token.ends_with("f64") {
                    "`f64`-suffixed literal"
                } else {
                    "unsuffixed float literal (infers to `f64`)"
                };
                push(
                    idx,
                    "f64-literal",
                    format!(
                        "{kind} `{token}` in a dual-precision kernel module; \
                         use `Scalar::ZERO` / a generic constant, or justify \
                         with `hpcnet-lint: allow(f64-literal) -- <reason>`"
                    ),
                    &mut violations,
                );
            }
        }

        if !in_test && rules.stage_name_literal {
            for lit in &map.literals[idx] {
                if STAGE_NAMES.contains(&lit.as_str()) {
                    push(
                        idx,
                        "stage-name-literal",
                        format!(
                            "stage name \"{lit}\" written as a string literal; \
                             use the `hpcnet_telemetry::trace::stage_names` \
                             const so span names cannot drift between hops"
                        ),
                        &mut violations,
                    );
                }
            }
        }

        if !in_test
            && rules.relaxed_ordering
            && uses_relaxed(code)
            && !has_relaxed_invariant(&map, idx)
        {
            push(
                idx,
                "relaxed-ordering",
                "`Ordering::Relaxed` without a `// relaxed: <invariant>` \
                 justification comment"
                    .to_string(),
                &mut violations,
            );
        }

        if rules.guard_blocking {
            // Guard/depth tracking always runs (it follows file structure);
            // violations are only reported for non-test code.
            for pat in BLOCKING_CALLS {
                if code.contains(pat) {
                    if let Some((name, _)) = guards.last().filter(|_| !in_test) {
                        push(
                            idx,
                            "guard-across-blocking",
                            format!(
                                "blocking call `{}` while lock guard `{name}` is live; \
                                 drop the guard (or narrow its scope) first",
                                pat.trim_matches(|c| c == '.' || c == '(')
                            ),
                            &mut violations,
                        );
                    }
                    break;
                }
            }
            if let Some(stripped) = code.trim().strip_prefix("drop(") {
                let dropped: String = stripped
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                guards.retain(|(name, _)| *name != dropped);
            }
            for ch in code.chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            guards.retain(|(_, d)| depth >= *d);
            if let Some(name) = guard_binding(code) {
                guards.push((name, depth));
            }
        }

        if !in_test && rules.result_error_type {
            let trimmed = code.trim_start();
            if (trimmed.starts_with("pub fn") || trimmed.starts_with("pub(crate) fn"))
                && !trimmed.starts_with("pub fn main")
            {
                // Gather the signature (possibly multi-line) up to its body.
                let mut sig = String::new();
                for l in idx..map.len().min(idx + 12) {
                    sig.push_str(map.code[l].trim());
                    sig.push(' ');
                    if map.code[l].contains('{') || map.code[l].trim_end().ends_with(';') {
                        break;
                    }
                }
                if let Some(message) = check_result_type(&sig) {
                    push(idx, "result-error-type", message, &mut violations);
                }
            }
        }
    }
    violations
}

/// Inspect a `pub fn` signature's return type. Returns a diagnostic when
/// the error type is not `RuntimeError`-convertible.
fn check_result_type(sig: &str) -> Option<String> {
    let ret = sig.split("->").nth(1)?;
    let ret = ret.split(" where ").next().unwrap_or(ret);
    let ret = ret.split('{').next().unwrap_or(ret).trim();
    // Find `Result<` as a standalone path segment.
    let bytes = ret.as_bytes();
    let mut from = 0;
    let start = loop {
        let pos = ret[from..].find("Result<")?;
        let start = from + pos;
        if start == 0 || !is_ident_byte(bytes[start - 1]) {
            break start;
        }
        from = start + 1;
    };
    let prefix = ret[..start].trim_end_matches("Result").trim_end();
    if prefix.ends_with("io::") {
        return Some(format!(
            "`pub fn` returns `{}` — map I/O errors into \
             `RuntimeError::Transport` instead",
            ret
        ));
    }
    // Extract the generic arguments and look for a top-level comma.
    let args = &ret[start + "Result<".len()..];
    let mut angle = 0i64;
    let mut top_comma = None;
    for (i, ch) in args.char_indices() {
        match ch {
            '<' | '(' | '[' => angle += 1,
            ')' | ']' => angle -= 1,
            '>' => {
                if angle == 0 {
                    break;
                }
                angle -= 1;
            }
            ',' if angle == 0 => {
                top_comma = Some(i);
                break;
            }
            _ => {}
        }
    }
    let Some(comma) = top_comma else {
        // Single-argument alias: the crate's own `Result<T>` — fine.
        return None;
    };
    let err_ty = args[comma + 1..]
        .split(['>', ','])
        .next()
        .unwrap_or("")
        .trim();
    let convertible = CONVERTIBLE_ERRORS
        .iter()
        .any(|ok| err_ty == *ok || err_ty.ends_with(&format!("::{ok}")));
    if convertible {
        None
    } else {
        Some(format!(
            "`pub fn` returns `Result<_, {err_ty}>`, which is not \
             RuntimeError-convertible; add a `From<{err_ty}> for RuntimeError` \
             impl or change the error type"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn check(src: &str, rules: RuleSet) -> Vec<Violation> {
        check_file(Path::new("test.rs"), src, rules)
    }

    #[test]
    fn no_panic_flags_unwrap_and_macros() {
        let v = check(
            "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); }\n",
            RuleSet::serving(),
        );
        assert_eq!(v.iter().filter(|v| v.rule == "no-panic").count(), 3);
    }

    #[test]
    fn no_panic_skips_tests_lookalikes_and_comments() {
        let src = "\
fn ok() { x.unwrap_or_else(|p| p.into_inner()); } // .unwrap() here is fine
fn ok2() -> bool { s.contains(\"panic!\") }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); panic!(\"test code\"); }
}
";
        assert!(check(src, RuleSet::serving()).is_empty());
    }

    #[test]
    fn allow_hatch_suppresses_with_reason_only() {
        let with_reason =
            "fn f() { x.expect(\"invariant\"); } // hpcnet-lint: allow(no-panic) -- startup-only path\n";
        assert!(check(with_reason, RuleSet::serving()).is_empty());

        let without_reason = "fn f() { x.expect(\"m\"); } // hpcnet-lint: allow(no-panic)\n";
        let v = check(without_reason, RuleSet::serving());
        assert!(v.iter().any(|v| v.rule == "allow-without-reason"));
        assert!(v.iter().any(|v| v.rule == "no-panic"));
    }

    #[test]
    fn standalone_allow_comment_covers_next_line() {
        let src = "\
// hpcnet-lint: allow(no-panic) -- demo topology is statically valid
fn f() { x.expect(\"demo\"); }
";
        assert!(check(src, RuleSet::serving()).is_empty());
    }

    #[test]
    fn relaxed_needs_invariant_comment() {
        let bare = "fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::Relaxed); }\n";
        let v = check(bare, RuleSet::telemetry());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "relaxed-ordering");

        let justified = "\
fn f(a: &AtomicU64) {
    // relaxed: pure counter; nothing is published through this value.
    a.fetch_add(1, Ordering::Relaxed);
}
";
        assert!(check(justified, RuleSet::telemetry()).is_empty());
    }

    #[test]
    fn guard_across_blocking_flags_send_under_lock() {
        let src = "\
fn f() {
    let guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
    tx.send(job);
}
";
        let v = check(src, RuleSet::serving());
        assert_eq!(
            v.iter()
                .filter(|v| v.rule == "guard-across-blocking")
                .count(),
            1
        );
    }

    #[test]
    fn guard_dropped_or_scoped_is_fine() {
        let src = "\
fn f() {
    {
        let guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
        guard.push(1);
    }
    tx.send(job);
    let g2 = self.state.lock().unwrap_or_else(|p| p.into_inner());
    drop(g2);
    tx.send(job2);
}
";
        assert!(check(src, RuleSet::serving()).is_empty());
    }

    #[test]
    fn chained_lock_expression_is_not_a_guard() {
        let src = "\
fn f() {
    let entry = self.registry.read().get(key).cloned();
    tx.send(entry);
}
";
        assert!(check(src, RuleSet::serving()).is_empty());
    }

    #[test]
    fn mem_take_of_locked_contents_is_not_a_guard() {
        let src = "\
fn f() {
    let joiners = std::mem::take(&mut *self.joiners.lock().unwrap_or_else(|p| p.into_inner()));
    for j in joiners {
        let _ = j.join();
    }
}
";
        assert!(check(src, RuleSet::serving()).is_empty());
    }

    #[test]
    fn result_error_type_flags_io_result() {
        let src = "pub fn serve(&self) -> std::io::Result<Server> { body() }\n";
        let v = check(src, RuleSet::serving());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "result-error-type");
    }

    #[test]
    fn result_error_type_accepts_convertible_errors() {
        let src = "\
pub fn a() -> Result<Frame, WireError> { body() }
pub fn b(&self) -> Result<NetServer> { body() }
pub fn c(&self) -> Result<Vec<f64>, RuntimeError> { body() }
fn private() -> std::io::Result<()> { body() }
";
        assert!(check(src, RuleSet::serving()).is_empty());
    }

    #[test]
    fn f64_literal_fires_only_in_marked_files() {
        let body = "fn f() { let x = 0.5; let y = 1e-3; let z = 2.0f64; }\n";
        // Unmarked file: silent.
        assert!(check(body, RuleSet::kernels()).is_empty());
        // Marked file: one violation per offending literal.
        let marked = format!("// hpcnet-kernel: dual-precision\n{body}");
        let v = check(&marked, RuleSet::kernels());
        assert_eq!(v.iter().filter(|v| v.rule == "f64-literal").count(), 3);
        assert!(v[0].message.contains("0.5"));
        assert!(v[2].message.contains("f64"));
    }

    #[test]
    fn f64_literal_passes_f32_ints_and_lookalikes() {
        let src = "\
// hpcnet-kernel: dual-precision
fn f(t: (f64, u8)) -> f64 {
    let a = 0.5f32;          // explicit f32 is the point of the module
    let b = 3usize + 0x1f;   // integers and radix literals
    let c = t.0;             // tuple field access, not a literal
    let d = v1.max(2);       // ident-glued digits
    f64::from(a) + c + b as f64
}
";
        assert!(check(src, RuleSet::kernels()).is_empty());
    }

    #[test]
    fn f64_literal_allows_escape_hatch_and_test_code() {
        let src = "\
// hpcnet-kernel: dual-precision
// hpcnet-lint: allow(f64-literal) -- the f64 instantiation is the point
const ZERO: f64 = 0.0f64;
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert!((a - 1.5).abs() < 1e-9); }
}
";
        assert!(check(src, RuleSet::kernels()).is_empty());
    }

    #[test]
    fn result_error_type_flags_foreign_error() {
        let src = "pub fn parse(&self) -> Result<Config, serde_json::Error> { body() }\n";
        let v = check(src, RuleSet::serving());
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("serde_json::Error"));
    }

    #[test]
    fn stage_name_literal_flags_exact_literals() {
        let src = "fn f() { timer.finish(\"infer\", svc); t.span_named(\"queue_wait\"); }\n";
        let v = check(src, RuleSet::serving());
        assert_eq!(
            v.iter().filter(|v| v.rule == "stage-name-literal").count(),
            2
        );
        assert!(v[0].message.contains("stage_names"));
    }

    #[test]
    fn stage_name_literal_passes_consts_substrings_and_other_strings() {
        let src = "\
fn f() {
    timer.finish(stage_names::INFER, svc);       // the const table: fine
    log(\"inference took too long\");               // substring, not the name
    span.annotate(\"endpoint\", addr);             // non-stage annotation key
}
";
        assert!(check(src, RuleSet::serving()).is_empty());
    }

    #[test]
    fn stage_name_literal_respects_tests_comments_and_allows() {
        let src = "\
// hpcnet-lint: allow(stage-name-literal) -- pinned wire-format fixture
const FIXTURE: &str = \"guard\";
fn f() { g(); } // \"infer\" in a comment is fine
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert_eq!(span.name, \"fallback\"); }
}
";
        assert!(check(src, RuleSet::serving()).is_empty());
    }

    #[test]
    fn stage_name_literal_is_off_for_telemetry_and_kernels() {
        let src = "fn f() { timer.finish(\"shard\", svc); }\n";
        assert!(check(src, RuleSet::telemetry()).is_empty());
        assert!(check(src, RuleSet::kernels()).is_empty());
    }
}
