//! A minimal Rust lexer that separates code from comments and blanks
//! string/char literal contents, so the line-oriented rules in
//! [`crate::rules`] never match inside a comment, a string, or a doc
//! example.
//!
//! This is deliberately not a full parser: the rules are token-shaped
//! (method calls, macro invocations, path segments), so per-line code
//! text with literals blanked is enough — and it keeps the driver free of
//! external dependencies like `syn`.

/// One source file, split line-by-line into code and comment channels.
#[derive(Debug)]
pub struct FileMap {
    /// Per-line code text. Comments are removed; string/char literal
    /// *contents* are blanked (the delimiting quotes remain so statement
    /// shape is preserved).
    pub code: Vec<String>,
    /// Per-line comment text (without the `//` / `/* */` delimiters
    /// beyond what the comment itself contains).
    pub comments: Vec<String>,
    /// Per-line string literal contents captured while blanking (normal,
    /// raw, and byte strings; char literals are skipped). A multi-line
    /// literal is attributed to the line its closing quote is on. Escape
    /// sequences are kept verbatim (`\n` stays two characters), which is
    /// fine for the exact-match rules that consume this channel.
    pub literals: Vec<Vec<String>>,
}

impl FileMap {
    /// Number of lines in the file.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the file has no lines.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Split `source` into per-line code and comment channels.
pub fn strip(source: &str) -> FileMap {
    let b = source.as_bytes();
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut literals = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut literal_line: Vec<String> = Vec::new();
    let mut i = 0;
    // The previous code byte, used to tell raw strings (`r"..."`) from
    // identifiers ending in `r` (`for`), and lifetimes from char literals.
    let mut prev_code: u8 = b' ';

    macro_rules! newline {
        () => {
            code.push(std::mem::take(&mut code_line));
            comments.push(std::mem::take(&mut comment_line));
            literals.push(std::mem::take(&mut literal_line));
        };
    }

    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied().unwrap_or(b' ');
        match c {
            b'\n' => {
                newline!();
                i += 1;
            }
            b'/' if next == b'/' => {
                // Line comment (incl. doc comments): to end of line.
                while i < b.len() && b[i] != b'\n' {
                    comment_line.push(b[i] as char);
                    i += 1;
                }
            }
            b'/' if next == b'*' => {
                // Block comment, possibly nested, possibly multi-line.
                let mut depth = 1usize;
                comment_line.push_str("/*");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        newline!();
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        comment_line.push_str("/*");
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        comment_line.push_str("*/");
                        i += 2;
                    } else {
                        comment_line.push(b[i] as char);
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = consume_string(
                    b,
                    i,
                    &mut code,
                    &mut comments,
                    &mut literals,
                    &mut code_line,
                    &mut comment_line,
                    &mut literal_line,
                );
                prev_code = b'"';
            }
            b'r' | b'b' if !is_ident(prev_code) => {
                // Possible raw/byte string (r"", r#""#, b"", br#""#, b'').
                let mut j = i;
                let mut saw_b = false;
                if b[j] == b'b' {
                    saw_b = true;
                    j += 1;
                }
                let raw = b.get(j).copied() == Some(b'r');
                if raw {
                    j += 1;
                }
                let mut hashes = 0usize;
                while raw && b.get(j).copied() == Some(b'#') {
                    hashes += 1;
                    j += 1;
                }
                if raw && b.get(j).copied() == Some(b'"') {
                    // Raw string: no escapes; ends at `"` + `hashes` hashes.
                    code_line.push_str(if saw_b { "br\"" } else { "r\"" });
                    j += 1;
                    let mut content = String::new();
                    'raw: while j < b.len() {
                        if b[j] == b'\n' {
                            newline!();
                            content.push('\n');
                            j += 1;
                        } else if b[j] == b'"' {
                            let mut k = 0;
                            while k < hashes && b.get(j + 1 + k).copied() == Some(b'#') {
                                k += 1;
                            }
                            if k == hashes {
                                code_line.push('"');
                                literal_line.push(content);
                                j += 1 + hashes;
                                break 'raw;
                            }
                            content.push('"');
                            j += 1;
                        } else {
                            content.push(b[j] as char);
                            j += 1;
                        }
                    }
                    i = j;
                    prev_code = b'"';
                } else if saw_b && !raw && b.get(i + 1).copied() == Some(b'"') {
                    // Byte string b"...": treat like a normal string.
                    code_line.push('b');
                    i = consume_string(
                        b,
                        i + 1,
                        &mut code,
                        &mut comments,
                        &mut literals,
                        &mut code_line,
                        &mut comment_line,
                        &mut literal_line,
                    );
                    prev_code = b'"';
                } else if saw_b && !raw && b.get(i + 1).copied() == Some(b'\'') {
                    // Byte char b'x'.
                    code_line.push_str("b''");
                    i = consume_char(b, i + 1);
                    prev_code = b'\'';
                } else {
                    code_line.push(c as char);
                    prev_code = c;
                    i += 1;
                }
            }
            b'\'' => {
                // Lifetime or char literal. A char literal is 'X' or an
                // escape; anything else ('a in `&'a str`) is a lifetime.
                let is_char = next == b'\\' || b.get(i + 2).copied() == Some(b'\'');
                if is_char {
                    code_line.push_str("''");
                    i = consume_char(b, i);
                } else {
                    code_line.push('\'');
                    i += 1;
                }
                prev_code = b'\'';
            }
            _ => {
                code_line.push(c as char);
                prev_code = c;
                i += 1;
            }
        }
    }
    if !code_line.is_empty() || !comment_line.is_empty() {
        newline!();
    }
    FileMap {
        code,
        comments,
        literals,
    }
}

/// Consume a `"`-delimited string starting at `i` (which points at the
/// opening quote), blanking its contents into the `literals` channel.
/// Returns the index after the closing quote. Multi-line strings emit
/// their line breaks.
#[allow(clippy::too_many_arguments)]
fn consume_string(
    b: &[u8],
    mut i: usize,
    code: &mut Vec<String>,
    comments: &mut Vec<String>,
    literals: &mut Vec<Vec<String>>,
    code_line: &mut String,
    comment_line: &mut String,
    literal_line: &mut Vec<String>,
) -> usize {
    code_line.push('"');
    i += 1;
    let mut content = String::new();
    while i < b.len() {
        match b[i] {
            b'\\' => {
                content.push('\\');
                if let Some(&next) = b.get(i + 1) {
                    content.push(next as char);
                }
                i += 2;
            }
            b'\n' => {
                code.push(std::mem::take(code_line));
                comments.push(std::mem::take(comment_line));
                literals.push(std::mem::take(literal_line));
                content.push('\n');
                i += 1;
            }
            b'"' => {
                code_line.push('"');
                literal_line.push(content);
                return i + 1;
            }
            _ => {
                content.push(b[i] as char);
                i += 1;
            }
        }
    }
    i
}

/// Consume a `'`-delimited char literal starting at `i` (the opening
/// quote). Returns the index after the closing quote.
fn consume_char(b: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => return i, // malformed; bail at line end
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::strip;

    #[test]
    fn comments_and_strings_are_separated() {
        let m = strip("let x = \"panic!()\"; // real comment\nx.unwrap();\n");
        assert_eq!(m.code[0], "let x = \"\"; ");
        assert_eq!(m.comments[0], "// real comment");
        assert_eq!(m.code[1], "x.unwrap();");
        assert_eq!(m.comments[1], "");
    }

    #[test]
    fn raw_strings_and_lifetimes_survive() {
        let m = strip("fn f<'a>(s: &'a str) { let r = r#\"un\"wrap\"#; }\n");
        assert!(m.code[0].contains("fn f<'a>(s: &'a str)"));
        assert!(!m.code[0].contains("wrap"));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let m = strip("let q = '\"'; let n = '\\n'; y.expect(\"msg\");\n");
        assert!(m.code[0].contains(".expect(\"\")"), "code: {}", m.code[0]);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let m = strip("a /* one /* two */ still */ b.unwrap()\n");
        assert!(m.code[0].contains("b.unwrap()"));
        assert!(!m.code[0].contains("still"));
        assert!(m.comments[0].contains("two"));
    }

    #[test]
    fn literal_contents_are_captured_per_line() {
        let m = strip("let a = \"infer\"; // \"guard\" in a comment\nlet b = r#\"raw\"#;\n");
        assert_eq!(m.literals[0], vec!["infer".to_string()]);
        assert_eq!(m.literals[1], vec!["raw".to_string()]);
        assert!(m.code[0].contains("\"\""), "contents still blanked");
    }

    #[test]
    fn multiline_strings_blank_every_line() {
        let m = strip("let s = \"line one\nline .unwrap() two\";\nlet y = 1;\n");
        assert_eq!(m.len(), 3);
        assert!(!m.code[1].contains("unwrap"));
        assert_eq!(m.code[2], "let y = 1;");
    }
}
