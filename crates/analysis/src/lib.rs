//! `hpcnet-analysis`: the workspace's custom lint driver.
//!
//! The serving stack (`hpcnet-runtime`, `hpcnet-net`, `hpcnet-telemetry`)
//! is deeply concurrent: worker pools over a bounded queue, a lock-free
//! telemetry registry, a multi-threaded TCP server. Generic tooling
//! cannot enforce the project-specific invariants that keep it correct —
//! this driver does. It also guards the dual-precision kernel modules in
//! `hpcnet-tensor`/`hpcnet-nn` against stray `f64` literals that would
//! skew their `f32` instantiations, and keeps distributed-trace span
//! names on the shared `stage_names` const table so traces from
//! different hops stitch together. See [`rules`] for the rule catalogue
//! and DESIGN.md §13–§14 and §16 for the policy discussion.
//!
//! Run it with `cargo run -p hpcnet-analysis`; it prints `file:line:`
//! diagnostics and exits non-zero when any rule fires.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::{RuleSet, Violation};

/// The crates scanned, with the rule set applied to each.
pub fn scanned_crates() -> Vec<(&'static str, RuleSet)> {
    vec![
        ("runtime", RuleSet::serving()),
        ("net", RuleSet::serving()),
        ("cluster", RuleSet::serving()),
        ("telemetry", RuleSet::telemetry()),
        // Online retraining sits below the runtime's error surface and
        // returns `hpcnet-nn` error types by design, so the
        // `result-error-type` rule does not apply to it.
        (
            "online",
            RuleSet {
                result_error_type: false,
                ..RuleSet::serving()
            },
        ),
        // Math crates: only the dual-precision `f64-literal` rule, which
        // self-gates on the `hpcnet-kernel: dual-precision` marker.
        ("tensor", RuleSet::kernels()),
        ("nn", RuleSet::kernels()),
    ]
}

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`). Returns every violation, plus the number of
/// files scanned.
pub fn scan_workspace(root: &Path) -> std::io::Result<(Vec<Violation>, usize)> {
    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for (krate, rules) in scanned_crates() {
        let src = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for file in files {
            let source = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            violations.extend(rules::check_file(&rel, &source, rules));
            scanned += 1;
        }
    }
    Ok((violations, scanned))
}
