//! CLI entry point: scan the workspace, print diagnostics, exit non-zero
//! on any violation.

use std::path::PathBuf;

fn main() {
    // The binary lives at crates/analysis; the workspace root is two up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let root = root.canonicalize().unwrap_or(root);
    match hpcnet_analysis::scan_workspace(&root) {
        Ok((violations, scanned)) => {
            for v in &violations {
                println!("{v}");
            }
            if violations.is_empty() {
                println!("hpcnet-analysis: 0 violations across {scanned} files");
            } else {
                eprintln!(
                    "hpcnet-analysis: {} violation(s) across {scanned} files",
                    violations.len()
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("hpcnet-analysis: failed to scan workspace: {e}");
            std::process::exit(2);
        }
    }
}
