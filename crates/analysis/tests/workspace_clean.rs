//! The workspace's own acceptance gate: the serving crates must be free
//! of lint violations. This runs under tier-1 `cargo test`, so a
//! violation fails the ordinary test suite, not just the CI `analysis`
//! job.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;

#[test]
fn workspace_has_zero_violations() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let (violations, scanned) =
        hpcnet_analysis::scan_workspace(&root).expect("workspace sources are readable");
    assert!(
        scanned >= 10,
        "expected to scan the serving crates' sources, saw only {scanned} files"
    );
    assert!(
        violations.is_empty(),
        "lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
