//! Property tests pinning the replay buffer's bounded-capacity and
//! conservation invariants under arbitrary push/drain interleavings.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use hpcnet_online::{ReplayBuffer, Sample};
use proptest::prelude::*;

/// One step of a replay-buffer workload.
#[derive(Debug, Clone)]
enum Op {
    Push { model: u8, value: f64 },
    Drain { model: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..3, -1e3f64..1e3).prop_map(|(model, value)| Op::Push { model, value }),
        1 => (0u8..3).prop_map(|model| Op::Drain { model }),
    ]
}

fn model_name(m: u8) -> String {
    format!("model-{m}")
}

proptest! {
    /// `pushed == live + dropped + drained` for every model, at every
    /// point of every workload, and `live` never exceeds capacity.
    #[test]
    fn conservation_and_capacity_hold(
        capacity in 1usize..32,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let buf = ReplayBuffer::new(capacity);
        let mut drained_samples: Vec<Sample> = Vec::new();
        for op in &ops {
            match op {
                Op::Push { model, value } => {
                    let name = model_name(*model);
                    buf.push(&name, &[*value], &[*value * 2.0]);
                }
                Op::Drain { model } => {
                    drained_samples.extend(buf.drain(&model_name(*model)));
                }
            }
            for m in 0..3u8 {
                let s = buf.stats(&model_name(m));
                prop_assert!(s.live as usize <= capacity);
                prop_assert_eq!(s.live as usize, buf.len(&model_name(m)));
                prop_assert_eq!(s.pushed, s.live + s.dropped + s.drained);
            }
        }
        // Every sample that ever left through a drain was a real push:
        // targets are always exactly twice the input.
        for s in &drained_samples {
            prop_assert_eq!(s.target[0], s.input[0] * 2.0);
        }
    }

    /// Below capacity the buffer is lossless FIFO: everything offered is
    /// retained in order.
    #[test]
    fn under_capacity_nothing_drops(
        values in proptest::collection::vec(-1e3f64..1e3, 1..16),
    ) {
        let buf = ReplayBuffer::new(64);
        for v in &values {
            prop_assert!(buf.push("m", &[*v], &[*v]));
        }
        let s = buf.stats("m");
        prop_assert_eq!(s.dropped, 0);
        prop_assert_eq!(s.live as usize, values.len());
        let drained = buf.drain("m");
        let got: Vec<f64> = drained.iter().map(|s| s.input[0]).collect();
        prop_assert_eq!(got, values);
    }
}
