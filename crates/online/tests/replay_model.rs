//! Model-checked replay-buffer accounting under a racing producer and
//! consumer.
//!
//! The real [`hpcnet_online::ReplayBuffer`] guards each model's reservoir
//! with one `parking_lot` mutex; loom cannot instrument that, so this
//! harness re-states the per-model protocol — reservoir push with
//! Algorithm R accounting versus a draining consumer — behind the
//! model-checkable `Mutex`. Same two-harness setup as
//! `hpcnet-runtime/tests/admission_model.rs`: the seeded stress shim
//! under plain `cargo test`, the real `loom` model checker under
//! `RUSTFLAGS="--cfg loom"` (the CI `loom` job).
//!
//! Invariants proved over every interleaving: the buffer never exceeds
//! capacity, the conservation identity `pushed == live + dropped +
//! drained` holds at every quiescent observation, and no sample is ever
//! double-counted or lost across a concurrent push/drain race.

#![allow(clippy::unwrap_used, clippy::expect_used)]

#[cfg(loom)]
use loom::{model, sync::Arc, sync::Mutex, thread};

#[cfg(not(loom))]
use hpcnet_modelcheck::{model, sync::Arc, sync::Mutex, thread};

/// One model's reservoir state, mirroring `ModelBuffer` in
/// `hpcnet-online`: a bounded item store plus the counters behind
/// `ReplayStats`.
struct Reservoir {
    items: Vec<u64>,
    seen_since_drain: u64,
    pushed: u64,
    dropped: u64,
    drained: u64,
}

impl Reservoir {
    fn new() -> Self {
        Reservoir {
            items: Vec::new(),
            seen_since_drain: 0,
            pushed: 0,
            dropped: 0,
            drained: 0,
        }
    }

    /// The push path of the real buffer, with the random victim choice
    /// made deterministic (loom explores schedules, not RNG draws; any
    /// fixed victim exercises the same accounting transitions).
    fn push(&mut self, capacity: usize, sample: u64) {
        self.pushed += 1;
        self.seen_since_drain += 1;
        if self.items.len() < capacity {
            self.items.push(sample);
            return;
        }
        let victim = (self.seen_since_drain as usize) % self.items.len();
        self.items[victim] = sample;
        self.dropped += 1;
    }

    fn drain(&mut self) -> Vec<u64> {
        self.drained += self.items.len() as u64;
        self.seen_since_drain = 0;
        std::mem::take(&mut self.items)
    }

    fn check(&self, capacity: usize) {
        assert!(self.items.len() <= capacity, "reservoir above capacity");
        assert_eq!(
            self.pushed,
            self.items.len() as u64 + self.dropped + self.drained,
            "conservation violated: pushed != live + dropped + drained"
        );
    }
}

#[test]
fn producer_vs_consumer_conserves_every_sample() {
    const CAPACITY: usize = 2;
    model(|| {
        let shared = Arc::new(Mutex::new(Reservoir::new()));

        let producer = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                for i in 0..4u64 {
                    let mut r = shared.lock().unwrap();
                    r.push(CAPACITY, i);
                    r.check(CAPACITY);
                }
            })
        };
        let consumer = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                let mut taken = Vec::new();
                for _ in 0..2 {
                    let mut r = shared.lock().unwrap();
                    taken.extend(r.drain());
                    r.check(CAPACITY);
                }
                taken
            })
        };

        producer.join().expect("producer thread");
        let taken = consumer.join().expect("consumer thread");

        let r = shared.lock().unwrap();
        r.check(CAPACITY);
        assert_eq!(r.pushed, 4, "every push is counted exactly once");
        assert_eq!(
            r.drained,
            taken.len() as u64,
            "drain accounting matches what the consumer actually received"
        );
        // Whatever was drained was a real pushed sample, never duplicated.
        let mut seen = taken.clone();
        seen.extend(r.items.iter().copied());
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            taken.len() + r.items.len(),
            "a sample appeared both drained and live, or twice in a drain"
        );
        for s in &seen {
            assert!(*s < 4, "drained a sample that was never pushed");
        }
    });
}

#[test]
fn drain_resets_the_reservoir_window_under_races() {
    const CAPACITY: usize = 1;
    model(|| {
        let shared = Arc::new(Mutex::new(Reservoir::new()));
        let producer = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                for i in 0..3u64 {
                    shared.lock().unwrap().push(CAPACITY, i);
                }
            })
        };
        let consumer = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || shared.lock().unwrap().drain().len() as u64)
        };
        producer.join().expect("producer thread");
        let taken = consumer.join().expect("consumer thread");

        let mut r = shared.lock().unwrap();
        r.check(CAPACITY);
        // Post-drain, the window restarts: the next push must always be
        // admitted into the emptied reservoir.
        let live_before = r.items.len();
        r.push(CAPACITY, 99);
        r.check(CAPACITY);
        if live_before == 0 {
            assert!(r.items.contains(&99), "fresh reservoir must admit");
        }
        assert_eq!(r.drained, taken);
    });
}
