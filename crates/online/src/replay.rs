//! Bounded per-model replay buffers with reservoir-style eviction.
//!
//! The producer is the orchestrator's guard-fallback path (already slow:
//! it just re-ran the exact solver), the consumer is the background
//! fine-tuner's [`drain`](ReplayBuffer::drain). Contention is kept cheap
//! with a read-mostly shard map plus one mutex per model, so concurrent
//! producers for different models never serialize on each other.
//!
//! Eviction is Algorithm R reservoir sampling over everything offered
//! since the last drain: once a model's buffer is full, the `n`-th offer
//! survives with probability `capacity / n` and replaces a uniformly
//! chosen victim. Retained samples are therefore a uniform subsample of
//! the whole fallback stream — a hot input region that floods the buffer
//! cannot starve the tail of the distribution.

use std::collections::HashMap;

use parking_lot::{Mutex, RwLock};

/// One labeled training sample captured on a guard fallback.
///
/// `input` is the feature row exactly as it was fed to the surrogate
/// (post-encode, post-scaling); `target` is the exact solver's output in
/// the surrogate's training space (standardized when the bundle carries
/// an output scaler). Capturing in model space means a fine-tuned
/// candidate needs no new scalers: it serves behind the same bundle
/// transforms as the net it replaces.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Feature row as fed to the surrogate.
    pub input: Vec<f64>,
    /// Exact-solver output in the surrogate's output space.
    pub target: Vec<f64>,
}

/// Cumulative accounting for one model's buffer. The conservation
/// invariant `pushed == live + dropped + drained` always holds (pinned
/// by proptest): every offered sample is either still buffered, was
/// dropped by the reservoir, or left through a drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Samples offered via [`ReplayBuffer::push`].
    pub pushed: u64,
    /// Samples currently buffered.
    pub live: u64,
    /// Samples the reservoir dropped (the incoming offer or its victim —
    /// exactly one per offer once the buffer is full).
    pub dropped: u64,
    /// Samples handed to the consumer via [`ReplayBuffer::drain`].
    pub drained: u64,
}

/// One model's reservoir plus its RNG and accounting.
struct ModelBuffer {
    items: Vec<Sample>,
    /// Offers since the last drain — the `n` of Algorithm R.
    seen_since_drain: u64,
    pushed: u64,
    dropped: u64,
    drained: u64,
    /// xorshift64 state, seeded from the model name so eviction is
    /// deterministic per model and independent across models.
    rng: u64,
}

impl ModelBuffer {
    fn new(model: &str) -> Self {
        ModelBuffer {
            items: Vec::new(),
            seen_since_drain: 0,
            pushed: 0,
            dropped: 0,
            drained: 0,
            rng: seed_from(model),
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn push(&mut self, capacity: usize, sample: Sample) -> bool {
        self.pushed += 1;
        self.seen_since_drain += 1;
        if self.items.len() < capacity {
            self.items.push(sample);
            return true;
        }
        // Algorithm R: offer n survives with probability capacity/n,
        // displacing a uniform victim, so the reservoir stays a uniform
        // subsample of everything seen since the last drain.
        let j = self.next_rand() % self.seen_since_drain;
        let replaced = (j as usize) < capacity;
        if replaced {
            self.items[j as usize] = sample;
        }
        self.dropped += 1;
        replaced
    }

    fn drain(&mut self) -> Vec<Sample> {
        self.drained += self.items.len() as u64;
        self.seen_since_drain = 0;
        std::mem::take(&mut self.items)
    }

    fn stats(&self) -> ReplayStats {
        ReplayStats {
            pushed: self.pushed,
            live: self.items.len() as u64,
            dropped: self.dropped,
            drained: self.drained,
        }
    }
}

/// FNV-1a over the model name, forced odd so xorshift never sees zero.
fn seed_from(model: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in model.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h | 1
}

/// The multi-model replay store shared between the fallback path and the
/// retrainer thread.
pub struct ReplayBuffer {
    capacity: usize,
    shards: RwLock<HashMap<String, Mutex<ModelBuffer>>>,
}

impl ReplayBuffer {
    /// A buffer holding up to `capacity` samples per model (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        ReplayBuffer {
            capacity: capacity.max(1),
            shards: RwLock::new(HashMap::new()),
        }
    }

    /// Per-model capacity this buffer was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offer one sample for `model`. Returns whether the sample entered
    /// the reservoir (a full buffer admits with probability
    /// `capacity / offers_since_drain`).
    pub fn push(&self, model: &str, input: &[f64], target: &[f64]) -> bool {
        let sample = Sample {
            input: input.to_vec(),
            target: target.to_vec(),
        };
        {
            let shards = self.shards.read();
            if let Some(shard) = shards.get(model) {
                return shard.lock().push(self.capacity, sample);
            }
        }
        let mut shards = self.shards.write();
        shards
            .entry(model.to_string())
            .or_insert_with(|| Mutex::new(ModelBuffer::new(model)))
            .lock()
            .push(self.capacity, sample)
    }

    /// Samples currently buffered for `model`.
    pub fn len(&self, model: &str) -> usize {
        self.shards
            .read()
            .get(model)
            .map_or(0, |s| s.lock().items.len())
    }

    /// Whether `model` has no buffered samples.
    pub fn is_empty(&self, model: &str) -> bool {
        self.len(model) == 0
    }

    /// Cumulative accounting for `model` (all-zero if never pushed to).
    pub fn stats(&self, model: &str) -> ReplayStats {
        self.shards
            .read()
            .get(model)
            .map_or_else(ReplayStats::default, |s| s.lock().stats())
    }

    /// Take every buffered sample for `model`, resetting the reservoir's
    /// offer counter so post-drain captures start a fresh uniform sample.
    pub fn drain(&self, model: &str) -> Vec<Sample> {
        self.shards
            .read()
            .get(model)
            .map_or_else(Vec::new, |s| s.lock().drain())
    }

    /// Every model that has ever been pushed to, sorted.
    pub fn models(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shards.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(v: f64) -> (Vec<f64>, Vec<f64>) {
        (vec![v, v + 1.0], vec![v * 2.0])
    }

    #[test]
    fn fills_to_capacity_then_stays_bounded() {
        let buf = ReplayBuffer::new(8);
        for i in 0..100 {
            let (x, y) = sample(i as f64);
            buf.push("m", &x, &y);
        }
        assert_eq!(buf.len("m"), 8);
        let s = buf.stats("m");
        assert_eq!(s.pushed, 100);
        assert_eq!(s.live, 8);
        assert_eq!(s.dropped, 92);
        assert_eq!(s.drained, 0);
    }

    #[test]
    fn drain_takes_everything_and_resets_reservoir() {
        let buf = ReplayBuffer::new(4);
        for i in 0..10 {
            let (x, y) = sample(i as f64);
            buf.push("m", &x, &y);
        }
        let drained = buf.drain("m");
        assert_eq!(drained.len(), 4);
        assert!(buf.is_empty("m"));
        let s = buf.stats("m");
        assert_eq!(s.drained, 4);
        assert_eq!(s.pushed, 10);
        // Post-drain pushes enter a fresh reservoir: the first `capacity`
        // offers are always admitted.
        let (x, y) = sample(99.0);
        assert!(buf.push("m", &x, &y));
        assert_eq!(buf.len("m"), 1);
    }

    #[test]
    fn models_are_independent() {
        let buf = ReplayBuffer::new(2);
        let (x, y) = sample(1.0);
        buf.push("a", &x, &y);
        buf.push("b", &x, &y);
        buf.push("b", &x, &y);
        assert_eq!(buf.len("a"), 1);
        assert_eq!(buf.len("b"), 2);
        assert_eq!(buf.models(), vec!["a".to_string(), "b".to_string()]);
        buf.drain("a");
        assert_eq!(buf.len("b"), 2);
    }

    #[test]
    fn reservoir_keeps_samples_from_the_whole_stream() {
        // With capacity 16 and 1600 offers, a FIFO would retain only the
        // newest 16; the reservoir must keep samples from the early
        // stream too (probability of retaining none from the first half
        // is (1/2)^16 per slot — astronomically small for this seed).
        let buf = ReplayBuffer::new(16);
        for i in 0..1600 {
            let (x, y) = sample(i as f64);
            buf.push("m", &x, &y);
        }
        let drained = buf.drain("m");
        assert_eq!(drained.len(), 16);
        assert!(
            drained.iter().any(|s| s.input[0] < 800.0),
            "reservoir retained nothing from the first half of the stream"
        );
        // And every retained sample is one that was actually pushed.
        for s in &drained {
            let v = s.input[0];
            assert!(v.fract() == 0.0 && (0.0..1600.0).contains(&v));
            assert_eq!(s.target, vec![v * 2.0]);
        }
    }

    #[test]
    fn unknown_model_reads_as_empty() {
        let buf = ReplayBuffer::new(4);
        assert_eq!(buf.len("ghost"), 0);
        assert!(buf.is_empty("ghost"));
        assert_eq!(buf.stats("ghost"), ReplayStats::default());
        assert!(buf.drain("ghost").is_empty());
        assert!(buf.models().is_empty());
    }
}
