//! Online learning from guard fallbacks (DESIGN.md §17).
//!
//! Every quality-guard miss already re-runs the original solver
//! server-side, which yields a perfectly-labeled training sample from
//! exactly the input region where the surrogate is weakest. This crate
//! closes the loop from those samples back into the served model:
//!
//! * [`ReplayBuffer`] — a bounded, per-model sample store fed from the
//!   orchestrator's fallback path, with reservoir-style eviction so hot
//!   input regions cannot starve the tail, plus drop/drain accounting.
//! * [`FineTuner`] — clones the current [`SurrogateNet`], fine-tunes it
//!   on a replay drain via the existing `hpcnet-nn` training machinery
//!   (low learning rate, few epochs, `f64`), and validates the candidate
//!   against a held-out slice of the same drain.
//! * [`Probation`] — the post-swap watchdog: a hot-swapped candidate is
//!   on probation for a window of guarded requests, and a guard-miss
//!   rate that regresses past the pre-swap baseline triggers rollback.
//!
//! The crate deliberately sits *below* `hpcnet-runtime`: it knows about
//! networks and samples, not about registries, metrics, or clients. The
//! runtime owns the versioned atomic hot-swap and drives these pieces
//! from its fallback path and retrainer thread.
//!
//! [`SurrogateNet`]: hpcnet_nn::SurrogateNet

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::time::Duration;

pub mod probation;
pub mod replay;
pub mod tuner;

pub use probation::{Probation, ProbationVerdict};
pub use replay::{ReplayBuffer, ReplayStats, Sample};
pub use tuner::{FineTuneOutcome, FineTuner};

/// Policy knobs for the online-retraining loop. One config applies to
/// every model an orchestrator serves.
#[derive(Debug, Clone)]
pub struct RetrainConfig {
    /// Replay-buffer capacity per model (reservoir size). Clamped to at
    /// least 1.
    pub capacity: usize,
    /// Trigger: a fine-tune run starts only once a model's replay buffer
    /// holds at least this many samples.
    pub min_samples: usize,
    /// Trigger: minimum spacing between fine-tune runs of one model.
    pub min_interval: Duration,
    /// Fine-tune epochs — deliberately few: the candidate starts from
    /// the served weights, not from scratch.
    pub epochs: usize,
    /// Fine-tune learning rate — deliberately low, for the same reason.
    pub lr: f64,
    /// Fine-tune mini-batch size.
    pub batch_size: usize,
    /// Fraction of a replay drain held out for candidate validation
    /// (clamped into `[0.05, 0.5]` by the tuner).
    pub holdout_ratio: f64,
    /// Relative held-out RMSE improvement a candidate must show over the
    /// served net before it is eligible to swap (`0.05` = 5% better).
    pub min_improvement: f64,
    /// Guarded requests a freshly-swapped candidate must serve before
    /// its probation verdict.
    pub probation_window: usize,
    /// Guard-miss-rate slack over the pre-swap baseline a probationary
    /// candidate is allowed before rollback.
    pub miss_rate_tolerance: f64,
    /// Poll period of the background retrainer thread.
    pub tick: Duration,
    /// Seed for the fine-tuner's shuffling.
    pub seed: u64,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        RetrainConfig {
            capacity: 1024,
            min_samples: 64,
            min_interval: Duration::from_millis(500),
            epochs: 50,
            lr: 3e-3,
            batch_size: 16,
            holdout_ratio: 0.25,
            min_improvement: 0.05,
            probation_window: 64,
            miss_rate_tolerance: 0.10,
            tick: Duration::from_millis(25),
            seed: 0x0_11e,
        }
    }
}
