//! Post-swap probation: decide whether a hot-swapped candidate stays.
//!
//! A swap is judged by the only signal that matters in serving — the
//! quality guard's verdicts. Before a swap the runtime measures the
//! outgoing model's guard-miss rate (misses = fallbacks + rejections
//! over guarded requests); the incoming candidate is then on probation
//! for a fixed window of guarded requests. When the window fills, the
//! candidate's miss rate is compared against the baseline plus a
//! tolerance: regression means the previous version is reinstalled.

/// Verdict once a probation window has filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbationVerdict {
    /// The candidate's miss rate stayed within tolerance of the
    /// baseline: it graduates and the retained previous version can be
    /// released.
    Pass,
    /// The candidate's miss rate regressed past the tolerance: reinstall
    /// the previous version.
    Rollback,
}

/// Guard-outcome accumulator for one on-probation model version.
#[derive(Debug, Clone)]
pub struct Probation {
    baseline_miss_rate: f64,
    window: usize,
    tolerance: f64,
    hits: u64,
    misses: u64,
}

impl Probation {
    /// Start a probation window against `baseline_miss_rate` (the
    /// pre-swap guard-miss rate in `[0, 1]`). The verdict fires once
    /// `window` guarded requests have been observed; `window` is clamped
    /// to at least 1.
    pub fn new(baseline_miss_rate: f64, window: usize, tolerance: f64) -> Self {
        Probation {
            baseline_miss_rate: baseline_miss_rate.clamp(0.0, 1.0),
            window: window.max(1),
            tolerance: tolerance.max(0.0),
            hits: 0,
            misses: 0,
        }
    }

    /// The baseline this probation judges against.
    pub fn baseline_miss_rate(&self) -> f64 {
        self.baseline_miss_rate
    }

    /// Guarded requests observed so far.
    pub fn observed(&self) -> u64 {
        self.hits + self.misses
    }

    /// Candidate miss rate over what has been observed so far.
    pub fn miss_rate(&self) -> f64 {
        let total = self.observed();
        if total == 0 {
            return 0.0;
        }
        self.misses as f64 / total as f64
    }

    /// Feed one group's guard outcomes (`hits` accepted, `misses`
    /// fell back or were rejected). Returns a verdict once the window
    /// has filled, `None` while it is still filling.
    pub fn observe(&mut self, hits: u64, misses: u64) -> Option<ProbationVerdict> {
        self.hits += hits;
        self.misses += misses;
        if self.observed() < self.window as u64 {
            return None;
        }
        if self.miss_rate() > self.baseline_miss_rate + self.tolerance {
            Some(ProbationVerdict::Rollback)
        } else {
            Some(ProbationVerdict::Pass)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_fills_before_any_verdict() {
        let mut p = Probation::new(0.2, 10, 0.05);
        assert_eq!(p.observe(4, 1), None);
        assert_eq!(p.observed(), 5);
        // Window fills on this observation; 2/10 misses == baseline.
        assert_eq!(p.observe(4, 1), Some(ProbationVerdict::Pass));
    }

    #[test]
    fn regression_past_tolerance_rolls_back() {
        let mut p = Probation::new(0.1, 8, 0.05);
        // 4/8 missed vs baseline 0.10 + 0.05 tolerance.
        assert_eq!(p.observe(4, 4), Some(ProbationVerdict::Rollback));
        assert!(p.miss_rate() > 0.49);
    }

    #[test]
    fn tolerance_absorbs_small_regressions() {
        let mut p = Probation::new(0.10, 100, 0.05);
        // 14/100 missed: worse than baseline but within tolerance.
        assert_eq!(p.observe(86, 14), Some(ProbationVerdict::Pass));
    }

    #[test]
    fn perfect_candidate_with_zero_traffic_baseline_passes() {
        let mut p = Probation::new(0.0, 4, 0.05);
        assert_eq!(p.observe(4, 0), Some(ProbationVerdict::Pass));
    }

    #[test]
    fn oversized_single_observation_still_judges() {
        // One coalesced group can overshoot the window; the verdict uses
        // everything observed.
        let mut p = Probation::new(0.0, 4, 0.0);
        assert_eq!(p.observe(100, 1), Some(ProbationVerdict::Rollback));
    }
}
