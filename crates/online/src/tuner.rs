//! Background fine-tuning of a served surrogate on replay samples.
//!
//! The tuner never trains from scratch: it clones the currently-served
//! [`SurrogateNet`] and continues training from its weights with a low
//! learning rate and a small epoch budget, on the drained replay samples
//! only. Because replay samples are captured in model space (scaled
//! features in, standardized targets out — see
//! [`Sample`](crate::replay::Sample)), training runs with
//! `Preprocessing::None` and the candidate drops into the same bundle
//! transforms as the net it would replace.
//!
//! A candidate is only proposed for swap when it beats the served net's
//! RMSE on a held-out slice of the drain by the configured margin;
//! anything else is reported as rejected and the served net keeps
//! serving.

use hpcnet_nn::train::Preprocessing;
use hpcnet_nn::{Loss, NnError, SurrogateNet, TrainConfig, TrainReport, Trainer};
use hpcnet_tensor::Matrix;

use crate::replay::Sample;
use crate::RetrainConfig;

/// Fewest consistent samples a fine-tune run will accept (enough for a
/// non-degenerate train/holdout split).
pub const MIN_FINE_TUNE_SAMPLES: usize = 6;

/// What one fine-tune run produced.
#[derive(Debug)]
pub enum FineTuneOutcome {
    /// The candidate beat the served net on the holdout by the required
    /// margin and is eligible for hot-swap.
    Improved {
        /// The fine-tuned candidate network.
        net: SurrogateNet,
        /// The training report of the fine-tune run.
        report: TrainReport,
        /// Served net's RMSE on the held-out slice.
        baseline_rmse: f64,
        /// Candidate's RMSE on the held-out slice.
        candidate_rmse: f64,
    },
    /// The candidate failed holdout validation; nothing swaps.
    Rejected {
        /// Served net's RMSE on the held-out slice.
        baseline_rmse: f64,
        /// Candidate's RMSE on the held-out slice.
        candidate_rmse: f64,
    },
    /// Not enough dimensionally-consistent samples to split and train.
    TooFewSamples {
        /// Usable samples in the drain.
        have: usize,
        /// The [`MIN_FINE_TUNE_SAMPLES`] floor.
        need: usize,
    },
    /// The served family has no fine-tune path (CNN).
    Unsupported,
    /// Training or evaluation itself errored.
    Failed(NnError),
}

/// Clone-and-fine-tune driver around the `hpcnet-nn` training machinery.
pub struct FineTuner {
    config: RetrainConfig,
}

impl FineTuner {
    /// A tuner applying `config`'s fine-tune knobs.
    pub fn new(config: RetrainConfig) -> Self {
        FineTuner { config }
    }

    /// Fine-tune a clone of `net` on `samples` and judge it on a
    /// held-out slice. Never mutates `net`.
    pub fn fine_tune(&self, net: &SurrogateNet, samples: &[Sample]) -> FineTuneOutcome {
        if net.as_mlp().is_none() {
            return FineTuneOutcome::Unsupported;
        }
        let Some(first) = samples.first() else {
            return FineTuneOutcome::TooFewSamples {
                have: 0,
                need: MIN_FINE_TUNE_SAMPLES,
            };
        };
        // A fallback closure may return ragged widths; train only on
        // rows consistent with the first sample's shape.
        let (din, dout) = (first.input.len(), first.target.len());
        let rows: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.input.len() == din && s.target.len() == dout)
            .collect();
        if rows.len() < MIN_FINE_TUNE_SAMPLES {
            return FineTuneOutcome::TooFewSamples {
                have: rows.len(),
                need: MIN_FINE_TUNE_SAMPLES,
            };
        }
        // Deterministic strided holdout: every `stride`-th sample
        // validates, the rest train. The drain is already a uniform
        // subsample of the fallback stream (reservoir), so a stride is
        // as unbiased as a shuffle and reproducible across runs.
        let ratio = self.config.holdout_ratio.clamp(0.05, 0.5);
        let stride = (1.0 / ratio).round().max(2.0) as usize;
        let mut train: Vec<&Sample> = Vec::with_capacity(rows.len());
        let mut holdout: Vec<&Sample> = Vec::with_capacity(rows.len() / stride + 1);
        for (i, s) in rows.iter().enumerate() {
            if i % stride == 0 {
                holdout.push(s);
            } else {
                train.push(s);
            }
        }
        let (tx, ty) = match matrices(&train) {
            Ok(v) => v,
            Err(e) => return FineTuneOutcome::Failed(e),
        };
        let (hx, hy) = match matrices(&holdout) {
            Ok(v) => v,
            Err(e) => return FineTuneOutcome::Failed(e),
        };
        let baseline_rmse = match rmse(net, &hx, &hy) {
            Ok(v) => v,
            Err(e) => return FineTuneOutcome::Failed(e),
        };
        let trainer = Trainer::new(TrainConfig {
            epochs: self.config.epochs,
            batch_size: self.config.batch_size,
            lr: self.config.lr,
            // The holdout above is the validation set; train on the rest
            // in full.
            train_ratio: 1.0,
            loss: Loss::Mse,
            // Replay samples are captured in model space already.
            preprocessing: Preprocessing::None,
            patience: 0,
            lr_decay: 1.0,
            lr_decay_every: 50,
            weight_decay: 0.0,
            seed: self.config.seed,
        });
        let (candidate, report) = match net.fine_tuned(&trainer, &tx, &ty) {
            Ok(v) => v,
            Err(e) => return FineTuneOutcome::Failed(e),
        };
        let candidate_rmse = match rmse(&candidate, &hx, &hy) {
            Ok(v) => v,
            Err(e) => return FineTuneOutcome::Failed(e),
        };
        let margin = 1.0 - self.config.min_improvement.clamp(0.0, 1.0);
        if candidate_rmse.is_finite() && candidate_rmse < baseline_rmse * margin {
            FineTuneOutcome::Improved {
                net: candidate,
                report,
                baseline_rmse,
                candidate_rmse,
            }
        } else {
            FineTuneOutcome::Rejected {
                baseline_rmse,
                candidate_rmse,
            }
        }
    }
}

/// Stack samples into `(inputs, targets)` row matrices.
fn matrices(samples: &[&Sample]) -> Result<(Matrix, Matrix), NnError> {
    let x: Vec<Vec<f64>> = samples.iter().map(|s| s.input.clone()).collect();
    let y: Vec<Vec<f64>> = samples.iter().map(|s| s.target.clone()).collect();
    Ok((Matrix::from_rows(&x)?, Matrix::from_rows(&y)?))
}

/// Root-mean-square error of `net` over `(x, y)` rows.
fn rmse(net: &SurrogateNet, x: &Matrix, y: &Matrix) -> Result<f64, NnError> {
    let out = net.predict_batch(x)?;
    let mut sq = 0.0;
    let n = out.as_slice().len();
    for (a, b) in out.as_slice().iter().zip(y.as_slice()) {
        let d = a - b;
        sq += d * d;
    }
    Ok((sq / n.max(1) as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_nn::{Mlp, Topology};
    use hpcnet_tensor::rng::seeded;

    fn weak_net() -> SurrogateNet {
        let mlp = Mlp::new(&Topology::mlp(vec![2, 8, 1]), &mut seeded(7, "tuner")).unwrap();
        SurrogateNet::Mlp(mlp)
    }

    /// Samples of the target function y = x0 + x1.
    fn sum_samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let a = (i as f64 * 0.37).sin();
                let b = (i as f64 * 0.91).cos();
                Sample {
                    input: vec![a, b],
                    target: vec![a + b],
                }
            })
            .collect()
    }

    #[test]
    fn fine_tune_improves_a_weak_net() {
        let net = weak_net();
        let samples = sum_samples(120);
        let tuner = FineTuner::new(RetrainConfig {
            epochs: 120,
            min_improvement: 0.05,
            ..RetrainConfig::default()
        });
        match tuner.fine_tune(&net, &samples) {
            FineTuneOutcome::Improved {
                baseline_rmse,
                candidate_rmse,
                net: candidate,
                ..
            } => {
                assert!(candidate_rmse < baseline_rmse * 0.95);
                // The original net is untouched.
                let before = net.predict(&[0.1, 0.2]).unwrap();
                let after = candidate.predict(&[0.1, 0.2]).unwrap();
                assert_ne!(before, after);
            }
            other => panic!("expected Improved, got {other:?}"),
        }
    }

    #[test]
    fn too_few_or_ragged_samples_are_reported() {
        let tuner = FineTuner::new(RetrainConfig::default());
        let net = weak_net();
        assert!(matches!(
            tuner.fine_tune(&net, &[]),
            FineTuneOutcome::TooFewSamples { have: 0, .. }
        ));
        // Ragged rows are filtered before the floor check.
        let mut samples = sum_samples(3);
        samples.push(Sample {
            input: vec![1.0],
            target: vec![1.0, 2.0],
        });
        assert!(matches!(
            tuner.fine_tune(&net, &samples),
            FineTuneOutcome::TooFewSamples { have: 3, .. }
        ));
    }

    #[test]
    fn already_good_net_is_rejected_not_swapped() {
        // Fine-tune once to get a good net, then fine-tuning the good
        // net again on the same distribution with a huge required margin
        // must reject.
        let samples = sum_samples(120);
        let tuner = FineTuner::new(RetrainConfig {
            epochs: 120,
            ..RetrainConfig::default()
        });
        let good = match tuner.fine_tune(&weak_net(), &samples) {
            FineTuneOutcome::Improved { net, .. } => net,
            other => panic!("expected Improved, got {other:?}"),
        };
        let strict = FineTuner::new(RetrainConfig {
            epochs: 5,
            min_improvement: 0.9,
            ..RetrainConfig::default()
        });
        assert!(matches!(
            strict.fine_tune(&good, &samples),
            FineTuneOutcome::Rejected { .. }
        ));
    }
}
