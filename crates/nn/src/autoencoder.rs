//! The customized autoencoder of paper §4: hourglass encoder + horn decoder,
//! sparse-input training/inference, gradient-checkpointed offline training,
//! and the element-wise reconstruction-quality metric σ_y (Eqn 1).
//!
//! Internally the autoencoder is one MLP whose layer at `latent_idx`
//! produces the reduced representation; `encode` runs the prefix, the full
//! forward runs encoder+decoder for reconstruction.

use hpcnet_tensor::{Csr, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::checkpoint::{loss_and_grads_checkpointed, CheckpointStats};
use crate::layer::Dense;
use crate::loss::Loss;
use crate::mlp::Mlp;
use crate::optimizer::{Adam, Optimizer};
use crate::{NnError, Result};

/// σ_y of paper Eqn 1: the fraction of elements of the reconstruction `y`
/// that fall outside the relative band `|y_i - x_i| <= mu * |x_i|` around
/// the original `x`. Lower is better; 0 means every element reconstructed
/// within tolerance.
///
/// For `x_i == 0` the paper's band collapses to exact equality, which no
/// learned reconstruction meets; `abs_tol` supplies the absolute band used
/// for (near-)zero elements. Pass 0.0 for the strict paper semantics.
pub fn sigma_y(x: &[f64], y: &[f64], mu: f64, abs_tol: f64) -> f64 {
    assert_eq!(x.len(), y.len(), "sigma_y needs equal-size matrices");
    if x.is_empty() {
        return 0.0;
    }
    let violations = x
        .iter()
        .zip(y)
        .filter(|&(&xi, &yi)| (yi - xi).abs() > mu * xi.abs() + abs_tol)
        .count();
    violations as f64 / x.len() as f64
}

/// Configuration for autoencoder training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AeTrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Gradient-checkpoint segment length in layers
    /// (`usize::MAX` disables checkpointing).
    pub checkpoint_segment: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// σ_y scale factor used when reporting reconstruction quality.
    pub mu: f64,
    /// Absolute tolerance used by σ_y for zero elements.
    pub abs_tol: f64,
    /// Optional early-exit: stop when σ_y on the training set falls to or
    /// below this bound (the user's `-encodingLoss` of Table 1).
    pub encoding_loss_bound: Option<f64>,
}

impl Default for AeTrainConfig {
    fn default() -> Self {
        AeTrainConfig {
            epochs: 150,
            batch_size: 16,
            lr: 1e-3,
            checkpoint_segment: 2,
            seed: 0xae5eed,
            mu: 0.1,
            abs_tol: 0.05,
            encoding_loss_bound: None,
        }
    }
}

/// Report from an autoencoder training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AeReport {
    /// Reconstruction MSE per epoch.
    pub losses: Vec<f64>,
    /// Final σ_y on the training set.
    pub final_sigma: f64,
    /// Memory accounting from the last checkpointed batch (dense path only).
    pub checkpoint_stats: Option<CheckpointStats>,
    /// Epochs actually run.
    pub epochs_run: usize,
}

/// Hourglass autoencoder with a designated latent layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Autoencoder {
    net: Mlp,
    latent_idx: usize,
    input_dim: usize,
    latent_dim: usize,
}

impl Autoencoder {
    /// Build an asymmetric autoencoder `input -> latent -> mid -> input`
    /// with tanh hidden activations and identity reconstruction.
    pub fn new(input_dim: usize, latent_dim: usize, rng: &mut StdRng) -> Result<Self> {
        if latent_dim == 0 || input_dim == 0 {
            return Err(NnError::InvalidTopology(
                "autoencoder dims must be positive".into(),
            ));
        }
        if latent_dim > input_dim {
            return Err(NnError::InvalidTopology(format!(
                "latent dim {latent_dim} exceeds input dim {input_dim}"
            )));
        }
        // Asymmetric hourglass: the *encoder* is a single **linear** layer
        // `input -> latent` so the online feature-reduction cost is
        // O(nnz x K) — the encoder runs on the application's critical path
        // (paper Eqn 2 charges it to every inference) — and so that
        // (near-)linear input manifolds, ubiquitous in solver workloads,
        // compress without saturation distortion (a learned PCA). The
        // decoder gets a tanh mid layer for reconstruction capacity and
        // only exists offline. The mid width is a capped geometric-mean
        // taper.
        let mid = (4 * latent_dim).clamp(latent_dim.max(8), 128.max(latent_dim));
        let layers = vec![
            crate::layer::Dense::new_random(input_dim, latent_dim, Activation::Identity, rng),
            crate::layer::Dense::new_random(latent_dim, mid, Activation::Tanh, rng),
            crate::layer::Dense::new_random(mid, input_dim, Activation::Identity, rng),
        ];
        let net = Mlp::from_layers(layers)?;
        Ok(Autoencoder {
            net,
            latent_idx: 1,
            input_dim,
            latent_dim,
        })
    }

    /// Width of the original feature space.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Width of the reduced feature space (the paper's K).
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// Borrow the underlying network (topology inspection, tests).
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// Forward FLOPs of the **encoder half** per sample for a dense input
    /// — the online feature-reduction cost entering the NAS objective.
    pub fn encoder_flops(&self) -> u64 {
        self.net.layers()[..self.latent_idx]
            .iter()
            .map(Dense::flops)
            .sum()
    }

    /// Encoder FLOPs when the input arrives sparse with `nnz` stored
    /// entries: the first (sparse) layer costs `2 * nnz * K` instead of
    /// `2 * D * K` — the whole point of the §4.2 sparse online path.
    pub fn encoder_flops_sparse(&self, nnz: usize) -> u64 {
        let first = &self.net.layers()[0];
        let first_sparse = (2 * nnz * first.out_dim()) as u64;
        let rest: u64 = self.net.layers()[1..self.latent_idx]
            .iter()
            .map(Dense::flops)
            .sum();
        first_sparse + rest
    }

    /// Encode one dense sample into the latent space.
    pub fn encode(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut a = Matrix::from_vec(1, x.len(), x.to_vec())?;
        for layer in &self.net.layers()[..self.latent_idx] {
            a = layer.forward(&a)?;
        }
        Ok(a.into_vec())
    }

    /// Encode a dense batch (one sample per row) into the latent space with
    /// one `matmul` per encoder layer. Row `i` is bit-identical to
    /// `encode` of row `i` (row-independent kernels, same order).
    pub fn encode_batch(&self, x: &Matrix) -> Result<Matrix> {
        let encoder = &self.net.layers()[..self.latent_idx];
        let mut a = encoder[0].forward(x)?;
        for layer in &encoder[1..] {
            a = layer.forward(&a)?;
        }
        Ok(a)
    }

    /// Encode a sparse batch **without densifying the input** — the online
    /// path of paper §4.2 (sparse first layer; everything after the first
    /// layer is small and dense).
    pub fn encode_sparse(&self, x: &Csr) -> Result<Matrix> {
        let mut a = self.net.layers()[0].forward_sparse(x)?;
        for layer in &self.net.layers()[1..self.latent_idx] {
            a = layer.forward(&a)?;
        }
        Ok(a)
    }

    /// Full reconstruction of one dense sample (decoder output).
    pub fn reconstruct(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.net.predict(x)
    }

    /// The paper's `Autoencoder.evl(#inputs, #compaction)` API: measure the
    /// σ_y quality degradation of this autoencoder over a batch.
    pub fn evl(&self, batch: &Matrix, mu: f64, abs_tol: f64) -> Result<f64> {
        let rec = self.net.forward(batch)?;
        Ok(sigma_y(batch.as_slice(), rec.as_slice(), mu, abs_tol))
    }

    /// Offline training on dense rows with gradient checkpointing.
    pub fn train_dense(&mut self, data: &Matrix, cfg: &AeTrainConfig) -> Result<AeReport> {
        if data.rows() == 0 {
            return Err(NnError::BadData("no autoencoder training samples".into()));
        }
        if data.cols() != self.input_dim {
            return Err(NnError::BadData(format!(
                "autoencoder expects width {}, got {}",
                self.input_dim,
                data.cols()
            )));
        }
        let mut opt = Adam::new(cfg.lr);
        let mut rng = hpcnet_tensor::rng::seeded(cfg.seed, "ae-dense");
        let mut order: Vec<usize> = (0..data.rows()).collect();
        let mut losses = Vec::with_capacity(cfg.epochs);
        let mut last_stats = None;
        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let xb = gather_rows(data, chunk);
                let (l, grads, stats) = loss_and_grads_checkpointed(
                    &self.net,
                    &xb,
                    &xb,
                    Loss::Mse,
                    cfg.checkpoint_segment,
                )?;
                opt.step(&mut self.net, &grads);
                epoch_loss += l;
                batches += 1;
                last_stats = Some(stats);
            }
            losses.push(epoch_loss / batches.max(1) as f64);
            if let Some(bound) = cfg.encoding_loss_bound {
                let sigma = self.evl(data, cfg.mu, cfg.abs_tol)?;
                if sigma <= bound {
                    let final_sigma = sigma;
                    let epochs_run = epoch + 1;
                    return Ok(AeReport {
                        losses,
                        final_sigma,
                        checkpoint_stats: last_stats,
                        epochs_run,
                    });
                }
            }
        }
        let final_sigma = self.evl(data, cfg.mu, cfg.abs_tol)?;
        let epochs_run = losses.len();
        Ok(AeReport {
            losses,
            final_sigma,
            checkpoint_stats: last_stats,
            epochs_run,
        })
    }

    /// Offline training directly on CSR rows: the first layer consumes the
    /// sparse batch and its weight gradient is a sparse-transpose product,
    /// so the input is never unrolled (§4.2). The reconstruction target is
    /// the (dense) row content, materialized per mini-batch only.
    pub fn train_sparse(&mut self, data: &Csr, cfg: &AeTrainConfig) -> Result<AeReport> {
        if data.nrows() == 0 {
            return Err(NnError::BadData("no autoencoder training samples".into()));
        }
        if data.ncols() != self.input_dim {
            return Err(NnError::BadData(format!(
                "autoencoder expects width {}, got {}",
                self.input_dim,
                data.ncols()
            )));
        }
        let mut opt = Adam::new(cfg.lr);
        let mut rng = hpcnet_tensor::rng::seeded(cfg.seed, "ae-sparse");
        let mut order: Vec<usize> = (0..data.nrows()).collect();
        let mut losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let xb_sparse = data.select_rows(chunk);
                // Target: densified *per mini-batch* — bounded by batch
                // size, never the whole dataset.
                let target = xb_sparse.to_dense();
                let l = self.sparse_batch_step(&xb_sparse, &target, &mut opt)?;
                epoch_loss += l;
                batches += 1;
            }
            losses.push(epoch_loss / batches.max(1) as f64);
            if let Some(bound) = cfg.encoding_loss_bound {
                let sigma = self.evl_sparse(data, cfg.mu, cfg.abs_tol)?;
                if sigma <= bound {
                    let epochs_run = epoch + 1;
                    return Ok(AeReport {
                        losses,
                        final_sigma: sigma,
                        checkpoint_stats: None,
                        epochs_run,
                    });
                }
            }
        }
        let final_sigma = self.evl_sparse(data, cfg.mu, cfg.abs_tol)?;
        let epochs_run = losses.len();
        Ok(AeReport {
            losses,
            final_sigma,
            checkpoint_stats: None,
            epochs_run,
        })
    }

    /// σ_y over a sparse dataset, densified row-block by row-block.
    pub fn evl_sparse(&self, data: &Csr, mu: f64, abs_tol: f64) -> Result<f64> {
        let mut total = 0.0;
        let mut blocks = 0usize;
        let block = 64usize;
        let mut start = 0usize;
        while start < data.nrows() {
            let idx: Vec<usize> = (start..(start + block).min(data.nrows())).collect();
            let sub = data.select_rows(&idx);
            let dense = sub.to_dense();
            let rec = self.net.forward(&dense)?;
            total += sigma_y(dense.as_slice(), rec.as_slice(), mu, abs_tol) * idx.len() as f64;
            blocks += idx.len();
            start += block;
        }
        Ok(total / blocks.max(1) as f64)
    }

    /// One forward/backward/update on a sparse mini-batch; returns the loss.
    fn sparse_batch_step(&mut self, xb: &Csr, target: &Matrix, opt: &mut Adam) -> Result<f64> {
        let layers = self.net.layers();
        let mut acts: Vec<Matrix> = Vec::with_capacity(layers.len());
        acts.push(layers[0].forward_sparse(xb)?);
        for layer in &layers[1..] {
            let next = layer.forward(acts.last().expect("non-empty"))?;
            acts.push(next);
        }
        let out = acts.last().expect("non-empty");
        let loss_value = Loss::Mse.value(out, target);
        let mut da = Loss::Mse.gradient(out, target);

        let mut grads = Vec::with_capacity(layers.len());
        for i in (1..layers.len()).rev() {
            let (dx, g) = layers[i].backward(&acts[i - 1], &acts[i], &da)?;
            grads.push(g);
            da = dx;
        }
        grads.push(layers[0].backward_sparse(xb, &acts[0], &da)?);
        grads.reverse();
        opt.step(&mut self.net, &grads);
        Ok(loss_value)
    }

    /// Serialize to JSON (save/share across applications, paper §6.1).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("Autoencoder serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self> {
        serde_json::from_str(s).map_err(|e| NnError::BadData(format!("bad autoencoder JSON: {e}")))
    }
}

/// Gather a row subset of a dense matrix.
fn gather_rows(m: &Matrix, idx: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(idx.len(), m.cols());
    for (r, &i) in idx.iter().enumerate() {
        out.row_mut(r).copy_from_slice(m.row(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_tensor::rng::seeded;
    use hpcnet_tensor::Coo;

    #[test]
    fn sigma_y_known_values() {
        // Paper Eqn 1 semantics: fraction of out-of-band elements.
        let x = [1.0, 2.0, 0.0, -4.0];
        let y = [1.05, 2.5, 0.0, -4.2];
        // mu = 0.1: |dy| bands are 0.1, 0.2, 0(+tol), 0.4
        // violations: element 1 (0.5 > 0.2). => 1/4
        assert_eq!(sigma_y(&x, &y, 0.1, 0.0), 0.25);
        // mu = 0.3: band 0.3,0.6,0,1.2 => no violations
        assert_eq!(sigma_y(&x, &y, 0.3, 0.0), 0.0);
    }

    #[test]
    fn sigma_y_strict_zero_handling() {
        let x = [0.0];
        let y = [1e-9];
        assert_eq!(sigma_y(&x, &y, 0.5, 0.0), 1.0); // strict paper semantics
        assert_eq!(sigma_y(&x, &y, 0.5, 1e-6), 0.0); // absolute band
    }

    #[test]
    fn construction_validates_dims() {
        let mut rng = seeded(1, "ae");
        assert!(Autoencoder::new(0, 1, &mut rng).is_err());
        assert!(Autoencoder::new(4, 8, &mut rng).is_err());
        let ae = Autoencoder::new(16, 4, &mut rng).unwrap();
        assert_eq!(ae.input_dim(), 16);
        assert_eq!(ae.latent_dim(), 4);
        assert_eq!(ae.encode(&vec![0.0; 16]).unwrap().len(), 4);
        assert_eq!(ae.reconstruct(&vec![0.0; 16]).unwrap().len(), 16);
    }

    /// Training on low-rank data should reconstruct it well.
    #[test]
    fn dense_training_learns_low_rank_structure() {
        let mut rng = seeded(2, "ae-train");
        // Data lives on a 2-D manifold in 12-D space.
        let n = 120;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let a = hpcnet_tensor::rng::normal(&mut rng, 0.0, 1.0);
            let b = hpcnet_tensor::rng::normal(&mut rng, 0.0, 1.0);
            let row: Vec<f64> = (0..12)
                .map(|j| a * ((j as f64) * 0.4).sin() + b * ((j as f64) * 0.4).cos())
                .collect();
            rows.push(row);
        }
        let data = Matrix::from_rows(&rows).unwrap();
        let mut ae = Autoencoder::new(12, 3, &mut rng).unwrap();
        let cfg = AeTrainConfig {
            epochs: 300,
            lr: 3e-3,
            ..AeTrainConfig::default()
        };
        let report = ae.train_dense(&data, &cfg).unwrap();
        let first = report.losses[0];
        let last = *report.losses.last().unwrap();
        assert!(last < first / 10.0, "loss {first} -> {last}");
        assert!(report.checkpoint_stats.is_some());
    }

    #[test]
    fn encoding_loss_bound_stops_early() {
        let mut rng = seeded(3, "ae-bound");
        let data = Matrix::zeros(32, 8); // trivially reconstructible
        let mut ae = Autoencoder::new(8, 2, &mut rng).unwrap();
        let cfg = AeTrainConfig {
            epochs: 500,
            encoding_loss_bound: Some(0.5),
            abs_tol: 0.5,
            ..AeTrainConfig::default()
        };
        let report = ae.train_dense(&data, &cfg).unwrap();
        assert!(report.epochs_run < 500);
        assert!(report.final_sigma <= 0.5);
    }

    #[test]
    fn encode_batch_matches_single_encode_bitwise() {
        let mut rng = seeded(7, "ae-batch");
        let ae = Autoencoder::new(18, 5, &mut rng).unwrap();
        let n = 9;
        let data = Matrix::from_vec(
            n,
            18,
            hpcnet_tensor::rng::uniform_vec(&mut rng, n * 18, -2.0, 2.0),
        )
        .unwrap();
        let batch = ae.encode_batch(&data).unwrap();
        assert_eq!(batch.rows(), n);
        assert_eq!(batch.cols(), 5);
        for i in 0..n {
            assert_eq!(
                batch.row(i),
                ae.encode(data.row(i)).unwrap().as_slice(),
                "row {i}"
            );
        }
    }

    #[test]
    fn sparse_encode_matches_dense_encode() {
        let mut rng = seeded(4, "ae-sp");
        let ae = Autoencoder::new(20, 5, &mut rng).unwrap();
        let mut coo = Coo::new(2, 20);
        coo.push(0, 3, 1.5);
        coo.push(0, 11, -2.0);
        coo.push(1, 0, 0.7);
        let sp = coo.to_csr();
        let enc_sp = ae.encode_sparse(&sp).unwrap();
        let dense = sp.to_dense();
        for i in 0..2 {
            let enc_d = ae.encode(dense.row(i)).unwrap();
            for (a, b) in enc_sp.row(i).iter().zip(&enc_d) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sparse_training_reduces_reconstruction_loss() {
        let mut rng = seeded(5, "ae-sp-train");
        // Sparse rows with a shared pattern: value at col j depends on j.
        let mut coo = Coo::new(80, 24);
        for i in 0..80 {
            for k in 0..4 {
                let j = (i * 7 + k * 5) % 24;
                coo.push(i, j, ((j as f64) * 0.3).sin());
            }
        }
        let data = coo.to_csr();
        let mut ae = Autoencoder::new(24, 6, &mut rng).unwrap();
        let cfg = AeTrainConfig {
            epochs: 120,
            lr: 3e-3,
            ..AeTrainConfig::default()
        };
        let report = ae.train_sparse(&data, &cfg).unwrap();
        let first = report.losses[0];
        let last = *report.losses.last().unwrap();
        assert!(last < first / 3.0, "loss {first} -> {last}");
    }

    #[test]
    fn json_roundtrip_preserves_encoding() {
        let mut rng = seeded(6, "ae-json");
        let ae = Autoencoder::new(10, 3, &mut rng).unwrap();
        let restored = Autoencoder::from_json(&ae.to_json()).unwrap();
        let x: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
        assert_eq!(ae.encode(&x).unwrap(), restored.encode(&x).unwrap());
    }

    #[test]
    fn evl_reports_zero_for_perfect_reconstruction() {
        // An identity-ish check: evl of x against itself via sigma_y directly.
        let batch = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(sigma_y(batch.as_slice(), batch.as_slice(), 0.1, 0.0), 0.0);
    }
}
