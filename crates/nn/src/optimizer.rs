//! First-order optimizers operating on an MLP's per-layer gradients.

use hpcnet_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::layer::DenseGrads;
use crate::mlp::Mlp;

/// An optimizer applies one update step from per-layer gradients.
pub trait Optimizer {
    /// Apply one step. `grads[i]` corresponds to `mlp.layers()[i]`.
    fn step(&mut self, mlp: &mut Mlp, grads: &[DenseGrads]);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    velocity: Option<Vec<(Matrix, Vec<f64>)>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: None,
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: None,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, mlp: &mut Mlp, grads: &[DenseGrads]) {
        if self.momentum == 0.0 {
            for (layer, g) in mlp.layers_mut().iter_mut().zip(grads) {
                layer
                    .weights_mut()
                    .axpy(-self.lr, &g.dw)
                    .expect("shapes match");
                for (b, &db) in layer.bias_mut().iter_mut().zip(&g.db) {
                    *b -= self.lr * db;
                }
            }
            return;
        }
        let vel = self.velocity.get_or_insert_with(|| {
            mlp.layers()
                .iter()
                .map(|l| {
                    (
                        Matrix::zeros(l.in_dim(), l.out_dim()),
                        vec![0.0; l.out_dim()],
                    )
                })
                .collect()
        });
        for ((layer, g), (vw, vb)) in mlp.layers_mut().iter_mut().zip(grads).zip(vel.iter_mut()) {
            vw.scale(self.momentum);
            vw.axpy(1.0, &g.dw).expect("shapes match");
            layer
                .weights_mut()
                .axpy(-self.lr, vw)
                .expect("shapes match");
            for ((b, v), &db) in layer.bias_mut().iter_mut().zip(vb.iter_mut()).zip(&g.db) {
                *v = self.momentum * *v + db;
                *b -= self.lr * *v;
            }
        }
    }
}

/// Adam (Kingma & Ba) — the default optimizer for surrogate training, as in
/// the paper's Keras-based setup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    t: u64,
    state: Option<Vec<AdamLayerState>>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdamLayerState {
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Adam {
    /// Adam with the standard (0.9, 0.999) moment decays.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: None,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, mlp: &mut Mlp, grads: &[DenseGrads]) {
        let state = self.state.get_or_insert_with(|| {
            mlp.layers()
                .iter()
                .map(|l| AdamLayerState {
                    mw: Matrix::zeros(l.in_dim(), l.out_dim()),
                    vw: Matrix::zeros(l.in_dim(), l.out_dim()),
                    mb: vec![0.0; l.out_dim()],
                    vb: vec![0.0; l.out_dim()],
                })
                .collect()
        });
        self.t += 1;
        let t = self.t as f64;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for ((layer, g), st) in mlp.layers_mut().iter_mut().zip(grads).zip(state.iter_mut()) {
            let w = layer.weights_mut().as_mut_slice();
            let gw = g.dw.as_slice();
            let mw = st.mw.as_mut_slice();
            let vw = st.vw.as_mut_slice();
            for i in 0..w.len() {
                mw[i] = self.beta1 * mw[i] + (1.0 - self.beta1) * gw[i];
                vw[i] = self.beta2 * vw[i] + (1.0 - self.beta2) * gw[i] * gw[i];
                let mhat = mw[i] / bc1;
                let vhat = vw[i] / bc2;
                w[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            let b = layer.bias_mut();
            for i in 0..b.len() {
                st.mb[i] = self.beta1 * st.mb[i] + (1.0 - self.beta1) * g.db[i];
                st.vb[i] = self.beta2 * st.vb[i] + (1.0 - self.beta2) * g.db[i] * g.db[i];
                let mhat = st.mb[i] / bc1;
                let vhat = st.vb[i] / bc2;
                b[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use crate::mlp::Topology;
    use hpcnet_tensor::rng::{seeded, uniform_vec};

    /// Train y = 2x1 - x2 with each optimizer; all must reduce loss by 10x.
    fn convergence_check(mut opt: impl Optimizer) {
        let mut rng = seeded(7, "opt");
        let t = Topology::mlp(vec![2, 8, 1]);
        let mut mlp = Mlp::new(&t, &mut rng).unwrap();
        let n = 64;
        let xs = uniform_vec(&mut rng, n * 2, -1.0, 1.0);
        let ys: Vec<f64> = xs.chunks(2).map(|p| 2.0 * p[0] - p[1]).collect();
        let x = Matrix::from_vec(n, 2, xs).unwrap();
        let y = Matrix::from_vec(n, 1, ys).unwrap();

        let (initial, _) = mlp.loss_and_grads(&x, &y, Loss::Mse).unwrap();
        let mut last = initial;
        for _ in 0..400 {
            let (l, grads) = mlp.loss_and_grads(&x, &y, Loss::Mse).unwrap();
            opt.step(&mut mlp, &grads);
            last = l;
        }
        assert!(
            last < initial / 10.0,
            "optimizer failed to converge: {initial} -> {last}"
        );
    }

    #[test]
    fn sgd_converges() {
        convergence_check(Sgd::new(0.05));
    }

    #[test]
    fn sgd_momentum_converges() {
        convergence_check(Sgd::with_momentum(0.02, 0.9));
    }

    #[test]
    fn adam_converges() {
        convergence_check(Adam::new(0.01));
    }

    #[test]
    fn adam_bias_correction_first_step_magnitude() {
        // On the very first step with gradient g, Adam moves ~lr·sign(g)
        // thanks to bias correction.
        let mut rng = seeded(9, "adam1");
        let t = Topology::mlp(vec![1, 1]);
        let mut mlp = Mlp::new(&t, &mut rng).unwrap();
        let before = mlp.layers()[0].weights().at(0, 0);
        let grads = vec![DenseGrads {
            dw: Matrix::from_vec(1, 1, vec![3.0]).unwrap(),
            db: vec![0.0],
        }];
        let mut adam = Adam::new(0.1);
        adam.step(&mut mlp, &grads);
        let after = mlp.layers()[0].weights().at(0, 0);
        assert!(
            ((before - after) - 0.1).abs() < 1e-6,
            "moved {}",
            before - after
        );
    }
}
