//! Mini-batch trainer with train/validation split and early stopping.
//!
//! The configuration mirrors the paper's *model-level* knobs (Table 1):
//! `-numEpoch`, `-trainRatio`, `-batchSize`, `-lr`, `-preprocessing`.

use hpcnet_tensor::Matrix;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::loss::Loss;
use crate::mlp::Mlp;
use crate::optimizer::{Adam, Optimizer};
use crate::{NnError, Result};

/// Input preprocessing applied before training and (identically) at
/// inference time. Mirrors Table 1 `-preprocessing`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Preprocessing {
    /// Pass inputs through unchanged.
    None,
    /// Per-feature standardization to zero mean / unit variance.
    Standardize,
}

/// Per-feature affine transform learned from training data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureScaler {
    mean: Vec<f64>,
    inv_std: Vec<f64>,
}

impl FeatureScaler {
    /// Fit a standardizer on a batch (rows = samples).
    pub fn fit(x: &Matrix) -> Self {
        let n = x.rows().max(1) as f64;
        let d = x.cols();
        let mut mean = vec![0.0; d];
        for i in 0..x.rows() {
            for (m, &v) in mean.iter_mut().zip(x.row(i)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for i in 0..x.rows() {
            for ((s, &v), &m) in var.iter_mut().zip(x.row(i)).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let inv_std = var
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    1.0 / s
                }
            })
            .collect();
        FeatureScaler { mean, inv_std }
    }

    /// Identity scaler of the given width.
    pub fn identity(d: usize) -> Self {
        FeatureScaler {
            mean: vec![0.0; d],
            inv_std: vec![1.0; d],
        }
    }

    /// Transform a batch in place.
    pub fn transform(&self, x: &mut Matrix) {
        for i in 0..x.rows() {
            for ((v, &m), &s) in x.row_mut(i).iter_mut().zip(&self.mean).zip(&self.inv_std) {
                *v = (*v - m) * s;
            }
        }
    }

    /// Transform a single sample.
    pub fn transform_vec(&self, x: &mut [f64]) {
        for ((v, &m), &s) in x.iter_mut().zip(&self.mean).zip(&self.inv_std) {
            *v = (*v - m) * s;
        }
    }

    /// Invert the transform on a single sample (used to map a network's
    /// standardized outputs back to physical units).
    pub fn inverse_transform_vec(&self, x: &mut [f64]) {
        for ((v, &m), &s) in x.iter_mut().zip(&self.mean).zip(&self.inv_std) {
            *v = *v / s + m;
        }
    }

    /// Transform a whole batch in place (alias of [`Self::transform`] for
    /// output matrices).
    pub fn transform_matrix(&self, m: &mut Matrix) {
        self.transform(m);
    }
}

/// Training hyperparameters (paper Table 1, model level).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training split (`-numEpoch`).
    pub epochs: usize,
    /// Mini-batch size (`-batchSize`).
    pub batch_size: usize,
    /// Adam learning rate (`-lr`).
    pub lr: f64,
    /// Fraction of samples used for training; the rest validate
    /// (`-trainRatio`).
    pub train_ratio: f64,
    /// Training loss.
    pub loss: Loss,
    /// Input preprocessing (`-preprocessing`).
    pub preprocessing: Preprocessing,
    /// Stop when validation loss hasn't improved for this many epochs
    /// (0 disables early stopping).
    pub patience: usize,
    /// Multiplicative learning-rate decay applied every `lr_decay_every`
    /// epochs (1.0 disables).
    pub lr_decay: f64,
    /// Epoch period of the learning-rate decay.
    pub lr_decay_every: usize,
    /// L2 weight decay coefficient added to every weight gradient
    /// (0 disables).
    pub weight_decay: f64,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            batch_size: 32,
            lr: 1e-3,
            train_ratio: 0.8,
            loss: Loss::Mse,
            preprocessing: Preprocessing::None,
            patience: 25,
            lr_decay: 1.0,
            lr_decay_every: 50,
            weight_decay: 0.0,
            seed: 0x5eed,
        }
    }
}

/// What a training run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Training loss after each epoch.
    pub train_losses: Vec<f64>,
    /// Validation loss after each epoch (empty if no validation split).
    pub val_losses: Vec<f64>,
    /// Best validation loss observed (or best train loss without a split).
    pub best_loss: f64,
    /// Epochs actually run (early stopping may cut the budget short).
    pub epochs_run: usize,
    /// Scaler to apply to inputs at inference time.
    pub scaler: FeatureScaler,
}

/// Drives mini-batch training of an [`Mlp`].
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Create a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Train `mlp` on `(x, y)` sample rows. Returns the report; the model is
    /// left at its final (not best) parameters, matching common practice for
    /// small budgets.
    pub fn fit(&self, mlp: &mut Mlp, x: &Matrix, y: &Matrix) -> Result<TrainReport> {
        if x.rows() == 0 {
            return Err(NnError::BadData("no training samples".into()));
        }
        if x.rows() != y.rows() {
            return Err(NnError::BadData(format!(
                "sample count mismatch: {} inputs vs {} targets",
                x.rows(),
                y.rows()
            )));
        }
        if x.as_slice()
            .iter()
            .chain(y.as_slice())
            .any(|v| !v.is_finite())
        {
            return Err(NnError::BadData("non-finite value in training data".into()));
        }

        let scaler = match self.config.preprocessing {
            Preprocessing::None => FeatureScaler::identity(x.cols()),
            Preprocessing::Standardize => FeatureScaler::fit(x),
        };
        let mut x = x.clone();
        scaler.transform(&mut x);

        let n = x.rows();
        let n_train = ((n as f64 * self.config.train_ratio).round() as usize).clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = hpcnet_tensor::rng::seeded(self.config.seed, "trainer-split");
        order.shuffle(&mut rng);
        let (train_idx, val_idx) = order.split_at(n_train);

        let gather = |idx: &[usize], m: &Matrix| -> Matrix {
            let mut out = Matrix::zeros(idx.len(), m.cols());
            for (r, &i) in idx.iter().enumerate() {
                out.row_mut(r).copy_from_slice(m.row(i));
            }
            out
        };
        let xt = gather(train_idx, &x);
        let yt = gather(train_idx, y);
        let xv = gather(val_idx, &x);
        let yv = gather(val_idx, y);

        // Training-progress telemetry (process-wide registry): total epochs
        // run across all fits, and the most recent monitored loss so a live
        // scrape shows whether the current fit is still converging.
        let telemetry = hpcnet_telemetry::global();
        let epochs_total = telemetry.counter("hpcnet_train_epochs_total");
        let last_loss = telemetry.gauge("hpcnet_train_last_loss");

        let mut opt = Adam::new(self.config.lr);
        let mut train_losses = Vec::with_capacity(self.config.epochs);
        let mut val_losses = Vec::with_capacity(self.config.epochs);
        let mut best = f64::INFINITY;
        let mut stale = 0usize;
        let mut epoch_order: Vec<usize> = (0..xt.rows()).collect();

        for epoch in 0..self.config.epochs {
            // Step-decay learning-rate schedule.
            if self.config.lr_decay != 1.0
                && epoch > 0
                && epoch % self.config.lr_decay_every.max(1) == 0
            {
                opt.lr *= self.config.lr_decay;
            }
            epoch_order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in epoch_order.chunks(self.config.batch_size.max(1)) {
                let xb = gather(chunk, &xt);
                let yb = gather(chunk, &yt);
                let (l, mut grads) = mlp.loss_and_grads(&xb, &yb, self.config.loss)?;
                if self.config.weight_decay > 0.0 {
                    for (g, layer) in grads.iter_mut().zip(mlp.layers()) {
                        g.dw.axpy(self.config.weight_decay, layer.weights())
                            .expect("shapes match");
                    }
                }
                opt.step(mlp, &grads);
                epoch_loss += l;
                batches += 1;
            }
            let train_loss = epoch_loss / batches.max(1) as f64;
            train_losses.push(train_loss);

            let monitored = if xv.rows() > 0 {
                let vl = self.config.loss.value(&mlp.forward(&xv)?, &yv);
                val_losses.push(vl);
                vl
            } else {
                train_loss
            };
            epochs_total.inc();
            last_loss.set(monitored);
            if monitored < best - 1e-12 {
                best = monitored;
                stale = 0;
            } else {
                stale += 1;
                if self.config.patience > 0 && stale >= self.config.patience {
                    return Ok(TrainReport {
                        train_losses,
                        val_losses,
                        best_loss: best,
                        epochs_run: epoch + 1,
                        scaler,
                    });
                }
            }
        }
        let epochs_run = train_losses.len();
        Ok(TrainReport {
            train_losses,
            val_losses,
            best_loss: best,
            epochs_run,
            scaler,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Topology;
    use hpcnet_tensor::rng::{seeded, uniform_vec};

    fn linear_dataset(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = seeded(seed, "ds");
        let xs = uniform_vec(&mut rng, n * 3, -1.0, 1.0);
        let ys: Vec<f64> = xs
            .chunks(3)
            .map(|p| p[0] - 2.0 * p[1] + 0.5 * p[2])
            .collect();
        (
            Matrix::from_vec(n, 3, xs).unwrap(),
            Matrix::from_vec(n, 1, ys).unwrap(),
        )
    }

    #[test]
    fn trainer_reduces_loss_on_linear_target() {
        let (x, y) = linear_dataset(200, 1);
        let mut mlp = Mlp::new(&Topology::mlp(vec![3, 16, 1]), &mut seeded(2, "m")).unwrap();
        let cfg = TrainConfig {
            epochs: 100,
            patience: 0,
            lr: 5e-3,
            ..TrainConfig::default()
        };
        let report = Trainer::new(cfg).fit(&mut mlp, &x, &y).unwrap();
        assert!(report.best_loss < 0.01, "best_loss = {}", report.best_loss);
        assert_eq!(report.epochs_run, 100);
        assert_eq!(report.val_losses.len(), 100);
    }

    #[test]
    fn early_stopping_cuts_epochs() {
        let (x, y) = linear_dataset(100, 3);
        let mut mlp = Mlp::new(&Topology::mlp(vec![3, 8, 1]), &mut seeded(4, "m")).unwrap();
        let cfg = TrainConfig {
            epochs: 1000,
            patience: 5,
            ..TrainConfig::default()
        };
        let report = Trainer::new(cfg).fit(&mut mlp, &x, &y).unwrap();
        assert!(report.epochs_run < 1000);
    }

    #[test]
    fn rejects_bad_data() {
        let x = Matrix::zeros(0, 3);
        let y = Matrix::zeros(0, 1);
        let mut mlp = Mlp::new(&Topology::mlp(vec![3, 4, 1]), &mut seeded(5, "m")).unwrap();
        assert!(Trainer::new(TrainConfig::default())
            .fit(&mut mlp, &x, &y)
            .is_err());

        let x = Matrix::from_vec(2, 1, vec![1.0, f64::NAN]).unwrap();
        let y = Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let mut mlp = Mlp::new(&Topology::mlp(vec![1, 2, 1]), &mut seeded(6, "m")).unwrap();
        assert!(Trainer::new(TrainConfig::default())
            .fit(&mut mlp, &x, &y)
            .is_err());

        let x = Matrix::zeros(3, 1);
        let y = Matrix::zeros(2, 1);
        let mut mlp = Mlp::new(&Topology::mlp(vec![1, 2, 1]), &mut seeded(7, "m")).unwrap();
        assert!(Trainer::new(TrainConfig::default())
            .fit(&mut mlp, &x, &y)
            .is_err());
    }

    #[test]
    fn standardization_helps_badly_scaled_features() {
        // One feature is 1000x the other; standardization should still let
        // training converge quickly.
        let mut rng = seeded(8, "scale");
        let n = 150;
        let mut xs = Vec::with_capacity(n * 2);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng_val(&mut rng) * 1000.0;
            let b = rng_val(&mut rng);
            xs.push(a);
            xs.push(b);
            ys.push(a / 1000.0 + b);
        }
        let x = Matrix::from_vec(n, 2, xs).unwrap();
        let y = Matrix::from_vec(n, 1, ys).unwrap();
        let mut mlp = Mlp::new(&Topology::mlp(vec![2, 8, 1]), &mut seeded(9, "m")).unwrap();
        let cfg = TrainConfig {
            epochs: 150,
            preprocessing: Preprocessing::Standardize,
            patience: 0,
            lr: 5e-3,
            ..TrainConfig::default()
        };
        let report = Trainer::new(cfg).fit(&mut mlp, &x, &y).unwrap();
        assert!(report.best_loss < 0.02, "best_loss = {}", report.best_loss);
    }

    fn rng_val(rng: &mut rand::rngs::StdRng) -> f64 {
        uniform_vec(rng, 1, -1.0, 1.0)[0]
    }

    #[test]
    fn weight_decay_shrinks_weight_norms() {
        let (x, y) = linear_dataset(120, 21);
        let norm_after = |wd: f64| {
            let mut mlp = Mlp::new(&Topology::mlp(vec![3, 16, 1]), &mut seeded(22, "wd")).unwrap();
            let cfg = TrainConfig {
                epochs: 80,
                patience: 0,
                weight_decay: wd,
                ..TrainConfig::default()
            };
            Trainer::new(cfg).fit(&mut mlp, &x, &y).unwrap();
            mlp.layers()
                .iter()
                .map(|l| l.weights().frobenius_norm())
                .sum::<f64>()
        };
        let plain = norm_after(0.0);
        let decayed = norm_after(0.05);
        assert!(decayed < plain, "decay {decayed} !< plain {plain}");
    }

    #[test]
    fn lr_decay_schedule_still_converges() {
        let (x, y) = linear_dataset(150, 23);
        let mut mlp = Mlp::new(&Topology::mlp(vec![3, 12, 1]), &mut seeded(24, "lrd")).unwrap();
        let cfg = TrainConfig {
            epochs: 200,
            patience: 0,
            lr: 1e-2,
            lr_decay: 0.5,
            lr_decay_every: 40,
            ..TrainConfig::default()
        };
        let report = Trainer::new(cfg).fit(&mut mlp, &x, &y).unwrap();
        assert!(report.best_loss < 0.02, "best {}", report.best_loss);
    }

    #[test]
    fn scaler_inverse_roundtrips() {
        let x = Matrix::from_vec(4, 2, vec![1.0, -3.0, 2.0, 5.0, 0.5, 0.0, -1.0, 7.0]).unwrap();
        let s = FeatureScaler::fit(&x);
        let mut v = vec![1.5, 2.5];
        let orig = v.clone();
        s.transform_vec(&mut v);
        s.inverse_transform_vec(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn scaler_transform_is_inverse_consistent() {
        let x = Matrix::from_vec(3, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]).unwrap();
        let s = FeatureScaler::fit(&x);
        let mut t = x.clone();
        s.transform(&mut t);
        // Standardized columns: mean 0, unit variance.
        for j in 0..2 {
            let col: Vec<f64> = (0..3).map(|i| t.at(i, j)).collect();
            let mean: f64 = col.iter().sum::<f64>() / 3.0;
            let var: f64 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }
}
