//! Dense and sparse-input layers with manual forward/backward kernels.

use hpcnet_tensor::{Csr, Matrix};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::Result;

/// A fully connected layer `Y = act(X W + b)`.
///
/// Weights are stored `(in_dim x out_dim)` so batch-major inputs
/// (`batch x in_dim`) multiply without transposes on the hot path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Vec<f64>,
    act: Activation,
}

/// Parameter gradients produced by a layer's backward pass.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// Gradient with respect to the weight matrix.
    pub dw: Matrix,
    /// Gradient with respect to the bias vector.
    pub db: Vec<f64>,
}

impl DenseGrads {
    /// A zero gradient matching `layer`'s shapes (Adam/momentum state init).
    pub fn zeros_like(layer: &Dense) -> Self {
        DenseGrads {
            dw: Matrix::zeros(layer.in_dim(), layer.out_dim()),
            db: vec![0.0; layer.out_dim()],
        }
    }
}

impl Dense {
    /// He-style initialization scaled for the fan-in, suitable for
    /// ReLU-family activations and acceptable for tanh at our scales.
    pub fn new_random(in_dim: usize, out_dim: usize, act: Activation, rng: &mut StdRng) -> Self {
        let std = (2.0 / in_dim.max(1) as f64).sqrt();
        let data = hpcnet_tensor::rng::normal_vec(rng, in_dim * out_dim, 0.0, std);
        Dense {
            w: Matrix::from_vec(in_dim, out_dim, data).expect("sized"),
            b: vec![0.0; out_dim],
            act,
        }
    }

    /// Construct from explicit parameters (deserialization, tests).
    pub fn from_parts(w: Matrix, b: Vec<f64>, act: Activation) -> Self {
        assert_eq!(w.cols(), b.len(), "bias length must equal out_dim");
        Dense { w, b, act }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// This layer's activation.
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Borrow the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Mutably borrow the weight matrix (optimizer update path).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.w
    }

    /// Borrow the bias vector.
    pub fn bias(&self) -> &[f64] {
        &self.b
    }

    /// Mutably borrow the bias vector.
    pub fn bias_mut(&mut self) -> &mut [f64] {
        &mut self.b
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Multiply-add FLOPs for one forward pass of a single sample.
    pub fn flops(&self) -> u64 {
        (2 * self.w.rows() * self.w.cols()) as u64
    }

    /// Forward pass on a batch (`batch x in_dim`), returning post-activation.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let mut z = x.matmul(&self.w)?;
        for row in 0..z.rows() {
            let r = z.row_mut(row);
            for (v, &bi) in r.iter_mut().zip(&self.b) {
                *v += bi;
            }
        }
        for row in 0..z.rows() {
            self.act.apply(z.row_mut(row));
        }
        Ok(z)
    }

    /// Forward pass for one sample into a caller-provided buffer: the
    /// zero-allocation serving hot path. `out` is resized (never shrunk in
    /// capacity) and overwritten; after warm-up no allocation occurs.
    ///
    /// Bit-identical to a 1-row [`Self::forward`]: same matmul kernel, same
    /// bias-then-activation order.
    pub fn forward_single_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<()> {
        out.clear();
        out.resize(self.out_dim(), 0.0);
        self.w.vecmat_into(x, out)?;
        for (v, &bi) in out.iter_mut().zip(&self.b) {
            *v += bi;
        }
        self.act.apply(out);
        Ok(())
    }

    /// Backward pass.
    ///
    /// `x` is the layer input, `a` the forward output (post-activation),
    /// `da` the loss gradient with respect to `a`. Returns the gradient
    /// with respect to `x` along with the parameter gradients.
    pub fn backward(&self, x: &Matrix, a: &Matrix, da: &Matrix) -> Result<(Matrix, DenseGrads)> {
        let dz = chain_activation(self.act, a, da);
        // dW = Xᵀ · dZ (fused, no transpose copy), db = column sums of dZ,
        // dX = dZ · Wᵀ.
        let dw = x.at_matmul(&dz)?;
        let mut db = vec![0.0; self.out_dim()];
        for row in 0..dz.rows() {
            for (d, &g) in db.iter_mut().zip(dz.row(row)) {
                *d += g;
            }
        }
        let dx = dz.matmul(&self.w.transpose())?;
        Ok((dx, DenseGrads { dw, db }))
    }

    /// Forward pass on a **sparse** CSR batch: `Y = act(X_sparse W + b)`
    /// with the input never densified (the paper's "embedding API" path).
    pub fn forward_sparse(&self, x: &Csr) -> Result<Matrix> {
        let mut z = x.spmm_dense(&self.w)?;
        for row in 0..z.rows() {
            let r = z.row_mut(row);
            for (v, &bi) in r.iter_mut().zip(&self.b) {
                *v += bi;
            }
        }
        for row in 0..z.rows() {
            self.act.apply(z.row_mut(row));
        }
        Ok(z)
    }

    /// Parameter gradients for a sparse first-layer batch:
    /// `dW = X_sparseᵀ · dZ` via a sparse-transpose product.
    pub fn backward_sparse(&self, x: &Csr, a: &Matrix, da: &Matrix) -> Result<DenseGrads> {
        let dz = chain_activation(self.act, a, da);
        let dw = x.transpose().spmm_dense(&dz)?;
        let mut db = vec![0.0; self.out_dim()];
        for row in 0..dz.rows() {
            for (d, &g) in db.iter_mut().zip(dz.row(row)) {
                *d += g;
            }
        }
        Ok(DenseGrads { dw, db })
    }

    /// Backward pass for a layer whose input gradient is not needed
    /// (a first layer). Skips the `dZ · Wᵀ` product.
    pub fn backward_params_only(&self, x: &Matrix, a: &Matrix, da: &Matrix) -> Result<DenseGrads> {
        let dz = chain_activation(self.act, a, da);
        let dw = x.at_matmul(&dz)?;
        let mut db = vec![0.0; self.out_dim()];
        for row in 0..dz.rows() {
            for (d, &g) in db.iter_mut().zip(dz.row(row)) {
                *d += g;
            }
        }
        Ok(DenseGrads { dw, db })
    }
}

/// Chain rule through the activation: `dZ = dA ⊙ act'(A)`.
fn chain_activation(act: Activation, a: &Matrix, da: &Matrix) -> Matrix {
    let mut dz = da.clone();
    for (d, &av) in dz.as_mut_slice().iter_mut().zip(a.as_slice()) {
        *d *= act.derivative_from_output(av);
    }
    dz
}

/// A fully connected **first** layer that consumes a sparse CSR batch
/// directly: `Y = act(X_sparse W + b)`.
///
/// This is the substitute for the paper's "TensorFlow embedding API" (§4.2):
/// the sparse input is never unrolled to a dense matrix, eliminating both
/// the format-transformation time and the dense-storage blow-up (the paper
/// cites 14x for NPB CG inputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseDense {
    inner: Dense,
}

impl SparseDense {
    /// Random initialization; see [`Dense::new_random`].
    pub fn new_random(in_dim: usize, out_dim: usize, act: Activation, rng: &mut StdRng) -> Self {
        SparseDense {
            inner: Dense::new_random(in_dim, out_dim, act, rng),
        }
    }

    /// Wrap an existing dense layer (used by equivalence tests).
    pub fn from_dense(inner: Dense) -> Self {
        SparseDense { inner }
    }

    /// View as the equivalent dense layer.
    pub fn as_dense(&self) -> &Dense {
        &self.inner
    }

    /// Mutable view for optimizer updates.
    pub fn as_dense_mut(&mut self) -> &mut Dense {
        &mut self.inner
    }

    /// Forward pass on a sparse batch (`batch x in_dim` CSR).
    pub fn forward_sparse(&self, x: &Csr) -> Result<Matrix> {
        self.inner.forward_sparse(x)
    }

    /// Parameter gradients for a sparse batch. The gradient with respect to
    /// the (given) input is never needed for a first layer.
    ///
    /// `dW = X_sparseᵀ · dZ` is computed as a sparse-transpose × dense
    /// product, so the input stays compressed through backprop too.
    pub fn backward_sparse(&self, x: &Csr, a: &Matrix, da: &Matrix) -> Result<DenseGrads> {
        self.inner.backward_sparse(x, a, da)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_tensor::rng::seeded;
    use hpcnet_tensor::Coo;

    fn small_layer(act: Activation) -> Dense {
        let w = Matrix::from_vec(3, 2, vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6]).unwrap();
        Dense::from_parts(w, vec![0.05, -0.05], act)
    }

    #[test]
    fn forward_known_values_identity() {
        let l = small_layer(Activation::Identity);
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let y = l.forward(&x).unwrap();
        // [1,2,3]·W = [0.1+0.6-1.5, -0.2+0.8+1.8] = [-0.8, 2.4]; +b
        assert!((y.at(0, 0) - (-0.75)).abs() < 1e-12);
        assert!((y.at(0, 1) - 2.35).abs() < 1e-12);
    }

    /// Finite-difference check of all gradients for every activation.
    #[test]
    fn backward_matches_finite_difference() {
        let acts = [
            Activation::Identity,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::LeakyRelu,
        ];
        let mut rng = seeded(5, "layer-fd");
        for act in acts {
            let mut layer = Dense::new_random(4, 3, act, &mut rng);
            let x = Matrix::from_vec(
                2,
                4,
                hpcnet_tensor::rng::uniform_vec(&mut rng, 8, -1.0, 1.0),
            )
            .unwrap();
            // Loss = sum of outputs, so dA = ones.
            let a = layer.forward(&x).unwrap();
            let da = Matrix::from_vec(2, 3, vec![1.0; 6]).unwrap();
            let (dx, grads) = layer.backward(&x, &a, &da).unwrap();

            let eps = 1e-6;
            let loss =
                |l: &Dense, xx: &Matrix| -> f64 { l.forward(xx).unwrap().as_slice().iter().sum() };
            // dW check
            for i in 0..4 {
                for j in 0..3 {
                    let orig = layer.w.at(i, j);
                    *layer.w.at_mut(i, j) = orig + eps;
                    let up = loss(&layer, &x);
                    *layer.w.at_mut(i, j) = orig - eps;
                    let down = loss(&layer, &x);
                    *layer.w.at_mut(i, j) = orig;
                    let fd = (up - down) / (2.0 * eps);
                    assert!(
                        (fd - grads.dw.at(i, j)).abs() < 1e-4,
                        "{}: dW({i},{j}) fd={fd} an={}",
                        act.name(),
                        grads.dw.at(i, j)
                    );
                }
            }
            // db check
            for j in 0..3 {
                let orig = layer.b[j];
                layer.b[j] = orig + eps;
                let up = loss(&layer, &x);
                layer.b[j] = orig - eps;
                let down = loss(&layer, &x);
                layer.b[j] = orig;
                let fd = (up - down) / (2.0 * eps);
                assert!((fd - grads.db[j]).abs() < 1e-4, "{}: db({j})", act.name());
            }
            // dX check
            let mut xx = x.clone();
            for i in 0..2 {
                for j in 0..4 {
                    let orig = xx.at(i, j);
                    *xx.at_mut(i, j) = orig + eps;
                    let up = loss(&layer, &xx);
                    *xx.at_mut(i, j) = orig - eps;
                    let down = loss(&layer, &xx);
                    *xx.at_mut(i, j) = orig;
                    let fd = (up - down) / (2.0 * eps);
                    assert!(
                        (fd - dx.at(i, j)).abs() < 1e-4,
                        "{}: dX({i},{j})",
                        act.name()
                    );
                }
            }
        }
    }

    #[test]
    fn forward_single_into_matches_batch_forward_bitwise() {
        let mut rng = seeded(33, "fsi");
        let layer = Dense::new_random(6, 4, Activation::Tanh, &mut rng);
        let x = hpcnet_tensor::rng::uniform_vec(&mut rng, 6, -1.0, 1.0);
        let mut out = Vec::new();
        layer.forward_single_into(&x, &mut out).unwrap();
        let batch = layer
            .forward(&Matrix::from_vec(1, 6, x.clone()).unwrap())
            .unwrap();
        assert_eq!(out.as_slice(), batch.as_slice());
        // Reuse of a dirty, larger buffer still produces the same result.
        let mut dirty = vec![7.0; 32];
        layer.forward_single_into(&x, &mut dirty).unwrap();
        assert_eq!(dirty.as_slice(), batch.as_slice());
        assert!(layer.forward_single_into(&x[..3], &mut out).is_err());
    }

    #[test]
    fn params_only_backward_matches_full_backward() {
        let mut rng = seeded(9, "po");
        let layer = Dense::new_random(5, 4, Activation::Tanh, &mut rng);
        let x = Matrix::from_vec(
            3,
            5,
            hpcnet_tensor::rng::uniform_vec(&mut rng, 15, -1.0, 1.0),
        )
        .unwrap();
        let a = layer.forward(&x).unwrap();
        let da = Matrix::from_vec(
            3,
            4,
            hpcnet_tensor::rng::uniform_vec(&mut rng, 12, -1.0, 1.0),
        )
        .unwrap();
        let (_, full) = layer.backward(&x, &a, &da).unwrap();
        let po = layer.backward_params_only(&x, &a, &da).unwrap();
        assert_eq!(full.dw, po.dw);
        assert_eq!(full.db, po.db);
    }

    #[test]
    fn sparse_layer_equals_dense_layer_on_densified_input() {
        let mut rng = seeded(21, "sp");
        let dense = Dense::new_random(10, 4, Activation::Tanh, &mut rng);
        let sparse = SparseDense::from_dense(dense.clone());

        // A sparse batch of 3 samples over 10 features.
        let mut coo = Coo::new(3, 10);
        coo.push(0, 2, 1.5);
        coo.push(0, 7, -0.5);
        coo.push(1, 0, 2.0);
        coo.push(2, 9, 0.25);
        coo.push(2, 4, -1.0);
        let x_sparse = coo.to_csr();
        let x_dense = x_sparse.to_dense();

        let a_sparse = sparse.forward_sparse(&x_sparse).unwrap();
        let a_dense = dense.forward(&x_dense).unwrap();
        for (u, v) in a_sparse.as_slice().iter().zip(a_dense.as_slice()) {
            assert!((u - v).abs() < 1e-12);
        }

        let da = Matrix::from_vec(
            3,
            4,
            hpcnet_tensor::rng::uniform_vec(&mut rng, 12, -1.0, 1.0),
        )
        .unwrap();
        let g_sparse = sparse.backward_sparse(&x_sparse, &a_sparse, &da).unwrap();
        let (_, g_dense) = dense.backward(&x_dense, &a_dense, &da).unwrap();
        for (u, v) in g_sparse.dw.as_slice().iter().zip(g_dense.dw.as_slice()) {
            assert!((u - v).abs() < 1e-12);
        }
        assert_eq!(g_sparse.db, g_dense.db);
    }

    #[test]
    fn param_count_and_flops() {
        let l = small_layer(Activation::Relu);
        assert_eq!(l.param_count(), 8);
        assert_eq!(l.flops(), 12);
    }
}
