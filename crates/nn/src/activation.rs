//! Element-wise activation functions.

use serde::{Deserialize, Serialize};

/// Supported activations.
///
/// Derivatives are computed **from the post-activation value** so that
/// backprop (including the gradient-checkpointed variant) never needs to
/// retain pre-activation buffers. Every variant here admits that form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `f(z) = z` — used on output layers of regression surrogates.
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with slope 0.01 for negative inputs.
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Apply in place to a buffer.
    #[inline]
    pub fn apply(&self, z: &mut [f64]) {
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for v in z {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            Activation::LeakyRelu => {
                for v in z {
                    if *v < 0.0 {
                        *v *= 0.01;
                    }
                }
            }
            Activation::Tanh => {
                for v in z {
                    *v = v.tanh();
                }
            }
            Activation::Sigmoid => {
                for v in z {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
        }
    }

    /// Apply in place to an `f32` buffer: the serving-only reduced-precision
    /// path (DESIGN.md §14). Transcendentals are evaluated natively in
    /// `f32`; accuracy against the `f64` path is pinned by the envelope
    /// proptest in `tests/proptests.rs`, and at serving time the
    /// QualityGuard demotes any miss back to `f64` per request.
    #[inline]
    pub fn apply_f32(&self, z: &mut [f32]) {
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for v in z {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            Activation::LeakyRelu => {
                for v in z {
                    if *v < 0.0 {
                        *v *= 0.01;
                    }
                }
            }
            Activation::Tanh => {
                for v in z {
                    *v = v.tanh();
                }
            }
            Activation::Sigmoid => {
                for v in z {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
        }
    }

    /// Derivative expressed in terms of the post-activation value `a`.
    #[inline]
    pub fn derivative_from_output(&self, a: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            // a == 0 ⇒ z <= 0: use subgradient 0, the common convention.
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            // post-activation is negative iff the pre-activation was.
            Activation::LeakyRelu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Tanh => 1.0 - a * a,
            Activation::Sigmoid => a * (1.0 - a),
        }
    }

    /// Short display name used in topology summaries and checkpoints.
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Identity => "identity",
            Activation::Relu => "relu",
            Activation::LeakyRelu => "leaky_relu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 5] = [
        Activation::Identity,
        Activation::Relu,
        Activation::LeakyRelu,
        Activation::Tanh,
        Activation::Sigmoid,
    ];

    #[test]
    fn apply_known_values() {
        let mut z = vec![-2.0, 0.0, 3.0];
        Activation::Relu.apply(&mut z);
        assert_eq!(z, vec![0.0, 0.0, 3.0]);

        let mut z = vec![-2.0, 3.0];
        Activation::LeakyRelu.apply(&mut z);
        assert_eq!(z, vec![-0.02, 3.0]);

        let mut z = vec![0.0];
        Activation::Sigmoid.apply(&mut z);
        assert_eq!(z, vec![0.5]);

        let mut z = vec![0.0];
        Activation::Tanh.apply(&mut z);
        assert_eq!(z, vec![0.0]);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let eps = 1e-6;
        for act in ALL {
            for &z0 in &[-1.7, -0.3, 0.2, 1.9] {
                let mut lo = [z0 - eps];
                let mut hi = [z0 + eps];
                let mut mid = [z0];
                act.apply(&mut lo);
                act.apply(&mut hi);
                act.apply(&mut mid);
                let fd = (hi[0] - lo[0]) / (2.0 * eps);
                let analytic = act.derivative_from_output(mid[0]);
                assert!(
                    (fd - analytic).abs() < 1e-5,
                    "{} at {z0}: fd={fd} analytic={analytic}",
                    act.name()
                );
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len());
    }
}
