//! Multi-layer perceptron: the surrogate-model body the NAS searches over.

use hpcnet_tensor::Matrix;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::layer::{Dense, DenseGrads};
use crate::loss::Loss;
use crate::{NnError, Result};

/// A surrogate-model topology: layer widths plus hidden/output activations.
///
/// This is the θ of the paper's 2D NAS — the low-level Bayesian optimization
/// proposes instances of this type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Widths including input and output: `[in, h1, ..., out]`.
    pub widths: Vec<usize>,
    /// Activation applied to every hidden layer.
    pub hidden_act: Activation,
    /// Activation on the output layer (usually `Identity` for regression).
    pub output_act: Activation,
}

impl Topology {
    /// Convenience constructor with tanh hidden / identity output, the
    /// default surrogate shape in the paper's experiments (MLP default,
    /// Table 1 `-initModel`).
    pub fn mlp(widths: Vec<usize>) -> Self {
        Topology {
            widths,
            hidden_act: Activation::Tanh,
            output_act: Activation::Identity,
        }
    }

    /// Validate structural sanity.
    pub fn validate(&self) -> Result<()> {
        if self.widths.len() < 2 {
            return Err(NnError::InvalidTopology(
                "need at least input and output widths".into(),
            ));
        }
        if self.widths.contains(&0) {
            return Err(NnError::InvalidTopology("zero-width layer".into()));
        }
        Ok(())
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.widths[0]
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        *self.widths.last().expect("validated")
    }

    /// Number of weight layers.
    pub fn depth(&self) -> usize {
        self.widths.len() - 1
    }

    /// Total trainable parameters of an MLP with this topology.
    pub fn param_count(&self) -> usize {
        self.widths.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// Forward FLOPs per sample (2·in·out per layer) — the analytic cost
    /// the NAS feeds to the device model as part of f_c.
    pub fn flops(&self) -> u64 {
        self.widths
            .windows(2)
            .map(|w| (2 * w[0] * w[1]) as u64)
            .sum()
    }
}

/// Reusable activation buffers for the single-sample forward pass.
///
/// The serving hot path calls [`Mlp::predict_with`] with one of these per
/// worker: after the first call sizes the two ping-pong buffers, every
/// subsequent inference runs without a single heap allocation.
///
/// # Examples
///
/// ```
/// use hpcnet_nn::{Mlp, ScratchBuffers, Topology};
/// let mut rng = hpcnet_tensor::rng::seeded(7, "doc-scratch");
/// let mlp = Mlp::new(&Topology::mlp(vec![3, 8, 2]), &mut rng).unwrap();
/// let mut scratch = ScratchBuffers::new();
/// let y = mlp.predict_with(&[0.1, -0.2, 0.3], &mut scratch).unwrap().to_vec();
/// assert_eq!(y, mlp.predict(&[0.1, -0.2, 0.3]).unwrap());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScratchBuffers {
    pub(crate) a: Vec<f64>,
    pub(crate) b: Vec<f64>,
}

impl ScratchBuffers {
    /// Fresh empty buffers; they grow to the widest layer on first use.
    pub fn new() -> Self {
        ScratchBuffers::default()
    }

    /// Pre-size both buffers for networks up to `max_width` wide, so even
    /// the first inference allocates nothing.
    pub fn with_capacity(max_width: usize) -> Self {
        ScratchBuffers {
            a: Vec::with_capacity(max_width),
            b: Vec::with_capacity(max_width),
        }
    }

    /// Stash an owned vector and return a borrow of it (used by network
    /// families without a buffered forward path).
    pub(crate) fn store_owned(&mut self, v: Vec<f64>) -> &[f64] {
        self.a = v;
        &self.a
    }
}

/// A multi-layer perceptron.
///
/// # Examples
///
/// ```
/// use hpcnet_nn::{Mlp, Topology};
/// let mut rng = hpcnet_tensor::rng::seeded(7, "doc");
/// let mlp = Mlp::new(&Topology::mlp(vec![3, 8, 2]), &mut rng).unwrap();
/// let y = mlp.predict(&[0.1, -0.2, 0.3]).unwrap();
/// assert_eq!(y.len(), 2);
/// assert_eq!(mlp.param_count(), 3 * 8 + 8 + 8 * 2 + 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Build an MLP with randomly initialized parameters.
    pub fn new(topology: &Topology, rng: &mut StdRng) -> Result<Self> {
        topology.validate()?;
        let depth = topology.depth();
        let mut layers = Vec::with_capacity(depth);
        for (i, w) in topology.widths.windows(2).enumerate() {
            let act = if i + 1 == depth {
                topology.output_act
            } else {
                topology.hidden_act
            };
            layers.push(Dense::new_random(w[0], w[1], act, rng));
        }
        Ok(Mlp { layers })
    }

    /// Build from explicit layers (deserialization, tests).
    pub fn from_layers(layers: Vec<Dense>) -> Result<Self> {
        if layers.is_empty() {
            return Err(NnError::InvalidTopology(
                "MLP needs at least one layer".into(),
            ));
        }
        for pair in layers.windows(2) {
            if pair[0].out_dim() != pair[1].in_dim() {
                return Err(NnError::InvalidTopology(format!(
                    "layer widths disagree: {} -> {}",
                    pair[0].out_dim(),
                    pair[1].in_dim()
                )));
            }
        }
        Ok(Mlp { layers })
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable layer access (optimizer update path).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Recover the topology of this network.
    pub fn topology(&self) -> Topology {
        let mut widths = Vec::with_capacity(self.layers.len() + 1);
        widths.push(self.input_dim());
        for l in &self.layers {
            widths.push(l.out_dim());
        }
        Topology {
            widths,
            hidden_act: self.layers[0].activation(),
            output_act: self.layers.last().expect("non-empty").activation(),
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Per-sample forward FLOPs.
    pub fn flops(&self) -> u64 {
        self.layers.iter().map(Dense::flops).sum()
    }

    /// Forward pass on a batch.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let mut a = self.layers[0].forward(x)?;
        for layer in &self.layers[1..] {
            a = layer.forward(&a)?;
        }
        Ok(a)
    }

    /// Batched forward pass (one sample per row). Each layer is a single
    /// `matmul`, which parallelizes across rows, instead of per-sample
    /// `matvec`s; row `i` of the result is bit-identical to
    /// `predict(x.row(i))` because the matmul kernel treats rows
    /// independently in the same accumulation order.
    pub fn predict_batch(&self, x: &Matrix) -> Result<Matrix> {
        self.forward(x)
    }

    /// Predict a single sample (convenience over [`Self::predict_with`]).
    pub fn predict(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut scratch = ScratchBuffers::new();
        Ok(self.predict_with(x, &mut scratch)?.to_vec())
    }

    /// Predict a single sample through caller-owned [`ScratchBuffers`]:
    /// the zero-allocation serving hot path. Returns a borrow of the
    /// scratch buffer holding the output; copy it out before the next call.
    pub fn predict_with<'s>(
        &self,
        x: &[f64],
        scratch: &'s mut ScratchBuffers,
    ) -> Result<&'s [f64]> {
        let ScratchBuffers { a, b } = scratch;
        let (mut cur, mut nxt): (&mut Vec<f64>, &mut Vec<f64>) = (a, b);
        cur.clear();
        cur.extend_from_slice(x);
        for layer in &self.layers {
            layer.forward_single_into(cur, nxt)?;
            std::mem::swap(&mut cur, &mut nxt);
        }
        Ok(cur)
    }

    /// Forward pass that retains every activation (for plain backprop).
    /// Returns `[input, a1, ..., aL]`.
    pub fn forward_trace(&self, x: &Matrix) -> Result<Vec<Matrix>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for layer in &self.layers {
            let next = layer.forward(acts.last().expect("non-empty"))?;
            acts.push(next);
        }
        Ok(acts)
    }

    /// Full backprop from a retained activation trace.
    ///
    /// Returns per-layer parameter gradients (same order as layers).
    pub fn backward_from_trace(
        &self,
        acts: &[Matrix],
        loss: Loss,
        target: &Matrix,
    ) -> Result<Vec<DenseGrads>> {
        debug_assert_eq!(acts.len(), self.layers.len() + 1);
        let mut da = loss.gradient(acts.last().expect("non-empty"), target);
        let mut grads: Vec<DenseGrads> = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let x = &acts[i];
            let a = &acts[i + 1];
            if i == 0 {
                grads.push(layer.backward_params_only(x, a, &da)?);
            } else {
                let (dx, g) = layer.backward(x, a, &da)?;
                grads.push(g);
                da = dx;
            }
        }
        grads.reverse();
        Ok(grads)
    }

    /// One forward+backward on a batch: returns `(loss, grads)`.
    pub fn loss_and_grads(
        &self,
        x: &Matrix,
        target: &Matrix,
        loss: Loss,
    ) -> Result<(f64, Vec<DenseGrads>)> {
        let acts = self.forward_trace(x)?;
        let l = loss.value(acts.last().expect("non-empty"), target);
        let grads = self.backward_from_trace(&acts, loss, target)?;
        Ok((l, grads))
    }

    /// Serialize to JSON (the checkpoint/share format, paper §6.1).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("Mlp serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self> {
        let mlp: Mlp = serde_json::from_str(s)
            .map_err(|e| NnError::BadData(format!("bad model JSON: {e}")))?;
        Mlp::from_layers(mlp.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_tensor::rng::{seeded, uniform_vec};

    #[test]
    fn topology_validation() {
        assert!(Topology::mlp(vec![4]).validate().is_err());
        assert!(Topology::mlp(vec![4, 0, 2]).validate().is_err());
        assert!(Topology::mlp(vec![4, 8, 2]).validate().is_ok());
    }

    #[test]
    fn topology_counts() {
        let t = Topology::mlp(vec![3, 5, 2]);
        assert_eq!(t.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
        assert_eq!(t.flops(), (2 * 15 + 2 * 10) as u64);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.input_dim(), 3);
        assert_eq!(t.output_dim(), 2);
    }

    #[test]
    fn mlp_topology_roundtrip() {
        let t = Topology::mlp(vec![4, 7, 3]);
        let mlp = Mlp::new(&t, &mut seeded(1, "mlp")).unwrap();
        assert_eq!(mlp.topology(), t);
        assert_eq!(mlp.param_count(), t.param_count());
        assert_eq!(mlp.flops(), t.flops());
    }

    #[test]
    fn from_layers_rejects_mismatched_widths() {
        let mut rng = seeded(2, "fl");
        let l1 = Dense::new_random(3, 4, Activation::Tanh, &mut rng);
        let l2 = Dense::new_random(5, 2, Activation::Identity, &mut rng);
        assert!(Mlp::from_layers(vec![l1, l2]).is_err());
        assert!(Mlp::from_layers(vec![]).is_err());
    }

    #[test]
    fn gradients_match_finite_difference_through_depth() {
        let mut rng = seeded(3, "fd");
        let t = Topology::mlp(vec![3, 4, 4, 2]);
        let mut mlp = Mlp::new(&t, &mut rng).unwrap();
        let x = Matrix::from_vec(2, 3, uniform_vec(&mut rng, 6, -1.0, 1.0)).unwrap();
        let y = Matrix::from_vec(2, 2, uniform_vec(&mut rng, 4, -1.0, 1.0)).unwrap();
        let (_, grads) = mlp.loss_and_grads(&x, &y, Loss::Mse).unwrap();

        let eps = 1e-6;
        for li in 0..3 {
            let (rows, cols) = {
                let w = mlp.layers()[li].weights();
                (w.rows(), w.cols())
            };
            for i in 0..rows {
                for j in 0..cols {
                    let orig = mlp.layers()[li].weights().at(i, j);
                    *mlp.layers_mut()[li].weights_mut().at_mut(i, j) = orig + eps;
                    let up = Loss::Mse.value(&mlp.forward(&x).unwrap(), &y);
                    *mlp.layers_mut()[li].weights_mut().at_mut(i, j) = orig - eps;
                    let down = Loss::Mse.value(&mlp.forward(&x).unwrap(), &y);
                    *mlp.layers_mut()[li].weights_mut().at_mut(i, j) = orig;
                    let fd = (up - down) / (2.0 * eps);
                    assert!(
                        (fd - grads[li].dw.at(i, j)).abs() < 1e-5,
                        "layer {li} dW({i},{j}): fd={fd} an={}",
                        grads[li].dw.at(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn predict_matches_batch_forward() {
        let mut rng = seeded(4, "pred");
        let mlp = Mlp::new(&Topology::mlp(vec![3, 6, 2]), &mut rng).unwrap();
        let x = vec![0.3, -0.7, 0.1];
        let single = mlp.predict(&x).unwrap();
        let batch = mlp
            .forward(&Matrix::from_vec(1, 3, x).unwrap())
            .unwrap()
            .into_vec();
        assert_eq!(single, batch);
    }

    #[test]
    fn predict_with_reuses_buffers_and_matches_predict() {
        let mut rng = seeded(11, "scratch");
        let mlp = Mlp::new(&Topology::mlp(vec![5, 16, 8, 3]), &mut rng).unwrap();
        let mut scratch = ScratchBuffers::with_capacity(16);
        let (ca, cb) = (scratch.a.capacity(), scratch.b.capacity());
        for _ in 0..10 {
            let x = uniform_vec(&mut rng, 5, -1.0, 1.0);
            let fast = mlp.predict_with(&x, &mut scratch).unwrap().to_vec();
            assert_eq!(fast, mlp.predict(&x).unwrap());
        }
        // Pre-sized buffers never reallocate: the hot path is allocation-free.
        assert_eq!(scratch.a.capacity(), ca);
        assert_eq!(scratch.b.capacity(), cb);
    }

    #[test]
    fn predict_batch_rows_bit_equal_single_predictions() {
        let mut rng = seeded(12, "pb");
        let mlp = Mlp::new(&Topology::mlp(vec![4, 9, 2]), &mut rng).unwrap();
        // Above PAR_THRESHOLD rows so the parallel matmul path runs too.
        let n = 70;
        let x = Matrix::from_vec(n, 4, uniform_vec(&mut rng, n * 4, -2.0, 2.0)).unwrap();
        let out = mlp.predict_batch(&x).unwrap();
        for i in 0..n {
            assert_eq!(
                out.row(i),
                mlp.predict(x.row(i)).unwrap().as_slice(),
                "row {i}"
            );
        }
    }

    #[test]
    fn json_roundtrip_preserves_predictions() {
        let mut rng = seeded(5, "json");
        let mlp = Mlp::new(&Topology::mlp(vec![4, 5, 1]), &mut rng).unwrap();
        let restored = Mlp::from_json(&mlp.to_json()).unwrap();
        let x = vec![0.1, 0.2, 0.3, 0.4];
        assert_eq!(mlp.predict(&x).unwrap(), restored.predict(&x).unwrap());
    }
}
