// hpcnet-kernel: dual-precision
//! Inference-only `f32` mirror of the MLP forward path.
//!
//! Training, checkpoints, and scalers all stay `f64`; an [`MlpF32`] is
//! quantized from a trained [`Mlp`] once, at model registration, when the
//! orchestrator was built with `serve_f32(true)` (DESIGN.md §14). It
//! supports exactly the two operations the serving hot path needs —
//! batched and single-sample forward — over [`MatrixF32`] and the shared
//! dual-precision kernels.
//!
//! There is intentionally no `f32` training or serialization: the f32 net
//! is a derived artifact, re-quantized from the `f64` bundle on load, so
//! precision policy can change without invalidating checkpoints.

use hpcnet_tensor::MatrixF32;

use crate::activation::Activation;
use crate::layer::Dense;
use crate::mlp::Mlp;
use crate::Result;

/// `f32` quantization of one fully connected layer.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseF32 {
    w: MatrixF32,
    b: Vec<f32>,
    act: Activation,
}

impl DenseF32 {
    /// Quantize a trained `f64` layer (round-to-nearest-even per element).
    pub fn from_dense(layer: &Dense) -> Self {
        DenseF32 {
            w: MatrixF32::from_f64(layer.weights()),
            b: layer.bias().iter().map(|&v| v as f32).collect(),
            act: layer.activation(),
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass on a batch (`batch x in_dim`), returning post-activation.
    pub fn forward(&self, x: &MatrixF32) -> Result<MatrixF32> {
        let mut z = x.matmul(&self.w)?;
        for row in 0..z.rows() {
            let r = z.row_mut(row);
            for (v, &bi) in r.iter_mut().zip(&self.b) {
                *v += bi;
            }
        }
        for row in 0..z.rows() {
            self.act.apply_f32(z.row_mut(row));
        }
        Ok(z)
    }

    /// Single-sample forward into a caller-provided buffer; bit-identical
    /// to a 1-row [`Self::forward`], mirroring `Dense::forward_single_into`.
    pub fn forward_single_into(&self, x: &[f32], out: &mut Vec<f32>) -> Result<()> {
        out.clear();
        out.resize(self.out_dim(), 0.0f32);
        self.w.vecmat_into(x, out)?;
        for (v, &bi) in out.iter_mut().zip(&self.b) {
            *v += bi;
        }
        self.act.apply_f32(out);
        Ok(())
    }
}

/// Reusable `f32` ping-pong buffers for [`MlpF32::predict_with`].
#[derive(Debug, Clone, Default)]
pub struct ScratchBuffersF32 {
    a: Vec<f32>,
    b: Vec<f32>,
}

impl ScratchBuffersF32 {
    /// Fresh empty buffers; they grow to the widest layer on first use.
    pub fn new() -> Self {
        ScratchBuffersF32::default()
    }
}

/// An `f32` quantization of a trained [`Mlp`], for serving only.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpF32 {
    layers: Vec<DenseF32>,
}

impl MlpF32 {
    /// Quantize every layer of a trained `f64` MLP.
    pub fn from_mlp(mlp: &Mlp) -> Self {
        MlpF32 {
            layers: mlp.layers().iter().map(DenseF32::from_dense).collect(),
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        match self.layers.last() {
            Some(l) => l.out_dim(),
            None => 0,
        }
    }

    /// Batched forward pass, one sample per row; row `i` is bit-identical
    /// to `predict` of row `i` (same kernel guarantee as the f64 path).
    pub fn predict_batch(&self, x: &MatrixF32) -> Result<MatrixF32> {
        let mut a = self.layers[0].forward(x)?;
        for layer in &self.layers[1..] {
            a = layer.forward(&a)?;
        }
        Ok(a)
    }

    /// Predict a single sample (convenience over [`Self::predict_with`]).
    pub fn predict(&self, x: &[f32]) -> Result<Vec<f32>> {
        let mut scratch = ScratchBuffersF32::new();
        Ok(self.predict_with(x, &mut scratch)?.to_vec())
    }

    /// Predict a single sample through caller-owned buffers: the
    /// zero-allocation hot path, mirroring `Mlp::predict_with`.
    pub fn predict_with<'s>(
        &self,
        x: &[f32],
        scratch: &'s mut ScratchBuffersF32,
    ) -> Result<&'s [f32]> {
        let ScratchBuffersF32 { a, b } = scratch;
        let (mut cur, mut nxt): (&mut Vec<f32>, &mut Vec<f32>) = (a, b);
        cur.clear();
        cur.extend_from_slice(x);
        for layer in &self.layers {
            layer.forward_single_into(cur, nxt)?;
            std::mem::swap(&mut cur, &mut nxt);
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Topology;
    use hpcnet_tensor::rng::{seeded, uniform_vec};
    use hpcnet_tensor::Matrix;

    fn quantized(widths: Vec<usize>, seed: u64) -> (Mlp, MlpF32) {
        let mlp = Mlp::new(&Topology::mlp(widths), &mut seeded(seed, "f32")).unwrap();
        let q = MlpF32::from_mlp(&mlp);
        (mlp, q)
    }

    #[test]
    fn dims_survive_quantization() {
        let (mlp, q) = quantized(vec![5, 9, 3], 1);
        assert_eq!(q.input_dim(), mlp.input_dim());
        assert_eq!(q.output_dim(), mlp.output_dim());
    }

    #[test]
    fn predict_matches_batch_forward_bitwise() {
        let (_, q) = quantized(vec![4, 8, 2], 2);
        let mut rng = seeded(3, "f32-pred");
        let n = 70; // above PAR_THRESHOLD: rayon path included
        let xs: Vec<f32> = uniform_vec(&mut rng, n * 4, -2.0, 2.0)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let batch = q
            .predict_batch(&MatrixF32::from_vec(n, 4, xs.clone()).unwrap())
            .unwrap();
        for i in 0..n {
            let single = q.predict(&xs[i * 4..(i + 1) * 4]).unwrap();
            assert_eq!(batch.row(i), single.as_slice(), "row {i}");
        }
    }

    #[test]
    fn f32_tracks_f64_closely_on_a_small_net() {
        let (mlp, q) = quantized(vec![3, 16, 2], 4);
        let mut rng = seeded(5, "f32-err");
        for _ in 0..20 {
            let x = uniform_vec(&mut rng, 3, -1.0, 1.0);
            let y64 = mlp.predict(&x).unwrap();
            let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
            let y32 = q.predict(&x32).unwrap();
            for (a, b) in y64.iter().zip(&y32) {
                assert!((a - f64::from(*b)).abs() < 1e-4, "f64={a} f32={b}");
            }
        }
        // Batch path agrees with the f64 batch path to the same envelope.
        let x = uniform_vec(&mut rng, 8 * 3, -1.0, 1.0);
        let b64 = mlp
            .predict_batch(&Matrix::from_vec(8, 3, x.clone()).unwrap())
            .unwrap();
        let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        let b32 = q
            .predict_batch(&MatrixF32::from_vec(8, 3, x32).unwrap())
            .unwrap();
        for (a, b) in b64.as_slice().iter().zip(b32.as_slice()) {
            assert!((a - f64::from(*b)).abs() < 1e-4);
        }
    }
}
