//! Gradient checkpointing (Chen et al. 2016), the paper's §4.2 first
//! customization: during autoencoder training on large (densified-on-GPU)
//! inputs, retaining every layer activation exhausts device memory. The
//! checkpointed backward keeps activations only at segment boundaries and
//! recomputes the interior ones on demand, trading recompute time for
//! memory — gradients are **bit-for-bit identical** to plain backprop,
//! which the property tests assert.

use hpcnet_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::layer::DenseGrads;
use crate::loss::Loss;
use crate::mlp::Mlp;
use crate::Result;

/// Memory accounting for one checkpointed pass, in retained `f64` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointStats {
    /// Activation elements a plain backprop pass would have retained.
    pub plain_elements: usize,
    /// Activation elements the checkpointed pass actually retained
    /// (boundary snapshots + one live segment).
    pub retained_elements: usize,
    /// Extra forward layer evaluations spent on recomputation.
    pub recomputed_layers: usize,
}

impl CheckpointStats {
    /// Memory saved relative to plain backprop, in `[0, 1)`.
    pub fn savings_ratio(&self) -> f64 {
        if self.plain_elements == 0 {
            return 0.0;
        }
        1.0 - self.retained_elements as f64 / self.plain_elements as f64
    }
}

/// Forward + backward with gradient checkpointing every `segment` layers.
///
/// Returns `(loss, per-layer grads, stats)`. `segment == usize::MAX`
/// degenerates to plain backprop (everything in one segment).
pub fn loss_and_grads_checkpointed(
    mlp: &Mlp,
    x: &Matrix,
    target: &Matrix,
    loss: Loss,
    segment: usize,
) -> Result<(f64, Vec<DenseGrads>, CheckpointStats)> {
    let segment = segment.max(1);
    let layers = mlp.layers();
    let depth = layers.len();

    // ---- forward: retain activations only at segment boundaries ----
    // boundaries[s] = activation entering segment s (boundary 0 is the input)
    let mut boundaries: Vec<Matrix> = Vec::with_capacity(depth / segment + 2);
    boundaries.push(x.clone());
    let mut a = x.clone();
    for (i, layer) in layers.iter().enumerate() {
        a = layer.forward(&a)?;
        let is_boundary = (i + 1) % segment == 0 && i + 1 < depth;
        if is_boundary {
            boundaries.push(a.clone());
        }
    }
    let output = a;
    let loss_value = loss.value(&output, target);

    // Peak memory accounting. Plain backprop retains input + every layer
    // activation. Checkpointed retains the boundary snapshots plus, during
    // the backward of one segment, that segment's recomputed interior.
    let act_elems = |m: &Matrix| m.rows() * m.cols();
    let plain_elements = act_elems(x) + {
        // Recompute widths without storing: input width known; walk.
        let mut total = 0usize;
        for l in layers {
            total += x.rows() * l.out_dim();
        }
        total
    };
    let boundary_elements: usize = boundaries.iter().map(act_elems).sum();
    let max_segment_elements: usize = {
        let mut best = 0usize;
        let mut idx = 0usize;
        while idx < depth {
            let end = (idx + segment).min(depth);
            let seg_elems: usize = layers[idx..end]
                .iter()
                .map(|l| x.rows() * l.out_dim())
                .sum();
            best = best.max(seg_elems);
            idx = end;
        }
        best
    };
    let retained_elements = boundary_elements + max_segment_elements;

    // ---- backward: walk segments in reverse, recomputing interiors ----
    let mut grads: Vec<Option<DenseGrads>> = (0..depth).map(|_| None).collect();
    let mut da: Option<Matrix> = None; // gradient wrt segment output
    let mut recomputed_layers = 0usize;

    let seg_count = boundaries.len();
    for s in (0..seg_count).rev() {
        let start = s * segment;
        let end = ((s + 1) * segment).min(depth);
        // Recompute the activations inside this segment from its boundary.
        let mut acts: Vec<Matrix> = Vec::with_capacity(end - start + 1);
        acts.push(boundaries[s].clone());
        for layer in &layers[start..end] {
            let next = layer.forward(acts.last().expect("non-empty"))?;
            acts.push(next);
        }
        // The final segment's tail was already computed in the forward pass;
        // every recomputed layer evaluation counts toward the time trade.
        recomputed_layers += end - start;

        // Seed the gradient at the segment output.
        let mut d = match da.take() {
            Some(d) => d,
            None => loss.gradient(acts.last().expect("non-empty"), target),
        };
        for (local, layer) in layers[start..end].iter().enumerate().rev() {
            let xin = &acts[local];
            let aout = &acts[local + 1];
            let global = start + local;
            if global == 0 {
                grads[0] = Some(layer.backward_params_only(xin, aout, &d)?);
            } else {
                let (dx, g) = layer.backward(xin, aout, &d)?;
                grads[global] = Some(g);
                d = dx;
            }
        }
        da = Some(d);
    }

    let grads: Vec<DenseGrads> = grads
        .into_iter()
        .map(|g| g.expect("all layers visited"))
        .collect();
    let stats = CheckpointStats {
        plain_elements,
        retained_elements,
        recomputed_layers,
    };
    Ok((loss_value, grads, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Topology;
    use hpcnet_tensor::rng::{seeded, uniform_vec};

    fn deep_mlp(seed: u64) -> (Mlp, Matrix, Matrix) {
        let mut rng = seeded(seed, "ckpt");
        let t = Topology::mlp(vec![6, 12, 12, 12, 12, 12, 3]);
        let mlp = Mlp::new(&t, &mut rng).unwrap();
        let x = Matrix::from_vec(4, 6, uniform_vec(&mut rng, 24, -1.0, 1.0)).unwrap();
        let y = Matrix::from_vec(4, 3, uniform_vec(&mut rng, 12, -1.0, 1.0)).unwrap();
        (mlp, x, y)
    }

    #[test]
    fn checkpointed_grads_equal_plain_grads() {
        let (mlp, x, y) = deep_mlp(11);
        let (plain_loss, plain_grads) = mlp.loss_and_grads(&x, &y, Loss::Mse).unwrap();
        for segment in [1, 2, 3, 4, 100] {
            let (l, grads, _) =
                loss_and_grads_checkpointed(&mlp, &x, &y, Loss::Mse, segment).unwrap();
            assert_eq!(l, plain_loss, "segment {segment}");
            assert_eq!(grads.len(), plain_grads.len());
            for (g, pg) in grads.iter().zip(&plain_grads) {
                assert_eq!(g.dw, pg.dw, "segment {segment}");
                assert_eq!(g.db, pg.db, "segment {segment}");
            }
        }
    }

    #[test]
    fn checkpointing_reduces_retained_memory() {
        let (mlp, x, y) = deep_mlp(13);
        let (_, _, stats2) = loss_and_grads_checkpointed(&mlp, &x, &y, Loss::Mse, 2).unwrap();
        let (_, _, stats_all) =
            loss_and_grads_checkpointed(&mlp, &x, &y, Loss::Mse, usize::MAX).unwrap();
        assert!(
            stats2.retained_elements < stats_all.retained_elements,
            "2-segment {} vs monolithic {}",
            stats2.retained_elements,
            stats_all.retained_elements
        );
        assert!(stats2.savings_ratio() > 0.0);
        // The memory trade costs recompute time: more layers re-evaluated.
        assert_eq!(stats_all.recomputed_layers, mlp.layers().len());
    }

    #[test]
    fn fine_tuned_net_survives_json_checkpoint_bit_identically() {
        // The online-retraining path persists swapped candidates the same
        // way registration does: through the JSON checkpoint. A reloaded
        // fine-tuned net must forward bit-for-bit like the original, or a
        // restart would silently serve a different model version.
        use crate::net::SurrogateNet;
        use crate::train::{Preprocessing, TrainConfig, Trainer};

        let mut rng = seeded(23, "ckpt-tune");
        let net: SurrogateNet = Mlp::new(&Topology::mlp(vec![3, 8, 2]), &mut rng)
            .unwrap()
            .into();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..48 {
            let a = (i as f64 * 0.19).sin();
            let b = (i as f64 * 0.47).cos();
            let c = (i as f64 * 0.05).tan().clamp(-1.0, 1.0);
            xs.push(vec![a, b, c]);
            ys.push(vec![a + b, b * c]);
        }
        let x = Matrix::from_rows(&xs).unwrap();
        let y_t = Matrix::from_rows(&ys).unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 40,
            lr: 5e-3,
            train_ratio: 1.0,
            preprocessing: Preprocessing::None,
            patience: 0,
            ..TrainConfig::default()
        });
        let (tuned, _) = net.fine_tuned(&trainer, &x, &y_t).unwrap();

        let reloaded = SurrogateNet::from_json(&tuned.to_json()).unwrap();
        // Bit-identical single-sample and batched forwards.
        for row in &xs {
            assert_eq!(tuned.predict(row).unwrap(), reloaded.predict(row).unwrap());
        }
        let a = tuned.predict_batch(&x).unwrap();
        let b = reloaded.predict_batch(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn sqrt_segment_beats_per_layer_checkpointing() {
        // segment = 1 snapshots every boundary (no savings at all); the
        // classic sqrt(L)-ish segment retains strictly less.
        let (mlp, x, y) = deep_mlp(17);
        let (_, _, s1) = loss_and_grads_checkpointed(&mlp, &x, &y, Loss::Mse, 1).unwrap();
        let (_, _, s3) = loss_and_grads_checkpointed(&mlp, &x, &y, Loss::Mse, 3).unwrap();
        assert!(s3.retained_elements < s1.retained_elements);
    }
}
