//! From-scratch neural-network substrate for Auto-HPCnet.
//!
//! The paper trains surrogates and autoencoders with TensorFlow/Keras; no
//! mature Rust equivalent exists (the calibration notes flag "immature DL
//! crates"), so this crate implements the needed subset from first
//! principles:
//!
//! * dense multi-layer perceptrons with manual backprop ([`mlp::Mlp`]),
//! * SGD/momentum and Adam optimizers ([`optimizer`]),
//! * a mini-batch trainer with train/validation split ([`train::Trainer`]),
//! * **gradient checkpointing** for memory-bounded training
//!   ([`checkpoint`], paper §4.2 first customization),
//! * a **sparse-input first layer** that consumes CSR matrices without
//!   densification ([`layer::SparseDense`], §4.2 second customization —
//!   the paper's "TensorFlow embedding API"),
//! * an hourglass autoencoder with the element-wise reconstruction-quality
//!   metric σ_y ([`autoencoder`], Eqn 1 — §4.2 third customization),
//! * an inference-only `f32` quantization of the MLP forward path for the
//!   orchestrator's opt-in reduced-precision serving ([`infer32`],
//!   DESIGN.md §14).
//!
//! Gradients are verified against finite differences in the test suite, and
//! checkpointed backprop is property-tested to equal plain backprop.

pub mod activation;
pub mod autoencoder;
pub mod checkpoint;
pub mod conv;
pub mod infer32;
pub mod layer;
pub mod loss;
pub mod mlp;
pub mod net;
pub mod optimizer;
pub mod train;

pub use activation::Activation;
pub use autoencoder::Autoencoder;
pub use conv::{Cnn, CnnTopology, Conv1d};
pub use infer32::{DenseF32, MlpF32, ScratchBuffersF32};
pub use layer::{Dense, SparseDense};
pub use loss::Loss;
pub use mlp::{Mlp, ScratchBuffers, Topology};
pub use net::SurrogateNet;
pub use optimizer::{Adam, Optimizer, Sgd};
pub use train::{TrainConfig, TrainReport, Trainer};

/// Errors from NN construction or training.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// Underlying tensor kernel failed (shape mismatch etc.).
    Tensor(hpcnet_tensor::TensorError),
    /// A topology was structurally invalid (e.g. zero-width layer).
    InvalidTopology(String),
    /// Training data was unusable (empty, ragged, NaN).
    BadData(String),
}

impl From<hpcnet_tensor::TensorError> for NnError {
    fn from(e: hpcnet_tensor::TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::InvalidTopology(m) => write!(f, "invalid topology: {m}"),
            NnError::BadData(m) => write!(f, "bad training data: {m}"),
        }
    }
}

impl std::error::Error for NnError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
