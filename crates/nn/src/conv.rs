//! 1-D convolutional surrogate networks.
//!
//! Paper §5.1's topology space θ includes "#kernel sizes, #channel,
//! #pooling size" and Table 1's `-initModel` lets the user search CNN
//! surrogates instead of MLPs — the natural choice for regions whose
//! inputs/outputs are fields on a grid (MG potentials, Laghos profiles,
//! x264 frames). This module supplies a from-scratch 1-D CNN: same-padded
//! stride-1 convolutions with channel stacks, average pooling, and a
//! dense head, with manual backprop verified against finite differences.

use hpcnet_tensor::Matrix;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::loss::Loss;
use crate::mlp::{Mlp, Topology};
use crate::{NnError, Result};

/// A same-padded, stride-1 1-D convolution layer with per-output-channel
/// bias and an element-wise activation.
///
/// Data layout: a sample is `channels * len` values, channel-major
/// (`[c0 t0, c0 t1, ..., c1 t0, ...]`); a batch is one sample per row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv1d {
    /// Kernel weights, `out_ch * in_ch * k`, out-channel-major.
    weights: Vec<f64>,
    bias: Vec<f64>,
    in_ch: usize,
    out_ch: usize,
    k: usize,
    act: Activation,
}

/// Gradients of one convolution layer.
#[derive(Debug, Clone)]
pub struct ConvGrads {
    /// Kernel-weight gradient, aligned with the layer's weights.
    pub dw: Vec<f64>,
    /// Bias gradient.
    pub db: Vec<f64>,
}

impl Conv1d {
    /// He-initialized convolution.
    pub fn new_random(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        act: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(k % 2 == 1, "same padding needs an odd kernel size");
        let std = (2.0 / (in_ch * k) as f64).sqrt();
        Conv1d {
            weights: hpcnet_tensor::rng::normal_vec(rng, out_ch * in_ch * k, 0.0, std),
            bias: vec![0.0; out_ch],
            in_ch,
            out_ch,
            k,
            act,
        }
    }

    /// Input channels.
    pub fn in_ch(&self) -> usize {
        self.in_ch
    }

    /// Output channels.
    pub fn out_ch(&self) -> usize {
        self.out_ch
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Multiply-add FLOPs for one sample of length `len`.
    pub fn flops(&self, len: usize) -> u64 {
        (2 * self.out_ch * self.in_ch * self.k * len) as u64
    }

    #[inline]
    fn w(&self, oc: usize, ic: usize, t: usize) -> f64 {
        self.weights[(oc * self.in_ch + ic) * self.k + t]
    }

    /// Forward pass: rows are samples of `in_ch * len`; output rows are
    /// `out_ch * len` (same padding).
    pub fn forward(&self, x: &Matrix, len: usize) -> Result<Matrix> {
        if x.cols() != self.in_ch * len {
            return Err(NnError::Tensor(hpcnet_tensor::TensorError::ShapeMismatch(
                self.in_ch * len,
                x.cols(),
                "Conv1d::forward",
            )));
        }
        let half = self.k / 2;
        let mut out = Matrix::zeros(x.rows(), self.out_ch * len);
        for r in 0..x.rows() {
            let row = x.row(r);
            let orow = out.row_mut(r);
            for oc in 0..self.out_ch {
                for p in 0..len {
                    let mut acc = self.bias[oc];
                    for ic in 0..self.in_ch {
                        let base = ic * len;
                        for t in 0..self.k {
                            let src = p as i64 + t as i64 - half as i64;
                            if src >= 0 && (src as usize) < len {
                                acc += self.w(oc, ic, t) * row[base + src as usize];
                            }
                        }
                    }
                    orow[oc * len + p] = acc;
                }
            }
            self.act.apply(orow);
        }
        Ok(out)
    }

    /// Backward pass: given input `x`, forward output `a`, and loss
    /// gradient `da`, returns `(dx, grads)`.
    pub fn backward(
        &self,
        x: &Matrix,
        a: &Matrix,
        da: &Matrix,
        len: usize,
    ) -> Result<(Matrix, ConvGrads)> {
        let half = self.k / 2;
        // Chain through the activation.
        let mut dz = da.clone();
        for (d, &av) in dz.as_mut_slice().iter_mut().zip(a.as_slice()) {
            *d *= self.act.derivative_from_output(av);
        }
        let mut dx = Matrix::zeros(x.rows(), self.in_ch * len);
        let mut dw = vec![0.0; self.weights.len()];
        let mut db = vec![0.0; self.out_ch];
        for r in 0..x.rows() {
            let row = x.row(r);
            let dzr = dz.row(r);
            let dxr = dx.row_mut(r);
            for oc in 0..self.out_ch {
                for p in 0..len {
                    let g = dzr[oc * len + p];
                    if g == 0.0 {
                        continue;
                    }
                    db[oc] += g;
                    for ic in 0..self.in_ch {
                        let base = ic * len;
                        for t in 0..self.k {
                            let src = p as i64 + t as i64 - half as i64;
                            if src >= 0 && (src as usize) < len {
                                let s = src as usize;
                                dw[(oc * self.in_ch + ic) * self.k + t] += g * row[base + s];
                                dxr[base + s] += g * self.w(oc, ic, t);
                            }
                        }
                    }
                }
            }
        }
        Ok((dx, ConvGrads { dw, db }))
    }

    fn apply_adam(
        &mut self,
        g: &ConvGrads,
        m: &mut ConvGrads,
        v: &mut ConvGrads,
        lr: f64,
        bc1: f64,
        bc2: f64,
    ) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        for i in 0..self.weights.len() {
            m.dw[i] = B1 * m.dw[i] + (1.0 - B1) * g.dw[i];
            v.dw[i] = B2 * v.dw[i] + (1.0 - B2) * g.dw[i] * g.dw[i];
            self.weights[i] -= lr * (m.dw[i] / bc1) / ((v.dw[i] / bc2).sqrt() + EPS);
        }
        for i in 0..self.bias.len() {
            m.db[i] = B1 * m.db[i] + (1.0 - B1) * g.db[i];
            v.db[i] = B2 * v.db[i] + (1.0 - B2) * g.db[i] * g.db[i];
            self.bias[i] -= lr * (m.db[i] / bc1) / ((v.db[i] / bc2).sqrt() + EPS);
        }
    }
}

/// Average pooling by an integer factor (with matching backward).
fn avg_pool(x: &Matrix, channels: usize, len: usize, factor: usize) -> Matrix {
    let out_len = len / factor;
    let mut out = Matrix::zeros(x.rows(), channels * out_len);
    for r in 0..x.rows() {
        let row = x.row(r);
        let orow = out.row_mut(r);
        for c in 0..channels {
            for p in 0..out_len {
                let mut acc = 0.0;
                for t in 0..factor {
                    acc += row[c * len + p * factor + t];
                }
                orow[c * out_len + p] = acc / factor as f64;
            }
        }
    }
    out
}

/// Backward of [`avg_pool`]: spread the gradient uniformly.
fn avg_pool_backward(d_out: &Matrix, channels: usize, len: usize, factor: usize) -> Matrix {
    let out_len = len / factor;
    let mut dx = Matrix::zeros(d_out.rows(), channels * len);
    for r in 0..d_out.rows() {
        let drow = d_out.row(r);
        let dxr = dx.row_mut(r);
        for c in 0..channels {
            for p in 0..out_len {
                let g = drow[c * out_len + p] / factor as f64;
                for t in 0..factor {
                    dxr[c * len + p * factor + t] += g;
                }
            }
        }
    }
    dx
}

/// Topology of a 1-D CNN surrogate (the CNN arm of the paper's θ).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CnnTopology {
    /// Input sequence length (the region input width).
    pub input_len: usize,
    /// Output width (the region output width).
    pub output_dim: usize,
    /// Channels of each convolution stage (input has 1 channel).
    pub channels: Vec<usize>,
    /// Shared odd kernel size.
    pub kernel: usize,
    /// Pooling factor applied after each conv stage (1 = none).
    pub pool: usize,
    /// Hidden width of the dense head.
    pub head_width: usize,
    /// Hidden activation.
    pub act: Activation,
}

impl CnnTopology {
    /// Validate structural sanity.
    pub fn validate(&self) -> Result<()> {
        if self.channels.is_empty() {
            return Err(NnError::InvalidTopology(
                "CNN needs at least one conv stage".into(),
            ));
        }
        if self.kernel.is_multiple_of(2) {
            return Err(NnError::InvalidTopology("kernel size must be odd".into()));
        }
        if self.pool == 0 {
            return Err(NnError::InvalidTopology("pool factor must be >= 1".into()));
        }
        let mut len = self.input_len;
        for _ in &self.channels {
            if len / self.pool == 0 {
                return Err(NnError::InvalidTopology(format!(
                    "pooling {}x collapses the sequence (input len {})",
                    self.pool, self.input_len
                )));
            }
            len /= self.pool;
        }
        Ok(())
    }
}

/// A 1-D CNN surrogate: conv stages (each followed by average pooling)
/// and a dense head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cnn {
    convs: Vec<Conv1d>,
    /// Sequence length entering each conv stage.
    stage_lens: Vec<usize>,
    pool: usize,
    head: Mlp,
    topology: CnnTopology,
}

impl Cnn {
    /// Build with random parameters.
    pub fn new(topology: &CnnTopology, rng: &mut StdRng) -> Result<Self> {
        topology.validate()?;
        let mut convs = Vec::with_capacity(topology.channels.len());
        let mut stage_lens = Vec::with_capacity(topology.channels.len());
        let mut in_ch = 1usize;
        let mut len = topology.input_len;
        for &out_ch in &topology.channels {
            convs.push(Conv1d::new_random(
                in_ch,
                out_ch,
                topology.kernel,
                topology.act,
                rng,
            ));
            stage_lens.push(len);
            len /= topology.pool;
            in_ch = out_ch;
        }
        let flat = in_ch * len;
        let head = Mlp::new(
            &Topology {
                widths: vec![flat, topology.head_width, topology.output_dim],
                hidden_act: topology.act,
                output_act: Activation::Identity,
            },
            rng,
        )?;
        Ok(Cnn {
            convs,
            stage_lens,
            pool: topology.pool,
            head,
            topology: topology.clone(),
        })
    }

    /// The constructing topology.
    pub fn topology(&self) -> &CnnTopology {
        &self.topology
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.convs.iter().map(Conv1d::param_count).sum::<usize>() + self.head.param_count()
    }

    /// Per-sample forward FLOPs.
    pub fn flops(&self) -> u64 {
        let conv: u64 = self
            .convs
            .iter()
            .zip(&self.stage_lens)
            .map(|(c, &len)| c.flops(len))
            .sum();
        conv + self.head.flops()
    }

    /// Forward pass on a batch (rows are samples of `input_len`).
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let mut a = x.clone();
        for (conv, &len) in self.convs.iter().zip(&self.stage_lens) {
            a = conv.forward(&a, len)?;
            if self.pool > 1 {
                a = avg_pool(&a, conv.out_ch(), len, self.pool);
            }
        }
        self.head.forward(&a)
    }

    /// Predict one sample.
    pub fn predict(&self, x: &[f64]) -> Result<Vec<f64>> {
        let xm = Matrix::from_vec(1, x.len(), x.to_vec())?;
        Ok(self.forward(&xm)?.into_vec())
    }

    /// Batched forward pass, one sample per row (alias of [`Self::forward`]
    /// matching the [`crate::SurrogateNet`] serving interface).
    pub fn predict_batch(&self, x: &Matrix) -> Result<Matrix> {
        self.forward(x)
    }

    /// Train with Adam on mini-batches; returns per-epoch losses.
    pub fn fit(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        epochs: usize,
        batch_size: usize,
        lr: f64,
        seed: u64,
    ) -> Result<Vec<f64>> {
        use rand::seq::SliceRandom;
        if x.rows() == 0 || x.rows() != y.rows() {
            return Err(NnError::BadData("bad CNN training data".into()));
        }
        let mut rng = hpcnet_tensor::rng::seeded(seed, "cnn-fit");
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut losses = Vec::with_capacity(epochs);

        // Adam state for conv stages and the dense head.
        let mut conv_m: Vec<ConvGrads> = self
            .convs
            .iter()
            .map(|c| ConvGrads {
                dw: vec![0.0; c.weights.len()],
                db: vec![0.0; c.bias.len()],
            })
            .collect();
        let mut conv_v = conv_m.clone();
        let mut head_opt = crate::optimizer::Adam::new(lr);
        let mut t = 0u64;

        for _ in 0..epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size.max(1)) {
                let mut xb = Matrix::zeros(chunk.len(), x.cols());
                let mut yb = Matrix::zeros(chunk.len(), y.cols());
                for (r, &i) in chunk.iter().enumerate() {
                    xb.row_mut(r).copy_from_slice(x.row(i));
                    yb.row_mut(r).copy_from_slice(y.row(i));
                }
                epoch_loss += self.batch_step(
                    &xb,
                    &yb,
                    &mut conv_m,
                    &mut conv_v,
                    &mut head_opt,
                    lr,
                    &mut t,
                )?;
                batches += 1;
            }
            losses.push(epoch_loss / batches.max(1) as f64);
        }
        Ok(losses)
    }

    #[allow(clippy::too_many_arguments)]
    fn batch_step(
        &mut self,
        xb: &Matrix,
        yb: &Matrix,
        conv_m: &mut [ConvGrads],
        conv_v: &mut [ConvGrads],
        head_opt: &mut crate::optimizer::Adam,
        lr: f64,
        t: &mut u64,
    ) -> Result<f64> {
        // Forward, retaining stage activations.
        let mut acts: Vec<Matrix> = vec![xb.clone()];
        let mut pooled: Vec<Matrix> = Vec::new();
        for (conv, &len) in self.convs.iter().zip(&self.stage_lens) {
            let a = conv.forward(acts.last().expect("non-empty"), len)?;
            let p = if self.pool > 1 {
                avg_pool(&a, conv.out_ch(), len, self.pool)
            } else {
                a.clone()
            };
            acts.push(a);
            pooled.push(p.clone());
            acts.push(p);
        }
        let head_in = acts.last().expect("non-empty").clone();
        let head_acts = self.head.forward_trace(&head_in)?;
        let out = head_acts.last().expect("non-empty");
        let loss = Loss::Mse.value(out, yb);

        // Backward through the head.
        let head_grads = self.head.backward_from_trace(&head_acts, Loss::Mse, yb)?;
        // dL/d(head input): recompute via the first head layer.
        let first = &self.head.layers()[0];
        let da0 = Loss::Mse.gradient(out, yb);
        let mut d = da0;
        for (i, layer) in self.head.layers().iter().enumerate().rev() {
            let (dx, _) = layer.backward(&head_acts[i], &head_acts[i + 1], &d)?;
            d = dx;
        }
        let _ = first;
        let mut d_stage = d; // gradient wrt the last pooled activation

        // Backward through conv stages in reverse.
        use crate::optimizer::Optimizer;
        *t += 1;
        let bc1 = 1.0 - 0.9f64.powf(*t as f64);
        let bc2 = 1.0 - 0.999f64.powf(*t as f64);
        for (si, conv) in self.convs.iter_mut().enumerate().rev() {
            let len = self.stage_lens[si];
            let d_conv_out = if self.pool > 1 {
                avg_pool_backward(&d_stage, conv.out_ch(), len, self.pool)
            } else {
                d_stage.clone()
            };
            // acts layout: [input, a1, p1, a2, p2, ...]
            let x_in = &acts[2 * si];
            let a = &acts[2 * si + 1];
            let (dx, grads) = conv.backward(x_in, a, &d_conv_out, len)?;
            conv.apply_adam(&grads, &mut conv_m[si], &mut conv_v[si], lr, bc1, bc2);
            d_stage = dx;
        }
        head_opt.step(&mut self.head, &head_grads);
        let _ = pooled;
        Ok(loss)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("Cnn serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self> {
        serde_json::from_str(s).map_err(|e| NnError::BadData(format!("bad CNN JSON: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_tensor::rng::{seeded, uniform_vec};

    #[test]
    fn conv_identity_kernel_passes_signal_through() {
        // A 1-channel conv with kernel [0, 1, 0] and identity activation
        // is the identity map.
        let mut c = Conv1d::new_random(1, 1, 3, Activation::Identity, &mut seeded(1, "cv"));
        c.weights = vec![0.0, 1.0, 0.0];
        c.bias = vec![0.0];
        let x = Matrix::from_vec(1, 6, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = c.forward(&x, 6).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv_shift_kernel_shifts_with_zero_padding() {
        let mut c = Conv1d::new_random(1, 1, 3, Activation::Identity, &mut seeded(1, "cv"));
        c.weights = vec![1.0, 0.0, 0.0]; // taps position p-1
        c.bias = vec![0.0];
        let x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = c.forward(&x, 4).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = seeded(2, "cv-fd");
        let mut c = Conv1d::new_random(2, 3, 3, Activation::Tanh, &mut rng);
        let len = 5;
        let x =
            Matrix::from_vec(2, 2 * len, uniform_vec(&mut rng, 2 * 2 * len, -1.0, 1.0)).unwrap();
        let a = c.forward(&x, len).unwrap();
        let da = Matrix::from_vec(2, 3 * len, vec![1.0; 2 * 3 * len]).unwrap();
        let (dx, grads) = c.backward(&x, &a, &da, len).unwrap();

        let sum_out = |c: &Conv1d, xx: &Matrix| -> f64 {
            c.forward(xx, len).unwrap().as_slice().iter().sum()
        };
        let eps = 1e-6;
        // weight gradients
        for i in 0..c.weights.len() {
            let orig = c.weights[i];
            c.weights[i] = orig + eps;
            let up = sum_out(&c, &x);
            c.weights[i] = orig - eps;
            let down = sum_out(&c, &x);
            c.weights[i] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads.dw[i]).abs() < 1e-4,
                "dw[{i}]: fd={fd} an={}",
                grads.dw[i]
            );
        }
        // bias gradients
        for i in 0..c.bias.len() {
            let orig = c.bias[i];
            c.bias[i] = orig + eps;
            let up = sum_out(&c, &x);
            c.bias[i] = orig - eps;
            let down = sum_out(&c, &x);
            c.bias[i] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!((fd - grads.db[i]).abs() < 1e-4, "db[{i}]");
        }
        // input gradients (spot check)
        let mut xx = x.clone();
        for &(r, j) in &[(0usize, 0usize), (1, 7), (0, 2 * len - 1)] {
            let orig = xx.at(r, j);
            *xx.at_mut(r, j) = orig + eps;
            let up = sum_out(&c, &xx);
            *xx.at_mut(r, j) = orig - eps;
            let down = sum_out(&c, &xx);
            *xx.at_mut(r, j) = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!((fd - dx.at(r, j)).abs() < 1e-4, "dx({r},{j})");
        }
    }

    #[test]
    fn avg_pool_roundtrip_conserves_gradient_mass() {
        let x = Matrix::from_vec(1, 8, (0..8).map(|i| i as f64).collect()).unwrap();
        let p = avg_pool(&x, 2, 4, 2); // 2 channels, len 4, factor 2
        assert_eq!(p.cols(), 4);
        assert_eq!(p.as_slice(), &[0.5, 2.5, 4.5, 6.5]);
        let d = Matrix::from_vec(1, 4, vec![1.0; 4]).unwrap();
        let dx = avg_pool_backward(&d, 2, 4, 2);
        let total: f64 = dx.as_slice().iter().sum();
        assert!((total - 4.0).abs() < 1e-12, "gradient mass conserved");
    }

    #[test]
    fn cnn_topology_validation() {
        let mut t = CnnTopology {
            input_len: 16,
            output_dim: 4,
            channels: vec![4, 8],
            kernel: 3,
            pool: 2,
            head_width: 16,
            act: Activation::Tanh,
        };
        assert!(t.validate().is_ok());
        t.kernel = 4;
        assert!(t.validate().is_err());
        t.kernel = 3;
        t.pool = 32;
        assert!(t.validate().is_err());
    }

    #[test]
    fn cnn_learns_a_smoothing_filter() {
        // Target: 3-point moving average of the input — exactly a conv
        // kernel, so the CNN should crush it.
        let mut rng = seeded(4, "cnn-train");
        let len = 16;
        let n = 96;
        let mut xs = Vec::with_capacity(n * len);
        let mut ys = Vec::with_capacity(n * len);
        for _ in 0..n {
            let row = uniform_vec(&mut rng, len, -1.0, 1.0);
            for p in 0..len {
                let l = if p > 0 { row[p - 1] } else { 0.0 };
                let r = if p + 1 < len { row[p + 1] } else { 0.0 };
                ys.push((l + row[p] + r) / 3.0);
            }
            xs.extend(row);
        }
        let x = Matrix::from_vec(n, len, xs).unwrap();
        let y = Matrix::from_vec(n, len, ys).unwrap();
        let topo = CnnTopology {
            input_len: len,
            output_dim: len,
            channels: vec![4],
            kernel: 3,
            pool: 1,
            head_width: 32,
            act: Activation::Identity,
        };
        let mut cnn = Cnn::new(&topo, &mut seeded(5, "cnn")).unwrap();
        let losses = cnn.fit(&x, &y, 150, 16, 3e-3, 6).unwrap();
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(last < first / 20.0, "loss {first} -> {last}");
    }

    #[test]
    fn cnn_counts_params_and_flops() {
        let topo = CnnTopology {
            input_len: 8,
            output_dim: 2,
            channels: vec![3],
            kernel: 3,
            pool: 2,
            head_width: 4,
            act: Activation::Tanh,
        };
        let cnn = Cnn::new(&topo, &mut seeded(7, "cnn")).unwrap();
        // conv: 3 kernels of 1x3 + 3 bias = 12; head: 12->4->2.
        assert_eq!(cnn.param_count(), 12 + (12 * 4 + 4) + (4 * 2 + 2));
        assert!(cnn.flops() > 0);
        assert_eq!(cnn.predict(&vec![0.0; 8]).unwrap().len(), 2);
    }

    #[test]
    fn cnn_json_roundtrip() {
        let topo = CnnTopology {
            input_len: 8,
            output_dim: 2,
            channels: vec![2],
            kernel: 3,
            pool: 1,
            head_width: 4,
            act: Activation::Tanh,
        };
        let cnn = Cnn::new(&topo, &mut seeded(8, "cnn")).unwrap();
        let restored = Cnn::from_json(&cnn.to_json()).unwrap();
        let x: Vec<f64> = (0..8).map(|i| i as f64 * 0.1).collect();
        assert_eq!(cnn.predict(&x).unwrap(), restored.predict(&x).unwrap());
    }
}
