//! [`SurrogateNet`]: the deployable network — an MLP or a 1-D CNN — behind
//! one interface, so the runtime, pipeline, and NAS don't care which
//! model family the search selected (Table 1 `-initModel`).

use hpcnet_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::conv::Cnn;
use crate::infer32::MlpF32;
use crate::mlp::{Mlp, ScratchBuffers};
use crate::train::{TrainReport, Trainer};
use crate::{NnError, Result};

/// A trained surrogate network of either family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SurrogateNet {
    /// Multi-layer perceptron (the paper's default).
    Mlp(Mlp),
    /// 1-D convolutional network (for grid/field regions).
    Cnn(Cnn),
}

impl SurrogateNet {
    /// Predict one sample.
    pub fn predict(&self, x: &[f64]) -> Result<Vec<f64>> {
        match self {
            SurrogateNet::Mlp(m) => m.predict(x),
            SurrogateNet::Cnn(c) => c.predict(x),
        }
    }

    /// Batched forward pass, one sample per row. Row `i` of the output is
    /// bit-identical to `predict` of row `i` — the batched kernels treat
    /// rows independently in the same accumulation order.
    pub fn predict_batch(&self, x: &Matrix) -> Result<Matrix> {
        match self {
            SurrogateNet::Mlp(m) => m.predict_batch(x),
            SurrogateNet::Cnn(c) => c.predict_batch(x),
        }
    }

    /// Predict one sample through caller-owned scratch buffers. For MLPs
    /// this is the zero-allocation hot path; CNNs fall back to `predict`
    /// and park the result in the scratch space.
    pub fn predict_with<'s>(
        &self,
        x: &[f64],
        scratch: &'s mut ScratchBuffers,
    ) -> Result<&'s [f64]> {
        match self {
            SurrogateNet::Mlp(m) => m.predict_with(x, scratch),
            SurrogateNet::Cnn(c) => {
                let y = c.predict(x)?;
                Ok(scratch.store_owned(y))
            }
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        match self {
            SurrogateNet::Mlp(m) => m.param_count(),
            SurrogateNet::Cnn(c) => c.param_count(),
        }
    }

    /// Per-sample forward FLOPs.
    pub fn flops(&self) -> u64 {
        match self {
            SurrogateNet::Mlp(m) => m.flops(),
            SurrogateNet::Cnn(c) => c.flops(),
        }
    }

    /// Short family label for reports.
    pub fn family(&self) -> &'static str {
        match self {
            SurrogateNet::Mlp(_) => "mlp",
            SurrogateNet::Cnn(_) => "cnn",
        }
    }

    /// Borrow the MLP, if this is one.
    pub fn as_mlp(&self) -> Option<&Mlp> {
        match self {
            SurrogateNet::Mlp(m) => Some(m),
            SurrogateNet::Cnn(_) => None,
        }
    }

    /// Quantize to the `f32` serving net, if this family supports it
    /// (MLPs only today; CNNs return `None` and keep serving in `f64`).
    /// The orchestrator calls this at registration under `serve_f32(true)`;
    /// see DESIGN.md §14 for the fallback semantics.
    pub fn to_f32(&self) -> Option<MlpF32> {
        match self {
            SurrogateNet::Mlp(m) => Some(MlpF32::from_mlp(m)),
            SurrogateNet::Cnn(_) => None,
        }
    }

    /// Continue training from this net's weights on new `(x, y)` rows,
    /// returning the fine-tuned copy and its training report. `self` is
    /// never mutated — the online-retraining path keeps serving the
    /// current weights while a candidate trains in the background, and
    /// only swaps the returned net in after validation. MLPs only; the
    /// CNN family has no fine-tune path today.
    pub fn fine_tuned(
        &self,
        trainer: &Trainer,
        x: &Matrix,
        y: &Matrix,
    ) -> Result<(SurrogateNet, TrainReport)> {
        match self {
            SurrogateNet::Mlp(m) => {
                let mut tuned = m.clone();
                let report = trainer.fit(&mut tuned, x, y)?;
                Ok((SurrogateNet::Mlp(tuned), report))
            }
            SurrogateNet::Cnn(_) => Err(NnError::BadData(
                "online fine-tuning supports the MLP family only".into(),
            )),
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("SurrogateNet serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self> {
        serde_json::from_str(s).map_err(|e| NnError::BadData(format!("bad net JSON: {e}")))
    }
}

impl From<Mlp> for SurrogateNet {
    fn from(m: Mlp) -> Self {
        SurrogateNet::Mlp(m)
    }
}

impl From<Cnn> for SurrogateNet {
    fn from(c: Cnn) -> Self {
        SurrogateNet::Cnn(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::CnnTopology;
    use crate::{Activation, Topology};
    use hpcnet_tensor::rng::seeded;

    #[test]
    fn both_families_share_the_interface() {
        let mut rng = seeded(1, "net");
        let mlp: SurrogateNet = Mlp::new(&Topology::mlp(vec![8, 4, 2]), &mut rng)
            .unwrap()
            .into();
        let cnn: SurrogateNet = Cnn::new(
            &CnnTopology {
                input_len: 8,
                output_dim: 2,
                channels: vec![2],
                kernel: 3,
                pool: 1,
                head_width: 4,
                act: Activation::Tanh,
            },
            &mut rng,
        )
        .unwrap()
        .into();
        for net in [&mlp, &cnn] {
            assert_eq!(net.predict(&vec![0.1; 8]).unwrap().len(), 2);
            assert!(net.param_count() > 0);
            assert!(net.flops() > 0);
        }
        assert_eq!(mlp.family(), "mlp");
        assert_eq!(cnn.family(), "cnn");
        assert!(mlp.as_mlp().is_some());
        assert!(cnn.as_mlp().is_none());
    }

    #[test]
    fn fine_tuned_returns_a_new_net_and_leaves_self_untouched() {
        use crate::train::{Preprocessing, TrainConfig};
        let mut rng = seeded(5, "net-tune");
        let net: SurrogateNet = Mlp::new(&Topology::mlp(vec![2, 6, 1]), &mut rng)
            .unwrap()
            .into();
        // y = x0 - x1 on a small grid.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let a = (i as f64 * 0.23).sin();
            let b = (i as f64 * 0.61).cos();
            xs.push(vec![a, b]);
            ys.push(vec![a - b]);
        }
        let x = Matrix::from_rows(&xs).unwrap();
        let y = Matrix::from_rows(&ys).unwrap();
        let before = net.predict(&[0.3, -0.4]).unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 60,
            lr: 5e-3,
            train_ratio: 1.0,
            preprocessing: Preprocessing::None,
            patience: 0,
            ..TrainConfig::default()
        });
        let (tuned, report) = net.fine_tuned(&trainer, &x, &y).unwrap();
        // The source net still predicts exactly what it did before.
        assert_eq!(net.predict(&[0.3, -0.4]).unwrap(), before);
        assert_ne!(tuned.predict(&[0.3, -0.4]).unwrap(), before);
        assert!(report.best_loss.is_finite());
        assert!(report.epochs_run > 0);

        let cnn: SurrogateNet = Cnn::new(
            &CnnTopology {
                input_len: 8,
                output_dim: 2,
                channels: vec![2],
                kernel: 3,
                pool: 1,
                head_width: 4,
                act: Activation::Tanh,
            },
            &mut rng,
        )
        .unwrap()
        .into();
        assert!(cnn.fine_tuned(&trainer, &x, &y).is_err());
    }

    #[test]
    fn json_roundtrip_preserves_family_and_output() {
        let mut rng = seeded(2, "net-json");
        let net: SurrogateNet = Mlp::new(&Topology::mlp(vec![3, 4, 1]), &mut rng)
            .unwrap()
            .into();
        let restored = SurrogateNet::from_json(&net.to_json()).unwrap();
        assert_eq!(restored.family(), "mlp");
        assert_eq!(
            net.predict(&[0.1, 0.2, 0.3]).unwrap(),
            restored.predict(&[0.1, 0.2, 0.3]).unwrap()
        );
    }
}
