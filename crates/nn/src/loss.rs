//! Regression losses (value + gradient) for surrogate training.

use hpcnet_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Supported training losses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error, averaged over every element of the batch.
    Mse,
    /// Mean absolute error.
    Mae,
    /// Huber loss with delta = 1 (quadratic near zero, linear in the tails);
    /// useful for QoIs with occasional outliers.
    Huber,
}

impl Loss {
    /// Loss value for a prediction batch against targets.
    pub fn value(&self, pred: &Matrix, target: &Matrix) -> f64 {
        assert_eq!(pred.rows(), target.rows());
        assert_eq!(pred.cols(), target.cols());
        let n = (pred.rows() * pred.cols()).max(1) as f64;
        let sum: f64 = pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&p, &t)| {
                let d = p - t;
                match self {
                    Loss::Mse => d * d,
                    Loss::Mae => d.abs(),
                    Loss::Huber => {
                        if d.abs() <= 1.0 {
                            0.5 * d * d
                        } else {
                            d.abs() - 0.5
                        }
                    }
                }
            })
            .sum();
        sum / n
    }

    /// Gradient of the loss with respect to the prediction.
    pub fn gradient(&self, pred: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(pred.rows(), target.rows());
        assert_eq!(pred.cols(), target.cols());
        let n = (pred.rows() * pred.cols()).max(1) as f64;
        let data: Vec<f64> = pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&p, &t)| {
                let d = p - t;
                let g = match self {
                    Loss::Mse => 2.0 * d,
                    Loss::Mae => {
                        if d > 0.0 {
                            1.0
                        } else if d < 0.0 {
                            -1.0
                        } else {
                            0.0
                        }
                    }
                    Loss::Huber => d.clamp(-1.0, 1.0),
                };
                g / n
            })
            .collect();
        Matrix::from_vec(pred.rows(), pred.cols(), data).expect("sized")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: Vec<f64>) -> Matrix {
        let n = v.len();
        Matrix::from_vec(1, n, v).unwrap()
    }

    #[test]
    fn mse_known_value() {
        let p = m(vec![1.0, 2.0]);
        let t = m(vec![0.0, 4.0]);
        assert!((Loss::Mse.value(&p, &t) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mae_known_value() {
        let p = m(vec![1.0, 2.0]);
        let t = m(vec![0.0, 4.0]);
        assert!((Loss::Mae.value(&p, &t) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn huber_blends_quadratic_and_linear() {
        let p = m(vec![0.5, 3.0]);
        let t = m(vec![0.0, 0.0]);
        // 0.5·0.25 = 0.125 (quadratic), 3 - 0.5 = 2.5 (linear); mean = 1.3125
        assert!((Loss::Huber.value(&p, &t) - 1.3125).abs() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let eps = 1e-6;
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber] {
            let p = m(vec![0.7, -1.3, 2.1]);
            let t = m(vec![0.5, 0.5, 0.5]);
            let g = loss.gradient(&p, &t);
            for j in 0..3 {
                let mut up = p.clone();
                *up.at_mut(0, j) += eps;
                let mut down = p.clone();
                *down.at_mut(0, j) -= eps;
                let fd = (loss.value(&up, &t) - loss.value(&down, &t)) / (2.0 * eps);
                assert!((fd - g.at(0, j)).abs() < 1e-5, "{loss:?} at {j}");
            }
        }
    }

    #[test]
    fn zero_loss_at_exact_prediction() {
        let p = m(vec![1.0, -2.0]);
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber] {
            assert_eq!(loss.value(&p, &p), 0.0);
            assert!(loss.gradient(&p, &p).as_slice().iter().all(|&g| g == 0.0));
        }
    }
}
