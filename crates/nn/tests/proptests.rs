//! Property-based tests for the NN substrate: gradient correctness,
//! checkpointing equivalence, and sparse/dense layer agreement.

use hpcnet_nn::checkpoint::loss_and_grads_checkpointed;
use hpcnet_nn::layer::SparseDense;
use hpcnet_nn::{Activation, Loss, Mlp, Topology};
use hpcnet_tensor::rng::{seeded, uniform_vec};
use hpcnet_tensor::{Coo, Matrix};
use proptest::prelude::*;

/// Strategy: a random small topology (2-4 weight layers, widths 1-8).
fn topology_strategy() -> impl Strategy<Value = Topology> {
    (
        prop::collection::vec(1usize..=8, 3..=5),
        prop::sample::select(vec![
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::LeakyRelu,
        ]),
    )
        .prop_map(|(widths, act)| Topology {
            widths,
            hidden_act: act,
            output_act: Activation::Identity,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Checkpointed backprop equals plain backprop for any topology,
    /// any segment length, any loss.
    #[test]
    fn checkpointing_is_exact(
        topo in topology_strategy(),
        seed in 0u64..10_000,
        segment in 1usize..6,
        loss in prop::sample::select(vec![Loss::Mse, Loss::Huber]),
    ) {
        let mut rng = seeded(seed, "ckpt-prop");
        let mlp = Mlp::new(&topo, &mut rng).unwrap();
        let batch = 3;
        let x = Matrix::from_vec(batch, topo.input_dim(),
            uniform_vec(&mut rng, batch * topo.input_dim(), -1.0, 1.0)).unwrap();
        let y = Matrix::from_vec(batch, topo.output_dim(),
            uniform_vec(&mut rng, batch * topo.output_dim(), -1.0, 1.0)).unwrap();

        let (pl, pg) = mlp.loss_and_grads(&x, &y, loss).unwrap();
        let (cl, cg, stats) = loss_and_grads_checkpointed(&mlp, &x, &y, loss, segment).unwrap();
        prop_assert_eq!(pl, cl);
        for (a, b) in pg.iter().zip(&cg) {
            prop_assert_eq!(&a.dw, &b.dw);
            prop_assert_eq!(&a.db, &b.db);
        }
        prop_assert!(stats.retained_elements > 0);
    }

    /// Weight gradients match central finite differences on random nets.
    #[test]
    fn gradients_match_finite_differences(topo in topology_strategy(), seed in 0u64..10_000) {
        let mut rng = seeded(seed, "fd-prop");
        let mut mlp = Mlp::new(&topo, &mut rng).unwrap();
        let x = Matrix::from_vec(2, topo.input_dim(),
            uniform_vec(&mut rng, 2 * topo.input_dim(), -1.0, 1.0)).unwrap();
        let y = Matrix::from_vec(2, topo.output_dim(),
            uniform_vec(&mut rng, 2 * topo.output_dim(), -1.0, 1.0)).unwrap();
        let (_, grads) = mlp.loss_and_grads(&x, &y, Loss::Mse).unwrap();

        // Spot-check a handful of weights in the first and last layer.
        let eps = 1e-6;
        for li in [0, mlp.layers().len() - 1] {
            let (rows, cols) = {
                let w = mlp.layers()[li].weights();
                (w.rows(), w.cols())
            };
            let checks = [(0, 0), (rows - 1, cols - 1)];
            for (i, j) in checks {
                let orig = mlp.layers()[li].weights().at(i, j);
                *mlp.layers_mut()[li].weights_mut().at_mut(i, j) = orig + eps;
                let up = Loss::Mse.value(&mlp.forward(&x).unwrap(), &y);
                *mlp.layers_mut()[li].weights_mut().at_mut(i, j) = orig - eps;
                let down = Loss::Mse.value(&mlp.forward(&x).unwrap(), &y);
                *mlp.layers_mut()[li].weights_mut().at_mut(i, j) = orig;
                let fd = (up - down) / (2.0 * eps);
                prop_assert!((fd - grads[li].dw.at(i, j)).abs() < 1e-4,
                    "layer {} w({},{}): fd={} an={}", li, i, j, fd, grads[li].dw.at(i, j));
            }
        }
    }

    /// The sparse first layer agrees with its dense twin on any sparse batch.
    #[test]
    fn sparse_layer_agrees_with_dense(
        seed in 0u64..10_000,
        entries in prop::collection::vec((0usize..4, 0usize..12, -2.0f64..2.0), 0..20),
    ) {
        let mut rng = seeded(seed, "sp-prop");
        let dense = hpcnet_nn::Dense::new_random(12, 5, Activation::Tanh, &mut rng);
        let sparse = SparseDense::from_dense(dense.clone());
        let coo = Coo::from_entries(4, 12, entries).unwrap();
        let xs = coo.to_csr();
        let xd = xs.to_dense();
        let a_s = sparse.forward_sparse(&xs).unwrap();
        let a_d = dense.forward(&xd).unwrap();
        for (u, v) in a_s.as_slice().iter().zip(a_d.as_slice()) {
            prop_assert!((u - v).abs() < 1e-10);
        }
        let da = Matrix::from_vec(4, 5, uniform_vec(&mut rng, 20, -1.0, 1.0)).unwrap();
        let g_s = sparse.backward_sparse(&xs, &a_s, &da).unwrap();
        let (_, g_d) = dense.backward(&xd, &a_d, &da).unwrap();
        for (u, v) in g_s.dw.as_slice().iter().zip(g_d.dw.as_slice()) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    /// `predict_batch` row `i` is bit-identical to `predict` of row `i`
    /// for any topology and any batch size, including sizes that cross
    /// the kernels' parallelism threshold.
    #[test]
    fn predict_batch_matches_predict_rowwise(
        topo in topology_strategy(),
        seed in 0u64..10_000,
        rows in prop::sample::select(vec![1usize, 2, 7, 65]),
    ) {
        let mut rng = seeded(seed, "batch-prop");
        let mlp = Mlp::new(&topo, &mut rng).unwrap();
        let x = Matrix::from_vec(rows, topo.input_dim(),
            uniform_vec(&mut rng, rows * topo.input_dim(), -1.0, 1.0)).unwrap();
        let batched = mlp.predict_batch(&x).unwrap();
        let mut scratch = hpcnet_nn::ScratchBuffers::new();
        for i in 0..rows {
            let single = mlp.predict(x.row(i)).unwrap();
            prop_assert_eq!(batched.row(i), single.as_slice(), "row {} diverged", i);
            let scratched = mlp.predict_with(x.row(i), &mut scratch).unwrap();
            prop_assert_eq!(scratched, single.as_slice(), "scratch row {} diverged", i);
        }
    }

    /// sigma_y is within [0,1], zero on identical inputs, monotone in mu.
    #[test]
    fn sigma_y_bounds_and_monotonicity(
        x in prop::collection::vec(-5.0f64..5.0, 1..50),
        seed in 0u64..10_000,
    ) {
        let mut rng = seeded(seed, "sigma");
        let noise = uniform_vec(&mut rng, x.len(), -0.5, 0.5);
        let y: Vec<f64> = x.iter().zip(&noise).map(|(a, n)| a + n).collect();
        let s_tight = hpcnet_nn::autoencoder::sigma_y(&x, &y, 0.05, 0.0);
        let s_loose = hpcnet_nn::autoencoder::sigma_y(&x, &y, 0.5, 0.0);
        prop_assert!((0.0..=1.0).contains(&s_tight));
        prop_assert!(s_loose <= s_tight);
        prop_assert_eq!(hpcnet_nn::autoencoder::sigma_y(&x, &x, 0.0, 0.0), 0.0);
    }

    /// The quantized f32 serving path stays inside its stated error
    /// envelope of the f64 path on random MLPs: per element,
    /// |y32 − y64| ≤ 1e-3 · (1 + |y64|) (DESIGN.md §14). The envelope is
    /// deliberately loose — at these widths/depths observed error is
    /// ~1e-6 — because the serving-time accuracy contract is enforced by
    /// the QualityGuard, not by this bound.
    #[test]
    fn f32_path_within_error_envelope_of_f64(
        topo in topology_strategy(),
        seed in 0u64..10_000,
        rows in 1usize..12,
    ) {
        let mut rng = seeded(seed, "f32-prop");
        let mlp = Mlp::new(&topo, &mut rng).unwrap();
        let q = hpcnet_nn::MlpF32::from_mlp(&mlp);
        let x = uniform_vec(&mut rng, rows * topo.input_dim(), -1.0, 1.0);
        let y64 = mlp
            .predict_batch(&Matrix::from_vec(rows, topo.input_dim(), x.clone()).unwrap())
            .unwrap();
        let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        let y32 = q
            .predict_batch(
                &hpcnet_tensor::MatrixF32::from_vec(rows, topo.input_dim(), x32).unwrap(),
            )
            .unwrap();
        prop_assert_eq!(y32.rows(), rows);
        prop_assert_eq!(y32.cols(), topo.output_dim());
        for (a, b) in y64.as_slice().iter().zip(y32.as_slice()) {
            let err = (a - f64::from(*b)).abs();
            prop_assert!(err <= 1e-3 * (1.0 + a.abs()), "f64={} f32={} err={}", a, b, err);
        }
    }
}
