//! Feature acquisition from an annotated mini-IR program — the paper's
//! §3 workflow run end to end: trace → DDDG → identify I/O → generate
//! samples.

use std::collections::HashMap;
use std::time::Instant;

use hpcnet_trace::{
    generate_samples, identify, Dddg, Interpreter, PerturbSpec, Program, RegionSignature, SampleSet,
};

use crate::Result;

/// Everything the acquisition stage produces.
pub struct AcquiredData {
    /// Identified region signature (inputs/outputs, arrays grouped).
    pub signature: RegionSignature,
    /// The DDDG built over the region trace (for inspection/validation).
    pub dddg: Dddg,
    /// Collected training samples.
    pub samples: SampleSet,
    /// Seconds spent on trace generation + identification.
    pub trace_seconds: f64,
    /// Seconds spent generating samples.
    pub sample_seconds: f64,
}

/// Run the acquisition workflow on an annotated program.
///
/// `setup` initializes the canonical input environment (the application's
/// normal inputs); `n_samples` region executions are collected with the
/// identified inputs perturbed per `perturb`, leaving `frozen` variables
/// (sizes, loop bounds) untouched.
pub fn acquire<F>(
    program: &Program,
    setup: F,
    n_samples: usize,
    perturb: PerturbSpec,
    frozen: &[&str],
    seed: u64,
) -> Result<AcquiredData>
where
    F: Fn(&mut Interpreter),
{
    // --- trace generation with loop compression (paper §3.1 step 1) ---
    let t0 = Instant::now();
    let mut interp = Interpreter::new();
    interp.compress_loops = true;
    setup(&mut interp);
    let trace = interp.run(program)?;

    // Array sizes for grouped features come from the post-run environment.
    let mut sizes: HashMap<String, usize> = HashMap::new();
    for rec in &trace.records {
        for loc in rec.reads.iter().chain(rec.write.iter()) {
            if let hpcnet_trace::Location::Elem(name, _) = loc {
                if !sizes.contains_key(name) {
                    if let Some(arr) = interp.array(name) {
                        sizes.insert(name.clone(), arr.len());
                    }
                }
            }
        }
    }

    // --- identification (step 2): DDDG + liveness/use-def ---
    let region_records: Vec<_> = trace.phase(hpcnet_trace::Phase::Region).cloned().collect();
    let dddg = Dddg::build(&region_records);
    let signature = identify(&trace, &program.live_out, &sizes);
    let trace_seconds = t0.elapsed().as_secs_f64();

    // --- sample generation (step 3) ---
    let t1 = Instant::now();
    let samples = generate_samples(program, &signature, n_samples, perturb, frozen, seed, setup)?;
    let sample_seconds = t1.elapsed().as_secs_f64();

    Ok(AcquiredData {
        signature,
        dddg,
        samples,
        trace_seconds,
        sample_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_trace::kernels;

    #[test]
    fn acquires_pcg_kernel_end_to_end() {
        let k = kernels::pcg_iteration(4);
        let data = acquire(
            &k.program,
            k.setup,
            40,
            PerturbSpec {
                mean: 0.0,
                std: 0.05,
            },
            &[],
            7,
        )
        .unwrap();
        // Inputs: A (16), p, r, x (4 each) = 28 wide.
        assert_eq!(data.signature.input_width(), 28);
        assert_eq!(data.samples.len(), 40);
        assert_eq!(data.samples.inputs[0].len(), 28);
        // Outputs include the updated solution.
        assert!(data.signature.outputs.iter().any(|f| f.name == "x"));
        assert!(data.trace_seconds >= 0.0);
        assert!(!data.dddg.edges.is_empty());
    }

    #[test]
    fn frozen_loop_bound_stays_integral() {
        let k = kernels::saxpy(8);
        let data = acquire(
            &k.program,
            k.setup,
            10,
            PerturbSpec {
                mean: 0.0,
                std: 0.5,
            },
            &["n"],
            11,
        )
        .unwrap();
        // "n" is the first feature alphabetically? inputs sorted:
        // alpha, n, x, y -> n is index 1.
        for s in &data.samples.inputs {
            assert_eq!(s[1], 8.0, "loop bound must stay frozen");
        }
    }
}
