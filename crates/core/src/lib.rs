//! Auto-HPCnet: an automatic framework to build neural-network surrogates
//! for HPC applications (HPDC '23 reproduction).
//!
//! The end-to-end workflow (paper Fig. 1):
//!
//! 1. **Data acquisition** ([`acquisition`]) — trace the annotated region,
//!    build the DDDG, identify inputs/outputs, and generate training
//!    samples by Gaussian perturbation (for mini-IR programs), or build
//!    the dataset from a native application's problem generator
//!    ([`dataset`]).
//! 2. **Input analysis + 2D NAS** — the customized autoencoder and the
//!    hierarchical Bayesian optimization (crates `hpcnet-nn`,
//!    `hpcnet-nas`), driven by [`pipeline::AutoHpcnet`].
//! 3. **Deployment** — the surrogate bundle is registered with the
//!    orchestrator (crate `hpcnet-runtime`) and invoked through the
//!    client API.
//! 4. **Evaluation** ([`evaluate`]) — Eqn 2 speedup and Eqn 3 HitRate
//!    over fresh input problems, with restart-on-quality-miss semantics.
//!
//! ```no_run
//! use auto_hpcnet::pipeline::AutoHpcnet;
//! use auto_hpcnet::config::PipelineConfig;
//! use hpcnet_apps::CgApp;
//!
//! let app = CgApp::default();
//! let framework = AutoHpcnet::new(PipelineConfig::quick());
//! let surrogate = framework.build_surrogate(&app).unwrap();
//! let eval = auto_hpcnet::evaluate::evaluate(&app, &surrogate, 50, 0.10, false).unwrap();
//! println!("speedup {:.2}x  hit-rate {:.1}%", eval.speedup, 100.0 * eval.hit_rate);
//! ```

pub mod acquisition;
pub mod config;
pub mod dataset;
pub mod evaluate;
pub mod guard;
pub mod pipeline;

pub use config::PipelineConfig;
pub use evaluate::{evaluate, Evaluation};
pub use guard::{GuardStats, GuardedRegion};
pub use pipeline::{AutoHpcnet, DeployedSurrogate, OfflineTimes};

/// Errors from the end-to-end pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Feature acquisition failed.
    Trace(hpcnet_trace::TraceError),
    /// Architecture search failed.
    Nas(hpcnet_nas::NasError),
    /// NN substrate failure.
    Nn(hpcnet_nn::NnError),
    /// Runtime failure.
    Runtime(hpcnet_runtime::RuntimeError),
    /// Bad configuration or data.
    BadConfig(String),
}

impl From<hpcnet_trace::TraceError> for PipelineError {
    fn from(e: hpcnet_trace::TraceError) -> Self {
        PipelineError::Trace(e)
    }
}

impl From<hpcnet_nas::NasError> for PipelineError {
    fn from(e: hpcnet_nas::NasError) -> Self {
        PipelineError::Nas(e)
    }
}

impl From<hpcnet_nn::NnError> for PipelineError {
    fn from(e: hpcnet_nn::NnError) -> Self {
        PipelineError::Nn(e)
    }
}

impl From<hpcnet_runtime::RuntimeError> for PipelineError {
    fn from(e: hpcnet_runtime::RuntimeError) -> Self {
        PipelineError::Runtime(e)
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Trace(e) => write!(f, "trace: {e}"),
            PipelineError::Nas(e) => write!(f, "nas: {e}"),
            PipelineError::Nn(e) => write!(f, "nn: {e}"),
            PipelineError::Runtime(e) => write!(f, "runtime: {e}"),
            PipelineError::BadConfig(m) => write!(f, "bad config: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PipelineError>;
