//! Deployment-side quality guarding (paper §7.1 / §8): "the use of
//! surrogate models ... does not guarantee that the application outcome is
//! valid for all input problems. If the application outcome is not valid,
//! the application may restart using the original code region."
//!
//! [`GuardedRegion`] packages that pattern as a reusable type: a deployed
//! surrogate, an application-supplied cheap validator (e.g. a residual
//! check for a solver region), and the original region as the fallback.
//! Counters are atomic and the closures are `Send + Sync`, so one guard
//! can be shared across the serving worker pool (see
//! `hpcnet_runtime::QualityGuard` for the server-side counterpart wired
//! by `DeployedSurrogate::deploy_guarded`).

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pipeline::DeployedSurrogate;

/// Statistics of a guarded region's execution history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Invocations answered by the surrogate.
    pub surrogate_hits: usize,
    /// Invocations that fell back to the original region (validator
    /// rejected the surrogate output, or the surrogate failed).
    pub fallbacks: usize,
}

impl GuardStats {
    /// Fraction of invocations served by the surrogate.
    pub fn surrogate_rate(&self) -> f64 {
        let total = self.surrogate_hits + self.fallbacks;
        if total == 0 {
            return 0.0;
        }
        self.surrogate_hits as f64 / total as f64
    }
}

/// A region whose surrogate answers are validated before use.
///
/// Thread-safe: `run` takes `&self`, the hit/fallback counters are
/// atomic, and the closures must be `Send + Sync`, so a single
/// `GuardedRegion` may be driven concurrently from many threads.
pub struct GuardedRegion<'a> {
    surrogate: &'a DeployedSurrogate,
    fallback: Box<dyn Fn(&[f64]) -> Vec<f64> + Send + Sync + 'a>,
    validator: Box<dyn Fn(&[f64], &[f64]) -> bool + Send + Sync + 'a>,
    hits: AtomicUsize,
    fallbacks: AtomicUsize,
}

impl<'a> GuardedRegion<'a> {
    /// Wrap a surrogate with a validator and the original region.
    ///
    /// `validator(input, surrogate_output)` must be cheap relative to the
    /// original region (e.g. one SpMV residual check against a full
    /// iterative solve) and return `true` when the output is acceptable.
    pub fn new(
        surrogate: &'a DeployedSurrogate,
        validator: impl Fn(&[f64], &[f64]) -> bool + Send + Sync + 'a,
        fallback: impl Fn(&[f64]) -> Vec<f64> + Send + Sync + 'a,
    ) -> Self {
        GuardedRegion {
            surrogate,
            fallback: Box::new(fallback),
            validator: Box::new(validator),
            hits: AtomicUsize::new(0),
            fallbacks: AtomicUsize::new(0),
        }
    }

    /// Execute the region: surrogate first, original code on rejection.
    /// Returns the output and whether the fallback ran.
    pub fn run(&self, x: &[f64]) -> (Vec<f64>, bool) {
        if let Some(y) = self.surrogate.predict(x) {
            if (self.validator)(x, &y) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (y, false);
            }
        }
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        ((self.fallback)(x), true)
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> GuardStats {
        GuardStats {
            surrogate_hits: self.hits.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::pipeline::AutoHpcnet;
    use hpcnet_apps::{BlackscholesApp, HpcApp};

    fn built_surrogate() -> (BlackscholesApp, DeployedSurrogate) {
        let app = BlackscholesApp;
        let surrogate = AutoHpcnet::new(PipelineConfig::quick())
            .build_surrogate(&app)
            .expect("pipeline succeeds");
        (app, surrogate)
    }

    #[test]
    fn accept_all_validator_never_falls_back() {
        let (app, surrogate) = built_surrogate();
        let guard = GuardedRegion::new(&surrogate, |_, _| true, |x| app.run_region_exact(x));
        for i in 0..10 {
            let x = app.gen_problem(9_000 + i);
            let (_, fell_back) = guard.run(&x);
            assert!(!fell_back);
        }
        assert_eq!(
            guard.stats(),
            GuardStats {
                surrogate_hits: 10,
                fallbacks: 0
            }
        );
        assert_eq!(guard.stats().surrogate_rate(), 1.0);
    }

    #[test]
    fn reject_all_validator_always_uses_the_original() {
        let (app, surrogate) = built_surrogate();
        let guard = GuardedRegion::new(&surrogate, |_, _| false, |x| app.run_region_exact(x));
        let x = app.gen_problem(9_100);
        let (y, fell_back) = guard.run(&x);
        assert!(fell_back);
        // The fallback output IS the exact output.
        assert_eq!(y, app.run_region_exact(&x));
        assert_eq!(guard.stats().fallbacks, 1);
    }

    #[test]
    fn sanity_validator_guards_real_outputs() {
        // Validator: option prices must be non-negative and bounded by the
        // spot price — a realistic cheap domain check.
        let (app, surrogate) = built_surrogate();
        let guard = GuardedRegion::new(
            &surrogate,
            |x, y| {
                let max_spot = x.chunks(5).map(|o| o[0]).fold(0.0f64, f64::max);
                y.iter().all(|&p| (-1.0..=2.0 * max_spot).contains(&p))
            },
            |x| app.run_region_exact(x),
        );
        let mut served = 0;
        for i in 0..10 {
            let x = app.gen_problem(9_200 + i);
            let (y, fell_back) = guard.run(&x);
            assert_eq!(y.len(), app.output_dim());
            if !fell_back {
                served += 1;
            }
        }
        // A trained surrogate passes the sanity check on most problems.
        assert!(served >= 8, "served {served}/10");
    }

    #[test]
    fn guard_is_shareable_across_threads() {
        // The worker-pool use case: one guard, many serving threads. With
        // `Cell` counters this would not compile (`!Sync`); with atomics
        // every invocation must be counted exactly once.
        let (app, surrogate) = built_surrogate();
        let guard = GuardedRegion::new(&surrogate, |_, _| true, |x| app.run_region_exact(x));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let guard = &guard;
                let app = &app;
                scope.spawn(move || {
                    for i in 0..25 {
                        let x = app.gen_problem(9_300 + 100 * t + i);
                        let (y, _) = guard.run(&x);
                        assert_eq!(y.len(), app.output_dim());
                    }
                });
            }
        });
        let stats = guard.stats();
        assert_eq!(stats.surrogate_hits + stats.fallbacks, 100);
    }
}
