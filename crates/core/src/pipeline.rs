//! The `AutoHpcnet` driver: dataset → 2D NAS → deployable bundle.

use std::time::Instant;

use hpcnet_apps::HpcApp;
use hpcnet_nas::{NasOutcome, StepRecord, TwoDNas};
use hpcnet_nn::Topology;
use hpcnet_runtime::{ModelBundle, Orchestrator};

use crate::config::PipelineConfig;
use crate::dataset::{build_dataset, build_task};
use crate::Result;

/// Offset separating quality-holdout problem ids from training ids.
pub(crate) const QUALITY_BASE: u64 = 1 << 20;
/// Offset separating final-evaluation problem ids from everything else.
pub(crate) const EVAL_BASE: u64 = 1 << 21;

/// Offline-phase timing breakdown (paper §7.3).
#[derive(Debug, Clone, Copy)]
pub struct OfflineTimes {
    /// Seconds running the exact region to label training samples
    /// (the trace-generation analog for native apps).
    pub labeling_s: f64,
    /// Seconds training autoencoders inside the search.
    pub autoencoder_s: f64,
    /// Total Bayesian-optimization wall clock (includes candidate
    /// training).
    pub search_s: f64,
}

/// A ready-to-deploy surrogate for one application.
pub struct DeployedSurrogate {
    /// The model bundle (surrogate + encoder + scaler).
    pub bundle: ModelBundle,
    /// Chosen reduced feature count.
    pub k: usize,
    /// Chosen topology.
    pub topology: Topology,
    /// Search-time quality degradation of the selected candidate.
    pub f_e: f64,
    /// Per-sample inference FLOPs (encoder + surrogate).
    pub f_c: f64,
    /// Offline timing breakdown.
    pub offline: OfflineTimes,
    /// Full search history.
    pub history: Vec<StepRecord>,
}

impl DeployedSurrogate {
    /// Direct (in-process) prediction path: raw region input → predicted
    /// region output.
    pub fn predict(&self, raw: &[f64]) -> Option<Vec<f64>> {
        let mut features = match &self.bundle.autoencoder {
            Some(ae) => ae.encode(raw).ok()?,
            None => raw.to_vec(),
        };
        if let Some(s) = &self.bundle.scaler {
            s.transform_vec(&mut features);
        }
        let mut out = self.bundle.surrogate.predict(&features).ok()?;
        if let Some(os) = &self.bundle.output_scaler {
            os.inverse_transform_vec(&mut out);
        }
        Some(out)
    }

    /// Prediction from a CSR single-row input: the encoder consumes the
    /// sparse form directly (paper §4.2's online path).
    pub fn predict_sparse(&self, row: &hpcnet_tensor::Csr) -> Option<Vec<f64>> {
        let mut features = match &self.bundle.autoencoder {
            Some(ae) => ae.encode_sparse(row).ok()?.into_vec(),
            None => row.to_dense_vector(),
        };
        if let Some(s) = &self.bundle.scaler {
            s.transform_vec(&mut features);
        }
        let mut out = self.bundle.surrogate.predict(&features).ok()?;
        if let Some(os) = &self.bundle.output_scaler {
            os.inverse_transform_vec(&mut out);
        }
        Some(out)
    }

    /// Register with an orchestrator under `name` (Listing 2's
    /// `set_model_from_file` step).
    pub fn deploy(&self, orchestrator: &Orchestrator, name: &str) {
        orchestrator.register_model(name, self.bundle.clone());
    }

    /// Register with an orchestrator under `name` together with a
    /// server-side quality guard: the paper's restart-on-quality-miss
    /// (§7.1/§8) executed by the serving runtime itself. `validator`
    /// judges `(raw_input, output)` pairs; on rejection the orchestrator
    /// answers with `fallback(raw_input)` — normally the original region
    /// — and counts the event in `ServingStats::quality_fallbacks`.
    pub fn deploy_guarded(
        &self,
        orchestrator: &Orchestrator,
        name: &str,
        validator: impl Fn(&[f64], &[f64]) -> bool + Send + Sync + 'static,
        fallback: impl Fn(&[f64]) -> Vec<f64> + Send + Sync + 'static,
    ) {
        let guard = hpcnet_runtime::QualityGuard::new(validator).with_fallback(fallback);
        orchestrator.register_guarded_model(name, self.bundle.clone(), guard);
    }

    /// Save the deployable bundle to a file (the `./saved_net.pt` analog)
    /// so another process can `set_model_from_file` it (paper §6.1's
    /// save-and-share across applications).
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        self.bundle
            .save(path)
            .map_err(crate::PipelineError::Runtime)
    }
}

/// The framework facade.
pub struct AutoHpcnet {
    /// Pipeline configuration.
    pub config: PipelineConfig,
}

impl AutoHpcnet {
    /// Create the framework with a configuration.
    pub fn new(config: PipelineConfig) -> Self {
        AutoHpcnet { config }
    }

    /// Build a surrogate for a native application: generate + label
    /// problems, run the architecture search (2D NAS for MLPs, the CNN
    /// hyperparameter search for `-initModel cnn`) with the
    /// application-level quality oracle, and assemble the bundle.
    pub fn build_surrogate(&self, app: &dyn HpcApp) -> Result<DeployedSurrogate> {
        let telemetry = hpcnet_telemetry::global();
        let dataset = {
            let _span = telemetry.span("hpcnet_offline_phase_seconds", &[("phase", "labeling")]);
            build_dataset(app, self.config.n_train)?
        };
        telemetry
            .counter("hpcnet_offline_samples_total")
            .add(dataset.inputs.rows() as u64);
        let task = build_task(app, &dataset, self.config.n_quality, QUALITY_BASE);

        let _search_span = telemetry.span("hpcnet_offline_phase_seconds", &[("phase", "search")]);
        let t0 = Instant::now();
        let outcome = match self.config.model.family {
            hpcnet_nas::ModelFamily::Mlp => {
                let mut search = self.config.search.clone();
                // The quality constraint is the application's μ (§5.1).
                search.quality_loss = self.config.mu;
                search.seed = self.config.seed;
                TwoDNas::new(search, self.config.model.clone()).search(&task)?
            }
            hpcnet_nas::ModelFamily::Cnn => hpcnet_nas::cnn_search(
                &task,
                self.config.search.inner_budget.max(1) * self.config.search.outer_budget.max(1),
                self.config.mu,
                &self.config.model,
                self.config.seed,
            )?,
        };
        let search_s = t0.elapsed().as_secs_f64();

        Ok(self.assemble(outcome, dataset.label_seconds, search_s))
    }

    /// Build a surrogate for an annotated mini-IR program: the full paper
    /// workflow — trace → DDDG → identify I/O → perturb-and-sample →
    /// architecture search — driven end to end. Returns the deployable
    /// surrogate together with the identified region signature.
    ///
    /// The quality oracle is the relative output error over the held-out
    /// tail of the collected samples (an IR region has no application QoI
    /// of its own).
    pub fn build_surrogate_from_ir<F>(
        &self,
        program: &hpcnet_trace::Program,
        setup: F,
        perturb: hpcnet_trace::PerturbSpec,
        frozen: &[&str],
    ) -> Result<(DeployedSurrogate, hpcnet_trace::RegionSignature)>
    where
        F: Fn(&mut hpcnet_trace::Interpreter),
    {
        let telemetry = hpcnet_telemetry::global();
        let n = self.config.n_train + self.config.n_quality;
        let acquired = {
            let _span = telemetry.span("hpcnet_offline_phase_seconds", &[("phase", "acquire")]);
            crate::acquisition::acquire(program, setup, n, perturb, frozen, self.config.seed)?
        };
        telemetry
            .counter("hpcnet_offline_samples_total")
            .add(acquired.samples.inputs.len() as u64);
        let x = hpcnet_tensor::Matrix::from_rows(&acquired.samples.inputs)
            .map_err(|e| crate::PipelineError::BadConfig(e.to_string()))?;
        let y = hpcnet_tensor::Matrix::from_rows(&acquired.samples.outputs)
            .map_err(|e| crate::PipelineError::BadConfig(e.to_string()))?;
        let task = hpcnet_nas::NasTask {
            quality: Box::new(hpcnet_nas::NasTask::holdout_quality(
                x.clone(),
                y.clone(),
                self.config.n_quality,
            )),
            inputs: x,
            sparse_inputs: None,
            outputs: y,
        };
        let mut search = self.config.search.clone();
        search.quality_loss = self.config.mu;
        search.seed = self.config.seed;
        let _search_span = telemetry.span("hpcnet_offline_phase_seconds", &[("phase", "search")]);
        let t0 = Instant::now();
        let outcome = match self.config.model.family {
            hpcnet_nas::ModelFamily::Mlp => {
                TwoDNas::new(search, self.config.model.clone()).search(&task)?
            }
            hpcnet_nas::ModelFamily::Cnn => hpcnet_nas::cnn_search(
                &task,
                self.config.search.inner_budget.max(1) * self.config.search.outer_budget.max(1),
                self.config.mu,
                &self.config.model,
                self.config.seed,
            )?,
        };
        let search_s = t0.elapsed().as_secs_f64();
        let labeling = acquired.trace_seconds + acquired.sample_seconds;
        Ok((
            self.assemble(outcome, labeling, search_s),
            acquired.signature,
        ))
    }

    fn assemble(&self, outcome: NasOutcome, labeling_s: f64, search_s: f64) -> DeployedSurrogate {
        DeployedSurrogate {
            bundle: ModelBundle {
                surrogate: outcome.surrogate,
                autoencoder: outcome.autoencoder,
                scaler: Some(outcome.scaler),
                output_scaler: Some(outcome.output_scaler),
            },
            k: outcome.k,
            topology: outcome.topology,
            f_e: outcome.f_e,
            f_c: outcome.f_c,
            offline: OfflineTimes {
                labeling_s,
                autoencoder_s: outcome.ae_train_seconds,
                search_s,
            },
            history: outcome.history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_apps::{BlackscholesApp, HpcApp};
    use hpcnet_runtime::TensorStore;

    #[test]
    fn builds_and_deploys_a_blackscholes_surrogate() {
        let app = BlackscholesApp;
        let mut cfg = PipelineConfig::quick();
        cfg.mu = 0.10;
        let framework = AutoHpcnet::new(cfg);
        let surrogate = framework.build_surrogate(&app).unwrap();
        assert!(surrogate.f_e <= 0.10, "f_e = {}", surrogate.f_e);
        assert!(!surrogate.history.is_empty());
        assert!(surrogate.offline.labeling_s > 0.0);
        assert!(surrogate.offline.search_s > 0.0);

        // Deploy and run one inference through the orchestrator.
        let orc = Orchestrator::builder().store(TensorStore::new()).build();
        surrogate.deploy(&orc, "bs-net");
        let client = orc.client();
        let x = hpcnet_apps::HpcApp::gen_problem(&app, EVAL_BASE);
        client.put_tensor("in", &x).unwrap();
        client.run_model("bs-net", "in", "out").unwrap();
        let via_server = client.unpack_tensor("out").unwrap();
        let direct = surrogate.predict(&x).unwrap();
        assert_eq!(via_server, direct);

        // Guarded deployment: a reject-all validator forces the
        // orchestrator's server-side restart-on-quality-miss, whose
        // answer must bit-match the original region.
        surrogate.deploy_guarded(
            &orc,
            "bs-net-guarded",
            |_, _| false,
            |raw| BlackscholesApp.run_region_exact(raw),
        );
        client.put_tensor("gin", &x).unwrap();
        client.run_model("bs-net-guarded", "gin", "gout").unwrap();
        assert_eq!(
            client.unpack_tensor("gout").unwrap(),
            app.run_region_exact(&x),
            "server-side fallback must be the exact region output"
        );
        let stats = orc.serving_stats();
        assert!(stats.quality_fallbacks >= 1);

        // The offline pipeline reported into the process-wide registry:
        // labeled samples, phase spans, NAS candidates, training epochs.
        let snap = hpcnet_telemetry::global().snapshot();
        assert!(snap.counter_total("hpcnet_offline_samples_total") > 0);
        let labeling = snap
            .find_histogram("hpcnet_offline_phase_seconds", &[("phase", "labeling")])
            .expect("labeling span recorded");
        assert!(labeling.count >= 1 && labeling.sum > 0);
        assert!(snap
            .find_histogram("hpcnet_offline_phase_seconds", &[("phase", "search")])
            .is_some_and(|h| h.count >= 1));
        assert!(snap.counter_total("hpcnet_nas_candidates_total") > 0);
        assert!(snap.counter_total("hpcnet_train_epochs_total") > 0);
    }
}
