//! Evaluation: Eqn 2 speedup and Eqn 3 HitRate over fresh input problems,
//! with restart-on-quality-miss semantics and a device-model GPU column.

use std::time::Instant;

use hpcnet_apps::HpcApp;
use hpcnet_runtime::DeviceProfile;
use serde::{Deserialize, Serialize};

use crate::pipeline::{DeployedSurrogate, EVAL_BASE};
use crate::Result;

/// Staged input tensor (what `T_load` produces).
enum StagedInput {
    Dense(Vec<f64>),
    Sparse(hpcnet_tensor::Csr),
}

/// Evaluation results for one application + approximation method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evaluation {
    /// Eqn 2 speedup from *measured CPU wall clock*:
    /// `T_solver+other / (T_infer + T_load + T_other [+ restarts])`.
    pub speedup: f64,
    /// Eqn 3 HitRate at the evaluation μ.
    pub hit_rate: f64,
    /// Total exact-region seconds over the evaluation set.
    pub t_solver: f64,
    /// Total surrogate-inference seconds (or approximate-region seconds).
    pub t_infer: f64,
    /// Total data-staging seconds (put + unpack through the store).
    pub t_load: f64,
    /// Total non-replaced-part seconds (QoI computation).
    pub t_other: f64,
    /// Quality-miss restarts taken (restart mode only).
    pub restarts: usize,
    /// Device-model speedup with the surrogate on a V100-class GPU
    /// (clearly a model output — see DESIGN.md).
    pub gpu_speedup_modeled: f64,
    /// Problems evaluated.
    pub n_problems: usize,
}

/// Evaluate a deployed surrogate over fresh problems.
///
/// The surrogate path is timed in-process with the Eqn 2 split:
/// `T_load` is input staging (building the CSR view or copying the dense
/// tensor), `T_infer` is encoder + surrogate inference, `T_other` the
/// non-replaced QoI computation. (The channel-based orchestrator path is
/// exercised separately by the §7.3 overhead study and the examples —
/// its request overhead would otherwise dominate microsecond regions.)
pub fn evaluate(
    app: &dyn HpcApp,
    surrogate: &DeployedSurrogate,
    n_eval: usize,
    mu: f64,
    restart_on_miss: bool,
) -> Result<Evaluation> {
    let bundle = &surrogate.bundle;
    let mut t_solver = 0.0f64;
    let mut t_infer = 0.0f64;
    let mut t_load = 0.0f64;
    let mut t_other = 0.0f64;
    let mut hits = 0usize;
    let mut restarts = 0usize;
    let mut transfer_bytes = 0u64;

    for i in 0..n_eval {
        let x = app.gen_problem(EVAL_BASE + i as u64);

        // Original path (numerator of Eqn 2).
        let t0 = Instant::now();
        let y_exact = app.run_region_exact(&x);
        t_solver += t0.elapsed().as_secs_f64();
        let v_exact = app.qoi(&x, &y_exact);

        // T_load: stage the input tensor (CSR view or dense copy).
        let t1 = Instant::now();
        let staged: StagedInput = match app.sparse_row(&x) {
            Some(row) => {
                transfer_bytes += (row.nnz() * 16) as u64;
                StagedInput::Sparse(row)
            }
            None => {
                transfer_bytes += (x.len() * 8) as u64;
                StagedInput::Dense(x.clone())
            }
        };
        t_load += t1.elapsed().as_secs_f64();

        // T_infer: encoder + scaler + surrogate + output unscale.
        let t2 = Instant::now();
        let mut features = match (&bundle.autoencoder, &staged) {
            (Some(ae), StagedInput::Sparse(row)) => ae
                .encode_sparse(row)
                .map_err(crate::PipelineError::Nn)?
                .into_vec(),
            (Some(ae), StagedInput::Dense(v)) => ae.encode(v).map_err(crate::PipelineError::Nn)?,
            (None, StagedInput::Sparse(row)) => row.to_dense_vector(),
            (None, StagedInput::Dense(v)) => v.clone(),
        };
        if let Some(s) = &bundle.scaler {
            s.transform_vec(&mut features);
        }
        let mut y_pred = bundle
            .surrogate
            .predict(&features)
            .map_err(crate::PipelineError::Nn)?;
        if let Some(os) = &bundle.output_scaler {
            os.inverse_transform_vec(&mut y_pred);
        }
        t_infer += t2.elapsed().as_secs_f64();

        let t3 = Instant::now();
        let v_pred = app.qoi(&x, &y_pred);
        t_other += t3.elapsed().as_secs_f64();

        let hit = (v_pred - v_exact).abs() <= mu * v_exact.abs();
        if hit {
            hits += 1;
        } else if restart_on_miss {
            // The application restarts with the original code (paper §7.1):
            // the surrogate attempt is sunk cost, the solver runs again.
            restarts += 1;
            let t4 = Instant::now();
            let _ = app.run_region_exact(&x);
            t_infer += t4.elapsed().as_secs_f64();
        }
    }

    let t_orig = t_solver + t_other;
    let t_sur = t_infer + t_load + t_other;
    // GPU column: surrogate FLOPs on a V100 with PCIe staging, vs the
    // measured CPU original. Model output, labeled as such.
    let gpu = DeviceProfile::v100();
    let per_problem_gpu = gpu
        .estimate(
            surrogate.f_c as u64,
            (surrogate.bundle.surrogate.param_count() * 8) as u64,
            transfer_bytes / n_eval.max(1) as u64,
            true,
        )
        .total();
    let t_sur_gpu = per_problem_gpu * n_eval as f64 + t_other;

    Ok(Evaluation {
        speedup: t_orig / t_sur.max(1e-12),
        hit_rate: hits as f64 / n_eval.max(1) as f64,
        t_solver,
        t_infer,
        t_load,
        t_other,
        restarts,
        gpu_speedup_modeled: t_orig / t_sur_gpu.max(1e-12),
        n_problems: n_eval,
    })
}

/// Evaluate any approximate region implementation (baselines): the
/// closure replaces the region; its wall clock is the "inference" time.
/// Returns `None` from the closure ⇒ the method cannot handle the problem
/// and the exact region runs instead (counted as a restart).
pub fn evaluate_predictor(
    app: &dyn HpcApp,
    mut predict: impl FnMut(&[f64]) -> Option<Vec<f64>>,
    n_eval: usize,
    mu: f64,
) -> Evaluation {
    let mut t_solver = 0.0f64;
    let mut t_infer = 0.0f64;
    let mut t_other = 0.0f64;
    let mut hits = 0usize;
    let mut restarts = 0usize;

    for i in 0..n_eval {
        let x = app.gen_problem(EVAL_BASE + i as u64);
        let t0 = Instant::now();
        let y_exact = app.run_region_exact(&x);
        t_solver += t0.elapsed().as_secs_f64();
        let v_exact = app.qoi(&x, &y_exact);

        let t1 = Instant::now();
        let y_pred = predict(&x);
        let infer = t1.elapsed().as_secs_f64();
        t_infer += infer;
        match y_pred {
            Some(y) => {
                let t2 = Instant::now();
                let v_pred = app.qoi(&x, &y);
                t_other += t2.elapsed().as_secs_f64();
                if (v_pred - v_exact).abs() <= mu * v_exact.abs() {
                    hits += 1;
                }
            }
            None => {
                restarts += 1;
                let t3 = Instant::now();
                let y = app.run_region_exact(&x);
                t_infer += t3.elapsed().as_secs_f64();
                let v_pred = app.qoi(&x, &y);
                if (v_pred - v_exact).abs() <= mu * v_exact.abs() {
                    hits += 1;
                }
            }
        }
    }

    let t_orig = t_solver + t_other;
    let t_sur = t_infer + t_other;
    Evaluation {
        speedup: t_orig / t_sur.max(1e-12),
        hit_rate: hits as f64 / n_eval.max(1) as f64,
        t_solver,
        t_infer,
        t_load: 0.0,
        t_other,
        restarts,
        gpu_speedup_modeled: 0.0,
        n_problems: n_eval,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_apps::StreamclusterApp;

    #[test]
    fn perfect_predictor_hits_everything() {
        let app = StreamclusterApp::default();
        let eval = evaluate_predictor(&app, |x| Some(app.run_region_exact(x)), 10, 0.10);
        assert_eq!(eval.hit_rate, 1.0);
        assert_eq!(eval.restarts, 0);
        assert!(eval.speedup > 0.0);
        assert_eq!(eval.n_problems, 10);
    }

    #[test]
    fn failing_predictor_restarts_and_still_hits() {
        let app = StreamclusterApp::default();
        let eval = evaluate_predictor(&app, |_| None, 6, 0.10);
        assert_eq!(eval.restarts, 6);
        assert_eq!(eval.hit_rate, 1.0, "fallback output is exact");
        // Both paths run the same solver; the ratio is ~1 up to scheduler
        // noise (these tests run in parallel with surrogate builds).
        assert!(
            eval.speedup <= 2.0,
            "no speedup when always falling back: {}",
            eval.speedup
        );
    }

    #[test]
    fn garbage_predictor_misses() {
        let app = StreamclusterApp::default();
        let out_dim = app.output_dim();
        let eval = evaluate_predictor(&app, |_| Some(vec![1e6; out_dim]), 6, 0.10);
        assert_eq!(eval.hit_rate, 0.0);
    }
}
