//! End-to-end pipeline configuration.

use hpcnet_nas::{ModelConfig, SearchConfig};
use serde::{Deserialize, Serialize};

/// Configuration of the whole Auto-HPCnet pipeline for one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// QoI tolerance μ (Eqn 3); the paper evaluates at 0.10.
    pub mu: f64,
    /// Training problems generated per application.
    pub n_train: usize,
    /// Held-out problems the NAS quality oracle scores candidates on.
    pub n_quality: usize,
    /// Search-level configuration (paper Table 1).
    pub search: SearchConfig,
    /// Model-level configuration (paper Table 1).
    pub model: ModelConfig,
    /// Base seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            mu: 0.10,
            n_train: 200,
            n_quality: 24,
            search: SearchConfig::default(),
            model: ModelConfig::default(),
            seed: 0xa07a,
        }
    }
}

impl PipelineConfig {
    /// A fast profile for tests and smoke runs: smaller budgets everywhere.
    pub fn quick() -> Self {
        let mut cfg = PipelineConfig::default();
        cfg.n_train = 160;
        cfg.n_quality = 12;
        cfg.search.outer_budget = 2;
        cfg.search.inner_budget = 3;
        cfg.search.bayesian_init = 2;
        cfg.model.train.epochs = 250;
        cfg.model.train.patience = 30;
        cfg.model.ae_epochs = 40;
        cfg
    }

    /// The full evaluation profile used by the benchmark harness
    /// (still laptop-scale; the paper used 2 000 problems and 6-13 h
    /// searches on a DGX-1 cluster).
    pub fn full() -> Self {
        let mut cfg = PipelineConfig::default();
        cfg.n_train = 256;
        cfg.n_quality = 16;
        cfg.search.outer_budget = 3;
        cfg.search.inner_budget = 5;
        cfg.model.train.epochs = 300;
        cfg.model.train.patience = 40;
        cfg.model.ae_epochs = 60;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_budget() {
        let q = PipelineConfig::quick();
        let f = PipelineConfig::full();
        assert!(q.n_train < f.n_train);
        assert!(q.search.inner_budget <= f.search.inner_budget);
        assert_eq!(q.mu, 0.10);
    }

    #[test]
    fn config_serializes() {
        let cfg = PipelineConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: PipelineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_train, cfg.n_train);
    }
}
