//! Dataset construction from a native application: generate input
//! problems, run the exact region, and assemble the NAS task.

use std::time::Instant;

use hpcnet_apps::HpcApp;
use hpcnet_nas::NasTask;
use hpcnet_tensor::{Coo, Csr, Matrix};

use crate::{PipelineError, Result};

/// The training dataset for one application.
pub struct AppDataset {
    /// Dense input features, one problem per row.
    pub inputs: Matrix,
    /// CSR form (sparse applications only).
    pub sparse_inputs: Option<Csr>,
    /// Exact region outputs.
    pub outputs: Matrix,
    /// Seconds spent running the exact region to label samples.
    pub label_seconds: f64,
}

/// Build the dataset from `n` problems (problem ids `0..n`).
pub fn build_dataset(app: &dyn HpcApp, n: usize) -> Result<AppDataset> {
    if n == 0 {
        return Err(PipelineError::BadConfig(
            "need at least one training problem".into(),
        ));
    }
    let d = app.input_dim();
    let o = app.output_dim();
    let mut inputs = Matrix::zeros(n, d);
    let mut outputs = Matrix::zeros(n, o);
    let mut sparse = if app.is_sparse() {
        Some(Coo::new(n, d))
    } else {
        None
    };
    let t0 = Instant::now();
    for i in 0..n {
        let x = app.gen_problem(i as u64);
        let y = app.run_region_exact(&x);
        if let (Some(coo), Some(row)) = (&mut sparse, app.sparse_row(&x)) {
            for (c, v) in row.row_iter(0) {
                coo.push(i, c, v);
            }
        }
        inputs.row_mut(i).copy_from_slice(&x);
        outputs.row_mut(i).copy_from_slice(&y);
    }
    let label_seconds = t0.elapsed().as_secs_f64();
    Ok(AppDataset {
        inputs,
        sparse_inputs: sparse.map(|c| c.to_csr()),
        outputs,
        label_seconds,
    })
}

/// Build the NAS task over a dataset, with an application-level quality
/// oracle: mean relative QoI degradation over `n_quality` held-out
/// problems (problem ids `base..base + n_quality`, disjoint from the
/// training ids by construction).
pub fn build_task<'a>(
    app: &'a dyn HpcApp,
    dataset: &AppDataset,
    n_quality: usize,
    quality_base: u64,
) -> NasTask<'a> {
    // Precompute the held-out problems and their exact QoIs once.
    let holdout: Vec<(Vec<f64>, f64)> = (0..n_quality)
        .map(|i| {
            let x = app.gen_problem(quality_base + i as u64);
            let y = app.run_region_exact(&x);
            let v = app.qoi(&x, &y);
            (x, v)
        })
        .collect();
    let quality = move |predict: &dyn Fn(&[f64]) -> Option<Vec<f64>>| -> f64 {
        let mut total = 0.0;
        for (x, v_exact) in &holdout {
            match predict(x) {
                Some(y_pred) => {
                    let v_pred = app.qoi(x, &y_pred);
                    total += (v_pred - v_exact).abs() / v_exact.abs().max(1e-12);
                }
                None => return f64::INFINITY,
            }
        }
        total / holdout.len().max(1) as f64
    };
    NasTask {
        inputs: dataset.inputs.clone(),
        sparse_inputs: dataset.sparse_inputs.clone(),
        outputs: dataset.outputs.clone(),
        quality: Box::new(quality),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_apps::{BlackscholesApp, CannealApp};

    #[test]
    fn dense_dataset_has_expected_shapes() {
        let app = BlackscholesApp;
        let ds = build_dataset(&app, 10).unwrap();
        assert_eq!(ds.inputs.rows(), 10);
        assert_eq!(ds.inputs.cols(), app.input_dim());
        assert_eq!(ds.outputs.cols(), app.output_dim());
        assert!(ds.sparse_inputs.is_none());
        assert!(ds.label_seconds > 0.0);
    }

    #[test]
    fn sparse_dataset_matches_dense_content() {
        let app = CannealApp::default();
        let ds = build_dataset(&app, 5).unwrap();
        let sp = ds.sparse_inputs.as_ref().unwrap();
        assert_eq!(sp.nrows(), 5);
        assert_eq!(sp.ncols(), app.input_dim());
        let dense = sp.to_dense();
        for i in 0..5 {
            assert_eq!(dense.row(i), ds.inputs.row(i), "row {i}");
        }
    }

    #[test]
    fn quality_oracle_is_zero_for_the_exact_region() {
        let app = BlackscholesApp;
        let ds = build_dataset(&app, 8).unwrap();
        let task = build_task(&app, &ds, 4, 1_000);
        let exact = |x: &[f64]| Some(app.run_region_exact(x));
        let q = (task.quality)(&exact);
        assert!(
            q < 1e-12,
            "exact region must have zero degradation, got {q}"
        );
    }

    #[test]
    fn empty_dataset_rejected() {
        let app = BlackscholesApp;
        assert!(build_dataset(&app, 0).is_err());
    }
}
