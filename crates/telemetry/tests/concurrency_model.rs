//! Model-checked concurrency tests for the lock-free instruments.
//!
//! Two harnesses run the same test bodies:
//!
//! * plain `cargo test` — the `hpcnet-modelcheck` seeded stress shim:
//!   every atomic op and lock acquisition may yield the scheduler, and
//!   each body runs a few hundred times with different seeds;
//! * `RUSTFLAGS="--cfg loom" cargo test` (after `cargo add loom
//!   --package hpcnet-telemetry`) — the real `loom` model checker
//!   exhaustively explores interleavings, bounded by
//!   `LOOM_MAX_PREEMPTIONS`. This is the CI `loom` job.
//!
//! The invariants pinned here are the ones documented at the atomic
//! sites in `src/instrument.rs` and `src/ring.rs`: counter totals are
//! exact, gauge CAS never loses a delta, histogram snapshots are never
//! torn (bucket total ≥ count), and event-ring snapshots are always
//! seq-ordered with the oldest event evicted first.

#![allow(clippy::unwrap_used, clippy::expect_used)]

#[cfg(loom)]
use loom::{model, sync::Arc, thread};

#[cfg(not(loom))]
use hpcnet_modelcheck::{model, sync::Arc, thread};

use hpcnet_telemetry::{Counter, EventRing, Gauge, Histogram};

#[test]
fn counter_total_is_exact() {
    model(|| {
        let c = Arc::new(Counter::default());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    c.inc();
                    c.add(2);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("counter thread");
        }
        assert_eq!(c.get(), 6, "no increment may be lost");
    });
}

#[test]
fn gauge_cas_never_loses_a_delta() {
    model(|| {
        let g = Arc::new(Gauge::default());
        let a = {
            let g = g.clone();
            thread::spawn(move || {
                g.inc();
                g.dec();
            })
        };
        let b = {
            let g = g.clone();
            thread::spawn(move || g.add(2.0))
        };
        a.join().expect("gauge thread a");
        b.join().expect("gauge thread b");
        assert_eq!(g.get(), 2.0, "interleaved CAS must preserve every delta");
    });
}

#[test]
fn histogram_snapshot_is_never_torn() {
    model(|| {
        let h = Arc::new(Histogram::default());
        let writer = {
            let h = h.clone();
            thread::spawn(move || {
                h.record(3);
                h.record(100);
            })
        };
        // Concurrent reader: whatever prefix of the writes is visible,
        // a snapshot that counts a record must also contain its bucket
        // increment (count is Released last, Acquired first).
        let snap = h.snapshot();
        let bucket_total: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert!(
            bucket_total >= snap.count,
            "torn snapshot: count {} exceeds bucket total {}",
            snap.count,
            bucket_total
        );
        writer.join().expect("histogram writer");
        let final_snap = h.snapshot();
        assert_eq!(final_snap.count, 2);
        assert_eq!(final_snap.sum, 103);
        assert_eq!(final_snap.max, 100);
        let total: u64 = final_snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 2, "every record lands in exactly one bucket");
    });
}

#[test]
fn event_ring_snapshots_are_seq_ordered() {
    model(|| {
        let ring = Arc::new(EventRing::new(2));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let ring = ring.clone();
                thread::spawn(move || {
                    ring.push("kind", "model", "key", i as f64);
                })
            })
            .collect();
        // Concurrent snapshot: whatever subset is visible must be in
        // seq order (seq allocation happens under the ring's lock).
        let snap = ring.snapshot();
        assert!(
            snap.windows(2).all(|w| w[0].seq < w[1].seq),
            "ring order must match seq order"
        );
        for h in handles {
            h.join().expect("ring pusher");
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seq, 0);
        assert_eq!(snap[1].seq, 1);
        assert_eq!(ring.total_recorded(), 2);
    });
}

#[test]
fn full_event_ring_evicts_the_oldest_push() {
    model(|| {
        let ring = Arc::new(EventRing::new(1));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let ring = ring.clone();
                thread::spawn(move || {
                    ring.push("kind", "model", "key", i as f64);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("ring pusher");
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1, "capacity-1 ring retains one event");
        assert_eq!(
            snap[0].seq, 1,
            "the retained event is always the newest (highest seq)"
        );
        assert_eq!(ring.total_recorded(), 2);
    });
}
