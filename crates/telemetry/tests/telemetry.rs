//! Integration tests for the telemetry substrate: histogram bucket and
//! quantile correctness (including the open-ended top bucket), exact
//! summation under concurrent recording, ring-buffer overwrite semantics,
//! and a golden Prometheus exposition.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::Duration;

use hpcnet_telemetry::{EventRing, Histogram, Registry};

#[test]
fn histogram_quantiles_track_known_distribution() {
    let h = Histogram::default();
    // 100 values: 1..=100. Exact order statistics are known; the
    // log-bucketed readout must stay within one bucket width (25 %).
    for v in 1..=100u64 {
        h.record(v);
    }
    assert_eq!(h.count(), 100);
    assert_eq!(h.sum(), 5050);
    assert_eq!(h.max(), 100);
    let p50 = h.quantile(0.50);
    let p90 = h.quantile(0.90);
    let p99 = h.quantile(0.99);
    assert!((48..=63).contains(&p50), "p50 = {p50}");
    assert!((88..=111).contains(&p90), "p90 = {p90}");
    assert!((97..=100).contains(&p99), "p99 = {p99}");
    assert_eq!(h.quantile(1.0), 100, "p100 must be the exact max");
    assert_eq!(h.quantile(0.0), 1, "p0 rank clamps to the first value");
    // Quantiles are monotone in q.
    let qs: Vec<u64> = (0..=10).map(|i| h.quantile(i as f64 / 10.0)).collect();
    assert!(qs.windows(2).all(|w| w[0] <= w[1]), "not monotone: {qs:?}");
}

#[test]
fn small_values_are_exact_and_empty_histogram_is_zero() {
    let h = Histogram::default();
    assert_eq!(h.quantile(0.5), 0);
    for v in [0u64, 1, 2, 3] {
        h.record(v);
    }
    // Values 0..=3 live in exact single-value buckets.
    assert_eq!(h.quantile(0.25), 0);
    assert_eq!(h.quantile(0.50), 1);
    assert_eq!(h.quantile(0.75), 2);
    assert_eq!(h.quantile(1.00), 3);
    let snap = h.snapshot();
    assert_eq!(snap.buckets.len(), 4);
    assert!(snap.buckets.iter().all(|b| b.count == 1));
}

#[test]
fn open_ended_top_bucket_catches_huge_values() {
    let h = Histogram::default();
    h.record(u64::MAX);
    h.record(u64::MAX - 1);
    h.record(1u64 << 50);
    h.record(7); // one small value for contrast
    let snap = h.snapshot();
    let top = snap.buckets.last().unwrap();
    assert_eq!(top.hi, None, "top bucket must be open-ended");
    assert_eq!(top.count, 3, "all huge values share the open bucket");
    assert_eq!(h.max(), u64::MAX);
    // A quantile landing in the open bucket reports the exact max, not a
    // fabricated bound.
    assert_eq!(h.quantile(1.0), u64::MAX);
    assert_eq!(h.quantile(0.9), u64::MAX);
    // The small value still resolves exactly.
    assert_eq!(h.quantile(0.25), 7);
}

#[test]
fn concurrent_recording_from_eight_threads_sums_exactly() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let h = Arc::new(Histogram::default());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = h.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    let total = THREADS * PER_THREAD;
    assert_eq!(h.count(), total);
    assert_eq!(h.sum(), total * (total - 1) / 2);
    assert_eq!(h.max(), total - 1);
    // The per-bucket counts must also sum exactly: nothing lost or
    // double-counted under contention.
    let snap = h.snapshot();
    let bucket_total: u64 = snap.buckets.iter().map(|b| b.count).sum();
    assert_eq!(bucket_total, total);
}

#[test]
fn concurrent_counter_increments_sum_exactly() {
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let reg = reg.clone();
            std::thread::spawn(move || {
                let c = reg.counter("concurrent_total");
                for _ in 0..5_000 {
                    c.inc();
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    assert_eq!(reg.counter("concurrent_total").get(), 40_000);
}

#[test]
fn event_ring_overwrites_oldest_and_keeps_sequence() {
    let ring = EventRing::new(3);
    for i in 0..7 {
        ring.push("kind", "model", &format!("key{i}"), i as f64);
    }
    assert_eq!(ring.len(), 3);
    assert_eq!(ring.capacity(), 3);
    assert_eq!(ring.total_recorded(), 7);
    let events = ring.snapshot();
    // The three newest survive, oldest first, with original seq numbers.
    assert_eq!(
        events.iter().map(|e| e.seq).collect::<Vec<_>>(),
        vec![4, 5, 6]
    );
    assert_eq!(events[0].message, "key4");
    assert_eq!(events[2].value, 6.0);
}

#[test]
fn prometheus_exposition_golden_format() {
    let reg = Registry::new();
    reg.counter_with("hpcnet_requests_total", &[("model", "cg")])
        .add(5);
    reg.gauge("hpcnet_best_f_c").set(128.0);
    let h = reg.time_histogram("hpcnet_wait_seconds", &[("model", "cg")]);
    // Two values in the exact low buckets (1 ns, 2 ns) and one at 8 ns:
    // bucket upper bounds are 2e-9, 3e-9, and 1e-8 seconds.
    h.record(1);
    h.record(2);
    h.record(8);
    let text = reg.prometheus_text();
    let expected = "\
# TYPE hpcnet_requests_total counter
hpcnet_requests_total{model=\"cg\"} 5
# TYPE hpcnet_best_f_c gauge
hpcnet_best_f_c 128
# TYPE hpcnet_wait_seconds histogram
hpcnet_wait_seconds_bucket{model=\"cg\",le=\"0.000000002\"} 1
hpcnet_wait_seconds_bucket{model=\"cg\",le=\"0.000000003\"} 2
hpcnet_wait_seconds_bucket{model=\"cg\",le=\"0.00000001\"} 3
hpcnet_wait_seconds_bucket{model=\"cg\",le=\"+Inf\"} 3
hpcnet_wait_seconds_sum{model=\"cg\"} 0.000000011
hpcnet_wait_seconds_count{model=\"cg\"} 3
";
    assert_eq!(text, expected);
}

#[test]
fn span_guard_records_on_drop() {
    let reg = Registry::new();
    {
        let _span = reg.span("work_seconds", &[("stage", "a")]);
        std::thread::sleep(Duration::from_millis(2));
    }
    let h = reg.time_histogram("work_seconds", &[("stage", "a")]);
    assert_eq!(h.count(), 1);
    assert!(
        h.sum() >= 1_000_000,
        "a 2 ms span must record at least 1 ms, got {} ns",
        h.sum()
    );
}
