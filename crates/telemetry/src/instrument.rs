//! The individual instruments: counters, gauges, histograms, span timers.
//!
//! Every instrument records with atomic operations only — no locks, no
//! allocation — so they are safe to hammer from every serving worker at
//! once. Counters and gauges are pure `Relaxed` tallies; histograms use
//! one `Release`/`Acquire` pair (`count` is written last in
//! [`Histogram::record`] and read first in [`Histogram::snapshot`]) so a
//! concurrent snapshot can never observe a count without the bucket
//! increments that produced it. An instrument created disabled (via
//! [`crate::Registry::disabled`]) turns each record into a single
//! predictable branch.
//!
//! The atomics come from [`crate::sync`], which swaps in `loom`'s
//! model-checked versions under `--cfg loom`; the invariants in the
//! comments below are verified by `tests/concurrency_model.rs`.

use crate::sync::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// What a histogram's raw `u64` values mean. Exposition scales
/// nanoseconds to seconds (the Prometheus convention); plain counts are
/// emitted verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Unit {
    /// Durations recorded in nanoseconds.
    Nanoseconds,
    /// Dimensionless values (batch sizes, element counts, ...).
    Count,
}

impl Unit {
    /// Scale a raw value for exposition (`Nanoseconds` → seconds).
    pub fn scale(&self, raw: f64) -> f64 {
        match self {
            Unit::Nanoseconds => raw / 1e9,
            Unit::Count => raw,
        }
    }
}

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    enabled: bool,
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new(enabled: bool) -> Self {
        Counter {
            enabled,
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if self.enabled {
            // relaxed: pure counter — no other memory is published by an
            // increment, and fetch_add atomicity alone makes the total exact.
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        // relaxed: reads a standalone monotonic total; no ordering with
        // any other location is implied or needed.
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    /// A standalone, enabled counter (not attached to any registry).
    fn default() -> Self {
        Counter::new(true)
    }
}

/// A last-write-wins scalar (loss values, best-so-far scores, depths).
#[derive(Debug)]
pub struct Gauge {
    enabled: bool,
    bits: AtomicU64,
}

impl Gauge {
    pub(crate) fn new(enabled: bool) -> Self {
        Gauge {
            enabled,
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        if self.enabled {
            // relaxed: last-write-wins scalar; the single atomic store is
            // the whole protocol, nothing else is published with it.
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta — the up/down counting mode used
    /// for resource gauges such as live connection counts. Lock-free via
    /// a compare-exchange loop on the f64 bit pattern.
    pub fn add(&self, delta: f64) {
        if !self.enabled {
            return;
        }
        // relaxed: the CAS loop needs only atomicity on this one word —
        // every retry re-reads the latest value, so deltas are never lost
        // regardless of ordering, and no other memory rides along.
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                // relaxed: see the invariant on the load above; the CAS
                // succeeds only against the value it read.
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Add one (e.g. a connection opened).
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtract one (e.g. a connection closed).
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // relaxed: single-word read of a last-write-wins scalar.
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    /// A standalone, enabled gauge (not attached to any registry).
    fn default() -> Self {
        Gauge::new(true)
    }
}

/// Total bucket count: values 0–3 exactly, then 4 linear sub-buckets per
/// power-of-two octave up to 2^40 (≈ 18 minutes in nanoseconds), with the
/// final bucket open-ended.
pub const NUM_BUCKETS: usize = 160;

/// Bucket index for a value: ≤ 25 % relative width everywhere except the
/// open-ended top bucket.
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let octave = (63 - v.leading_zeros()) as usize; // >= 2
    let sub = ((v >> (octave - 2)) & 3) as usize;
    (((octave - 1) << 2) + sub).min(NUM_BUCKETS - 1)
}

/// `[lo, hi)` bounds of a bucket; `hi == None` marks the open-ended top
/// bucket.
fn bucket_bounds(idx: usize) -> (u64, Option<u64>) {
    if idx < 4 {
        return (idx as u64, Some(idx as u64 + 1));
    }
    let octave = (idx >> 2) + 1;
    let sub = (idx & 3) as u64;
    let width = 1u64 << (octave - 2);
    let lo = (1u64 << octave) + sub * width;
    if idx == NUM_BUCKETS - 1 {
        (lo, None)
    } else {
        (lo, Some(lo + width))
    }
}

/// A log-bucketed histogram of `u64` values, recordable concurrently
/// without locks.
///
/// Buckets are power-of-two octaves split into 4 linear sub-buckets, so a
/// reported quantile is within 25 % of the true order statistic; `max` is
/// exact. Latency histograms record nanoseconds ([`Unit::Nanoseconds`]);
/// size histograms record raw counts.
#[derive(Debug)]
pub struct Histogram {
    enabled: bool,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub(crate) fn new(enabled: bool) -> Self {
        Histogram {
            enabled,
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    ///
    /// Ordering protocol: the bucket/sum/max updates happen *before* the
    /// `Release` increment of `count`, and every reader `Acquire`-loads
    /// `count` first. A reader that observes `count == n` therefore sees
    /// at least `n` bucket increments (all `count` writes are RMWs, so
    /// the acquire load synchronizes with the whole release sequence) —
    /// a snapshot's bucket total can never fall below its `count`.
    pub fn record(&self, v: u64) {
        if !self.enabled {
            return;
        }
        // relaxed: ordered before readers by the Release on `count` below.
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // relaxed: same — `sum` is published by `count`'s Release below.
        self.sum.fetch_add(v, Ordering::Relaxed);
        // relaxed: same — `max` is published by `count`'s Release below.
        self.max.fetch_max(v, Ordering::Relaxed);
        // Release: pairs with the Acquire loads in `count()`; must stay
        // the last write of this method (see the protocol above).
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Record a duration as nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Time a closure into this histogram.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.record_duration(t0.elapsed());
        r
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        // Acquire: pairs with the Release in `record` — everything a
        // counted record wrote (bucket, sum, max) is visible after this.
        self.count.load(Ordering::Acquire)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        // relaxed: standalone monotonic total; callers needing
        // cross-field consistency go through `snapshot()`.
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest value recorded (exact).
    pub fn max(&self) -> u64 {
        // relaxed: standalone monotonic maximum, same caveat as `sum`.
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`): the inclusive upper
    /// bound of the bucket holding the rank-`⌈q·count⌉` value, clamped to
    /// the exact observed max. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let max = self.max();
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            // relaxed: the Acquire load of `count` above (via `self.count()`)
            // already ordered these bucket reads after the counted records.
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                let (lo, hi) = bucket_bounds(idx);
                return match hi {
                    Some(hi) => (hi - 1).min(max),
                    None => max.max(lo),
                };
            }
        }
        max
    }

    /// Point-in-time copy of the full distribution.
    ///
    /// Never torn: `count` is read *first* (Acquire, pairing with the
    /// Release write that ends every `record`), so the bucket reads below
    /// see at least the increments of every counted record — the
    /// snapshot's bucket total is always ≥ its `count`. (Records landing
    /// mid-snapshot may push the bucket total above `count`; that slack
    /// is bounded by the number of in-flight recorders.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let buckets: Vec<BucketCount> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                // relaxed: ordered after the counted records by the
                // Acquire load of `count` above.
                let count = b.load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                let (lo, hi) = bucket_bounds(idx);
                Some(BucketCount { lo, hi, count })
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets,
        }
    }
}

impl Default for Histogram {
    /// A standalone, enabled histogram (not attached to any registry) —
    /// handy for one-off measurements like the bench harness's
    /// client-side latency sweep.
    fn default() -> Self {
        Histogram::new(true)
    }
}

/// One non-empty histogram bucket in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Exclusive upper bound; `None` for the open-ended top bucket.
    pub hi: Option<u64>,
    /// Values recorded into this bucket.
    pub count: u64,
}

/// Serializable point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Non-empty buckets, in value order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }
}

/// RAII span: records the time from construction to drop into a
/// histogram. Obtained from [`crate::Registry::span`].
#[derive(Debug)]
pub struct SpanGuard {
    hist: Arc<Histogram>,
    start: Instant,
}

impl SpanGuard {
    pub(crate) fn new(hist: Arc<Histogram>) -> Self {
        SpanGuard {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_bucket_exactly() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, Some(v + 1)));
        }
    }

    #[test]
    fn buckets_tile_the_axis_without_gaps() {
        // Every bucket's hi is the next bucket's lo.
        for idx in 0..NUM_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(idx);
            let (next_lo, _) = bucket_bounds(idx + 1);
            assert_eq!(hi, Some(next_lo), "gap after bucket {idx}");
        }
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, None);
        // And the index function lands every value inside its bounds.
        for &v in &[0u64, 1, 3, 4, 5, 7, 8, 13, 100, 1023, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(v >= lo, "value {v} below bucket {idx} lo {lo}");
            if let Some(hi) = hi {
                assert!(v < hi, "value {v} not below bucket {idx} hi {hi}");
            }
        }
    }

    #[test]
    fn gauge_updown_counting_is_exact_under_contention() {
        let g = Arc::new(Gauge::default());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        g.inc();
                    }
                    for _ in 0..999 {
                        g.dec();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(), 8.0, "one net increment per thread");
        let d = Gauge::new(false);
        d.inc();
        d.add(5.0);
        assert_eq!(d.get(), 0.0, "disabled gauge records nothing");
    }

    #[test]
    fn disabled_instruments_record_nothing() {
        let c = Counter::new(false);
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::new(false);
        g.set(1.5);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::new(false);
        h.record(123);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn time_and_duration_recording() {
        let h = Histogram::default();
        let out = h.time(|| 42);
        assert_eq!(out, 42);
        h.record_duration(Duration::from_nanos(500));
        assert_eq!(h.count(), 2);
        assert!(h.max() >= 500);
    }
}
