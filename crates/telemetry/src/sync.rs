//! Synchronization primitives, swappable for [`loom`]'s instrumented
//! versions under `--cfg loom`.
//!
//! The CI `loom` job compiles this crate with `RUSTFLAGS="--cfg loom"`
//! (after `cargo add loom --package hpcnet-telemetry`), which routes
//! every atomic and lock in the instruments through loom's model checker
//! so `tests/concurrency_model.rs` can exhaustively explore
//! interleavings. Normal builds use `std` directly and loom is not a
//! dependency at all.
//!
//! `Arc` and `OnceLock` deliberately stay on `std`: the model tests
//! construct instruments directly and never exercise registry sharing.
//!
//! [`loom`]: https://docs.rs/loom

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::{Mutex, RwLock};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::{Mutex, RwLock};
