//! The metric registry: named, labeled instruments plus exposition.
//!
//! Lookup takes a short-lived `RwLock` read; recording through a handle
//! takes no lock at all, so hot paths fetch their handles once (or cache
//! them) and record lock-free afterwards. Metric names follow the
//! Prometheus convention (`snake_case`, `_total` for counters, `_seconds`
//! for time histograms); labels are sorted at registration so the same
//! label set always resolves to the same instrument.

use std::collections::BTreeMap;
use std::sync::{Arc, PoisonError};

use crate::sync::RwLock;

use serde::{Deserialize, Serialize};

use crate::instrument::{Counter, Gauge, Histogram, HistogramSnapshot, SpanGuard, Unit};
use crate::ring::{Event, EventRing, DEFAULT_RING_CAPACITY};

/// Owned, sorted label set.
type Labels = Vec<(String, String)>;

/// Instrument identity: name plus sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Labels,
}

impl Key {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Key {
            name: name.to_string(),
            labels,
        }
    }
}

/// A collection of named instruments with Prometheus-text and JSON
/// exposition and an attached anomaly [`EventRing`].
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    counters: RwLock<BTreeMap<Key, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<Key, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<Key, (Unit, Arc<Histogram>)>>,
    helps: RwLock<BTreeMap<String, String>>,
    events: EventRing,
}

impl Registry {
    /// An enabled registry with the default event-ring capacity.
    pub fn new() -> Self {
        Self::with_config(true, DEFAULT_RING_CAPACITY)
    }

    /// A registry whose instruments are all no-ops: lookups succeed and
    /// return handles, but recording does nothing and exposition is
    /// empty-valued. Lets an instrumented binary measure its own
    /// telemetry overhead without recompiling.
    pub fn disabled() -> Self {
        Self::with_config(false, DEFAULT_RING_CAPACITY)
    }

    /// Full control over enablement and event-ring capacity.
    pub fn with_config(enabled: bool, ring_capacity: usize) -> Self {
        Registry {
            enabled,
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            helps: RwLock::new(BTreeMap::new()),
            events: EventRing::with_enabled(ring_capacity, enabled),
        }
    }

    /// Register the `# HELP` text for a metric family. Instrumenting
    /// crates keep the text next to (and identical to) the doc comment
    /// of the metric-name constant; families without registered help
    /// still get a placeholder `# HELP` line so exposition always pairs
    /// `HELP` with `TYPE`.
    pub fn set_help(&self, name: &str, help: &str) {
        self.helps
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), help.trim().to_string());
    }

    /// Register `# HELP` text for many families at once (the shape of
    /// the per-crate `METRIC_HELP` tables). Help strings are trimmed, so
    /// doc-comment-derived text (which carries a leading space) reads
    /// cleanly.
    pub fn set_helps(&self, entries: &[(&str, &str)]) {
        let mut helps = self.helps.write().unwrap_or_else(PoisonError::into_inner);
        for (name, help) in entries {
            helps.insert((*name).to_string(), help.trim().to_string());
        }
    }

    /// Does this registry record anything?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Get or create an unlabeled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get or create a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = Key::new(name, labels);
        if let Some(c) = self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return c.clone();
        }
        self.counters
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert_with(|| Arc::new(Counter::new(self.enabled)))
            .clone()
    }

    /// Get or create an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Get or create a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = Key::new(name, labels);
        if let Some(g) = self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return g.clone();
        }
        self.gauges
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert_with(|| Arc::new(Gauge::new(self.enabled)))
            .clone()
    }

    /// Get or create a latency histogram (values are nanoseconds; name it
    /// `*_seconds` — exposition scales to seconds).
    pub fn time_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_with_unit(name, labels, Unit::Nanoseconds)
    }

    /// Get or create a dimensionless value histogram (batch sizes, ...).
    pub fn value_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_with_unit(name, labels, Unit::Count)
    }

    fn histogram_with_unit(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        unit: Unit,
    ) -> Arc<Histogram> {
        let key = Key::new(name, labels);
        if let Some((_, h)) = self
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return h.clone();
        }
        self.histograms
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert_with(|| (unit, Arc::new(Histogram::new(self.enabled))))
            .1
            .clone()
    }

    /// Start an RAII span into the named time histogram: elapsed time is
    /// recorded when the returned guard drops.
    pub fn span(&self, name: &str, labels: &[(&str, &str)]) -> SpanGuard {
        SpanGuard::new(self.time_histogram(name, labels))
    }

    /// The anomaly event ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Record an anomaly event (see [`EventRing::push`]).
    pub fn record_event(&self, kind: &str, label: &str, message: &str, value: f64) {
        self.events.push(kind, label, message, value);
    }

    /// Prometheus text exposition of every registered instrument.
    ///
    /// Every family gets a `# HELP` line (the registered text, or a
    /// placeholder pointing at [`Registry::set_help`]) immediately
    /// followed by its `# TYPE` line. Histograms emit cumulative
    /// `_bucket{le="..."}` lines for their non-empty buckets plus the
    /// mandatory `+Inf` bucket, `_sum`, and `_count`; nanosecond
    /// histograms are scaled to seconds.
    pub fn prometheus_text(&self) -> String {
        let helps = self
            .helps
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                let help = helps
                    .get(name)
                    .map(|h| help_escape(h))
                    .unwrap_or_else(|| "(no help registered)".to_string());
                out.push_str(&format!("# HELP {name} {help}\n"));
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for (key, c) in self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            type_line(&mut out, &key.name, "counter");
            out.push_str(&format!(
                "{}{} {}\n",
                key.name,
                render_labels(&key.labels, None),
                c.get()
            ));
        }
        for (key, g) in self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            type_line(&mut out, &key.name, "gauge");
            out.push_str(&format!(
                "{}{} {}\n",
                key.name,
                render_labels(&key.labels, None),
                g.get()
            ));
        }
        for (key, (unit, h)) in self
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            type_line(&mut out, &key.name, "histogram");
            let snap = h.snapshot();
            let mut cum = 0u64;
            for b in &snap.buckets {
                cum += b.count;
                if let Some(hi) = b.hi {
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        key.name,
                        render_labels(&key.labels, Some(&unit.scale(hi as f64).to_string())),
                        cum
                    ));
                }
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                key.name,
                render_labels(&key.labels, Some("+Inf")),
                snap.count
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                key.name,
                render_labels(&key.labels, None),
                unit.scale(snap.sum as f64)
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                key.name,
                render_labels(&key.labels, None),
                snap.count
            ));
        }
        out
    }

    /// Serializable point-in-time view of everything in the registry.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, c)| CounterEntry {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, g)| GaugeEntry {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, (unit, h))| HistogramEntry {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    unit: *unit,
                    histogram: h.snapshot(),
                })
                .collect(),
            events: self.events.snapshot(),
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Render `{k="v",...}` with an optional trailing `le` label (histogram
/// buckets). Escapes `\`, `"`, and newlines in label values.
fn render_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Prometheus `# HELP` escaping: only `\` and line feeds (quotes stay
/// literal in help text, unlike label values).
fn help_escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// One counter in a [`RegistrySnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Metric name.
    pub name: String,
    /// Sorted labels.
    pub labels: Vec<(String, String)>,
    /// Counter value.
    pub value: u64,
}

/// One gauge in a [`RegistrySnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Metric name.
    pub name: String,
    /// Sorted labels.
    pub labels: Vec<(String, String)>,
    /// Gauge value.
    pub value: f64,
}

/// One histogram in a [`RegistrySnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Metric name.
    pub name: String,
    /// Sorted labels.
    pub labels: Vec<(String, String)>,
    /// Raw-value unit (nanoseconds vs dimensionless).
    pub unit: Unit,
    /// The distribution.
    pub histogram: HistogramSnapshot,
}

/// Serializable snapshot of a whole [`Registry`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// All counters, in name/label order.
    pub counters: Vec<CounterEntry>,
    /// All gauges, in name/label order.
    pub gauges: Vec<GaugeEntry>,
    /// All histograms, in name/label order.
    pub histograms: Vec<HistogramEntry>,
    /// Retained anomaly events, oldest first.
    pub events: Vec<Event>,
}

impl RegistrySnapshot {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        // Snapshots are plain data; if serde_json still errors, report it
        // in-band instead of panicking whatever thread asked for metrics.
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| format!("{{\"error\":\"snapshot serialization failed: {e}\"}}"))
    }

    /// Find a counter's value by name, summing across label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Find a histogram by name and (subset of) labels: every given label
    /// must match; the first such entry wins.
    pub fn find_histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| {
                h.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| h.labels.iter().any(|(hk, hv)| hk == k && hv == v))
            })
            .map(|h| &h.histogram)
    }

    /// Events of one kind, oldest first.
    pub fn events_of_kind(&self, kind: &str) -> Vec<&Event> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_key() {
        let reg = Registry::new();
        let a = reg.counter_with("x_total", &[("m", "a")]);
        let b = reg.counter_with("x_total", &[("m", "a")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // Different labels are different instruments.
        assert_eq!(reg.counter_with("x_total", &[("m", "b")]).get(), 0);
        // Label order does not matter.
        let c = reg.counter_with("y_total", &[("a", "1"), ("b", "2")]);
        let d = reg.counter_with("y_total", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(d.get(), 1);
    }

    #[test]
    fn disabled_registry_exposes_zeroes() {
        let reg = Registry::disabled();
        reg.counter("n_total").add(9);
        reg.gauge("g").set(4.2);
        reg.time_histogram("t_seconds", &[]).record(1_000_000);
        reg.record_event("k", "l", "m", 1.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_total("n_total"), 0);
        assert_eq!(snap.find_histogram("t_seconds", &[]).unwrap().count, 0);
        assert!(snap.events.is_empty());
        assert!(!reg.is_enabled());
    }

    #[test]
    fn every_family_carries_help_and_type_lines() {
        let reg = Registry::new();
        reg.set_help("documented_total", "Requests documented.");
        reg.counter("documented_total").inc();
        reg.counter_with("documented_total", &[("m", "a")]).inc();
        reg.gauge("g").set(1.0);
        reg.time_histogram("t_seconds", &[("stage", "x")]).record(5);
        let text = reg.prometheus_text();
        for family in ["documented_total", "g", "t_seconds"] {
            let help = format!("# HELP {family} ");
            let ty = format!("# TYPE {family} ");
            assert_eq!(text.matches(&help).count(), 1, "one HELP for {family}");
            assert_eq!(text.matches(&ty).count(), 1, "one TYPE for {family}");
            let help_at = text.find(&help).unwrap();
            let type_at = text.find(&ty).unwrap();
            assert!(help_at < type_at, "HELP precedes TYPE for {family}");
        }
        // Registered help is used verbatim; unregistered families still
        // carry a HELP line.
        assert!(text.contains("# HELP documented_total Requests documented.\n"));
        assert!(text.contains("# HELP g (no help registered)\n"));
        // Multi-line help is escaped to stay a single exposition line.
        reg.set_help("g", "line one\nline two");
        assert!(reg
            .prometheus_text()
            .contains("# HELP g line one\\nline two\n"));
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let reg = Registry::new();
        reg.counter_with("r_total", &[("model", "m")]).add(2);
        reg.value_histogram("sizes", &[]).record(8);
        reg.record_event("quality_fallback", "m", "in_key", 0.5);
        let snap = reg.snapshot();
        let json = snap.to_json();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counter_total("r_total"), 2);
        assert_eq!(back.find_histogram("sizes", &[]).unwrap().count, 1);
        assert_eq!(back.events_of_kind("quality_fallback").len(), 1);
    }
}
