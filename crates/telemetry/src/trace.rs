//! Distributed request tracing: span trees, context propagation, and a
//! bounded tail-sampling flight recorder (DESIGN.md §16).
//!
//! PR 4's aggregate histograms can say p99 is bad; they cannot say
//! *which* request was slow or *where* its time went across the four-hop
//! serving path (`ClusterClient` → `RemoteClient` → `NetServer` →
//! orchestrator worker). This module adds the per-request view:
//!
//! * [`TraceId`] / [`SpanId`] / [`TraceContext`] — identity and wire
//!   propagation. A context is 16 bytes on the wire
//!   ([`TraceContext::to_wire`]); ids are process-seeded so two
//!   processes never mint colliding ids.
//! * [`SpanRecord`] / [`Trace`] — one timed, annotated node of a span
//!   tree, and the per-request tree itself. Span names on the serving
//!   path come from [`stage_names`], the single shared const table the
//!   `hpcnet-analysis` `stage-name-literal` lint enforces.
//! * [`FlightRecorder`] — a bounded in-memory ring of recent traces
//!   with **tail sampling**: error, deadline-exceeded, guard-fallback,
//!   and slower-than-threshold traces are always retained; boring ones
//!   are retained one-in-N ([`FlightRecorderConfig::sample_every`]).
//! * [`merge_traces`] — joins span lists from different processes by
//!   `TraceId` into single cross-process trees (client + server halves
//!   of one request).
//!
//! Like `Arc`/`OnceLock` in the instruments, everything here stays on
//! plain `std` sync types even under `--cfg loom`: traces are assembled
//! single-threaded per request and the recorder is a coarse ring, not a
//! lock-free hot-path structure the model checker needs to explore.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant, SystemTime};

use serde::{Deserialize, Serialize};

/// The single shared table of stage/span names used by metrics *and*
/// traces. Every crate that opens a stage span or labels a stage metric
/// must name it through these consts — the `hpcnet-analysis`
/// `stage-name-literal` lint rejects raw stage-name string literals
/// anywhere else, so the metric series and the trace span tree can
/// never drift apart.
pub mod stage_names {
    /// Root span of one request as seen by whichever hop originated it.
    pub const REQUEST: &str = "request";
    /// Time spent queued in the admission queue before a worker picked
    /// the request up.
    pub const QUEUE_WAIT: &str = "queue_wait";
    /// Input tensor fetch from the store.
    pub const FETCH: &str = "fetch";
    /// Autoencoder encode of the fetched inputs.
    pub const ENCODE: &str = "encode";
    /// The surrogate forward pass (f64 path).
    pub const INFER: &str = "infer";
    /// The surrogate forward pass (demoted f32 path).
    pub const INFER_F32: &str = "infer_f32";
    /// QualityGuard validation of the surrogate output.
    pub const GUARD: &str = "guard";
    /// Exact-solver fallback after a guard miss.
    pub const FALLBACK: &str = "fallback";
    /// One shard attempt made by `ClusterClient` (child of [`REQUEST`]).
    pub const SHARD: &str = "shard";
    /// One background fine-tune run of the online retrainer (not a
    /// child of any request span; it carries its own root).
    pub const RETRAIN: &str = "retrain";

    /// Every name above, for membership checks in tests and lints.
    pub const ALL: &[&str] = &[
        REQUEST, QUEUE_WAIT, FETCH, ENCODE, INFER, INFER_F32, GUARD, FALLBACK, SHARD, RETRAIN,
    ];

    /// The per-request *stage* names (children of the server-side
    /// request span): [`ALL`] minus the structural [`REQUEST`]/[`SHARD`]
    /// spans and the background [`RETRAIN`] stage.
    pub const STAGES: &[&str] = &[QUEUE_WAIT, FETCH, ENCODE, INFER, INFER_F32, GUARD, FALLBACK];

    /// Is `name` one of the shared stage/span names?
    pub fn is_known(name: &str) -> bool {
        ALL.contains(&name)
    }
}

/// Well-known retention tags a [`Trace`] can carry. The flight
/// recorder's tail-sampling rules key off these.
pub mod tags {
    /// Some span in the trace ended in an error.
    pub const ERROR: &str = "error";
    /// The request ran over its deadline.
    pub const DEADLINE: &str = "deadline_exceeded";
    /// The QualityGuard fell back to (or rejected via) the exact solver.
    pub const FALLBACK: &str = "guard_fallback";
    /// Root duration exceeded the recorder's slow threshold (applied by
    /// [`FlightRecorder::record`]).
    pub const SLOW: &str = "slow";
    /// The trace records an online-retraining model swap or rollback.
    /// Always retained: swaps are rare and operators audit them.
    pub const RETRAIN: &str = "retrain";
    /// Retained only by the one-in-N sampler, not by any rule above
    /// (applied by [`FlightRecorder::record`]).
    pub const SAMPLED: &str = "sampled";
}

/// Identity of one request's trace, shared by every span in every
/// process the request touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TraceId(pub u64);

/// Identity of one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SpanId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Per-process random seed for id generation, derived from the standard
/// library's per-process `RandomState` entropy — no extra dependency,
/// and two processes serving the same fleet mint disjoint id streams.
fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        use std::hash::{BuildHasher, Hasher};
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u64(u64::from(std::process::id()));
        h.finish()
    })
}

/// SplitMix64 finalizer: decorrelates the sequential counter so ids
/// look random and never collide within a process.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mint a fresh non-zero id (used for both trace and span ids).
pub fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    // relaxed: pure counter; uniqueness only needs distinct values, and
    // fetch_add is atomic regardless of ordering.
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    mix(process_seed().wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15))) | 1
}

/// The propagated part of a trace: which trace a downstream hop should
/// record into, and which span its work hangs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// The request's trace.
    pub trace_id: TraceId,
    /// The upstream span the next hop's spans are children of; `None`
    /// when the downstream hop's request span is the root.
    pub parent_span: Option<SpanId>,
}

/// Wire size of an encoded [`TraceContext`].
pub const TRACE_CONTEXT_WIRE_LEN: usize = 16;

impl TraceContext {
    /// A fresh root context: new trace id, no parent.
    pub fn root() -> Self {
        TraceContext {
            trace_id: TraceId(next_id()),
            parent_span: None,
        }
    }

    /// The context a child hop should receive when its spans belong
    /// under `parent`.
    pub fn child_of(&self, parent: SpanId) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            parent_span: Some(parent),
        }
    }

    /// Encode as 16 little-endian bytes (`trace_id`, then parent span id
    /// with `0` meaning "no parent").
    pub fn to_wire(&self) -> [u8; TRACE_CONTEXT_WIRE_LEN] {
        let mut out = [0u8; TRACE_CONTEXT_WIRE_LEN];
        out[..8].copy_from_slice(&self.trace_id.0.to_le_bytes());
        let parent = self.parent_span.map_or(0, |s| s.0);
        out[8..].copy_from_slice(&parent.to_le_bytes());
        out
    }

    /// Decode the [`to_wire`](Self::to_wire) form. A zero trace id means
    /// "no context" and decodes to `None`.
    pub fn from_wire(bytes: &[u8; TRACE_CONTEXT_WIRE_LEN]) -> Option<Self> {
        let mut id = [0u8; 8];
        id.copy_from_slice(&bytes[..8]);
        let trace_id = u64::from_le_bytes(id);
        if trace_id == 0 {
            return None;
        }
        let mut parent = [0u8; 8];
        parent.copy_from_slice(&bytes[8..]);
        let parent = u64::from_le_bytes(parent);
        Some(TraceContext {
            trace_id: TraceId(trace_id),
            parent_span: (parent != 0).then_some(SpanId(parent)),
        })
    }
}

/// Outcome of one span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", content = "message", rename_all = "snake_case")]
pub enum SpanStatus {
    /// The spanned work succeeded.
    Ok,
    /// The spanned work failed; the message is the error's display form.
    Error(String),
}

impl SpanStatus {
    /// Is this an error status?
    pub fn is_error(&self) -> bool {
        matches!(self, SpanStatus::Error(_))
    }
}

/// One timed node of a span tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanRecord {
    /// This span's id.
    pub span_id: SpanId,
    /// Parent span id; `None` for a root span.
    pub parent: Option<SpanId>,
    /// Span name — on the serving path, one of [`stage_names`].
    pub name: String,
    /// Which process/component recorded the span (`"server"`,
    /// `"remote_client"`, `"cluster"`, …).
    pub service: String,
    /// Wall-clock start, nanoseconds since the Unix epoch (best effort;
    /// cross-process skew is cosmetic, ordering within a process is not).
    pub start_unix_nanos: u64,
    /// Span duration in nanoseconds.
    pub duration_nanos: u64,
    /// Outcome.
    pub status: SpanStatus,
    /// Free-form key/value annotations (model name, endpoint, failover
    /// hops, coalesced batch size, …).
    pub annotations: Vec<(String, String)>,
}

impl SpanRecord {
    /// A fresh `Ok` span with a newly minted id and no annotations.
    pub fn new(name: &str, service: &str, start_unix_nanos: u64, duration: Duration) -> Self {
        SpanRecord {
            span_id: SpanId(next_id()),
            parent: None,
            name: name.to_string(),
            service: service.to_string(),
            start_unix_nanos,
            duration_nanos: duration.as_nanos() as u64,
            status: SpanStatus::Ok,
            annotations: Vec::new(),
        }
    }

    /// Builder-style: set the parent.
    pub fn with_parent(mut self, parent: SpanId) -> Self {
        self.parent = Some(parent);
        self
    }

    /// Builder-style: add one annotation.
    pub fn annotate(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.annotations.push((key.to_string(), value.to_string()));
        self
    }

    /// Builder-style: mark failed with the error's display form.
    pub fn with_error(mut self, message: impl std::fmt::Display) -> Self {
        self.status = SpanStatus::Error(message.to_string());
        self
    }
}

/// Wall-clock now, nanoseconds since the Unix epoch (0 if the clock is
/// before the epoch, which only a badly misconfigured host produces).
pub fn unix_nanos_now() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64)
}

/// A started-but-unfinished span measurement: monotonic duration plus a
/// wall-clock anchor for cross-process display.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    started: Instant,
    start_unix_nanos: u64,
}

impl SpanTimer {
    /// Start timing now.
    pub fn start() -> Self {
        SpanTimer {
            started: Instant::now(),
            start_unix_nanos: unix_nanos_now(),
        }
    }

    /// Wall-clock anchor of the start.
    pub fn start_unix_nanos(&self) -> u64 {
        self.start_unix_nanos
    }

    /// Elapsed time since [`start`](Self::start).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Finish into a span record named `name`.
    pub fn finish(&self, name: &str, service: &str) -> SpanRecord {
        SpanRecord::new(name, service, self.start_unix_nanos, self.started.elapsed())
    }
}

impl Default for SpanTimer {
    fn default() -> Self {
        Self::start()
    }
}

/// One request's span tree (possibly a partial, single-process view —
/// see [`merge_traces`] for joining the halves).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// The trace id every span shares.
    pub trace_id: TraceId,
    /// All spans recorded for this trace, roots first where possible.
    pub spans: Vec<SpanRecord>,
    /// Retention tags ([`tags`]): why the flight recorder kept it.
    #[serde(default)]
    pub tags: Vec<String>,
}

impl Trace {
    /// An empty trace for `trace_id`.
    pub fn new(trace_id: TraceId) -> Self {
        Trace {
            trace_id,
            spans: Vec::new(),
            tags: Vec::new(),
        }
    }

    /// Add a span.
    pub fn push(&mut self, span: SpanRecord) {
        self.spans.push(span);
    }

    /// Add a retention tag (deduplicated).
    pub fn tag(&mut self, tag: &str) {
        if !self.tags.iter().any(|t| t == tag) {
            self.tags.push(tag.to_string());
        }
    }

    /// Is `tag` set?
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }

    /// The root span: no parent, earliest start wins on ties.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.parent.is_none())
            .min_by_key(|s| s.start_unix_nanos)
    }

    /// Spans whose parent is `parent`.
    pub fn children_of(&self, parent: SpanId) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.parent == Some(parent))
            .collect()
    }

    /// First span named `name`, if any.
    pub fn span_named(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Names of the stage spans present ([`stage_names::STAGES`] order
    /// not guaranteed).
    pub fn stage_span_names(&self) -> Vec<&str> {
        self.spans
            .iter()
            .filter(|s| stage_names::STAGES.contains(&s.name.as_str()))
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Did any span fail?
    pub fn has_error(&self) -> bool {
        self.spans.iter().any(|s| s.status.is_error())
    }

    /// Duration of the trace: the root span's duration, or the longest
    /// span when no root was recorded locally.
    pub fn duration(&self) -> Duration {
        let nanos = self
            .root()
            .map(|r| r.duration_nanos)
            .or_else(|| self.spans.iter().map(|s| s.duration_nanos).max())
            .unwrap_or(0);
        Duration::from_nanos(nanos)
    }
}

/// Join per-process partial traces by [`TraceId`]: spans concatenate
/// (deduplicated by span id), tags union. Input order is preserved for
/// first appearance of each trace id.
pub fn merge_traces(parts: impl IntoIterator<Item = Trace>) -> Vec<Trace> {
    let mut order: Vec<TraceId> = Vec::new();
    let mut merged: std::collections::BTreeMap<TraceId, Trace> = std::collections::BTreeMap::new();
    for part in parts {
        let entry = merged.entry(part.trace_id).or_insert_with(|| {
            order.push(part.trace_id);
            Trace::new(part.trace_id)
        });
        for span in part.spans {
            if !entry.spans.iter().any(|s| s.span_id == span.span_id) {
                entry.spans.push(span);
            }
        }
        for tag in part.tags {
            entry.tag(&tag);
        }
    }
    order
        .into_iter()
        .filter_map(|id| merged.remove(&id))
        .collect()
}

/// Serialize traces to the JSON array form the wire `Traces` op and
/// `trace_dump()` expose.
pub fn traces_to_json(traces: &[Trace]) -> String {
    serde_json::to_string(traces)
        .unwrap_or_else(|e| format!("[{{\"error\":\"trace serialization failed: {e}\"}}]"))
}

/// Parse the [`traces_to_json`] form.
pub fn traces_from_json(json: &str) -> Result<Vec<Trace>, serde_json::Error> {
    serde_json::from_str(json)
}

/// Flight-recorder sizing and tail-sampling policy.
#[derive(Debug, Clone, Copy)]
pub struct FlightRecorderConfig {
    /// Maximum retained traces; the oldest is evicted beyond this.
    pub capacity: usize,
    /// Root durations at or above this are always retained (and tagged
    /// [`tags::SLOW`]).
    pub slow_threshold: Duration,
    /// Of the traces no rule matched, retain one in this many (tagged
    /// [`tags::SAMPLED`]). `0` disables sampling entirely (rule-matched
    /// traces are still retained).
    pub sample_every: u64,
}

impl Default for FlightRecorderConfig {
    fn default() -> Self {
        FlightRecorderConfig {
            capacity: 128,
            slow_threshold: Duration::from_millis(250),
            sample_every: 8,
        }
    }
}

/// Point-in-time accounting of a [`FlightRecorder`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlightRecorderStats {
    /// Traces offered via [`FlightRecorder::record`].
    pub seen: u64,
    /// Traces retained (still resident or since evicted by capacity).
    pub retained: u64,
}

/// A bounded in-memory ring of recently completed traces with tail
/// sampling: every error / deadline-exceeded / guard-fallback / slow
/// trace is retained, the rest one-in-N. Disabled recorders (paired
/// with [`crate::Registry::disabled`]) drop everything without locking.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: bool,
    config: FlightRecorderConfig,
    ring: Mutex<VecDeque<Trace>>,
    seen: AtomicU64,
    retained: AtomicU64,
}

impl FlightRecorder {
    /// An enabled recorder with the given policy.
    pub fn new(config: FlightRecorderConfig) -> Self {
        FlightRecorder {
            enabled: true,
            config,
            ring: Mutex::new(VecDeque::with_capacity(config.capacity.min(64))),
            seen: AtomicU64::new(0),
            retained: AtomicU64::new(0),
        }
    }

    /// A recorder that retains nothing (zero overhead beyond one branch).
    pub fn disabled() -> Self {
        FlightRecorder {
            enabled: false,
            config: FlightRecorderConfig::default(),
            ring: Mutex::new(VecDeque::new()),
            seen: AtomicU64::new(0),
            retained: AtomicU64::new(0),
        }
    }

    /// Does this recorder retain anything?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The slow-retention threshold in force.
    pub fn slow_threshold(&self) -> Duration {
        self.config.slow_threshold
    }

    /// Offer a completed trace. Returns `true` when the trace was
    /// retained (and tags it with why), `false` when sampled out.
    pub fn record(&self, mut trace: Trace) -> bool {
        if !self.enabled {
            return false;
        }
        // relaxed: pure counters; the ring mutex orders the data itself.
        let seen = self.seen.fetch_add(1, Ordering::Relaxed);
        if trace.has_error() {
            trace.tag(tags::ERROR);
        }
        if trace.duration() >= self.config.slow_threshold {
            trace.tag(tags::SLOW);
        }
        let must_retain = trace.has_tag(tags::ERROR)
            || trace.has_tag(tags::DEADLINE)
            || trace.has_tag(tags::FALLBACK)
            || trace.has_tag(tags::SLOW)
            || trace.has_tag(tags::RETRAIN);
        if !must_retain {
            let sampled_in = self.config.sample_every != 0 && seen % self.config.sample_every == 0;
            if !sampled_in {
                return false;
            }
            trace.tag(tags::SAMPLED);
        }
        // relaxed: pure counter.
        self.retained.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() >= self.config.capacity.max(1) {
            ring.pop_front();
        }
        ring.push_back(trace);
        true
    }

    /// Recent retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<Trace> {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Offered/retained accounting.
    pub fn stats(&self) -> FlightRecorderStats {
        FlightRecorderStats {
            // relaxed: independent counters; approximate consistency is
            // fine for accounting reads.
            seen: self.seen.load(Ordering::Relaxed),
            // relaxed: same pure-counter invariant as `seen` above.
            retained: self.retained.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_trace(dur_ms: u64) -> Trace {
        let mut t = Trace::new(TraceId(next_id()));
        let root = SpanRecord::new(
            stage_names::REQUEST,
            "test",
            unix_nanos_now(),
            Duration::from_millis(dur_ms),
        );
        let root_id = root.span_id;
        t.push(root);
        t.push(
            SpanRecord::new(
                stage_names::INFER,
                "test",
                unix_nanos_now(),
                Duration::from_millis(dur_ms / 2),
            )
            .with_parent(root_id),
        );
        t
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }

    #[test]
    fn context_wire_roundtrip() {
        let root = TraceContext::root();
        assert_eq!(TraceContext::from_wire(&root.to_wire()), Some(root));
        let child = root.child_of(SpanId(42));
        assert_eq!(TraceContext::from_wire(&child.to_wire()), Some(child));
        assert_eq!(TraceContext::from_wire(&[0u8; 16]), None);
    }

    #[test]
    fn tail_sampling_always_keeps_interesting_traces() {
        let rec = FlightRecorder::new(FlightRecorderConfig {
            capacity: 16,
            slow_threshold: Duration::from_millis(100),
            sample_every: 0, // no sampling: only the rules retain
        });
        // Boring and fast: dropped.
        assert!(!rec.record(quick_trace(1)));
        // Slow: retained and tagged.
        assert!(rec.record(quick_trace(150)));
        // Error: retained.
        let mut errored = quick_trace(1);
        errored.spans[1] = errored.spans[1].clone().with_error("boom");
        assert!(rec.record(errored));
        // Explicit fallback / deadline tags: retained.
        let mut fb = quick_trace(1);
        fb.tag(tags::FALLBACK);
        assert!(rec.record(fb));
        let mut dl = quick_trace(1);
        dl.tag(tags::DEADLINE);
        assert!(rec.record(dl));

        let snap = rec.snapshot();
        assert_eq!(snap.len(), 4);
        assert!(snap[0].has_tag(tags::SLOW));
        assert!(snap[1].has_tag(tags::ERROR));
        assert!(snap[2].has_tag(tags::FALLBACK));
        assert!(snap[3].has_tag(tags::DEADLINE));
        assert_eq!(rec.stats().seen, 5);
        assert_eq!(rec.stats().retained, 4);
    }

    #[test]
    fn sampler_keeps_one_in_n_and_capacity_bounds_the_ring() {
        let rec = FlightRecorder::new(FlightRecorderConfig {
            capacity: 4,
            slow_threshold: Duration::from_secs(3600),
            sample_every: 10,
        });
        for _ in 0..100 {
            rec.record(quick_trace(1));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 4, "ring bounded at capacity");
        assert!(snap.iter().all(|t| t.has_tag(tags::SAMPLED)));
        assert_eq!(rec.stats().seen, 100);
        assert_eq!(rec.stats().retained, 10);
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let rec = FlightRecorder::disabled();
        assert!(!rec.record(quick_trace(1_000)));
        assert!(rec.snapshot().is_empty());
        assert_eq!(rec.stats().seen, 0);
    }

    #[test]
    fn merge_joins_process_halves_by_trace_id() {
        let ctx = TraceContext::root();
        let mut client_half = Trace::new(ctx.trace_id);
        let root = SpanRecord::new(
            stage_names::REQUEST,
            "cluster",
            unix_nanos_now(),
            Duration::from_millis(5),
        );
        let root_id = root.span_id;
        client_half.push(root);

        let mut server_half = Trace::new(ctx.trace_id);
        server_half.push(
            SpanRecord::new(
                stage_names::INFER,
                "server",
                unix_nanos_now(),
                Duration::from_millis(2),
            )
            .with_parent(root_id),
        );
        server_half.tag(tags::SAMPLED);

        let unrelated = quick_trace(1);
        let merged = merge_traces(vec![client_half, server_half, unrelated]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].spans.len(), 2);
        assert_eq!(merged[0].root().map(|r| r.span_id), Some(root_id));
        assert_eq!(merged[0].children_of(root_id).len(), 1);
        assert!(merged[0].has_tag(tags::SAMPLED));
    }

    #[test]
    fn trace_json_roundtrip() {
        let mut t = quick_trace(3);
        t.tag(tags::SLOW);
        let json = traces_to_json(&[t.clone()]);
        let back = traces_from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].trace_id, t.trace_id);
        assert_eq!(back[0].spans.len(), 2);
        assert!(back[0].has_tag(tags::SLOW));
    }

    #[test]
    fn stage_name_table_is_consistent() {
        for s in stage_names::STAGES {
            assert!(stage_names::is_known(s));
        }
        assert!(stage_names::is_known(stage_names::REQUEST));
        assert!(!stage_names::is_known("made-up"));
    }

    #[test]
    fn analysis_lint_mirror_of_stage_names_is_in_sync() {
        // `hpcnet-analysis` is dependency-free, so its `stage-name-literal`
        // rule mirrors this table; this pin fails when a name is added or
        // renamed here without updating the mirror.
        let rules = include_str!("../../analysis/src/rules.rs");
        for name in stage_names::ALL {
            assert!(
                rules.contains(&format!("\"{name}\"")),
                "stage name {name:?} missing from crates/analysis/src/rules.rs STAGE_NAMES"
            );
        }
    }
}
