//! A bounded, overwrite-oldest ring buffer for anomaly events.
//!
//! Anomalies (overload rejections, deadline expiries, quality misses) are
//! rare but individually interesting — a counter says *how many*, the ring
//! says *which*. The ring keeps the most recent `capacity` events; the
//! monotonically increasing `seq` of each event makes overwritten history
//! detectable (`total_recorded() - len()` events have been dropped).

use std::collections::VecDeque;
use std::sync::PoisonError;

use serde::{Deserialize, Serialize};

use crate::sync::{AtomicU64, Mutex, Ordering};

/// Default ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// One recorded anomaly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Monotonic sequence number (0-based, never reused).
    pub seq: u64,
    /// Event kind, e.g. `overload_rejected`, `deadline_expired`,
    /// `quality_fallback`, `quality_rejected`.
    pub kind: String,
    /// The entity the event concerns (usually a model name).
    pub label: String,
    /// Free-form detail (usually the offending tensor key).
    pub message: String,
    /// A numeric payload when one exists (e.g. the first output value a
    /// quality validator rejected); `NaN` when there is none.
    pub value: f64,
}

/// Bounded event ring with overwrite-oldest semantics.
#[derive(Debug)]
pub struct EventRing {
    enabled: bool,
    capacity: usize,
    next_seq: AtomicU64,
    inner: Mutex<VecDeque<Event>>,
}

impl EventRing {
    /// A ring holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self::with_enabled(capacity, true)
    }

    pub(crate) fn with_enabled(capacity: usize, enabled: bool) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            enabled,
            capacity,
            next_seq: AtomicU64::new(0),
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Record an event, evicting the oldest if the ring is full.
    pub fn push(&self, kind: &str, label: &str, message: &str, value: f64) {
        if !self.enabled {
            return;
        }
        let mut event = Event {
            seq: 0,
            kind: kind.to_string(),
            label: label.to_string(),
            message: message.to_string(),
            value,
        };
        // A poisoned ring (a panic elsewhere while pushing) keeps working:
        // events are plain data, there is no invariant a half-completed
        // push could have broken that the code below does not restore.
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        // The sequence number is allocated *under* the lock: an out-of-lock
        // fetch_add let two concurrent pushers insert in the opposite order
        // of their seqs, producing non-monotonic snapshots and evicting the
        // newer event instead of the older one when the ring was full.
        // relaxed: the mutex orders the allocation; the atomic only needs
        // atomicity for the lock-free `total_recorded` read.
        event.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        if inner.len() == self.capacity {
            inner.pop_front();
        }
        inner.push_back(event);
    }

    /// The retained events, oldest first (always seq-ascending).
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events ever recorded, including those overwritten.
    pub fn total_recorded(&self) -> u64 {
        // relaxed: standalone monotonic count, read without the lock;
        // callers wanting consistency with contents take `snapshot()`.
        self.next_seq.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_snapshot_preserve_order() {
        let ring = EventRing::new(4);
        ring.push("a", "m", "k0", 1.0);
        ring.push("b", "m", "k1", f64::NAN);
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].kind, "a");
        assert_eq!(events[1].seq, 1);
        assert!(events[1].value.is_nan());
    }

    #[test]
    fn disabled_ring_drops_everything() {
        let ring = EventRing::with_enabled(4, false);
        ring.push("a", "m", "k", 0.0);
        assert!(ring.is_empty());
        assert_eq!(ring.total_recorded(), 0);
    }
}
