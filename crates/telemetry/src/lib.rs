//! Telemetry substrate for the Auto-HPCnet runtime and offline pipeline.
//!
//! The paper's deployment story (restart-on-quality-miss, §7.1/§8) and its
//! evaluation (Eqn 2 speedup, Eqn 3 HitRate, Table 3 counters) both hinge
//! on *measuring* where time and quality go. This crate provides the
//! measurement primitives every other crate instruments itself with:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomic scalars,
//! * [`Histogram`] — a log-bucketed (power-of-two octaves, 4 linear
//!   sub-buckets each) value/latency histogram with p50/p90/p99/max
//!   readout, recordable concurrently without locks,
//! * [`SpanGuard`] — an RAII timer that records its elapsed time into a
//!   histogram on drop,
//! * [`Registry`] — a named, labeled collection of the above with
//!   Prometheus text exposition ([`Registry::prometheus_text`]) and a
//!   serde-able JSON snapshot ([`Registry::snapshot`]),
//! * [`EventRing`] — a bounded, overwrite-oldest ring buffer for anomaly
//!   events (overload rejections, deadline expiries, quality misses),
//! * [`trace`] — distributed request tracing: per-request span trees
//!   with wire-propagated [`TraceContext`]s and a bounded tail-sampling
//!   [`FlightRecorder`] (DESIGN.md §16).
//!
//! Recording costs a handful of atomic ops (mostly `Relaxed`, with one
//! `Release`/`Acquire` pair per histogram record so snapshots are never
//! torn — see the invariant comments at each site); a registry built
//! with [`Registry::disabled`] hands out no-op instruments so an
//! instrumented hot path can be compared against an uninstrumented one
//! without recompiling.
//!
//! Under `--cfg loom` the instruments compile against the `loom` model
//! checker (see the `sync` module and `tests/concurrency_model.rs`);
//! DESIGN.md §13 describes how to run that suite.
//!
//! The offline pipeline (trace → autoencoder → 2D NAS → train) reports
//! into the process-wide [`global`] registry; each serving
//! `Orchestrator` owns a private registry so per-server statistics stay
//! isolated.
//!
//! ```
//! use hpcnet_telemetry::Registry;
//! use std::time::Duration;
//!
//! let reg = Registry::new();
//! reg.counter("requests_total").add(3);
//! let h = reg.time_histogram("step_seconds", &[("stage", "infer")]);
//! h.record_duration(Duration::from_micros(250));
//! assert!(reg.prometheus_text().contains("requests_total 3"));
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod instrument;
pub mod registry;
pub mod ring;
pub(crate) mod sync;
pub mod trace;

pub use instrument::{BucketCount, Counter, Gauge, Histogram, HistogramSnapshot, SpanGuard, Unit};
pub use registry::{CounterEntry, GaugeEntry, HistogramEntry, Registry, RegistrySnapshot};
pub use ring::{Event, EventRing};
pub use trace::{
    FlightRecorder, FlightRecorderConfig, FlightRecorderStats, SpanId, SpanRecord, SpanStatus,
    SpanTimer, Trace, TraceContext, TraceId,
};

use std::sync::OnceLock;

/// The process-wide registry used by the offline pipeline (dataset
/// labeling, NAS, training). Serving orchestrators deliberately use their
/// own registries instead, so two servers in one process never mix
/// statistics.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared_and_enabled() {
        global().counter("lib_test_total").inc();
        global().counter("lib_test_total").inc();
        assert_eq!(global().counter("lib_test_total").get(), 2);
        assert!(global().is_enabled());
    }
}
