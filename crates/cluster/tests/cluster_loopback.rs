//! Cluster loopback tests: a real fleet of [`NetServer`]s on ephemeral
//! ports behind one [`ClusterClient`].
//!
//! The suite covers the same conformance contract the in-process client
//! and `RemoteClient` are held to, plus the cluster-only behaviors:
//! scatter/gather across shards, replica failover when an endpoint is
//! killed mid-stream (with zero data loss for replicated keys), and the
//! `hpcnet_cluster_*` telemetry rollup.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use hpcnet_cluster::{ClientApi, ClusterClient};
use hpcnet_net::{demo_bundle, demo_input, NetServer, DEMO_INPUT_DIM, DEMO_MODEL};
use hpcnet_runtime::conformance::{check_overload, Conformance};
use hpcnet_runtime::{Orchestrator, QualityGuard, RuntimeError, TensorStore};

/// Stand up `n` independent demo endpoints (each its own orchestrator,
/// store, and worker pool) on ephemeral loopback ports.
fn fleet(n: usize) -> Vec<NetServer> {
    (0..n)
        .map(|_| {
            let orc = Orchestrator::builder()
                .store(TensorStore::new())
                .workers(2)
                .build();
            orc.register_model(DEMO_MODEL, demo_bundle());
            NetServer::builder(orc)
                .serve("127.0.0.1:0")
                .expect("bind ephemeral port")
        })
        .collect()
}

fn addrs(servers: &[NetServer]) -> Vec<String> {
    servers.iter().map(|s| s.local_addr().to_string()).collect()
}

/// The value a metric line reports, summed over all label sets.
fn metric_total(text: &str, name: &str) -> f64 {
    text.lines()
        .filter(|l| l.starts_with(name))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

#[test]
fn cluster_client_passes_the_shared_conformance_suite() {
    let servers = fleet(3);
    let client = ClusterClient::connect(addrs(&servers)).expect("connect fleet");
    let reference = demo_bundle();
    let predict = move |x: &[f64]| reference.surrogate.predict(x).expect("predict");
    Conformance::new(DEMO_MODEL, DEMO_INPUT_DIM, &predict)
        .key_prefix("cluster")
        .check(&client);
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn cluster_surfaces_typed_overload_from_a_saturated_endpoint() {
    // A one-endpoint cluster over a saturated server: admission rejection
    // must arrive as the same typed error every other transport reports,
    // not as a transport fault (typed errors never fail over).
    let orc = Orchestrator::builder()
        .store(TensorStore::new())
        .workers(1)
        .queue_depth(1)
        .build();
    orc.register_guarded_model(
        DEMO_MODEL,
        demo_bundle(),
        QualityGuard::new(|_in, _out| {
            std::thread::sleep(Duration::from_millis(400));
            true
        }),
    );
    let server = NetServer::builder(orc).serve("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    check_overload(
        || ClusterClient::connect([addr.clone()]).expect("connect"),
        DEMO_MODEL,
        DEMO_INPUT_DIM,
    );
    server.shutdown();
}

#[test]
fn scatter_gather_batch_spreads_across_shards_and_bit_matches() {
    const PAIRS: usize = 30;
    let servers = fleet(3);
    let client = ClusterClient::connect(addrs(&servers)).expect("connect fleet");
    let reference = demo_bundle();

    let keys: Vec<(String, String)> = (0..PAIRS)
        .map(|s| (format!("sg/in{s}"), format!("sg/out{s}")))
        .collect();
    for (s, (in_key, _)) in keys.iter().enumerate() {
        client
            .put_tensor(in_key, &demo_input(s as u64))
            .expect("put");
    }
    let pairs: Vec<(&str, &str)> = keys.iter().map(|(i, o)| (i.as_str(), o.as_str())).collect();
    client.run_model_batch(DEMO_MODEL, &pairs).expect("batch");

    for (s, (_, out_key)) in keys.iter().enumerate() {
        let got = client.unpack_tensor(out_key).expect("unpack");
        let want = reference
            .surrogate
            .predict(&demo_input(s as u64))
            .expect("predict");
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "scattered pair {s} diverged");
        }
    }

    // The fleet genuinely sharded: more than one endpoint executed work,
    // and the per-endpoint routed counters account for every pair.
    let metrics = client.metrics_text().expect("metrics");
    assert_eq!(
        metric_total(&metrics, "hpcnet_cluster_routed_total"),
        PAIRS as f64,
        "routed counters must account for every pair:\n{metrics}"
    );
    let busy_endpoints = servers
        .into_iter()
        .map(|s| s.shutdown())
        .filter(|stats| stats.requests > 0)
        .count();
    assert!(
        busy_endpoints >= 2,
        "a 30-pair batch over 3 endpoints must scatter (only {busy_endpoints} served work)"
    );
}

#[test]
fn killing_one_endpoint_mid_stream_fails_over_with_zero_data_loss() {
    const BEFORE: usize = 20;
    const AFTER: usize = 20;
    let mut servers = fleet(3);
    let client = ClusterClient::builder(addrs(&servers))
        .replication(2)
        .health_interval(Some(Duration::from_millis(100)))
        .connect()
        .expect("connect fleet");
    let reference = demo_bundle();

    let run_one = |s: usize| {
        let in_key = format!("fo/in{s}");
        let out_key = format!("fo/out{s}");
        client
            .put_tensor(&in_key, &demo_input(s as u64))
            .expect("put");
        client
            .run_model(DEMO_MODEL, &in_key, &out_key)
            .expect("run must survive endpoint loss");
    };

    for s in 0..BEFORE {
        run_one(s);
    }

    // Kill one of the three endpoints outright: connections die, the
    // port stops answering.
    servers.remove(1).shutdown();

    // The stream continues: every request after the kill must be served
    // via the surviving replicas.
    for s in BEFORE..BEFORE + AFTER {
        run_one(s);
    }

    // Zero data loss: every output — including those computed *before*
    // the kill, whose home set included the dead endpoint — is readable
    // and bit-exact.
    for s in 0..BEFORE + AFTER {
        let got = client.unpack_tensor(&format!("fo/out{s}")).expect("unpack");
        let want = reference
            .surrogate
            .predict(&demo_input(s as u64))
            .expect("predict");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "output {s} diverged after failover"
            );
        }
    }

    // The fleet still answers liveness probes and reports the failovers.
    client.ping().expect("a 2/3 fleet is alive");
    let metrics = client.metrics_text().expect("metrics");
    assert!(
        metric_total(&metrics, "hpcnet_cluster_failovers_total") > 0.0,
        "killing an endpoint mid-stream must register failovers:\n{metrics}"
    );

    // The health thread notices the corpse within a few sweeps.
    let mut marked = false;
    for _ in 0..50 {
        if !client.endpoint_health()[1] {
            marked = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        marked,
        "health checks must mark the killed endpoint unhealthy"
    );
    let metrics = client.metrics_text().expect("metrics");
    assert_eq!(
        metric_total(&metrics, "hpcnet_cluster_unhealthy_endpoints"),
        1.0,
        "unhealthy gauge must report the killed endpoint:\n{metrics}"
    );
    assert!(
        metric_total(&metrics, "hpcnet_cluster_health_checks_total") > 0.0,
        "health probes must be counted:\n{metrics}"
    );

    for s in servers {
        s.shutdown();
    }
}

#[test]
fn batch_reroutes_when_its_shard_endpoint_dies_mid_batch() {
    const PAIRS: usize = 12;
    let mut servers = fleet(3);
    // No health thread: the kill is only discoverable through the
    // request path, forcing the scatter stage to hit the dead endpoint
    // and exercise the per-pair re-route.
    let client = ClusterClient::builder(addrs(&servers))
        .replication(2)
        .health_interval(None)
        .connect()
        .expect("connect fleet");
    let reference = demo_bundle();

    let keys: Vec<(String, String)> = (0..PAIRS)
        .map(|s| (format!("rr/in{s}"), format!("rr/out{s}")))
        .collect();
    for (s, (in_key, _)) in keys.iter().enumerate() {
        client
            .put_tensor(in_key, &demo_input(s as u64))
            .expect("put");
    }

    // Kill an endpoint the client still believes is healthy, then
    // scatter: the dead shard's sub-batch fails as a whole and every one
    // of its pairs must be served by the surviving replicas.
    servers.remove(2).shutdown();
    let pairs: Vec<(&str, &str)> = keys.iter().map(|(i, o)| (i.as_str(), o.as_str())).collect();
    client
        .run_model_batch(DEMO_MODEL, &pairs)
        .expect("batch must survive losing a shard mid-flight");

    for (s, (_, out_key)) in keys.iter().enumerate() {
        let got = client.unpack_tensor(out_key).expect("unpack");
        let want = reference
            .surrogate
            .predict(&demo_input(s as u64))
            .expect("predict");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "re-routed pair {s} diverged");
        }
    }
    let metrics = client.metrics_text().expect("metrics");
    assert!(
        metric_total(&metrics, "hpcnet_cluster_failovers_total") > 0.0,
        "a dead shard must register failovers:\n{metrics}"
    );

    for s in servers {
        s.shutdown();
    }
}

#[test]
fn merged_stats_roll_up_every_endpoint() {
    const REQUESTS: usize = 9;
    let servers = fleet(3);
    let client = ClusterClient::connect(addrs(&servers)).expect("connect fleet");
    for s in 0..REQUESTS {
        let in_key = format!("ru/in{s}");
        client
            .put_tensor(&in_key, &demo_input(s as u64))
            .expect("put");
        client
            .run_model(DEMO_MODEL, &in_key, &format!("ru/out{s}"))
            .expect("run");
    }
    let merged = client.serving_stats().expect("stats");
    assert_eq!(
        merged.requests, REQUESTS as u64,
        "merged rollup must count requests across all endpoints"
    );
    // Version rollup: every shard registered the demo model once, so the
    // fleet-wide view (per-model max across endpoints) reports 1 — both
    // through the merged stats and the ClientApi `model_versions` surface.
    assert_eq!(merged.model_versions.get(DEMO_MODEL).copied(), Some(1));
    assert_eq!(client.model_versions().expect("versions")[DEMO_MODEL], 1);
    // The per-endpoint view is also reachable and sums to the rollup.
    let sum: u64 = (0..3)
        .map(|i| {
            client
                .endpoint_serving_stats(i)
                .expect("endpoint stats")
                .requests
        })
        .sum();
    assert_eq!(sum, merged.requests);

    // Hash-tagged keys co-locate: input and output share a replica set,
    // so serving them needs no relocation hop.
    client
        .put_tensor("{tag7}/in", &demo_input(99))
        .expect("put tagged");
    client
        .run_model(DEMO_MODEL, "{tag7}/in", "{tag7}/out")
        .expect("run tagged");
    let got = client.unpack_tensor("{tag7}/out").expect("unpack tagged");
    assert_eq!(got.len(), 4);

    for s in servers {
        s.shutdown();
    }
}

#[test]
fn connect_tolerates_partial_fleet_but_not_total_outage() {
    let servers = fleet(2);
    let mut fleet_addrs = addrs(&servers);
    // One bogus endpoint: connect succeeds, marks it unhealthy.
    fleet_addrs.push("127.0.0.1:1".to_string());
    let client = ClusterClient::builder(fleet_addrs)
        .connect_timeout(Duration::from_millis(200))
        .retries(0)
        .health_interval(None)
        .connect()
        .expect("a 2/3 fleet must connect");
    assert_eq!(client.endpoint_health(), vec![true, true, false]);

    // All endpoints dead: typed transport error.
    let err = ClusterClient::builder(["127.0.0.1:1"])
        .connect_timeout(Duration::from_millis(200))
        .retries(0)
        .connect()
        .unwrap_err();
    assert!(matches!(err, RuntimeError::Transport(_)), "got {err:?}");

    for s in servers {
        s.shutdown();
    }
}
