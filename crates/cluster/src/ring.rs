//! Consistent-hash ring with virtual nodes.
//!
//! Tensor keys are mapped to endpoints by hashing each endpoint onto the
//! ring at [`HashRing::vnodes`] pseudo-random points and walking
//! clockwise from the key's own hash to the first point. Virtual nodes
//! smooth the per-endpoint share toward 1/N, and — the property the
//! fleet is built around — adding or removing one endpoint remaps only
//! ~1/N of the key space instead of rehashing everything (contrast a
//! `hash % N` table, which remaps almost every key).
//!
//! # Hash tags
//!
//! A key containing a `{tag}` segment with a non-empty tag is placed by
//! the tag alone (the Redis Cluster idiom): `{job7}/in` and `{job7}/out`
//! always land on the same endpoints, letting callers co-locate a
//! request's input and output so the cluster client can skip the output
//! relocation hop entirely.

/// A consistent-hash ring over `endpoints` indices (`0..endpoints`).
///
/// The ring is immutable once built — the cluster client constructs one
/// per fleet configuration. Remapping behavior across *different* rings
/// (growing the fleet) is what the vnode construction guarantees, and is
/// pinned by this module's tests.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, endpoint)` sorted by point; lookup is a binary search.
    points: Vec<(u64, usize)>,
    endpoints: usize,
}

/// Default virtual nodes per endpoint: enough to keep per-endpoint load
/// within a few percent of 1/N for small fleets without making ring
/// construction or lookup measurable.
pub const DEFAULT_VNODES: usize = 64;

impl HashRing {
    /// Build a ring for `endpoints` endpoints with `vnodes` virtual nodes
    /// each. `endpoints` must be non-zero; `vnodes` is clamped to ≥ 1.
    pub fn new(endpoints: usize, vnodes: usize) -> Self {
        assert!(endpoints > 0, "a hash ring needs at least one endpoint");
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(endpoints * vnodes);
        for endpoint in 0..endpoints {
            for v in 0..vnodes {
                // The vnode's ring position only depends on the
                // endpoint's index and the vnode ordinal, so the same
                // endpoint lands on the same points in every ring —
                // that stability is what bounds remapping on resize.
                let point = hash_bytes(format!("{endpoint}/{v}").as_bytes());
                points.push((point, endpoint));
            }
        }
        points.sort_unstable();
        HashRing { points, endpoints }
    }

    /// Number of endpoints on the ring.
    pub fn endpoints(&self) -> usize {
        self.endpoints
    }

    /// The endpoint owning `key`: the first ring point clockwise from the
    /// key's hash.
    pub fn primary(&self, key: &str) -> usize {
        self.replicas(key, 1)[0]
    }

    /// The first `n` *distinct* endpoints clockwise from `key`'s hash —
    /// the key's replica set, in preference order. `n` is clamped to the
    /// endpoint count.
    pub fn replicas(&self, key: &str, n: usize) -> Vec<usize> {
        let n = n.clamp(1, self.endpoints);
        let h = hash_bytes(routing_bytes(key));
        // First point at or after the key's hash, wrapping at the top.
        let start = self.points.partition_point(|&(p, _)| p < h) % self.points.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..self.points.len() {
            let (_, endpoint) = self.points[(start + i) % self.points.len()];
            if !out.contains(&endpoint) {
                out.push(endpoint);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }
}

/// The bytes a key is routed by: the content of its first non-empty
/// `{tag}` if present, the whole key otherwise.
fn routing_bytes(key: &str) -> &[u8] {
    if let Some(open) = key.find('{') {
        if let Some(len) = key[open + 1..].find('}') {
            if len > 0 {
                return key[open + 1..open + 1 + len].as_bytes();
            }
        }
    }
    key.as_bytes()
}

/// FNV-1a 64 with a splitmix64-style avalanche finalizer. FNV alone
/// clusters badly on short, similar keys (e.g. `in0`, `in1`, ...); the
/// finalizer spreads every input bit across the output so ring positions
/// are uniform.
fn hash_bytes(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    // splitmix64 finalizer.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("job{i}/tensor-{}", i * 7)).collect()
    }

    #[test]
    fn load_is_balanced_across_endpoints() {
        const ENDPOINTS: usize = 5;
        const KEYS: usize = 10_000;
        let ring = HashRing::new(ENDPOINTS, DEFAULT_VNODES);
        let mut counts = [0usize; ENDPOINTS];
        for k in keys(KEYS) {
            counts[ring.primary(&k)] += 1;
        }
        let ideal = KEYS / ENDPOINTS;
        for (e, &c) in counts.iter().enumerate() {
            assert!(
                c > ideal / 2 && c < ideal * 2,
                "endpoint {e} owns {c} of {KEYS} keys (ideal {ideal}): ring is unbalanced"
            );
        }
    }

    #[test]
    fn growing_the_fleet_remaps_about_one_nth() {
        const KEYS: usize = 10_000;
        for n in [3usize, 5, 8] {
            let before = HashRing::new(n, DEFAULT_VNODES);
            let after = HashRing::new(n + 1, DEFAULT_VNODES);
            let moved = keys(KEYS)
                .iter()
                .filter(|k| before.primary(k) != after.primary(k))
                .count();
            let ideal = KEYS / (n + 1);
            assert!(
                moved < ideal * 2,
                "adding endpoint {n} moved {moved} of {KEYS} keys (consistent hashing should move ~{ideal})"
            );
            assert!(moved > ideal / 3, "suspiciously few keys moved ({moved})");
            // Keys that did move all moved *to* the new endpoint — an old
            // endpoint never takes over another's keys on grow.
            for k in keys(KEYS) {
                if before.primary(&k) != after.primary(&k) {
                    assert_eq!(after.primary(&k), n, "key {k} moved between old endpoints");
                }
            }
        }
    }

    #[test]
    fn replicas_are_distinct_and_led_by_the_primary() {
        let ring = HashRing::new(4, DEFAULT_VNODES);
        for k in keys(200) {
            let reps = ring.replicas(&k, 3);
            assert_eq!(reps.len(), 3);
            assert_eq!(reps[0], ring.primary(&k));
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replica set {reps:?} repeats an endpoint");
        }
        // Asking for more replicas than endpoints clamps.
        assert_eq!(ring.replicas("k", 9).len(), 4);
    }

    #[test]
    fn hash_tags_co_locate_keys() {
        let ring = HashRing::new(6, DEFAULT_VNODES);
        for i in 0..100 {
            let a = format!("{{job{i}}}/in");
            let b = format!("{{job{i}}}/out");
            assert_eq!(
                ring.replicas(&a, 2),
                ring.replicas(&b, 2),
                "tagged keys {a} and {b} must share a replica set"
            );
        }
        // Empty and unterminated tags fall back to whole-key hashing.
        assert_eq!(routing_bytes("{}/x"), b"{}/x");
        assert_eq!(routing_bytes("{open/x"), b"{open/x");
        assert_eq!(routing_bytes("plain"), b"plain");
        assert_eq!(routing_bytes("a{t}b"), b"t");
    }

    #[test]
    fn single_endpoint_owns_everything() {
        let ring = HashRing::new(1, DEFAULT_VNODES);
        for k in keys(50) {
            assert_eq!(ring.primary(&k), 0);
            assert_eq!(ring.replicas(&k, 2), vec![0]);
        }
    }
}
