//! [`ClusterClient`]: the fleet-wide [`ClientApi`] implementation.
//!
//! Routing policy (DESIGN.md §15):
//!
//! * a key's **home set** is the first [`ClusterClientBuilder::replication`]
//!   distinct endpoints clockwise from its ring hash;
//! * **writes** (`put_tensor`, `put_sparse_tensor`, `del_tensor`) fan out
//!   to every home member: `Ok` when at least one accepted (a partial fan
//!   out counts a degraded write), the first typed error when none did;
//! * **reads** (`unpack_tensor`) walk the home set in preference order,
//!   failing over past transport faults and misses;
//! * **`run_model`** executes on the first healthy home member of the
//!   *input* key (the replica that holds the input), then copies the
//!   output to the output key's own home set so later reads route to it;
//! * **batches** scatter per-executor sub-batches in parallel (each
//!   pipelined by the underlying `RemoteClient`), gather per-pair
//!   results, and re-route a shard's pairs individually when the shard's
//!   endpoint dies mid-batch.
//!
//! Transport failures mark an endpoint unhealthy immediately; a
//! background thread keeps `PING`ing every endpoint (including unhealthy
//! ones) so recovered endpoints return to rotation within one
//! [`ClusterClientBuilder::health_interval`]. Typed server errors
//! (`MissingModel`, `Overloaded`, `DeadlineExceeded`, ...) never fail
//! over — they are answers, not faults, and travel back unchanged.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use hpcnet_net::RemoteClient;
use hpcnet_runtime::{ClientApi, Result, RuntimeError, ServingStats};
use hpcnet_telemetry::trace::{self, merge_traces, stage_names};
use hpcnet_telemetry::{
    FlightRecorder, FlightRecorderConfig, Registry, SpanId, SpanRecord, SpanTimer, Trace,
    TraceContext,
};

use crate::ring::{HashRing, DEFAULT_VNODES};

/// Service label on spans this client records (DESIGN.md §16).
const TRACE_SERVICE: &str = "cluster";

/// Configures a [`ClusterClient`].
#[derive(Debug, Clone)]
pub struct ClusterClientBuilder {
    addrs: Vec<String>,
    replication: usize,
    vnodes: usize,
    health_interval: Option<Duration>,
    connect_timeout: Duration,
    retries: u32,
}

impl ClusterClientBuilder {
    /// Replica-set size per key (default 2, clamped to the endpoint
    /// count). With replication ≥ 2 the fleet serves every replicated
    /// key through the loss of one endpoint.
    pub fn replication(mut self, n: usize) -> Self {
        self.replication = n.max(1);
        self
    }

    /// Virtual nodes per endpoint on the hash ring (default
    /// [`DEFAULT_VNODES`]).
    pub fn vnodes(mut self, vnodes: usize) -> Self {
        self.vnodes = vnodes.max(1);
        self
    }

    /// Background health-check period (default 500 ms; `None` disables
    /// the thread — endpoints are then only re-probed by request-path
    /// successes and [`ClusterClient::ping`]).
    pub fn health_interval(mut self, interval: Option<Duration>) -> Self {
        self.health_interval = interval;
        self
    }

    /// Per-endpoint TCP connect timeout (default 2 s).
    pub fn connect_timeout(mut self, t: Duration) -> Self {
        self.connect_timeout = t;
        self
    }

    /// Per-endpoint transport retry budget per call (default 1: one
    /// retry, then the cluster fails over to the next replica instead of
    /// hammering a dead endpoint).
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Connect to the fleet. Every endpoint is probed once; endpoints
    /// that do not answer are marked unhealthy (and kept — the health
    /// thread readmits them when they come back). Fails with
    /// [`RuntimeError::Transport`] only when *no* endpoint answers.
    pub fn connect(self) -> Result<ClusterClient> {
        if self.addrs.is_empty() {
            return Err(RuntimeError::Transport(
                "cluster client needs at least one endpoint address".to_string(),
            ));
        }
        let registry = Registry::new();
        registry.set_helps(crate::CLUSTER_METRIC_HELP);
        let failovers = registry.counter(crate::FAILOVERS_TOTAL);
        let unhealthy_gauge = registry.gauge(crate::UNHEALTHY_GAUGE);
        let health_checks = registry.counter(crate::HEALTH_CHECKS_TOTAL);
        let degraded_writes = registry.counter(crate::DEGRADED_WRITES_TOTAL);
        let relocations = registry.counter(crate::RELOCATIONS_TOTAL);
        let endpoints: Vec<Endpoint> = self
            .addrs
            .iter()
            .map(|addr| Endpoint {
                addr: addr.clone(),
                client: RemoteClient::builder(addr.clone())
                    .retries(self.retries)
                    .connect_timeout(self.connect_timeout)
                    .connect_lazy(),
                healthy: AtomicBool::new(true),
                routed: registry.counter_with(crate::ROUTED_TOTAL, &[("endpoint", addr)]),
            })
            .collect();
        let inner = Arc::new(Inner {
            ring: HashRing::new(endpoints.len(), self.vnodes),
            replication: self.replication.min(endpoints.len()),
            endpoints,
            registry,
            failovers,
            unhealthy_gauge,
            health_checks,
            degraded_writes,
            relocations,
            recorder: FlightRecorder::new(FlightRecorderConfig::default()),
        });
        // Initial sweep: the fleet is usable iff someone answers.
        let mut any = false;
        for (idx, endpoint) in inner.endpoints.iter().enumerate() {
            let ok = endpoint.client.ping().is_ok();
            inner.mark_health(idx, ok);
            any |= ok;
        }
        if !any {
            return Err(RuntimeError::Transport(format!(
                "no cluster endpoint answered (tried {})",
                self.addrs.join(", ")
            )));
        }
        if let Some(interval) = self.health_interval {
            spawn_health_thread(&inner, interval);
        }
        Ok(ClusterClient { inner })
    }
}

/// A sharded fleet client. Cheap to clone — clones share routing state,
/// health view, connection pools, and telemetry.
#[derive(Clone)]
pub struct ClusterClient {
    inner: Arc<Inner>,
}

struct Endpoint {
    addr: String,
    client: RemoteClient,
    healthy: AtomicBool,
    routed: Arc<hpcnet_telemetry::Counter>,
}

struct Inner {
    endpoints: Vec<Endpoint>,
    ring: HashRing,
    replication: usize,
    registry: Registry,
    failovers: Arc<hpcnet_telemetry::Counter>,
    unhealthy_gauge: Arc<hpcnet_telemetry::Gauge>,
    health_checks: Arc<hpcnet_telemetry::Counter>,
    degraded_writes: Arc<hpcnet_telemetry::Counter>,
    relocations: Arc<hpcnet_telemetry::Counter>,
    /// Fleet-side trace halves (DESIGN.md §16): the root span plus one
    /// shard span per attempted endpoint for every routed `run_model`,
    /// under the same tail-sampling rules as the servers' recorders.
    recorder: FlightRecorder,
}

impl Inner {
    /// A key's home set: replica endpoints in ring preference order.
    fn home(&self, key: &str) -> Vec<usize> {
        self.ring.replicas(key, self.replication)
    }

    /// Home members re-ordered healthy-first (relative order preserved
    /// within each class). Unhealthy members stay as last-resort
    /// candidates so a dead health view can never make a key unservable.
    fn candidates(&self, home: &[usize]) -> Vec<usize> {
        let mut ordered: Vec<usize> = home
            .iter()
            .copied()
            .filter(|&e| self.is_healthy(e))
            .collect();
        ordered.extend(home.iter().copied().filter(|&e| !self.is_healthy(e)));
        ordered
    }

    fn is_healthy(&self, idx: usize) -> bool {
        // relaxed: the flag is an advisory routing hint; a stale read
        // only costs one extra connection attempt.
        self.endpoints[idx].healthy.load(Ordering::Relaxed)
    }

    /// Record an endpoint's health and keep the unhealthy gauge in step.
    fn mark_health(&self, idx: usize, ok: bool) {
        // relaxed: same advisory hint as `is_healthy`; the gauge below is
        // recomputed from a full scan, not from this swap's return.
        let was = self.endpoints[idx].healthy.swap(ok, Ordering::Relaxed);
        if was != ok {
            let unhealthy = self
                .endpoints
                .iter()
                // relaxed: advisory health hint, see `is_healthy`.
                .filter(|e| !e.healthy.load(Ordering::Relaxed))
                .count();
            self.unhealthy_gauge.set(unhealthy as f64);
        }
    }
}

/// Background prober: wakes every `interval`, `PING`s every endpoint
/// (healthy and unhealthy alike), and updates the health view. Holds only
/// a `Weak` so dropping the last client handle ends the thread within one
/// interval.
fn spawn_health_thread(inner: &Arc<Inner>, interval: Duration) {
    let weak: Weak<Inner> = Arc::downgrade(inner);
    std::thread::spawn(move || loop {
        std::thread::sleep(interval);
        let Some(inner) = weak.upgrade() else {
            break;
        };
        for (idx, endpoint) in inner.endpoints.iter().enumerate() {
            inner.health_checks.inc();
            let ok = endpoint.client.ping().is_ok();
            inner.mark_health(idx, ok);
        }
    });
}

impl ClusterClient {
    /// Start configuring a client for a fleet of `hpcnet-serve`
    /// endpoints (e.g. `["10.0.0.1:4915", "10.0.0.2:4915"]`).
    pub fn builder<S: Into<String>>(addrs: impl IntoIterator<Item = S>) -> ClusterClientBuilder {
        ClusterClientBuilder {
            addrs: addrs.into_iter().map(Into::into).collect(),
            replication: 2,
            vnodes: DEFAULT_VNODES,
            health_interval: Some(Duration::from_millis(500)),
            connect_timeout: Duration::from_secs(2),
            retries: 1,
        }
    }

    /// Connect with default settings.
    pub fn connect<S: Into<String>>(addrs: impl IntoIterator<Item = S>) -> Result<ClusterClient> {
        ClusterClient::builder(addrs).connect()
    }

    /// Endpoint addresses, in ring index order.
    pub fn endpoint_addrs(&self) -> Vec<String> {
        self.inner
            .endpoints
            .iter()
            .map(|e| e.addr.clone())
            .collect()
    }

    /// Current health view, indexed like [`ClusterClient::endpoint_addrs`].
    pub fn endpoint_health(&self) -> Vec<bool> {
        (0..self.inner.endpoints.len())
            .map(|i| self.inner.is_healthy(i))
            .collect()
    }

    /// One endpoint's own serving statistics (not the merged rollup).
    pub fn endpoint_serving_stats(&self, idx: usize) -> Result<ServingStats> {
        match self.inner.endpoints.get(idx) {
            Some(e) => e.client.serving_stats(),
            None => Err(RuntimeError::Transport(format!(
                "no endpoint at index {idx}"
            ))),
        }
    }

    /// One endpoint's Prometheus text (its serving and `hpcnet_net_*`
    /// series; the cluster's own routing series come from
    /// [`ClientApi::metrics_text`]).
    pub fn endpoint_metrics_text(&self, idx: usize) -> Result<String> {
        match self.inner.endpoints.get(idx) {
            Some(e) => e.client.metrics_text(),
            None => Err(RuntimeError::Transport(format!(
                "no endpoint at index {idx}"
            ))),
        }
    }

    /// Recent traces across the whole fleet: the cluster's own routing
    /// spans merged (by trace id) with every reachable endpoint's dump.
    /// Never fails outright — an unreachable endpoint just contributes
    /// nothing, since the local recorder always has the root spans.
    pub fn trace_dump(&self) -> Result<Vec<Trace>> {
        let mut all = self.inner.recorder.snapshot();
        for endpoint in &self.inner.endpoints {
            if let Ok(traces) = endpoint.client.trace_dump() {
                all.extend(traces);
            }
        }
        Ok(merge_traces(all))
    }

    /// Fan a write out to every member of `key`'s home set. `Ok` when at
    /// least one member accepted; typed errors win over transport errors
    /// when none did.
    fn fanout_write<T>(
        &self,
        key: &str,
        op: impl Fn(&RemoteClient) -> Result<T>,
        mut fold: impl FnMut(T),
    ) -> Result<()> {
        let home = self.inner.home(key);
        let mut wrote = 0usize;
        let mut first_typed: Option<RuntimeError> = None;
        let mut last_transport: Option<RuntimeError> = None;
        for &e in &home {
            match op(&self.inner.endpoints[e].client) {
                Ok(v) => {
                    self.inner.mark_health(e, true);
                    fold(v);
                    wrote += 1;
                }
                Err(RuntimeError::Transport(m)) => {
                    self.inner.mark_health(e, false);
                    last_transport = Some(RuntimeError::Transport(m));
                }
                Err(err) => {
                    first_typed.get_or_insert(err);
                }
            }
        }
        if wrote == 0 {
            return Err(first_typed
                .or(last_transport)
                .unwrap_or(RuntimeError::Disconnected));
        }
        if wrote < home.len() {
            self.inner.degraded_writes.inc();
        }
        Ok(())
    }

    /// Execute one `run_model` with replica failover, then home the
    /// output. `budget` is the remaining whole-call deadline, if any.
    ///
    /// This is also where the cluster originates the distributed trace
    /// (DESIGN.md §16): it mints the root context, records the fleet
    /// root span plus one shard span per attempted endpoint, and sends
    /// each endpoint a child context so the server-side spans join the
    /// same tree.
    fn run_routed(
        &self,
        model: &str,
        in_key: &str,
        out_key: &str,
        budget: Option<Duration>,
        started: Instant,
    ) -> Result<()> {
        let ctx = TraceContext::root();
        let root_id = SpanId(trace::next_id());
        let timer = SpanTimer::start();
        let mut spans = Vec::new();
        let result = self.run_attempts(
            model, in_key, out_key, budget, started, ctx, root_id, &mut spans,
        );
        let mut root = timer
            .finish(stage_names::REQUEST, TRACE_SERVICE)
            .annotate("model", model);
        // The root's id was handed to the shard attempts before the span
        // finished, so overwrite the freshly minted one.
        root.span_id = root_id;
        if let Err(e) = &result {
            root = root.with_error(e);
        }
        let mut t = Trace::new(ctx.trace_id);
        t.push(root);
        for span in spans {
            t.push(span);
        }
        self.inner.recorder.record(t);
        result
    }

    /// The failover loop behind [`ClusterClient::run_routed`]: walk the
    /// input key's candidates, propagate `ctx` as a child of the shard
    /// span minted per attempt, and append every attempt's span (with
    /// endpoint, failover, relocation, and error annotations) to `spans`.
    #[allow(clippy::too_many_arguments)]
    fn run_attempts(
        &self,
        model: &str,
        in_key: &str,
        out_key: &str,
        budget: Option<Duration>,
        started: Instant,
        ctx: TraceContext,
        root_id: SpanId,
        spans: &mut Vec<SpanRecord>,
    ) -> Result<()> {
        if let Some(d) = budget {
            if d.is_zero() {
                return Err(RuntimeError::DeadlineExceeded);
            }
        }
        let home = self.inner.home(in_key);
        let primary = home[0];
        let mut last_transport: Option<RuntimeError> = None;
        for e in self.inner.candidates(&home) {
            let endpoint = &self.inner.endpoints[e];
            let deadline = match budget {
                None => None,
                Some(d) => {
                    let remaining = d.saturating_sub(started.elapsed());
                    if remaining.is_zero() {
                        return Err(RuntimeError::DeadlineExceeded);
                    }
                    Some(remaining)
                }
            };
            let shard_id = SpanId(trace::next_id());
            let shard_timer = SpanTimer::start();
            let attempt = endpoint.client.run_model_with_context(
                model,
                in_key,
                out_key,
                deadline,
                Some(ctx.child_of(shard_id)),
            );
            let mut shard_span = shard_timer
                .finish(stage_names::SHARD, TRACE_SERVICE)
                .with_parent(root_id)
                .annotate("endpoint", &endpoint.addr);
            shard_span.span_id = shard_id;
            if e != primary {
                shard_span = shard_span.annotate("failover", "true");
            }
            match attempt {
                Ok(()) => {
                    self.inner.mark_health(e, true);
                    endpoint.routed.inc();
                    if e != primary {
                        self.inner.failovers.inc();
                    }
                    return match self.home_output(e, out_key) {
                        Ok(relocated) => {
                            if relocated {
                                shard_span = shard_span.annotate("relocated", "true");
                            }
                            spans.push(shard_span);
                            Ok(())
                        }
                        Err(err) => {
                            spans.push(shard_span.with_error(&err));
                            Err(err)
                        }
                    };
                }
                Err(RuntimeError::Transport(m)) => {
                    self.inner.mark_health(e, false);
                    spans.push(shard_span.with_error(&m));
                    last_transport = Some(RuntimeError::Transport(m));
                }
                Err(err) => {
                    spans.push(shard_span.with_error(&err));
                    return Err(err);
                }
            }
        }
        Err(last_transport.unwrap_or(RuntimeError::Disconnected))
    }

    /// Copy a freshly-computed output from the endpoint that executed the
    /// request to the output key's own home set, so later reads (which
    /// route by `out_key`) find it and so it survives the loss of any one
    /// endpoint. A no-op when the executor alone *is* the home set (the
    /// hash-tag co-location fast path with replication 1). Returns
    /// whether the output was *relocated* — the executor was not a home
    /// member, so the tensor moved rather than merely replicated.
    fn home_output(&self, executor: usize, out_key: &str) -> Result<bool> {
        let home = self.inner.home(out_key);
        let executor_is_home = home.contains(&executor);
        if executor_is_home && home.len() == 1 {
            return Ok(false);
        }
        let values = self.inner.endpoints[executor]
            .client
            .unpack_tensor(out_key)?;
        let mut wrote = 0usize;
        let mut first_err: Option<RuntimeError> = None;
        for &e in &home {
            if e == executor {
                wrote += 1;
                continue;
            }
            match self.inner.endpoints[e].client.put_tensor(out_key, &values) {
                Ok(()) => {
                    self.inner.mark_health(e, true);
                    wrote += 1;
                }
                Err(RuntimeError::Transport(m)) => {
                    self.inner.mark_health(e, false);
                    first_err.get_or_insert(RuntimeError::Transport(m));
                }
                Err(err) => {
                    first_err.get_or_insert(err);
                }
            }
        }
        if wrote == 0 {
            // The output exists only on the executor, which reads for
            // `out_key` will never consult: surface the fault instead of
            // stranding the tensor.
            return Err(first_err.unwrap_or(RuntimeError::Disconnected));
        }
        if !executor_is_home {
            // The executor is not a home member: the copy above moved the
            // tensor, so drop the stray original.
            let _ = self.inner.endpoints[executor].client.del_tensor(out_key);
            self.inner.relocations.inc();
        }
        if wrote < home.len() {
            self.inner.degraded_writes.inc();
        }
        Ok(!executor_is_home)
    }

    /// Scatter a batch across shards, gather per-pair results in pair
    /// order. See [`ClientApi::run_model_batch`] for the contract.
    fn batch_routed(
        &self,
        model: &str,
        pairs: &[(&str, &str)],
        budget: Option<Duration>,
    ) -> Result<()> {
        if pairs.is_empty() {
            return Ok(());
        }
        if let Some(d) = budget {
            if d.is_zero() {
                return Err(RuntimeError::DeadlineExceeded);
            }
        }
        let started = Instant::now();
        // Shard assignment: each pair executes on the first candidate of
        // its input key's home set. BTreeMap for deterministic shard
        // ordering.
        let mut shards: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, (in_key, _)) in pairs.iter().enumerate() {
            let home = self.inner.home(in_key);
            let executor = *self.inner.candidates(&home).first().unwrap_or(&home[0]);
            if executor != home[0] {
                self.inner.failovers.inc();
            }
            shards.entry(executor).or_default().push(i);
        }
        let mut results: Vec<Option<Result<()>>> = vec![None; pairs.len()];
        // Pairs served through the shard fast path still need their
        // outputs homed; re-routed pairs handle that inside `run_routed`.
        let mut needs_homing: Vec<Option<usize>> = vec![None; pairs.len()];
        let shard_outcomes: Vec<(Vec<usize>, ShardOutcome)> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|(executor, idxs)| {
                    scope.spawn(move || {
                        let sub: Vec<(&str, &str)> = idxs.iter().map(|&i| pairs[i]).collect();
                        let endpoint = &self.inner.endpoints[executor];
                        let remaining = budget.map(|d| d.saturating_sub(started.elapsed()));
                        let outcome = if remaining.is_some_and(|d| d.is_zero()) {
                            ShardOutcome::PerPair(vec![
                                Err(RuntimeError::DeadlineExceeded);
                                sub.len()
                            ])
                        } else {
                            match endpoint
                                .client
                                .run_model_batch_results(model, &sub, remaining)
                            {
                                Ok(per_pair) => {
                                    self.inner.mark_health(executor, true);
                                    endpoint
                                        .routed
                                        .add(per_pair.iter().filter(|r| r.is_ok()).count() as u64);
                                    ShardOutcome::Served { executor, per_pair }
                                }
                                Err(err) => {
                                    // The shard failed as a whole (endpoint
                                    // died mid-batch, or the reply was
                                    // unusable): its pairs re-route
                                    // individually on surviving replicas.
                                    if matches!(err, RuntimeError::Transport(_)) {
                                        self.inner.mark_health(executor, false);
                                    }
                                    ShardOutcome::Reroute
                                }
                            }
                        };
                        (idxs, outcome)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(_) => (Vec::new(), ShardOutcome::Reroute),
                })
                .collect()
        });
        for (idxs, outcome) in shard_outcomes {
            match outcome {
                ShardOutcome::Served { executor, per_pair } => {
                    for (&i, r) in idxs.iter().zip(per_pair) {
                        if r.is_ok() {
                            needs_homing[i] = Some(executor);
                        }
                        results[i] = Some(r);
                    }
                }
                ShardOutcome::PerPair(per_pair) => {
                    for (&i, r) in idxs.iter().zip(per_pair) {
                        results[i] = Some(r);
                    }
                }
                ShardOutcome::Reroute => {
                    // One failover hop per pair, then each pair walks the
                    // surviving replicas on its own.
                    for &i in &idxs {
                        self.inner.failovers.inc();
                        let (in_key, out_key) = pairs[i];
                        let remaining = budget.map(|d| d.saturating_sub(started.elapsed()));
                        results[i] = Some(self.run_routed(
                            model,
                            in_key,
                            out_key,
                            remaining,
                            Instant::now(),
                        ));
                    }
                }
            }
        }
        // Home the fast-path outputs (replication / relocation).
        for (i, homing) in needs_homing.iter().enumerate() {
            if let Some(executor) = homing {
                if let Err(err) = self.home_output(*executor, pairs[i].1) {
                    results[i] = Some(Err(err));
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.unwrap_or(Err(RuntimeError::Disconnected)))
            .find(std::result::Result::is_err)
            .unwrap_or(Ok(()))
    }
}

/// What happened to one scattered shard.
enum ShardOutcome {
    /// The shard's endpoint served the sub-batch; per-pair results in
    /// sub-batch order.
    Served {
        /// Endpoint that executed the sub-batch (outputs need homing).
        executor: usize,
        /// Per-pair results in sub-batch order.
        per_pair: Vec<Result<()>>,
    },
    /// Locally-determined per-pair results (e.g. the budget expired
    /// before the shard was sent).
    PerPair(Vec<Result<()>>),
    /// The shard's endpoint failed as a whole; pairs must re-route.
    Reroute,
}

impl ClientApi for ClusterClient {
    fn put_tensor(&self, key: &str, value: &[f64]) -> Result<()> {
        self.fanout_write(key, |c| c.put_tensor(key, value), |()| {})
    }

    fn put_sparse_tensor(&self, key: &str, value: hpcnet_tensor::Csr) -> Result<()> {
        self.fanout_write(key, |c| c.put_sparse_tensor(key, value.clone()), |()| {})
    }

    fn run_model(&self, model: &str, in_key: &str, out_key: &str) -> Result<()> {
        self.run_routed(model, in_key, out_key, None, Instant::now())
    }

    fn run_model_with_deadline(
        &self,
        model: &str,
        in_key: &str,
        out_key: &str,
        deadline: Duration,
    ) -> Result<()> {
        self.run_routed(model, in_key, out_key, Some(deadline), Instant::now())
    }

    fn run_model_batch(&self, model: &str, pairs: &[(&str, &str)]) -> Result<()> {
        self.batch_routed(model, pairs, None)
    }

    fn run_model_batch_with_deadline(
        &self,
        model: &str,
        pairs: &[(&str, &str)],
        deadline: Duration,
    ) -> Result<()> {
        self.batch_routed(model, pairs, Some(deadline))
    }

    fn unpack_tensor(&self, key: &str) -> Result<Vec<f64>> {
        let home = self.inner.home(key);
        let primary = home[0];
        let mut missing: Option<RuntimeError> = None;
        let mut last_transport: Option<RuntimeError> = None;
        for e in self.inner.candidates(&home) {
            match self.inner.endpoints[e].client.unpack_tensor(key) {
                Ok(values) => {
                    self.inner.mark_health(e, true);
                    if e != primary {
                        self.inner.failovers.inc();
                    }
                    return Ok(values);
                }
                Err(RuntimeError::Transport(m)) => {
                    self.inner.mark_health(e, false);
                    last_transport = Some(RuntimeError::Transport(m));
                }
                Err(RuntimeError::MissingTensor(k)) => {
                    // This replica may simply have restarted; another may
                    // still hold the key.
                    missing = Some(RuntimeError::MissingTensor(k));
                }
                Err(err) => return Err(err),
            }
        }
        Err(missing
            .or(last_transport)
            .unwrap_or(RuntimeError::Disconnected))
    }

    fn del_tensor(&self, key: &str) -> Result<bool> {
        let mut existed = false;
        self.fanout_write(key, |c| c.del_tensor(key), |e| existed |= e)?;
        Ok(existed)
    }

    fn ping(&self) -> Result<()> {
        let mut last_err: Option<RuntimeError> = None;
        let mut any = false;
        for (idx, endpoint) in self.inner.endpoints.iter().enumerate() {
            match endpoint.client.ping() {
                Ok(()) => {
                    self.inner.mark_health(idx, true);
                    any = true;
                }
                Err(err) => {
                    if matches!(err, RuntimeError::Transport(_)) {
                        self.inner.mark_health(idx, false);
                    }
                    last_err = Some(err);
                }
            }
        }
        if any {
            Ok(())
        } else {
            Err(last_err.unwrap_or(RuntimeError::Disconnected))
        }
    }

    fn serving_stats(&self) -> Result<ServingStats> {
        let mut merged = ServingStats::default();
        let mut reachable = 0usize;
        let mut last_err: Option<RuntimeError> = None;
        for (idx, endpoint) in self.inner.endpoints.iter().enumerate() {
            match endpoint.client.serving_stats() {
                Ok(stats) => {
                    self.inner.mark_health(idx, true);
                    merged.merge(&stats);
                    reachable += 1;
                }
                Err(err) => {
                    if matches!(err, RuntimeError::Transport(_)) {
                        self.inner.mark_health(idx, false);
                    }
                    last_err = Some(err);
                }
            }
        }
        if reachable == 0 {
            return Err(last_err.unwrap_or(RuntimeError::Disconnected));
        }
        Ok(merged)
    }

    fn metrics_text(&self) -> Result<String> {
        Ok(self.inner.registry.prometheus_text())
    }

    fn trace_dump(&self) -> Result<Vec<Trace>> {
        ClusterClient::trace_dump(self)
    }
}
