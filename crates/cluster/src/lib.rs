//! `hpcnet-cluster`: a sharded serving fleet behind the [`ClientApi`]
//! seam.
//!
//! One `hpcnet-serve` process is a single orchestrator: one tensor store,
//! one worker pool, one admission queue. This crate scales that out
//! horizontally without touching application code. [`ClusterClient`]
//! implements the same [`ClientApi`] the in-process `Client` and the TCP
//! `RemoteClient` implement, but routes every keyed operation across N
//! endpoints:
//!
//! * **Consistent-hash routing** ([`ring::HashRing`]) — tensor keys map
//!   to endpoints through a vnode hash ring, so growing the fleet from N
//!   to N+1 remaps only ~1/N of the key space. Keys sharing a `{tag}`
//!   co-locate (the Redis Cluster idiom).
//! * **Replication** — each key has a replica set of
//!   [`ClusterClientBuilder::replication`] endpoints; writes fan out to
//!   the set, reads walk it in preference order.
//! * **Failover** — endpoints are health-checked with periodic `PING`s
//!   and marked unhealthy on request-path transport failures; requests
//!   re-route to the next healthy replica. A fleet killing one of its
//!   endpoints mid-stream keeps serving every replicated key.
//! * **Scatter/gather batches** — `run_model_batch` splits pairs into
//!   per-endpoint sub-batches executed in parallel (each pipelined over
//!   its endpoint's connection), gathers per-pair results, and keeps the
//!   trait's first-error-but-serve-the-rest contract.
//! * **Fleet observability** — `serving_stats()` returns the merged
//!   rollup across reachable endpoints; `metrics_text()` exposes the
//!   client's own `hpcnet_cluster_*` routing series (below).
//!
//! See DESIGN.md §15 for the routing, replication, and failover policy.
//!
//! # Telemetry series
//!
//! | series | kind | meaning |
//! |---|---|---|
//! | [`ROUTED_TOTAL`] | counter (`endpoint` label) | requests served per endpoint |
//! | [`FAILOVERS_TOTAL`] | counter | requests served away from their first-choice endpoint |
//! | [`UNHEALTHY_GAUGE`] | gauge | endpoints currently marked unhealthy |
//! | [`HEALTH_CHECKS_TOTAL`] | counter | background health probes issued |
//! | [`DEGRADED_WRITES_TOTAL`] | counter | writes that reached only part of their replica set |
//! | [`RELOCATIONS_TOTAL`] | counter | outputs moved from their executor to their home set |

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod ring;

pub use client::{ClusterClient, ClusterClientBuilder};
pub use hpcnet_runtime::ClientApi;
pub use ring::HashRing;

/// Counter: requests served per endpoint (label `endpoint="<addr>"`).
pub const ROUTED_TOTAL: &str = "hpcnet_cluster_routed_total";

/// Counter: requests that were served by an endpoint other than their
/// first-choice replica — either re-routed after a transport failure or
/// routed around an endpoint already marked unhealthy. A request that
/// fails over repeatedly is counted once per hop.
pub const FAILOVERS_TOTAL: &str = "hpcnet_cluster_failovers_total";

/// Gauge: endpoints currently marked unhealthy.
pub const UNHEALTHY_GAUGE: &str = "hpcnet_cluster_unhealthy_endpoints";

/// Counter: background health-check probes issued (one per endpoint per
/// sweep).
pub const HEALTH_CHECKS_TOTAL: &str = "hpcnet_cluster_health_checks_total";

/// Counter: writes that reached at least one but not all members of
/// their replica set.
pub const DEGRADED_WRITES_TOTAL: &str = "hpcnet_cluster_degraded_writes_total";

/// Counter: model outputs copied from the endpoint that executed the
/// request to the output key's own replica set.
pub const RELOCATIONS_TOTAL: &str = "hpcnet_cluster_relocations_total";

/// `# HELP` text for every `hpcnet_cluster_*` series, installed into the
/// client's registry at connect time.
pub(crate) const CLUSTER_METRIC_HELP: &[(&str, &str)] = &[
    (ROUTED_TOTAL, "Requests served per endpoint."),
    (
        FAILOVERS_TOTAL,
        "Requests served by an endpoint other than their first-choice replica, once per hop.",
    ),
    (UNHEALTHY_GAUGE, "Endpoints currently marked unhealthy."),
    (
        HEALTH_CHECKS_TOTAL,
        "Background health-check probes issued (one per endpoint per sweep).",
    ),
    (
        DEGRADED_WRITES_TOTAL,
        "Writes that reached at least one but not all members of their replica set.",
    ),
    (
        RELOCATIONS_TOTAL,
        "Model outputs copied from their executor to the output key's replica set.",
    ),
];
