//! PARSEC x264 application (Type II).
//!
//! The replaced region is `Encoding`: motion-compensated block encoding of
//! a frame against a fixed reference — integer motion search, 8x8 DCT of
//! the residual, quantization, and reconstruction. Problems are frames
//! derived from the reference by a smooth sub-pixel warp plus brightness
//! change (θ), the inter-frame model x264's P-frames exploit. QoI is the
//! SSIM between source and reconstruction, as in the paper.

use crate::{AppType, HpcApp};

/// Frame side (frames are SIDE x SIDE luma blocks).
const SIDE: usize = 16;
/// Transform block size.
const BLOCK: usize = 8;
/// Motion search radius.
const SEARCH: i64 = 2;
/// Quantization step.
const QSTEP: f64 = 4.0;

/// The x264 application.
pub struct X264App {
    /// Fixed reference frame.
    reference: Vec<f64>,
}

impl Default for X264App {
    fn default() -> Self {
        // A smooth synthetic reference: overlapping gradients and ripples.
        let mut reference = Vec::with_capacity(SIDE * SIDE);
        for r in 0..SIDE {
            for c in 0..SIDE {
                let (x, y) = (r as f64 / SIDE as f64, c as f64 / SIDE as f64);
                let v = 128.0
                    + 60.0 * (std::f64::consts::TAU * x).sin() * (std::f64::consts::TAU * y).cos()
                    + 30.0 * (3.0 * std::f64::consts::TAU * (x + y)).sin();
                reference.push(v);
            }
        }
        X264App { reference }
    }
}

/// Bilinear sample with clamped borders.
fn sample(frame: &[f64], r: f64, c: f64) -> f64 {
    let rm = (SIDE - 1) as f64;
    let r = r.clamp(0.0, rm);
    let c = c.clamp(0.0, rm);
    let (r0, c0) = (r.floor() as usize, c.floor() as usize);
    let (r1, c1) = ((r0 + 1).min(SIDE - 1), (c0 + 1).min(SIDE - 1));
    let (fr, fc) = (r - r0 as f64, c - c0 as f64);
    let top = frame[r0 * SIDE + c0] * (1.0 - fc) + frame[r0 * SIDE + c1] * fc;
    let bot = frame[r1 * SIDE + c0] * (1.0 - fc) + frame[r1 * SIDE + c1] * fc;
    top * (1.0 - fr) + bot * fr
}

/// Naive 2-D DCT-II of a BLOCK x BLOCK tile. Returns FLOPs.
fn dct2(tile: &[f64], out: &mut [f64]) -> u64 {
    let n = BLOCK;
    let mut flops = 0u64;
    for u in 0..n {
        for v in 0..n {
            let mut s = 0.0;
            for r in 0..n {
                for c in 0..n {
                    s += tile[r * n + c]
                        * ((2 * r + 1) as f64 * u as f64 * std::f64::consts::PI / (2 * n) as f64)
                            .cos()
                        * ((2 * c + 1) as f64 * v as f64 * std::f64::consts::PI / (2 * n) as f64)
                            .cos();
                    flops += 4;
                }
            }
            let cu = if u == 0 { (1.0f64 / 2.0).sqrt() } else { 1.0 };
            let cv = if v == 0 { (1.0f64 / 2.0).sqrt() } else { 1.0 };
            out[u * n + v] = 0.25 * cu * cv * s;
            flops += 3;
        }
    }
    flops
}

/// Inverse 2-D DCT-II. Returns FLOPs.
fn idct2(coef: &[f64], out: &mut [f64]) -> u64 {
    let n = BLOCK;
    let mut flops = 0u64;
    for r in 0..n {
        for c in 0..n {
            let mut s = 0.0;
            for u in 0..n {
                for v in 0..n {
                    let cu = if u == 0 { (1.0f64 / 2.0).sqrt() } else { 1.0 };
                    let cv = if v == 0 { (1.0f64 / 2.0).sqrt() } else { 1.0 };
                    s += cu
                        * cv
                        * coef[u * n + v]
                        * ((2 * r + 1) as f64 * u as f64 * std::f64::consts::PI / (2 * n) as f64)
                            .cos()
                        * ((2 * c + 1) as f64 * v as f64 * std::f64::consts::PI / (2 * n) as f64)
                            .cos();
                    flops += 6;
                }
            }
            out[r * n + c] = 0.25 * s;
            flops += 1;
        }
    }
    flops
}

/// Structural similarity between two frames (single global window).
pub fn ssim(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let mean = |v: &[f64]| v.iter().sum::<f64>() / n;
    let (ma, mb) = (mean(a), mean(b));
    let mut va = 0.0;
    let mut vb = 0.0;
    let mut cov = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
        cov += (x - ma) * (y - mb);
    }
    va /= n;
    vb /= n;
    cov /= n;
    let (c1, c2) = (6.5025, 58.5225); // standard 8-bit SSIM constants
    ((2.0 * ma * mb + c1) * (2.0 * cov + c2)) / ((ma * ma + mb * mb + c1) * (va + vb + c2))
}

impl X264App {
    /// Encode + reconstruct one frame against the reference.
    fn encode(&self, frame: &[f64]) -> (Vec<f64>, u64) {
        self.encode_strided(frame, 1)
    }

    /// Encode with the motion search perforated: only every `stride`-th
    /// candidate offset is evaluated.
    fn encode_strided(&self, frame: &[f64], stride: usize) -> (Vec<f64>, u64) {
        let mut recon = vec![0.0; SIDE * SIDE];
        let mut flops = 0u64;
        for br in (0..SIDE).step_by(BLOCK) {
            for bc in (0..SIDE).step_by(BLOCK) {
                // Integer motion search: best SAD offset into the reference.
                let mut best = (0i64, 0i64);
                let mut best_sad = f64::INFINITY;
                let mut cand = 0usize;
                for dr in -SEARCH..=SEARCH {
                    for dc in -SEARCH..=SEARCH {
                        cand += 1;
                        if !(cand - 1).is_multiple_of(stride) && !(dr == 0 && dc == 0) {
                            continue;
                        }
                        let mut sad = 0.0;
                        for r in 0..BLOCK {
                            for c in 0..BLOCK {
                                let fr = frame[(br + r) * SIDE + bc + c];
                                let rr = sample(
                                    &self.reference,
                                    (br + r) as i64 as f64 + dr as f64,
                                    (bc + c) as i64 as f64 + dc as f64,
                                );
                                sad += (fr - rr).abs();
                                flops += 2;
                            }
                        }
                        if sad < best_sad {
                            best_sad = sad;
                            best = (dr, dc);
                        }
                    }
                }
                // Residual against the motion-compensated prediction.
                let mut pred = vec![0.0; BLOCK * BLOCK];
                let mut resid = vec![0.0; BLOCK * BLOCK];
                for r in 0..BLOCK {
                    for c in 0..BLOCK {
                        let p = sample(
                            &self.reference,
                            (br + r) as f64 + best.0 as f64,
                            (bc + c) as f64 + best.1 as f64,
                        );
                        pred[r * BLOCK + c] = p;
                        resid[r * BLOCK + c] = frame[(br + r) * SIDE + bc + c] - p;
                        flops += 1;
                    }
                }
                // Transform, quantize, dequantize, inverse transform.
                let mut coef = vec![0.0; BLOCK * BLOCK];
                flops += dct2(&resid, &mut coef);
                for v in &mut coef {
                    *v = (*v / QSTEP).round() * QSTEP;
                }
                flops += 2 * (BLOCK * BLOCK) as u64;
                let mut rec_resid = vec![0.0; BLOCK * BLOCK];
                flops += idct2(&coef, &mut rec_resid);
                for r in 0..BLOCK {
                    for c in 0..BLOCK {
                        recon[(br + r) * SIDE + bc + c] =
                            pred[r * BLOCK + c] + rec_resid[r * BLOCK + c];
                        flops += 1;
                    }
                }
            }
        }
        (recon, flops)
    }
}

impl HpcApp for X264App {
    fn name(&self) -> &'static str {
        "x264"
    }

    fn app_type(&self) -> AppType {
        AppType::TypeII
    }

    fn region_name(&self) -> &'static str {
        "Encoding"
    }

    fn qoi_name(&self) -> &'static str {
        "structure similarity (SSIM)"
    }

    fn input_dim(&self) -> usize {
        SIDE * SIDE
    }

    fn output_dim(&self) -> usize {
        SIDE * SIDE
    }

    fn gen_problem(&self, index: u64) -> Vec<f64> {
        let mut rng = hpcnet_tensor::rng::seeded(index, "x264-theta");
        let theta = hpcnet_tensor::rng::normal_vec(&mut rng, 4, 0.0, 1.0);
        let (dx, dy) = (0.8 * theta[0], 0.8 * theta[1]);
        let gain = 1.0 + 0.05 * theta[2];
        let offset = 4.0 * theta[3];
        let mut frame = Vec::with_capacity(SIDE * SIDE);
        for r in 0..SIDE {
            for c in 0..SIDE {
                let v = sample(&self.reference, r as f64 + dx, c as f64 + dy);
                frame.push((gain * v + offset).clamp(0.0, 255.0));
            }
        }
        frame
    }

    fn run_region_counted(&self, x: &[f64]) -> (Vec<f64>, u64) {
        self.encode(x)
    }

    fn qoi(&self, x: &[f64], region_out: &[f64]) -> f64 {
        ssim(x, region_out)
    }

    fn run_region_perforated(&self, x: &[f64], skip: f64) -> Option<(Vec<f64>, u64)> {
        let stride = (1.0 / (1.0 - skip.clamp(0.0, 0.9))).round().max(1.0) as usize;
        Some(self.encode_strided(x, stride))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_reconstructs_with_high_ssim() {
        let app = X264App::default();
        let x = app.gen_problem(0);
        let (recon, flops) = app.run_region_counted(&x);
        let s = app.qoi(&x, &recon);
        assert!(s > 0.9, "SSIM {s}");
        assert!(flops > 50_000);
    }

    #[test]
    fn dct_idct_roundtrip() {
        let tile: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64).collect();
        let mut coef = vec![0.0; 64];
        dct2(&tile, &mut coef);
        let mut back = vec![0.0; 64];
        idct2(&coef, &mut back);
        for (a, b) in tile.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn ssim_identity_and_bounds() {
        let app = X264App::default();
        let x = app.gen_problem(1);
        assert!((ssim(&x, &x) - 1.0).abs() < 1e-12);
        let shifted: Vec<f64> = x.iter().map(|v| 255.0 - v).collect();
        let s = ssim(&x, &shifted);
        assert!(s < 0.5, "dissimilar frames must score low: {s}");
    }

    #[test]
    fn quantization_loses_some_fidelity() {
        // Reconstruction should be close but not bit-exact (QSTEP > 0).
        let app = X264App::default();
        let x = app.gen_problem(2);
        let (recon, _) = app.run_region_counted(&x);
        assert_ne!(x, recon);
    }
}
