//! NPB-style Multi-Grid application (Type I).
//!
//! The replaced region is `MG_solver`: V-cycle multigrid for the 2-D
//! Poisson equation on a square grid. Problems are right-hand sides built
//! from a small number of Gaussian sources with θ-controlled amplitudes
//! and positions — the "charge distribution" shape NPB MG iterates on.

use hpcnet_tensor::rng::seeded;
use hpcnet_tensor::{vecops, Coo, Csr};

use crate::solvers::{cg_solve, jacobi_sweeps};
use crate::{rms, AppType, HpcApp};

/// Latent parameters: 2 sources x (amplitude, cx, cy).
const LATENT: usize = 6;

/// The MG application.
pub struct MgApp {
    /// Interior grid side (grid is `side x side`).
    side: usize,
    /// Fine-level 5-point Laplacian.
    a_fine: Csr,
    /// Coarse-level operator (side/2 grid).
    a_coarse: Csr,
    tol: f64,
    max_cycles: usize,
}

impl Default for MgApp {
    fn default() -> Self {
        MgApp::new(16)
    }
}

/// Assemble the 5-point Laplacian on a `side x side` interior grid.
fn laplacian_2d(side: usize) -> Csr {
    let n = side * side;
    let mut coo = Coo::new(n, n);
    let idx = |r: usize, c: usize| r * side + c;
    for r in 0..side {
        for c in 0..side {
            let i = idx(r, c);
            coo.push(i, i, 4.0);
            if r > 0 {
                coo.push(i, idx(r - 1, c), -1.0);
            }
            if r + 1 < side {
                coo.push(i, idx(r + 1, c), -1.0);
            }
            if c > 0 {
                coo.push(i, idx(r, c - 1), -1.0);
            }
            if c + 1 < side {
                coo.push(i, idx(r, c + 1), -1.0);
            }
        }
    }
    coo.to_csr()
}

impl MgApp {
    /// Build over a `side x side` interior grid (`side` must be even).
    pub fn new(side: usize) -> Self {
        assert!(
            side >= 4 && side.is_multiple_of(2),
            "need an even grid side >= 4"
        );
        MgApp {
            side,
            a_fine: laplacian_2d(side),
            a_coarse: laplacian_2d(side / 2),
            tol: 1e-8,
            max_cycles: 120,
        }
    }

    /// Grid side.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Full-weighting-ish restriction (2x2 block averaging).
    fn restrict(&self, fine: &[f64]) -> Vec<f64> {
        let s = self.side;
        let cs = s / 2;
        let mut coarse = vec![0.0; cs * cs];
        for r in 0..cs {
            for c in 0..cs {
                let sum = fine[(2 * r) * s + 2 * c]
                    + fine[(2 * r) * s + 2 * c + 1]
                    + fine[(2 * r + 1) * s + 2 * c]
                    + fine[(2 * r + 1) * s + 2 * c + 1];
                coarse[r * cs + c] = sum / 4.0;
            }
        }
        coarse
    }

    /// Piecewise-constant prolongation (transpose-ish of restriction).
    fn prolong(&self, coarse: &[f64]) -> Vec<f64> {
        let s = self.side;
        let cs = s / 2;
        let mut fine = vec![0.0; s * s];
        for r in 0..cs {
            for c in 0..cs {
                let v = coarse[r * cs + c];
                fine[(2 * r) * s + 2 * c] = v;
                fine[(2 * r) * s + 2 * c + 1] = v;
                fine[(2 * r + 1) * s + 2 * c] = v;
                fine[(2 * r + 1) * s + 2 * c + 1] = v;
            }
        }
        fine
    }

    /// One V-cycle; returns FLOPs spent.
    fn v_cycle(&self, f: &[f64], u: &mut Vec<f64>) -> u64 {
        let mut flops = 0u64;
        // Pre-smooth.
        flops += jacobi_sweeps(&self.a_fine, f, u, 0.8, 2);
        // Residual restriction.
        let au = self.a_fine.spmv(u).expect("dims");
        flops += 2 * self.a_fine.nnz() as u64;
        let r = vecops::sub(f, &au);
        let rc = self.restrict(&r);
        flops += (self.side * self.side) as u64;
        // Coarse solve.
        let coarse = cg_solve(&self.a_coarse, &rc, 1e-10, 200);
        flops += coarse.flops;
        // Correction with an optimal step: the piecewise-constant transfer
        // pair mis-scales the coarse operator, so instead of a fixed factor
        // we line-search alpha minimizing ||f - A(u + alpha*corr)|| — cheap
        // and guarantees the cycle never diverges.
        let corr = self.prolong(&coarse.x);
        let a_corr = self.a_fine.spmv(&corr).expect("dims");
        flops += 2 * self.a_fine.nnz() as u64;
        let denom = vecops::dot(&a_corr, &a_corr);
        let alpha = if denom > 1e-300 {
            vecops::dot(&r, &a_corr) / denom
        } else {
            0.0
        };
        for (ui, ci) in u.iter_mut().zip(&corr) {
            *ui += alpha * ci;
        }
        flops += 6 * (self.side * self.side) as u64;
        // Post-smooth.
        flops += jacobi_sweeps(&self.a_fine, f, u, 0.8, 2);
        flops
    }
}

impl HpcApp for MgApp {
    fn name(&self) -> &'static str {
        "MG"
    }

    fn app_type(&self) -> AppType {
        AppType::TypeI
    }

    fn region_name(&self) -> &'static str {
        "MG_solver"
    }

    fn qoi_name(&self) -> &'static str {
        "final residual of the solver (solution RMS)"
    }

    fn input_dim(&self) -> usize {
        self.side * self.side
    }

    fn output_dim(&self) -> usize {
        self.side * self.side
    }

    fn gen_problem(&self, index: u64) -> Vec<f64> {
        let mut rng = seeded(index, "mg-app-theta");
        let theta = hpcnet_tensor::rng::normal_vec(&mut rng, LATENT, 0.0, 1.0);
        let s = self.side as f64;
        let mut f = vec![0.0; self.side * self.side];
        for src in 0..2 {
            let amp = 1.0 + 0.3 * theta[3 * src];
            let cx = s * (0.35 + 0.1 * theta[3 * src + 1] + 0.3 * src as f64);
            let cy = s * (0.35 + 0.1 * theta[3 * src + 2] + 0.3 * src as f64);
            for r in 0..self.side {
                for c in 0..self.side {
                    let dx = r as f64 - cx;
                    let dy = c as f64 - cy;
                    f[r * self.side + c] += amp * (-(dx * dx + dy * dy) / (0.05 * s * s)).exp();
                }
            }
        }
        f
    }

    fn run_region_counted(&self, x: &[f64]) -> (Vec<f64>, u64) {
        let mut u = vec![0.0; x.len()];
        let mut flops = 0u64;
        let b_norm = vecops::norm2(x).max(1e-300);
        for _ in 0..self.max_cycles {
            flops += self.v_cycle(x, &mut u);
            let au = self.a_fine.spmv(&u).expect("dims");
            flops += 2 * self.a_fine.nnz() as u64;
            let res = vecops::norm2(&vecops::sub(x, &au));
            flops += 3 * x.len() as u64;
            if res / b_norm <= self.tol {
                break;
            }
        }
        (u, flops)
    }

    fn qoi(&self, _x: &[f64], region_out: &[f64]) -> f64 {
        rms(region_out)
    }

    fn run_region_perforated(&self, x: &[f64], skip: f64) -> Option<(Vec<f64>, u64)> {
        // Perforate the V-cycle loop: relax the convergence tolerance.
        let mut u = vec![0.0; x.len()];
        let mut flops = 0u64;
        let tol = 10f64.powf(self.tol.log10() * (1.0 - skip.clamp(0.0, 0.99)));
        let b_norm = vecops::norm2(x).max(1e-300);
        for _ in 0..self.max_cycles {
            flops += self.v_cycle(x, &mut u);
            let au = self.a_fine.spmv(&u).expect("dims");
            flops += 2 * self.a_fine.nnz() as u64;
            let res = vecops::norm2(&vecops::sub(x, &au));
            if res / b_norm <= tol {
                break;
            }
        }
        Some((u, flops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mg_solves_poisson_to_tolerance() {
        let app = MgApp::new(8);
        let f = app.gen_problem(0);
        let (u, flops) = app.run_region_counted(&f);
        let au = app.a_fine.spmv(&u).unwrap();
        let rel = vecops::norm2(&vecops::sub(&f, &au)) / vecops::norm2(&f);
        assert!(rel < 1e-7, "relative residual {rel}");
        assert!(flops > 0);
    }

    #[test]
    fn mg_matches_direct_cg_solution() {
        let app = MgApp::new(8);
        let f = app.gen_problem(3);
        let mg = app.run_region_exact(&f);
        let direct = cg_solve(&app.a_fine, &f, 1e-12, 2000);
        assert!(vecops::rel_l2_error(&mg, &direct.x) < 1e-5);
    }

    #[test]
    fn restriction_prolongation_shapes() {
        let app = MgApp::new(8);
        let fine = vec![1.0; 64];
        let coarse = app.restrict(&fine);
        assert_eq!(coarse.len(), 16);
        assert!(coarse.iter().all(|&v| (v - 1.0).abs() < 1e-12));
        let back = app.prolong(&coarse);
        assert_eq!(back.len(), 64);
        assert!(back.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn laplacian_row_sums_reflect_boundary() {
        let a = laplacian_2d(4);
        // Interior rows sum to 0 modulo boundary truncation; corner rows
        // have only two neighbors so the sum is 4 - 2 = 2.
        let d = a.to_dense();
        let corner_sum: f64 = d.row(0).iter().sum();
        assert_eq!(corner_sum, 2.0);
    }

    #[test]
    #[should_panic(expected = "even grid")]
    fn odd_grid_rejected() {
        MgApp::new(7);
    }
}
