//! PARSEC fluidanimate application (Type II).
//!
//! The replaced region is `NS_equation`: a smoothed-particle-hydrodynamics
//! (SPH) time-stepping kernel — density estimation, pressure and viscosity
//! forces, symplectic integration, and wall handling — advanced for a few
//! steps. Problems perturb the initial velocity field through smooth modes
//! (θ), leaving particle count and geometry fixed.

use hpcnet_tensor::rng::seeded;

use crate::{AppType, HpcApp};

/// Particle count.
const N: usize = 48;
/// Integration steps per region invocation.
const STEPS: usize = 5;
/// SPH smoothing radius.
const H: f64 = 0.35;
/// Time step.
const DT: f64 = 0.01;
/// Latent velocity-mode parameters.
const LATENT: usize = 6;

/// The fluidanimate application.
pub struct FluidApp {
    /// Fixed initial particle positions (a jittered lattice in [0,1]^2).
    base_pos: Vec<f64>,
}

impl Default for FluidApp {
    fn default() -> Self {
        let mut rng = seeded(0xf1, "fluid-lattice");
        let side = (N as f64).sqrt().ceil() as usize;
        let mut base_pos = Vec::with_capacity(2 * N);
        for p in 0..N {
            let r = p / side;
            let c = p % side;
            base_pos.push(
                (c as f64 + 0.5) / side as f64
                    + 0.02 * hpcnet_tensor::rng::normal(&mut rng, 0.0, 1.0),
            );
            base_pos.push(
                (r as f64 + 0.5) / side as f64
                    + 0.02 * hpcnet_tensor::rng::normal(&mut rng, 0.0, 1.0),
            );
        }
        FluidApp { base_pos }
    }
}

impl FluidApp {
    /// One SPH step over `(pos, vel)`, counting FLOPs.
    fn sph_step(pos: &mut [f64], vel: &mut [f64]) -> u64 {
        Self::sph_step_strided(pos, vel, 1)
    }

    /// SPH step visiting every `stride`-th neighbor, scaling contributions
    /// by `stride` to compensate (the loop-perforation transformation).
    fn sph_step_strided(pos: &mut [f64], vel: &mut [f64], stride: usize) -> u64 {
        let comp = stride as f64;
        let mut flops = 0u64;
        let h2 = H * H;
        // Density estimation (poly6-style kernel).
        let mut density = vec![0.0f64; N];
        for i in 0..N {
            for j in (0..N).step_by(stride) {
                let dx = pos[2 * i] - pos[2 * j];
                let dy = pos[2 * i + 1] - pos[2 * j + 1];
                let r2 = dx * dx + dy * dy;
                flops += 5;
                if r2 < h2 {
                    let w = (h2 - r2) * (h2 - r2) * (h2 - r2);
                    density[i] += comp * w;
                    flops += 4;
                }
            }
        }
        // Pressure from a stiff equation of state.
        let rest = 0.5 * (h2 * h2 * h2) * N as f64 / 12.0;
        let pressure: Vec<f64> = density.iter().map(|&d| 2.0 * (d - rest).max(0.0)).collect();
        flops += 2 * N as u64;
        // Forces: pressure gradient + viscosity.
        let mut force = vec![0.0f64; 2 * N];
        for i in 0..N {
            for j in (0..N).step_by(stride) {
                if i == j {
                    continue;
                }
                let dx = pos[2 * i] - pos[2 * j];
                let dy = pos[2 * i + 1] - pos[2 * j + 1];
                let r2 = dx * dx + dy * dy;
                flops += 5;
                if r2 < h2 && r2 > 1e-12 {
                    let r = r2.sqrt();
                    let w = (H - r) * (H - r);
                    let shared =
                        comp * (pressure[i] + pressure[j]) * w / (r * density[j].max(1e-9));
                    force[2 * i] += shared * dx;
                    force[2 * i + 1] += shared * dy;
                    // Viscosity pulls velocities together.
                    let visc = comp * 0.05 * (H - r) / density[j].max(1e-9);
                    force[2 * i] += visc * (vel[2 * j] - vel[2 * i]);
                    force[2 * i + 1] += visc * (vel[2 * j + 1] - vel[2 * i + 1]);
                    flops += 18;
                }
            }
        }
        // Integrate with gravity; reflect at the unit box walls.
        for i in 0..N {
            vel[2 * i] += DT * force[2 * i];
            vel[2 * i + 1] += DT * (force[2 * i + 1] - 9.8);
            pos[2 * i] += DT * vel[2 * i];
            pos[2 * i + 1] += DT * vel[2 * i + 1];
            flops += 8;
            for d in 0..2 {
                let p = &mut pos[2 * i + d];
                if *p < 0.0 {
                    *p = -*p;
                    vel[2 * i + d] *= -0.5;
                }
                if *p > 1.0 {
                    *p = 2.0 - *p;
                    vel[2 * i + d] *= -0.5;
                }
            }
        }
        flops
    }
}

impl HpcApp for FluidApp {
    fn name(&self) -> &'static str {
        "fluidanimate"
    }

    fn app_type(&self) -> AppType {
        AppType::TypeII
    }

    fn region_name(&self) -> &'static str {
        "NS_equation"
    }

    fn qoi_name(&self) -> &'static str {
        "particle distance (mean pairwise)"
    }

    fn input_dim(&self) -> usize {
        4 * N // positions + velocities
    }

    fn output_dim(&self) -> usize {
        2 * N // final positions
    }

    fn gen_problem(&self, index: u64) -> Vec<f64> {
        let mut rng = seeded(index, "fluid-theta");
        let theta = hpcnet_tensor::rng::normal_vec(&mut rng, LATENT, 0.0, 1.0);
        let mut x = Vec::with_capacity(self.input_dim());
        x.extend_from_slice(&self.base_pos);
        // Smooth velocity modes: low-order Fourier modes over position.
        for p in 0..N {
            let (px, py) = (self.base_pos[2 * p], self.base_pos[2 * p + 1]);
            let tau = std::f64::consts::TAU;
            let vx = 0.3 * theta[0] * (tau * py).sin()
                + 0.3 * theta[1] * (tau * px).cos()
                + 0.15 * theta[2];
            let vy = 0.3 * theta[3] * (tau * px).sin()
                + 0.3 * theta[4] * (tau * py).cos()
                + 0.15 * theta[5];
            x.push(vx);
            x.push(vy);
        }
        x
    }

    fn run_region_counted(&self, x: &[f64]) -> (Vec<f64>, u64) {
        let mut pos = x[..2 * N].to_vec();
        let mut vel = x[2 * N..].to_vec();
        let mut flops = 0u64;
        for _ in 0..STEPS {
            flops += Self::sph_step(&mut pos, &mut vel);
        }
        (pos, flops)
    }

    fn run_region_perforated(&self, x: &[f64], skip: f64) -> Option<(Vec<f64>, u64)> {
        // Perforate the pairwise interaction loop: stride over neighbors
        // and rescale the accumulated quantities (importance compensation).
        let stride = (1.0 / (1.0 - skip.clamp(0.0, 0.9))).round().max(1.0) as usize;
        let mut pos = x[..2 * N].to_vec();
        let mut vel = x[2 * N..].to_vec();
        let mut flops = 0u64;
        for _ in 0..STEPS {
            flops += Self::sph_step_strided(&mut pos, &mut vel, stride);
        }
        Some((pos, flops))
    }

    fn qoi(&self, _x: &[f64], region_out: &[f64]) -> f64 {
        // Mean pairwise particle distance — the paper's QoI.
        let mut total = 0.0;
        let mut count = 0usize;
        for i in 0..N {
            for j in i + 1..N {
                let dx = region_out[2 * i] - region_out[2 * j];
                let dy = region_out[2 * i + 1] - region_out[2 * j + 1];
                total += (dx * dx + dy * dy).sqrt();
                count += 1;
            }
        }
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn particles_stay_in_the_box() {
        let app = FluidApp::default();
        let x = app.gen_problem(0);
        let (pos, flops) = app.run_region_counted(&x);
        for (i, &p) in pos.iter().enumerate() {
            assert!(
                (-0.05..=1.05).contains(&p),
                "particle coord {i} escaped: {p}"
            );
        }
        assert!(flops > 10_000);
    }

    #[test]
    fn gravity_pulls_the_fluid_down() {
        let app = FluidApp::default();
        let x = app.gen_problem(1);
        let mean_y0: f64 = (0..N).map(|i| x[2 * i + 1]).sum::<f64>() / N as f64;
        let (pos, _) = app.run_region_counted(&x);
        let mean_y1: f64 = (0..N).map(|i| pos[2 * i + 1]).sum::<f64>() / N as f64;
        assert!(
            mean_y1 < mean_y0,
            "center of mass must fall: {mean_y0} -> {mean_y1}"
        );
    }

    #[test]
    fn qoi_smooth_under_small_velocity_change() {
        let app = FluidApp::default();
        let x = app.gen_problem(2);
        let q0 = app.qoi(&x, &app.run_region_exact(&x));
        let mut x2 = x.clone();
        for v in &mut x2[2 * N..] {
            *v += 1e-4;
        }
        let q1 = app.qoi(&x2, &app.run_region_exact(&x2));
        assert!(
            (q0 - q1).abs() < 0.05 * q0.abs().max(0.1),
            "QoI jumped: {q0} -> {q1}"
        );
    }

    #[test]
    fn different_problems_diverge() {
        let app = FluidApp::default();
        let a = app.run_region_exact(&app.gen_problem(1));
        let b = app.run_region_exact(&app.gen_problem(2));
        assert_ne!(a, b);
    }
}
