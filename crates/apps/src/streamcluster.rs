//! PARSEC streamcluster application (Type II).
//!
//! The replaced region is the clustering/`Dimension_reduction` phase:
//! k-median local search (assign + center recomputation + swap
//! improvement) over a window of streamed points. Problems vary the
//! underlying cluster centers through θ while the per-point offsets stay
//! fixed, the stationary-stream assumption of the benchmark.

use hpcnet_tensor::rng::seeded;
use hpcnet_tensor::Matrix;

use crate::{AppType, HpcApp};

/// Streamed points per window.
const POINTS: usize = 32;
/// Feature dimension.
const DIM: usize = 8;
/// Number of medians.
const K: usize = 4;
/// Local-search rounds.
const ROUNDS: usize = 12;
/// Latent parameters mapped to center coordinates.
const LATENT: usize = 8;

/// The streamcluster application.
pub struct StreamclusterApp {
    /// Fixed per-point offsets from their generating center.
    offsets: Vec<f64>,
    /// Fixed point-to-generating-center assignment.
    membership: Vec<usize>,
    /// Fixed projection from θ to center coordinates.
    theta_to_centers: Matrix,
}

impl Default for StreamclusterApp {
    fn default() -> Self {
        let mut rng = seeded(0x5c, "streamcluster-base");
        let offsets = hpcnet_tensor::rng::normal_vec(&mut rng, POINTS * DIM, 0.0, 0.25);
        let membership: Vec<usize> = (0..POINTS).map(|p| p % K).collect();
        let proj = hpcnet_tensor::rng::normal_vec(&mut rng, LATENT * K * DIM, 0.0, 0.6);
        let theta_to_centers = Matrix::from_vec(LATENT, K * DIM, proj).expect("sized");
        StreamclusterApp {
            offsets,
            membership,
            theta_to_centers,
        }
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl StreamclusterApp {
    /// k-median-style local search. Returns `(centers, flops)`.
    fn cluster(points: &[f64]) -> (Vec<f64>, u64) {
        Self::cluster_rounds(points, ROUNDS)
    }

    fn cluster_rounds(points: &[f64], rounds: usize) -> (Vec<f64>, u64) {
        let mut flops = 0u64;
        // Deterministic initialization: first K points.
        let mut centers: Vec<f64> = points[..K * DIM].to_vec();
        let mut assign = vec![0usize; POINTS];
        for _ in 0..rounds {
            // Assignment step.
            for p in 0..POINTS {
                let pt = &points[p * DIM..(p + 1) * DIM];
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (c, center) in centers.chunks_exact(DIM).enumerate() {
                    let d = dist2(pt, center);
                    flops += 3 * DIM as u64;
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                assign[p] = best;
            }
            // Center recomputation (median approximated by the mean, as
            // streamcluster's gain computation effectively does locally).
            let mut sums = vec![0.0f64; K * DIM];
            let mut counts = [0usize; K];
            for p in 0..POINTS {
                let c = assign[p];
                counts[c] += 1;
                for d in 0..DIM {
                    sums[c * DIM + d] += points[p * DIM + d];
                }
                flops += DIM as u64;
            }
            for c in 0..K {
                if counts[c] > 0 {
                    for d in 0..DIM {
                        centers[c * DIM + d] = sums[c * DIM + d] / counts[c] as f64;
                    }
                    flops += DIM as u64;
                }
            }
        }
        (centers, flops)
    }
}

impl HpcApp for StreamclusterApp {
    fn name(&self) -> &'static str {
        "streamcluster"
    }

    fn app_type(&self) -> AppType {
        AppType::TypeII
    }

    fn region_name(&self) -> &'static str {
        "Dimension_reduction"
    }

    fn qoi_name(&self) -> &'static str {
        "cluster center distance"
    }

    fn input_dim(&self) -> usize {
        POINTS * DIM
    }

    fn output_dim(&self) -> usize {
        K * DIM
    }

    fn gen_problem(&self, index: u64) -> Vec<f64> {
        let mut rng = seeded(index, "streamcluster-theta");
        let theta = hpcnet_tensor::rng::normal_vec(&mut rng, LATENT, 0.0, 1.0);
        let centers = self.theta_to_centers.matvec_t(&theta).expect("dims");
        let mut points = Vec::with_capacity(self.input_dim());
        for p in 0..POINTS {
            let c = self.membership[p];
            for d in 0..DIM {
                points.push(centers[c * DIM + d] + self.offsets[p * DIM + d]);
            }
        }
        points
    }

    fn run_region_counted(&self, x: &[f64]) -> (Vec<f64>, u64) {
        Self::cluster(x)
    }

    fn run_region_perforated(&self, x: &[f64], skip: f64) -> Option<(Vec<f64>, u64)> {
        // Perforate the local-search loop: fewer improvement rounds.
        let rounds = ((ROUNDS as f64) * (1.0 - skip.clamp(0.0, 0.99)))
            .ceil()
            .max(1.0) as usize;
        Some(Self::cluster_rounds(x, rounds))
    }

    fn qoi(&self, x: &[f64], region_out: &[f64]) -> f64 {
        // Mean distance from each point to its nearest returned center —
        // the clustering cost the stream pipeline consumes.
        let mut total = 0.0;
        for p in 0..POINTS {
            let pt = &x[p * DIM..(p + 1) * DIM];
            let d = region_out
                .chunks_exact(DIM)
                .map(|c| dist2(pt, c).sqrt())
                .fold(f64::INFINITY, f64::min);
            total += d;
        }
        total / POINTS as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_cost_beats_single_center() {
        let app = StreamclusterApp::default();
        let x = app.gen_problem(0);
        let (centers, flops) = app.run_region_counted(&x);
        let cost = app.qoi(&x, &centers);
        // Baseline: everything assigned to the global mean.
        let mut mean = vec![0.0; DIM];
        for p in 0..POINTS {
            for d in 0..DIM {
                mean[d] += x[p * DIM + d] / POINTS as f64;
            }
        }
        let mut baseline = vec![0.0; K * DIM];
        for c in 0..K {
            baseline[c * DIM..(c + 1) * DIM].copy_from_slice(&mean);
        }
        let baseline_cost = app.qoi(&x, &baseline);
        assert!(cost < baseline_cost, "{cost} !< {baseline_cost}");
        assert!(flops > 1000);
    }

    #[test]
    fn clustering_recovers_separated_generators() {
        // With the default offsets (sigma 0.25) and well-separated centers,
        // each returned center should be close to a generating center.
        let app = StreamclusterApp::default();
        let x = app.gen_problem(7);
        let (centers, _) = app.run_region_counted(&x);
        let cost = app.qoi(&x, &centers);
        assert!(cost < 1.5, "mean point-to-center distance {cost}");
    }

    #[test]
    fn region_is_deterministic() {
        let app = StreamclusterApp::default();
        let x = app.gen_problem(3);
        assert_eq!(app.run_region_exact(&x), app.run_region_exact(&x));
    }
}
