//! PARSEC Blackscholes application (Type II).
//!
//! The replaced region is `BlkSchlsEqEuroNoDiv`: closed-form European
//! option pricing (no dividends) over a portfolio. This is the paper's
//! best case — the surrogate removes all control flow and the region is
//! the whole computation.

use hpcnet_tensor::rng::seeded;

use crate::{AppType, HpcApp};

/// Options priced per problem (the portfolio the region processes).
const PORTFOLIO: usize = 512;
/// Per-option inputs: spot, strike, rate, volatility, maturity.
const FIELDS: usize = 5;

/// The Blackscholes application.
#[derive(Default)]
pub struct BlackscholesApp;

/// Standard normal CDF (Abramowitz–Stegun erf approximation, the same
/// polynomial PARSEC's reference implementation uses).
fn cndf(x: f64) -> f64 {
    let sign = x < 0.0;
    let x = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * x);
    let poly = k
        * (0.319381530
            + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let v = 1.0 - pdf * poly;
    if sign {
        1.0 - v
    } else {
        v
    }
}

/// Closed-form European call and put prices. Returns `(call, put, flops)`.
pub fn black_scholes(s: f64, k: f64, r: f64, sigma: f64, t: f64) -> (f64, f64, u64) {
    let sqrt_t = t.sqrt();
    let d1 = ((s / k).ln() + (r + 0.5 * sigma * sigma) * t) / (sigma * sqrt_t);
    let d2 = d1 - sigma * sqrt_t;
    let discount = (-r * t).exp();
    let call = s * cndf(d1) - k * discount * cndf(d2);
    let put = k * discount * cndf(-d2) - s * cndf(-d1);
    // ~2 transcendentals + polynomial CNDFs; counted as the reference
    // implementation's arithmetic op tally.
    (call, put, 60)
}

impl HpcApp for BlackscholesApp {
    fn name(&self) -> &'static str {
        "Blackscholes"
    }

    fn app_type(&self) -> AppType {
        AppType::TypeII
    }

    fn region_name(&self) -> &'static str {
        "BlkSchlsEqEuroNoDiv"
    }

    fn qoi_name(&self) -> &'static str {
        "the computed price (portfolio mean)"
    }

    fn input_dim(&self) -> usize {
        PORTFOLIO * FIELDS
    }

    fn output_dim(&self) -> usize {
        2 * PORTFOLIO
    }

    fn gen_problem(&self, index: u64) -> Vec<f64> {
        let mut rng = seeded(index, "blackscholes-problem");
        let mut x = Vec::with_capacity(self.input_dim());
        for _ in 0..PORTFOLIO {
            let spot = 90.0 + 20.0 * hpcnet_tensor::rng::normal(&mut rng, 0.5, 0.2).clamp(0.0, 1.0);
            let strike =
                spot * (0.9 + 0.2 * hpcnet_tensor::rng::normal(&mut rng, 0.5, 0.2).clamp(0.0, 1.0));
            let rate = 0.02 + 0.02 * hpcnet_tensor::rng::normal(&mut rng, 0.5, 0.2).clamp(0.0, 1.0);
            let vol = 0.15 + 0.15 * hpcnet_tensor::rng::normal(&mut rng, 0.5, 0.2).clamp(0.0, 1.0);
            let ttm = 0.5 + 1.0 * hpcnet_tensor::rng::normal(&mut rng, 0.5, 0.2).clamp(0.0, 1.0);
            x.extend_from_slice(&[spot, strike, rate, vol, ttm]);
        }
        x
    }

    fn run_region_counted(&self, x: &[f64]) -> (Vec<f64>, u64) {
        let mut out = Vec::with_capacity(self.output_dim());
        let mut flops = 0u64;
        for opt in x.chunks_exact(FIELDS) {
            let (call, put, f) = black_scholes(opt[0], opt[1], opt[2], opt[3], opt[4]);
            out.push(call);
            out.push(put);
            flops += f;
        }
        (out, flops)
    }

    fn qoi(&self, _x: &[f64], region_out: &[f64]) -> f64 {
        region_out.iter().sum::<f64>() / region_out.len() as f64
    }

    fn run_region_perforated(&self, x: &[f64], skip: f64) -> Option<(Vec<f64>, u64)> {
        // Classic data-parallel perforation: price every k-th option,
        // reuse the previous priced result for skipped ones.
        let stride = (1.0 / (1.0 - skip.clamp(0.0, 0.9))).round().max(1.0) as usize;
        let mut out = vec![0.0; self.output_dim()];
        let mut flops = 0u64;
        let mut last = (0.0, 0.0);
        for (i, opt) in x.chunks_exact(FIELDS).enumerate() {
            if i % stride == 0 {
                let (c, p, f) = black_scholes(opt[0], opt[1], opt[2], opt[3], opt[4]);
                last = (c, p);
                flops += f;
            }
            out[2 * i] = last.0;
            out[2 * i + 1] = last.1;
        }
        Some((out, flops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_price_point() {
        // S=100, K=100, r=5%, sigma=20%, T=1: call ~ 10.45, put ~ 5.57.
        let (call, put, _) = black_scholes(100.0, 100.0, 0.05, 0.2, 1.0);
        assert!((call - 10.45).abs() < 0.02, "call = {call}");
        assert!((put - 5.57).abs() < 0.02, "put = {put}");
    }

    #[test]
    fn put_call_parity_holds() {
        for (s, k, r, sigma, t) in [
            (100.0, 95.0, 0.03, 0.25, 0.5),
            (80.0, 110.0, 0.01, 0.4, 2.0),
        ] {
            let (call, put, _) = black_scholes(s, k, r, sigma, t);
            let parity = call - put - (s - k * (-r * t as f64).exp());
            assert!(parity.abs() < 1e-4, "parity violation {parity}");
        }
    }

    #[test]
    fn deep_in_the_money_call_approaches_forward() {
        let (call, _, _) = black_scholes(200.0, 50.0, 0.02, 0.2, 1.0);
        let intrinsic = 200.0 - 50.0 * (-0.02f64).exp();
        assert!((call - intrinsic).abs() < 0.01);
    }

    #[test]
    fn cndf_symmetry() {
        for z in [-2.0, -0.5, 0.0, 0.5, 2.0] {
            assert!((cndf(z) + cndf(-z) - 1.0).abs() < 1e-7);
        }
        assert!((cndf(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn portfolio_prices_are_positive() {
        let app = BlackscholesApp;
        let x = app.gen_problem(2);
        let (out, _) = app.run_region_counted(&x);
        assert!(out.iter().all(|&p| p >= 0.0), "negative option price");
        assert!(app.qoi(&x, &out) > 0.0);
    }
}
