//! The 11 evaluation applications of the paper (Table 2), re-implemented
//! as faithful-but-laptop-scale Rust kernels.
//!
//! Each application exposes:
//! * the **replaced region** — the numerical solver / execution phase the
//!   surrogate substitutes (`run_region_exact`),
//! * a **problem generator** producing input instances from a fixed
//!   distribution (the dynamic-analysis assumption of paper §3.2: one
//!   surrogate covers one input distribution),
//! * the **quality of interest** (QoI) computed by the application's
//!   non-replaced part from the region output, and
//! * exact **FLOP counts** of the region (used by the device model and the
//!   Table 3 counter study).
//!
//! | App (type) | Region | QoI |
//! |---|---|---|
//! | CG (I) | sparse conjugate-gradient solve | solution RMS |
//! | FFT (I) | radix-2 forward FFT | spectrum RMS |
//! | MG (I) | multigrid V-cycle Poisson solve | solution RMS |
//! | Blackscholes (II) | closed-form option pricing | option price |
//! | Canneal (II) | simulated-annealing routing | routing cost |
//! | fluidanimate (II) | SPH time step | mean particle distance |
//! | streamcluster (II) | k-median clustering | center distance |
//! | x264 (II) | block motion-compensated encode | SSIM |
//! | miniQMC (III) | Slater-determinant evaluation | particle energy |
//! | AMG (III) | AMG-preconditioned CG | solution RMS |
//! | Laghos (III) | velocity mass-matrix solve | velocity divergence |

pub mod amg;
pub mod blackscholes;
pub mod canneal;
pub mod cg;
pub mod fft;
pub mod fluid;
pub mod laghos;
pub mod mg;
pub mod miniqmc;
pub mod solvers;
pub mod streamcluster;
pub mod x264;

use hpcnet_tensor::Csr;
use serde::{Deserialize, Serialize};

pub use amg::AmgApp;
pub use blackscholes::BlackscholesApp;
pub use canneal::CannealApp;
pub use cg::CgApp;
pub use fft::FftApp;
pub use fluid::FluidApp;
pub use laghos::LaghosApp;
pub use mg::MgApp;
pub use miniqmc::MiniQmcApp;
pub use streamcluster::StreamclusterApp;
pub use x264::X264App;

/// The paper's three application classes (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppType {
    /// Numerical solvers (NPB CG / FFT / MG).
    TypeI,
    /// PARSEC general applications.
    TypeII,
    /// ECP proxy applications.
    TypeIII,
}

impl std::fmt::Display for AppType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppType::TypeI => write!(f, "Type-I"),
            AppType::TypeII => write!(f, "Type-II"),
            AppType::TypeIII => write!(f, "Type-III"),
        }
    }
}

/// An HPC application with a surrogate-replaceable region.
pub trait HpcApp: Send + Sync {
    /// Application name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Application class.
    fn app_type(&self) -> AppType;

    /// Name of the replaced function/region (paper Table 2).
    fn region_name(&self) -> &'static str;

    /// Name of the quality-of-interest metric (paper Table 2).
    fn qoi_name(&self) -> &'static str;

    /// Width of the flattened region-input feature vector.
    fn input_dim(&self) -> usize;

    /// Width of the flattened region-output feature vector.
    fn output_dim(&self) -> usize;

    /// Generate the `index`-th input problem from the app's distribution.
    fn gen_problem(&self, index: u64) -> Vec<f64>;

    /// Run the replaced region exactly, returning `(output, flops)` —
    /// FLOPs are counted in the kernel, not estimated.
    fn run_region_counted(&self, x: &[f64]) -> (Vec<f64>, u64);

    /// Run the replaced region exactly.
    fn run_region_exact(&self, x: &[f64]) -> Vec<f64> {
        self.run_region_counted(x).0
    }

    /// The non-replaced "other part": compute the QoI from the region
    /// output (and the input context).
    fn qoi(&self, x: &[f64], region_out: &[f64]) -> f64;

    /// Is the region input naturally a high-dimensional sparse object?
    fn is_sparse(&self) -> bool {
        false
    }

    /// CSR single-row view of one input (sparse apps only). The row width
    /// equals [`Self::input_dim`].
    fn sparse_row(&self, _x: &[f64]) -> Option<Csr> {
        None
    }

    /// A bounded region memory-access trace (cache-line granularity
    /// pseudo-addresses) for the Table 3 counter study. `None` for apps
    /// that don't participate.
    fn mem_trace(&self, _x: &[f64], _limit: usize) -> Option<Vec<u64>> {
        None
    }

    /// Run the region with a fraction `skip ∈ [0, 1)` of its loop
    /// iterations perforated (HPAC-style). Returns `None` for regions with
    /// no perforable loop (e.g. FFT butterflies, LU factorization), in
    /// which case the perforation tuner can only choose skip = 0.
    fn run_region_perforated(&self, _x: &[f64], _skip: f64) -> Option<(Vec<f64>, u64)> {
        None
    }
}

/// Construct all 11 applications at their default (laptop) scales, in the
/// paper's Table 2 order.
pub fn all_apps() -> Vec<Box<dyn HpcApp>> {
    vec![
        Box::new(CgApp::default()),
        Box::new(FftApp::default()),
        Box::new(MgApp::default()),
        Box::new(BlackscholesApp),
        Box::new(CannealApp::default()),
        Box::new(FluidApp::default()),
        Box::new(StreamclusterApp::default()),
        Box::new(X264App::default()),
        Box::new(MiniQmcApp::default()),
        Box::new(AmgApp::default()),
        Box::new(LaghosApp::default()),
    ]
}

/// Root-mean-square of a vector — the scalar QoI functional used by the
/// solver applications ("solution of linear equations" style QoIs).
pub fn rms(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_eleven_apps_in_table2_order() {
        let apps = all_apps();
        assert_eq!(apps.len(), 11);
        let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "CG",
                "FFT",
                "MG",
                "Blackscholes",
                "Canneal",
                "fluidanimate",
                "streamcluster",
                "x264",
                "miniQMC",
                "AMG",
                "Laghos"
            ]
        );
    }

    #[test]
    fn every_app_round_trips_one_problem() {
        for app in all_apps() {
            let x = app.gen_problem(0);
            assert_eq!(x.len(), app.input_dim(), "{} input dim", app.name());
            let (y, flops) = app.run_region_counted(&x);
            assert_eq!(y.len(), app.output_dim(), "{} output dim", app.name());
            assert!(flops > 0, "{} must count flops", app.name());
            let q = app.qoi(&x, &y);
            assert!(q.is_finite(), "{} QoI must be finite", app.name());
            assert!(
                y.iter().all(|v| v.is_finite()),
                "{} outputs must be finite",
                app.name()
            );
        }
    }

    #[test]
    fn problem_generation_is_deterministic_and_varied() {
        for app in all_apps() {
            let a = app.gen_problem(3);
            let b = app.gen_problem(3);
            let c = app.gen_problem(4);
            assert_eq!(a, b, "{} determinism", app.name());
            assert_ne!(a, c, "{} variation", app.name());
        }
    }

    #[test]
    fn sparse_apps_provide_consistent_rows() {
        for app in all_apps() {
            let x = app.gen_problem(1);
            match (app.is_sparse(), app.sparse_row(&x)) {
                (true, Some(row)) => {
                    assert_eq!(row.nrows(), 1);
                    assert_eq!(row.ncols(), app.input_dim());
                    // The sparse view must densify back to x.
                    let dense = row.to_dense();
                    for (i, (&s, &d)) in dense.row(0).iter().zip(&x).enumerate() {
                        assert_eq!(s, d, "{} element {i}", app.name());
                    }
                    assert!(
                        row.density() < 0.5,
                        "{} claims sparsity but density is {}",
                        app.name(),
                        row.density()
                    );
                }
                (false, None) => {}
                (s, r) => panic!(
                    "{}: is_sparse={s} but sparse_row={:?}",
                    app.name(),
                    r.map(|c| c.nnz())
                ),
            }
        }
    }

    #[test]
    fn perforation_at_zero_skip_matches_exact_where_supported() {
        for app in all_apps() {
            let x = app.gen_problem(0);
            if let Some((perf, _)) = app.run_region_perforated(&x, 0.0) {
                let exact = app.run_region_exact(&x);
                let err = hpcnet_tensor::vecops::rel_l2_error(&perf, &exact);
                assert!(
                    err < 1e-9,
                    "{}: skip=0 must be exact, err {err}",
                    app.name()
                );
            }
        }
    }

    #[test]
    fn perforation_reduces_flops_at_high_skip() {
        for app in all_apps() {
            let x = app.gen_problem(1);
            let (_, exact_flops) = app.run_region_counted(&x);
            if let Some((_, perf_flops)) = app.run_region_perforated(&x, 0.6) {
                assert!(
                    perf_flops < exact_flops,
                    "{}: perforation must save work ({perf_flops} vs {exact_flops})",
                    app.name()
                );
            }
        }
    }

    #[test]
    fn non_perforable_regions_return_none() {
        let fft = FftApp::default();
        let x = fft.gen_problem(0);
        assert!(fft.run_region_perforated(&x, 0.5).is_none());
        let qmc = MiniQmcApp::default();
        let x = qmc.gen_problem(0);
        assert!(qmc.run_region_perforated(&x, 0.5).is_none());
    }

    #[test]
    fn rms_known_value() {
        assert_eq!(rms(&[]), 0.0);
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }
}
