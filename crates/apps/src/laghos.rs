//! ECP Laghos application (Type III).
//!
//! The replaced region is `SolveVelocity`: the velocity update of a 1-D
//! Lagrangian compressible-gas step — assemble pressure-gradient forces
//! from the current density/energy state and CG-solve the (tridiagonal)
//! mass-matrix system `M v = F`. Problems perturb the initial state around
//! a Sod-shock-tube-like profile through smooth θ modes. QoI is the
//! velocity divergence (total compression rate), per paper Table 2.

use hpcnet_tensor::rng::seeded;
use hpcnet_tensor::{Coo, Csr};

use crate::solvers::cg_solve;
use crate::{AppType, HpcApp};

/// Mesh zones.
const ZONES: usize = 128;
/// Adiabatic index.
const GAMMA: f64 = 1.4;
/// Latent state-perturbation modes.
const LATENT: usize = 6;

/// The Laghos application.
pub struct LaghosApp {
    /// Lumped+consistent blended mass matrix (tridiagonal, SPD).
    mass: Csr,
    tol: f64,
}

impl Default for LaghosApp {
    fn default() -> Self {
        // 1-D linear-FEM mass matrix on a uniform mesh: (h/6)[1 4 1],
        // which is SPD and tridiagonal.
        let h = 1.0 / ZONES as f64;
        let mut coo = Coo::new(ZONES, ZONES);
        for i in 0..ZONES {
            coo.push(i, i, 4.0 * h / 6.0);
            if i > 0 {
                coo.push(i, i - 1, h / 6.0);
            }
            if i + 1 < ZONES {
                coo.push(i, i + 1, h / 6.0);
            }
        }
        LaghosApp {
            mass: coo.to_csr(),
            tol: 1e-11,
        }
    }
}

impl LaghosApp {
    /// Pressure from density and specific internal energy (ideal gas).
    fn pressure(rho: f64, e: f64) -> f64 {
        (GAMMA - 1.0) * rho.max(1e-9) * e.max(0.0)
    }
}

impl HpcApp for LaghosApp {
    fn name(&self) -> &'static str {
        "Laghos"
    }

    fn app_type(&self) -> AppType {
        AppType::TypeIII
    }

    fn region_name(&self) -> &'static str {
        "SolveVelocity"
    }

    fn qoi_name(&self) -> &'static str {
        "velocity divergence"
    }

    fn input_dim(&self) -> usize {
        2 * ZONES // density and energy profiles
    }

    fn output_dim(&self) -> usize {
        ZONES // velocity field
    }

    fn gen_problem(&self, index: u64) -> Vec<f64> {
        let mut rng = seeded(index, "laghos-theta");
        let theta = hpcnet_tensor::rng::normal_vec(&mut rng, LATENT, 0.0, 1.0);
        let tau = std::f64::consts::TAU;
        let mut x = Vec::with_capacity(self.input_dim());
        // Density: a smoothed Sod-like step, modulated by θ.
        for z in 0..ZONES {
            let s = z as f64 / ZONES as f64;
            let step = 1.0 / (1.0 + ((s - 0.5) * 20.0).exp()); // 1 -> 0 across the tube
            let rho = 0.125
                + 0.875 * step
                + 0.05 * theta[0] * (tau * s).sin()
                + 0.05 * theta[1] * (2.0 * tau * s).sin();
            x.push(rho.max(0.05));
        }
        // Specific internal energy, similar structure.
        for z in 0..ZONES {
            let s = z as f64 / ZONES as f64;
            let step = 1.0 / (1.0 + ((s - 0.5) * 20.0).exp());
            let e = 2.0
                + 0.5 * step
                + 0.1 * theta[2] * (tau * s).cos()
                + 0.1 * theta[3] * (2.0 * tau * s).cos()
                + 0.05 * theta[4];
            x.push(e.max(0.1));
        }
        x
    }

    fn run_region_counted(&self, x: &[f64]) -> (Vec<f64>, u64) {
        let rho = &x[..ZONES];
        let e = &x[ZONES..];
        let mut flops = 0u64;
        // Force: discrete pressure gradient with artificial viscosity.
        let p: Vec<f64> = rho
            .iter()
            .zip(e)
            .map(|(&r, &ei)| Self::pressure(r, ei))
            .collect();
        flops += 3 * ZONES as u64;
        let h = 1.0 / ZONES as f64;
        let mut f = vec![0.0; ZONES];
        for i in 0..ZONES {
            let p_left = if i > 0 { p[i - 1] } else { p[0] };
            let p_right = if i + 1 < ZONES {
                p[i + 1]
            } else {
                p[ZONES - 1]
            };
            f[i] = -(p_right - p_left) / (2.0 * h) * h; // weak-form force
            flops += 4;
        }
        // Velocity solve M v = F.
        let res = cg_solve(&self.mass, &f, self.tol, 8 * ZONES);
        flops += res.flops;
        (res.x, flops)
    }

    fn run_region_perforated(&self, x: &[f64], skip: f64) -> Option<(Vec<f64>, u64)> {
        // Tolerance-relaxed velocity solve.
        let rho = &x[..ZONES];
        let e = &x[ZONES..];
        let mut flops = 0u64;
        let p: Vec<f64> = rho
            .iter()
            .zip(e)
            .map(|(&r, &ei)| Self::pressure(r, ei))
            .collect();
        flops += 3 * ZONES as u64;
        let h = 1.0 / ZONES as f64;
        let mut f = vec![0.0; ZONES];
        for i in 0..ZONES {
            let p_left = if i > 0 { p[i - 1] } else { p[0] };
            let p_right = if i + 1 < ZONES {
                p[i + 1]
            } else {
                p[ZONES - 1]
            };
            f[i] = -(p_right - p_left) / (2.0 * h) * h;
            flops += 4;
        }
        let tol = 10f64.powf(self.tol.log10() * (1.0 - skip.clamp(0.0, 0.99)));
        let res = cg_solve(&self.mass, &f, tol, 8 * ZONES);
        flops += res.flops;
        Some((res.x, flops))
    }

    fn qoi(&self, _x: &[f64], region_out: &[f64]) -> f64 {
        // Velocity divergence: total |dv/dx| over the tube.
        region_out
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .sum::<f64>()
            * ZONES as f64
            / (ZONES - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_tensor::vecops;

    #[test]
    fn velocity_solve_satisfies_mass_matrix_system() {
        let app = LaghosApp::default();
        let x = app.gen_problem(0);
        let (v, flops) = app.run_region_counted(&x);
        // Recompute F and check M v = F.
        let rho = &x[..ZONES];
        let e = &x[ZONES..];
        let p: Vec<f64> = rho
            .iter()
            .zip(e)
            .map(|(&r, &ei)| LaghosApp::pressure(r, ei))
            .collect();
        let h = 1.0 / ZONES as f64;
        let f: Vec<f64> = (0..ZONES)
            .map(|i| {
                let pl = if i > 0 { p[i - 1] } else { p[0] };
                let pr = if i + 1 < ZONES {
                    p[i + 1]
                } else {
                    p[ZONES - 1]
                };
                -(pr - pl) / (2.0 * h) * h
            })
            .collect();
        let mv = app.mass.spmv(&v).unwrap();
        assert!(vecops::rel_l2_error(&mv, &f) < 1e-7);
        assert!(flops > 1000);
    }

    #[test]
    fn shock_accelerates_flow_toward_low_pressure() {
        // The Sod profile has high pressure on the left; the velocity at
        // the interface should be positive (flow to the right).
        let app = LaghosApp::default();
        let x = app.gen_problem(1);
        let (v, _) = app.run_region_counted(&x);
        let mid = ZONES / 2;
        assert!(v[mid] > 0.0, "interface velocity {}", v[mid]);
    }

    #[test]
    fn divergence_is_positive_for_nonuniform_flow() {
        let app = LaghosApp::default();
        let x = app.gen_problem(2);
        let (v, _) = app.run_region_counted(&x);
        assert!(app.qoi(&x, &v) > 0.0);
    }

    #[test]
    fn pressure_is_ideal_gas() {
        assert!((LaghosApp::pressure(1.0, 2.5) - 1.0).abs() < 1e-12);
        assert_eq!(LaghosApp::pressure(1.0, -1.0), 0.0);
    }
}
