//! ECP miniQMC application (Type III).
//!
//! The replaced region is `Determinant`: building the Slater matrix from
//! single-particle orbitals evaluated at the electron coordinates and
//! computing its (log-)determinant via LU factorization — the kernel that
//! dominates quantum Monte Carlo wavefunction evaluation. Problems move
//! the electrons along smooth displacement modes (θ) around a base
//! configuration, the shape of a VMC random walk.

use hpcnet_tensor::rng::seeded;

use crate::{AppType, HpcApp};

/// Electrons (and orbitals — square Slater matrix).
const N_ELEC: usize = 20;
/// Spatial dimensions.
const D: usize = 3;
/// Latent displacement modes.
const LATENT: usize = 6;

/// The miniQMC application.
pub struct MiniQmcApp {
    /// Base electron configuration (jittered lattice).
    base: Vec<f64>,
    /// Orbital centers.
    centers: Vec<f64>,
    /// Orbital Gaussian widths.
    widths: Vec<f64>,
    /// Displacement-mode matrix (LATENT x N_ELEC*D).
    modes: Vec<f64>,
}

impl Default for MiniQmcApp {
    fn default() -> Self {
        let mut rng = seeded(0x9c, "miniqmc-base");
        let base = hpcnet_tensor::rng::uniform_vec(&mut rng, N_ELEC * D, -1.0, 1.0);
        let centers = hpcnet_tensor::rng::uniform_vec(&mut rng, N_ELEC * D, -1.0, 1.0);
        let widths: Vec<f64> = (0..N_ELEC).map(|k| 0.8 + 0.1 * (k % 4) as f64).collect();
        let modes = hpcnet_tensor::rng::normal_vec(&mut rng, LATENT * N_ELEC * D, 0.0, 0.04);
        MiniQmcApp {
            base,
            centers,
            widths,
            modes,
        }
    }
}

impl MiniQmcApp {
    /// Gaussian-type orbital j evaluated at electron position r.
    fn orbital(&self, j: usize, r: &[f64]) -> f64 {
        let c = &self.centers[j * D..(j + 1) * D];
        let r2: f64 = r.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
        // A polynomial factor keeps orbitals linearly independent.
        let poly = 1.0 + 0.3 * (j as f64) * r[j % D];
        poly * (-r2 / (2.0 * self.widths[j] * self.widths[j])).exp()
    }

    /// Build the Slater matrix and compute `log|det|` via LU with partial
    /// pivoting. Returns `(logdet, sign, trace, flops)`.
    fn slater_logdet(&self, coords: &[f64]) -> (f64, f64, f64, u64) {
        let n = N_ELEC;
        let mut m = vec![0.0f64; n * n];
        let mut flops = 0u64;
        for i in 0..n {
            let r = &coords[i * D..(i + 1) * D];
            for j in 0..n {
                m[i * n + j] = self.orbital(j, r);
                flops += 14; // distance + exp + poly
            }
        }
        let trace: f64 = (0..n).map(|i| m[i * n + i]).sum();
        // LU with partial pivoting.
        let mut sign = 1.0f64;
        let mut logdet = 0.0f64;
        for k in 0..n {
            // Pivot.
            let mut piv = k;
            let mut best = m[k * n + k].abs();
            for i in k + 1..n {
                if m[i * n + k].abs() > best {
                    best = m[i * n + k].abs();
                    piv = i;
                }
            }
            if piv != k {
                for j in 0..n {
                    m.swap(k * n + j, piv * n + j);
                }
                sign = -sign;
            }
            let pivot = m[k * n + k];
            if pivot == 0.0 {
                return (f64::NEG_INFINITY, 0.0, trace, flops);
            }
            if pivot < 0.0 {
                sign = -sign;
            }
            logdet += pivot.abs().ln();
            flops += 1;
            for i in k + 1..n {
                let factor = m[i * n + k] / pivot;
                m[i * n + k] = factor;
                flops += 1;
                for j in k + 1..n {
                    m[i * n + j] -= factor * m[k * n + j];
                    flops += 2;
                }
            }
        }
        (logdet, sign, trace, flops)
    }
}

impl HpcApp for MiniQmcApp {
    fn name(&self) -> &'static str {
        "miniQMC"
    }

    fn app_type(&self) -> AppType {
        AppType::TypeIII
    }

    fn region_name(&self) -> &'static str {
        "Determinant"
    }

    fn qoi_name(&self) -> &'static str {
        "particle energy"
    }

    fn input_dim(&self) -> usize {
        N_ELEC * D
    }

    fn output_dim(&self) -> usize {
        3 // [logdet, sign, trace]
    }

    fn gen_problem(&self, index: u64) -> Vec<f64> {
        let mut rng = seeded(index, "miniqmc-theta");
        let theta = hpcnet_tensor::rng::normal_vec(&mut rng, LATENT, 0.0, 1.0);
        let mut coords = self.base.clone();
        for (k, &t) in theta.iter().enumerate() {
            for (c, m) in coords
                .iter_mut()
                .zip(&self.modes[k * N_ELEC * D..(k + 1) * N_ELEC * D])
            {
                *c += t * m;
            }
        }
        coords
    }

    fn run_region_counted(&self, x: &[f64]) -> (Vec<f64>, u64) {
        let (logdet, sign, trace, flops) = self.slater_logdet(x);
        (vec![logdet, sign, trace], flops)
    }

    fn qoi(&self, _x: &[f64], region_out: &[f64]) -> f64 {
        // "Particle energy": the local-energy proxy miniQMC accumulates —
        // a smooth functional of the wavefunction log-amplitude.
        -2.0 * region_out[0] + 0.1 * region_out[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference determinant via naive cofactor expansion on a copy of the
    /// Slater matrix (small n only).
    fn naive_det(m: &[f64], n: usize) -> f64 {
        if n == 1 {
            return m[0];
        }
        let mut det = 0.0;
        for j in 0..n {
            let mut minor = Vec::with_capacity((n - 1) * (n - 1));
            for r in 1..n {
                for c in 0..n {
                    if c != j {
                        minor.push(m[r * n + c]);
                    }
                }
            }
            let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
            det += sign * m[j] * naive_det(&minor, n - 1);
        }
        det
    }

    #[test]
    fn lu_logdet_matches_naive_determinant() {
        // Use a tiny handcrafted matrix through the same LU code path by
        // building an app-sized matrix is overkill; instead check on the
        // real Slater matrix with n small enough for cofactors: rebuild
        // a 6x6 sub-problem via the public API is not possible, so check
        // internal consistency: det(M) computed naively on the matrix the
        // orbitals generate for 6 electrons.
        let app = MiniQmcApp::default();
        let coords = app.gen_problem(0);
        // Build a 6x6 principal sub-matrix of the Slater matrix.
        let n = 6;
        let mut m = vec![0.0; n * n];
        for i in 0..n {
            let r = &coords[i * D..(i + 1) * D];
            for j in 0..n {
                m[i * n + j] = app.orbital(j, r);
            }
        }
        let reference = naive_det(&m, n);
        // LU on the same sub-matrix.
        let mut lu = m.clone();
        let mut sign = 1.0;
        let mut logdet = 0.0;
        for k in 0..n {
            let mut piv = k;
            for i in k + 1..n {
                if lu[i * n + k].abs() > lu[piv * n + k].abs() {
                    piv = i;
                }
            }
            if piv != k {
                for j in 0..n {
                    lu.swap(k * n + j, piv * n + j);
                }
                sign = -sign;
            }
            let p = lu[k * n + k];
            if p < 0.0 {
                sign = -sign;
            }
            logdet += p.abs().ln();
            for i in k + 1..n {
                let f = lu[i * n + k] / p;
                for j in k + 1..n {
                    lu[i * n + j] -= f * lu[k * n + j];
                }
            }
        }
        let det = sign * logdet.exp();
        assert!(
            (det - reference).abs() < 1e-9 * reference.abs().max(1e-12),
            "{det} vs {reference}"
        );
    }

    #[test]
    fn energy_is_finite_and_smooth() {
        let app = MiniQmcApp::default();
        let x = app.gen_problem(1);
        let (out, flops) = app.run_region_counted(&x);
        let e = app.qoi(&x, &out);
        assert!(e.is_finite());
        assert!(flops > 1000);
        // Small coordinate change => small energy change.
        let mut x2 = x.clone();
        for v in &mut x2 {
            *v += 1e-5;
        }
        let e2 = app.qoi(&x2, &app.run_region_exact(&x2));
        assert!((e - e2).abs() < 0.01, "{e} vs {e2}");
    }

    #[test]
    fn different_walk_positions_give_different_energies() {
        let app = MiniQmcApp::default();
        let e1 = {
            let x = app.gen_problem(1);
            app.qoi(&x, &app.run_region_exact(&x))
        };
        let e2 = {
            let x = app.gen_problem(2);
            app.qoi(&x, &app.run_region_exact(&x))
        };
        assert_ne!(e1, e2);
    }
}
