//! NPB-style Conjugate Gradient application (Type I).
//!
//! The replaced region is `CG_solver`: solve `A(θ) x = b(θ)` for a sparse
//! SPD matrix with a fixed sparsity pattern. Input problems come from a
//! low-dimensional physical parameterization θ (a per-block stiffness
//! scaling `A(θ) = D(θ) A₀ D(θ)` plus a per-block load scaling of `b`),
//! matching the paper's dynamic-analysis assumption that one surrogate
//! serves one input distribution.
//!
//! The region input is the **densified** `[flatten(A), b]` vector — the
//! representation whose blow-up (paper §1, challenge 2) the customized
//! autoencoder exists to avoid; [`CgApp::sparse_row`] provides the CSR
//! view built directly from the fixed pattern in O(nnz).

use hpcnet_tensor::rng::seeded;
use hpcnet_tensor::{Coo, Csr};

use crate::solvers::cg_solve;
use crate::{rms, AppType, HpcApp};

/// Number of latent problem parameters (4 stiffness + 4 load blocks).
const LATENT: usize = 8;

/// The CG application.
pub struct CgApp {
    n: usize,
    /// Base matrix (fixed pattern and base values).
    base: Csr,
    /// Base right-hand side.
    b0: Vec<f64>,
    /// Nonzero coordinates of the fixed pattern, CSR order.
    pattern: Vec<(usize, usize)>,
    tol: f64,
    max_iter: usize,
}

impl Default for CgApp {
    fn default() -> Self {
        CgApp::new(48)
    }
}

impl CgApp {
    /// Build the application over an `n x n` system.
    pub fn new(n: usize) -> Self {
        let mut rng = seeded(0xc6, "cg-app-matrix");
        // Mild diagonal dominance: realistic conditioning, so CG spends a
        // few hundred iterations (the time-dominant solver of NPB CG).
        let base = hpcnet_tensor::rng::random_spd_csr_with_margin(&mut rng, n, 3, 0.05);
        let mut pattern = Vec::with_capacity(base.nnz());
        for i in 0..n {
            for (j, _) in base.row_iter(i) {
                pattern.push((i, j));
            }
        }
        let b0: Vec<f64> = (0..n).map(|i| 1.0 + ((i as f64) * 0.2).sin()).collect();
        CgApp {
            n,
            base,
            b0,
            pattern,
            tol: 1e-10,
            max_iter: 4 * n,
        }
    }

    /// System order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Latent θ for the `index`-th problem.
    fn theta(&self, index: u64) -> Vec<f64> {
        let mut rng = seeded(index, "cg-app-theta");
        hpcnet_tensor::rng::normal_vec(&mut rng, LATENT, 0.0, 1.0)
    }

    /// Materialize the problem from θ as `(A values in CSR order, b)`.
    fn materialize(&self, theta: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = self.n;
        let half = LATENT / 2;
        // Per-node stiffness scale d_i from the first half of θ.
        let d: Vec<f64> = (0..n).map(|i| 1.0 + 0.15 * theta[i * half / n]).collect();
        let values: Vec<f64> = self
            .pattern
            .iter()
            .zip(self.base.values())
            .map(|(&(i, j), &v)| d[i] * v * d[j])
            .collect();
        let b: Vec<f64> = self
            .b0
            .iter()
            .enumerate()
            .map(|(i, &v)| v * (1.0 + 0.25 * theta[half + i * half / n]))
            .collect();
        (values, b)
    }

    /// Parse a flattened input back into `(A, b)`.
    fn parse_input(&self, x: &[f64]) -> (Csr, Vec<f64>) {
        let n = self.n;
        debug_assert_eq!(x.len(), self.input_dim());
        let mut coo = Coo::new(n, n);
        for &(i, j) in &self.pattern {
            let v = x[i * n + j];
            if v != 0.0 {
                coo.push(i, j, v);
            }
        }
        let b = x[n * n..].to_vec();
        (coo.to_csr(), b)
    }
}

impl HpcApp for CgApp {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn app_type(&self) -> AppType {
        AppType::TypeI
    }

    fn region_name(&self) -> &'static str {
        "CG_solver"
    }

    fn qoi_name(&self) -> &'static str {
        "solution of linear equations (RMS)"
    }

    fn input_dim(&self) -> usize {
        self.n * self.n + self.n
    }

    fn output_dim(&self) -> usize {
        self.n
    }

    fn gen_problem(&self, index: u64) -> Vec<f64> {
        let theta = self.theta(index);
        let (values, b) = self.materialize(&theta);
        let n = self.n;
        let mut x = vec![0.0; self.input_dim()];
        for (&(i, j), v) in self.pattern.iter().zip(values) {
            x[i * n + j] = v;
        }
        x[n * n..].copy_from_slice(&b);
        x
    }

    fn run_region_counted(&self, x: &[f64]) -> (Vec<f64>, u64) {
        let (a, b) = self.parse_input(x);
        let res = cg_solve(&a, &b, self.tol, self.max_iter);
        (res.x, res.flops)
    }

    fn qoi(&self, _x: &[f64], region_out: &[f64]) -> f64 {
        rms(region_out)
    }

    fn is_sparse(&self) -> bool {
        true
    }

    fn sparse_row(&self, x: &[f64]) -> Option<Csr> {
        let n = self.n;
        let mut coo = Coo::new(1, self.input_dim());
        for &(i, j) in &self.pattern {
            let v = x[i * n + j];
            if v != 0.0 {
                coo.push(0, i * n + j, v);
            }
        }
        for (i, &v) in x[n * n..].iter().enumerate() {
            if v != 0.0 {
                coo.push(0, n * n + i, v);
            }
        }
        Some(coo.to_csr())
    }

    fn run_region_perforated(&self, x: &[f64], skip: f64) -> Option<(Vec<f64>, u64)> {
        // Convergence-loop perforation: skipping trailing iterations is
        // equivalent to relaxing the stopping tolerance.
        let (a, b) = self.parse_input(x);
        let tol = 10f64.powf(self.tol.log10() * (1.0 - skip.clamp(0.0, 0.99)));
        let res = cg_solve(&a, &b, tol, self.max_iter);
        Some((res.x, res.flops))
    }

    fn mem_trace(&self, x: &[f64], limit: usize) -> Option<Vec<u64>> {
        // SpMV-dominated access stream at cache-line pseudo-addresses:
        // row pointers stream, column-index gathers into x, output writes.
        let (a, _) = self.parse_input(x);
        let mut trace = Vec::with_capacity(limit);
        'outer: for _iter in 0..3 {
            for i in 0..a.nrows() {
                for (c, _) in a.row_iter(i) {
                    // value + column index (streamed), x[c] (gather).
                    trace.push(0x1000_0000 + (i as u64) * 8);
                    trace.push(0x2000_0000 + (c as u64) * 8);
                    if trace.len() >= limit {
                        break 'outer;
                    }
                }
                trace.push(0x3000_0000 + (i as u64) * 8);
                if trace.len() >= limit {
                    break 'outer;
                }
            }
        }
        Some(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_tensor::vecops;

    #[test]
    fn region_solves_the_materialized_system() {
        let app = CgApp::new(32);
        let x = app.gen_problem(0);
        let (sol, flops) = app.run_region_counted(&x);
        let (a, b) = app.parse_input(&x);
        let residual = vecops::sub(&b, &a.spmv(&sol).unwrap());
        assert!(vecops::norm2(&residual) / vecops::norm2(&b) < 1e-8);
        assert!(flops > 1000);
    }

    #[test]
    fn problems_share_the_sparsity_pattern() {
        let app = CgApp::new(32);
        let a = app.sparse_row(&app.gen_problem(1)).unwrap();
        let b = app.sparse_row(&app.gen_problem(2)).unwrap();
        assert_eq!(a.indices(), b.indices(), "fixed pattern across problems");
        assert_ne!(a.values(), b.values(), "values vary with theta");
    }

    #[test]
    fn qoi_is_smooth_under_small_theta_change() {
        // Nearby problems must have nearby QoIs — the learnability
        // precondition for the surrogate.
        let app = CgApp::new(32);
        let x = app.gen_problem(3);
        let q0 = app.qoi(&x, &app.run_region_exact(&x));
        let mut x2 = x.clone();
        for v in &mut x2 {
            *v *= 1.001;
        }
        let q1 = app.qoi(&x2, &app.run_region_exact(&x2));
        assert!(
            (q0 - q1).abs() / q0.abs() < 0.05,
            "QoI jumped: {q0} -> {q1}"
        );
    }

    #[test]
    fn input_is_genuinely_sparse() {
        let app = CgApp::default();
        let row = app.sparse_row(&app.gen_problem(0)).unwrap();
        assert!(row.density() < 0.2, "density {}", row.density());
    }

    #[test]
    fn mem_trace_is_bounded() {
        let app = CgApp::new(32);
        let x = app.gen_problem(0);
        let t = app.mem_trace(&x, 500).unwrap();
        assert!(t.len() <= 501);
        assert!(!t.is_empty());
    }
}
