//! Shared iterative solvers with exact FLOP accounting.
//!
//! These are the numerical kernels the surrogates replace; several
//! applications reuse them (CG, AMG's smoothed PCG, the fluid pressure
//! projection, Laghos' velocity solve).

use hpcnet_tensor::{vecops, Csr};

/// Result of an iterative solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final residual L2 norm.
    pub residual: f64,
    /// Floating-point operations spent (counted).
    pub flops: u64,
}

/// Plain conjugate gradients on an SPD CSR matrix.
///
/// FLOP accounting: SpMV = 2·nnz, dot = 2n, axpy = 2n per call.
pub fn cg_solve(a: &Csr, b: &[f64], tol: f64, max_iter: usize) -> SolveResult {
    let n = b.len();
    debug_assert_eq!(a.nrows(), n);
    let mut flops: u64 = 0;
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rr = vecops::dot(&r, &r);
    flops += 2 * n as u64;
    let b_norm = rr.sqrt().max(1e-300);
    let mut iterations = 0;
    for _ in 0..max_iter {
        if rr.sqrt() / b_norm <= tol {
            break;
        }
        iterations += 1;
        let ap = a.spmv(&p).expect("matching dims");
        flops += 2 * a.nnz() as u64;
        let p_ap = vecops::dot(&p, &ap);
        flops += 2 * n as u64;
        if p_ap.abs() < 1e-300 {
            break;
        }
        let alpha = rr / p_ap;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        flops += 4 * n as u64;
        let rr_new = vecops::dot(&r, &r);
        flops += 2 * n as u64;
        let beta = rr_new / rr;
        rr = rr_new;
        vecops::xpby(&r, beta, &mut p);
        flops += 2 * n as u64;
    }
    SolveResult {
        residual: rr.sqrt(),
        x,
        iterations,
        flops,
    }
}

/// Jacobi-preconditioned CG (diagonal preconditioner) — the PCG shape of
/// paper Algorithm 1.
pub fn pcg_solve(a: &Csr, b: &[f64], tol: f64, max_iter: usize) -> SolveResult {
    let n = b.len();
    debug_assert_eq!(a.nrows(), n);
    let mut flops: u64 = 0;
    // Extract the diagonal for the preconditioner.
    let mut inv_diag = vec![1.0; n];
    for i in 0..n {
        for (c, v) in a.row_iter(i) {
            if c == i && v != 0.0 {
                inv_diag[i] = 1.0 / v;
            }
        }
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
    flops += n as u64;
    let mut p = z.clone();
    let mut rz = vecops::dot(&r, &z);
    flops += 2 * n as u64;
    let b_norm = vecops::norm2(b).max(1e-300);
    let mut iterations = 0;
    for _ in 0..max_iter {
        let r_norm = vecops::norm2(&r);
        flops += 2 * n as u64;
        if r_norm / b_norm <= tol {
            break;
        }
        iterations += 1;
        let ap = a.spmv(&p).expect("matching dims");
        flops += 2 * a.nnz() as u64;
        let p_ap = vecops::dot(&p, &ap);
        flops += 2 * n as u64;
        if p_ap.abs() < 1e-300 {
            break;
        }
        let alpha = rz / p_ap;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        flops += 4 * n as u64;
        z = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
        flops += n as u64;
        let rz_new = vecops::dot(&r, &z);
        flops += 2 * n as u64;
        let beta = rz_new / rz;
        rz = rz_new;
        vecops::xpby(&z, beta, &mut p);
        flops += 2 * n as u64;
    }
    SolveResult {
        residual: vecops::norm2(&r),
        x,
        iterations,
        flops,
    }
}

/// Weighted-Jacobi relaxation sweeps, in place. Returns FLOPs.
pub fn jacobi_sweeps(a: &Csr, b: &[f64], x: &mut [f64], weight: f64, sweeps: usize) -> u64 {
    let n = b.len();
    let mut inv_diag = vec![1.0; n];
    for i in 0..n {
        for (c, v) in a.row_iter(i) {
            if c == i && v != 0.0 {
                inv_diag[i] = 1.0 / v;
            }
        }
    }
    let mut flops = 0u64;
    let mut next = vec![0.0; n];
    for _ in 0..sweeps {
        let ax = a.spmv(x).expect("matching dims");
        flops += 2 * a.nnz() as u64;
        for i in 0..n {
            next[i] = x[i] + weight * inv_diag[i] * (b[i] - ax[i]);
        }
        flops += 3 * n as u64;
        x.copy_from_slice(&next);
    }
    flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcnet_tensor::rng::{random_spd_csr, seeded, uniform_vec};

    fn spd_system(n: usize, seed: u64) -> (Csr, Vec<f64>, Vec<f64>) {
        let mut rng = seeded(seed, "solver-test");
        let a = random_spd_csr(&mut rng, n, 3);
        let x_true = uniform_vec(&mut rng, n, -1.0, 1.0);
        let b = a.spmv(&x_true).unwrap();
        (a, b, x_true)
    }

    #[test]
    fn cg_recovers_known_solution() {
        let (a, b, x_true) = spd_system(50, 1);
        let res = cg_solve(&a, &b, 1e-10, 500);
        assert!(vecops::rel_l2_error(&res.x, &x_true) < 1e-8);
        assert!(res.iterations > 0);
        assert!(res.flops > 0);
    }

    #[test]
    fn pcg_converges_no_slower_than_cg_on_illconditioned() {
        // Scale rows to worsen conditioning; Jacobi preconditioning should
        // roughly fix it back.
        let mut rng = seeded(3, "illcond");
        let n = 60;
        let a = random_spd_csr(&mut rng, n, 3);
        // D A D with strongly varying D keeps SPD but skews the spectrum.
        let d: Vec<f64> = (0..n).map(|i| 1.0 + 10.0 * (i as f64 / n as f64)).collect();
        let dense = a.to_dense();
        let mut scaled = hpcnet_tensor::Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                *scaled.at_mut(i, j) = d[i] * dense.at(i, j) * d[j];
            }
        }
        let a_ill = Csr::from_dense(&scaled);
        let x_true = uniform_vec(&mut rng, n, -1.0, 1.0);
        let b = a_ill.spmv(&x_true).unwrap();
        let cg = cg_solve(&a_ill, &b, 1e-10, 2000);
        let pcg = pcg_solve(&a_ill, &b, 1e-10, 2000);
        assert!(vecops::rel_l2_error(&pcg.x, &x_true) < 1e-7);
        assert!(
            pcg.iterations <= cg.iterations,
            "PCG {} vs CG {}",
            pcg.iterations,
            cg.iterations
        );
    }

    #[test]
    fn zero_rhs_returns_zero_solution_immediately() {
        let (a, _, _) = spd_system(20, 5);
        let res = cg_solve(&a, &vec![0.0; 20], 1e-12, 100);
        assert_eq!(res.iterations, 0);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn jacobi_sweeps_reduce_residual() {
        let (a, b, _) = spd_system(40, 7);
        let mut x = vec![0.0; 40];
        let r0 = vecops::norm2(&b);
        jacobi_sweeps(&a, &b, &mut x, 0.8, 20);
        let ax = a.spmv(&x).unwrap();
        let r = vecops::norm2(&vecops::sub(&b, &ax));
        assert!(r < r0 * 0.9, "residual {r} vs initial {r0}");
    }

    #[test]
    fn flops_scale_with_iterations() {
        let (a, b, _) = spd_system(50, 9);
        let loose = cg_solve(&a, &b, 1e-2, 500);
        let tight = cg_solve(&a, &b, 1e-12, 500);
        assert!(tight.iterations > loose.iterations);
        assert!(tight.flops > loose.flops);
    }
}
