//! NPB-style FFT application (Type I).
//!
//! The replaced region is `FFT_solver`: the NPB-FT pseudo-spectral kernel —
//! forward radix-2 FFT, then `T` timesteps of spectral-space evolution
//! (diagonal exponential-decay multipliers) each followed by an inverse
//! FFT checkpoint. Problems are signals synthesized from a small set of
//! spectral parameters θ (amplitudes and phases of fixed carrier
//! frequencies).

use hpcnet_tensor::rng::seeded;

use crate::{rms, AppType, HpcApp};

/// Number of latent parameters: 3 carriers x (amplitude, phase).
const LATENT: usize = 6;
/// Fixed carrier frequencies (bins).
const CARRIERS: [usize; 3] = [3, 7, 11];
/// Spectral-evolution timesteps (NPB FT's `niter`).
const EVOLVE_STEPS: usize = 24;
/// Diffusion coefficient of the evolution operator.
const ALPHA: f64 = 1e-4;

/// The FFT application.
pub struct FftApp {
    n: usize,
}

impl Default for FftApp {
    fn default() -> Self {
        FftApp::new(64)
    }
}

impl FftApp {
    /// Build over length-`n` signals (`n` must be a power of two).
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "radix-2 FFT needs a power-of-two length"
        );
        FftApp { n }
    }

    /// Signal length.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// In-place iterative radix-2 FFT over interleaved (re, im) pairs.
/// Returns counted FLOPs.
pub fn fft_inplace(re: &mut [f64], im: &mut [f64]) -> u64 {
    let n = re.len();
    debug_assert!(n.is_power_of_two());
    debug_assert_eq!(im.len(), n);
    let mut flops = 0u64;

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
        let mut m = n >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }

    // Butterflies.
    let mut len = 2usize;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0usize;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let a = i + k;
                let b = i + k + len / 2;
                let tr = cr * re[b] - ci * im[b];
                let ti = cr * im[b] + ci * re[b];
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
                flops += 20;
            }
            i += len;
        }
        len <<= 1;
    }
    flops
}

impl HpcApp for FftApp {
    fn name(&self) -> &'static str {
        "FFT"
    }

    fn app_type(&self) -> AppType {
        AppType::TypeI
    }

    fn region_name(&self) -> &'static str {
        "FFT_solver"
    }

    fn qoi_name(&self) -> &'static str {
        "output sequence of FFT (RMS)"
    }

    fn input_dim(&self) -> usize {
        self.n
    }

    fn output_dim(&self) -> usize {
        self.n
    }

    fn gen_problem(&self, index: u64) -> Vec<f64> {
        let mut rng = seeded(index, "fft-app-theta");
        let theta = hpcnet_tensor::rng::normal_vec(&mut rng, LATENT, 0.0, 1.0);
        (0..self.n)
            .map(|t| {
                let tt = t as f64 / self.n as f64;
                CARRIERS
                    .iter()
                    .enumerate()
                    .map(|(k, &f)| {
                        let amp = 1.0 + 0.3 * theta[2 * k];
                        let phase = 0.5 * theta[2 * k + 1];
                        amp * (2.0 * std::f64::consts::PI * f as f64 * tt + phase).sin()
                    })
                    .sum()
            })
            .collect()
    }

    fn run_region_counted(&self, x: &[f64]) -> (Vec<f64>, u64) {
        let n = self.n;
        let mut re = x.to_vec();
        let mut im = vec![0.0; n];
        let mut flops = fft_inplace(&mut re, &mut im);

        // Spectral evolution with per-step inverse-FFT checkpoints (the
        // NPB FT loop). The evolved signal of the final step is the output.
        let mut out = vec![0.0; n];
        for step in 1..=EVOLVE_STEPS {
            for k in 0..n {
                // Symmetric wavenumber k̄ for the decay operator.
                let kk = if k <= n / 2 { k as f64 } else { (n - k) as f64 };
                let decay = (-4.0
                    * ALPHA
                    * std::f64::consts::PI
                    * std::f64::consts::PI
                    * kk
                    * kk
                    * step as f64)
                    .exp();
                // Applied to a copy per checkpoint: spectrum stays at t=0.
                out[k] = decay;
                flops += 8;
            }
            // Inverse FFT of the evolved spectrum via the conjugate trick.
            let mut er: Vec<f64> = re.iter().zip(&out).map(|(r, d)| r * d).collect();
            let mut ei: Vec<f64> = im.iter().zip(&out).map(|(i, d)| -i * d).collect();
            flops += 2 * n as u64;
            flops += fft_inplace(&mut er, &mut ei);
            for v in er.iter_mut() {
                *v /= n as f64;
            }
            flops += n as u64;
            out.copy_from_slice(&er);
        }
        (out, flops)
    }

    fn qoi(&self, _x: &[f64], region_out: &[f64]) -> f64 {
        // RMS of the evolved output sequence.
        rms(region_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dft_reference(x: &[f64]) -> Vec<(f64, f64)> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut re = 0.0;
                let mut im = 0.0;
                for (t, &v) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                    re += v * ang.cos();
                    im += v * ang.sin();
                }
                (re, im)
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        let app = FftApp::new(32);
        let x = app.gen_problem(5);
        let mut re = x.clone();
        let mut im = vec![0.0; 32];
        fft_inplace(&mut re, &mut im);
        let reference = dft_reference(&x);
        for (k, (r, i)) in reference.iter().enumerate() {
            assert!((re[k] - r).abs() < 1e-8, "re[{k}]");
            assert!((im[k] - i).abs() < 1e-8, "im[{k}]");
        }
    }

    #[test]
    fn evolution_dampens_the_signal() {
        // The decay operator strictly reduces signal energy over time.
        let app = FftApp::new(64);
        let x = app.gen_problem(3);
        let (out, flops) = app.run_region_counted(&x);
        assert_eq!(out.len(), 64);
        assert!(rms(&out) < rms(&x), "evolution must dissipate energy");
        assert!(rms(&out) > 0.01 * rms(&x), "low frequencies must survive");
        // Region cost: forward + EVOLVE_STEPS inverse FFTs.
        assert!(flops > (EVOLVE_STEPS as u64) * 4_000);
    }

    #[test]
    fn zero_alpha_would_be_identity_like() {
        // Sanity on the inverse-FFT path: evolving with decay 1 (step
        // factor at k=0) keeps the DC component exactly.
        let app = FftApp::new(32);
        let x = vec![1.0; 32]; // pure DC
        let (out, _) = app.run_region_counted(&x);
        for v in &out {
            assert!((v - 1.0).abs() < 1e-9, "DC must pass through, got {v}");
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut re = vec![0.0; 16];
        re[0] = 1.0;
        let mut im = vec![0.0; 16];
        fft_inplace(&mut re, &mut im);
        for k in 0..16 {
            assert!((re[k] - 1.0).abs() < 1e-12);
            assert!(im[k].abs() < 1e-12);
        }
    }

    #[test]
    fn carriers_dominate_the_spectrum() {
        let app = FftApp::new(64);
        let x = app.gen_problem(0);
        let mut re = x.clone();
        let mut im = vec![0.0; 64];
        fft_inplace(&mut re, &mut im);
        let mag = |k: usize| (re[k] * re[k] + im[k] * im[k]).sqrt();
        let carrier_energy: f64 = CARRIERS.iter().map(|&k| mag(k)).sum();
        let other_energy: f64 = (0..32).filter(|k| !CARRIERS.contains(k)).map(mag).sum();
        assert!(carrier_energy > 10.0 * other_energy);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        FftApp::new(12);
    }
}
