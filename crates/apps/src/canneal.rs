//! PARSEC Canneal application (Type II).
//!
//! The replaced region is `Annealing`: simulated-annealing placement of
//! netlist elements on a grid, minimizing total weighted wirelength. The
//! input is the (sparse, symmetric) net-weight matrix; problems vary the
//! weights through a low-dimensional block-scaling θ. The annealing run is
//! fully deterministic given the input (fixed schedule and move stream),
//! so the region is a function — exactly what the surrogate needs.

use hpcnet_tensor::rng::seeded;
use hpcnet_tensor::{Coo, Csr};
use rand::Rng;

use crate::{AppType, HpcApp};

/// Netlist elements.
const ELEMENTS: usize = 32;
/// Placement grid side (ELEMENTS positions on an 8x8 grid subset).
const GRID: usize = 8;
/// Latent weight-scaling parameters.
const LATENT: usize = 6;
/// Annealing temperature steps.
const TEMP_STEPS: usize = 60;
/// Swap proposals per temperature.
const MOVES_PER_TEMP: usize = 48;

/// The Canneal application.
pub struct CannealApp {
    /// Fixed sparsity pattern: upper-triangle pairs with base weights.
    pattern: Vec<(usize, usize, f64)>,
}

impl Default for CannealApp {
    fn default() -> Self {
        let mut rng = seeded(0xca, "canneal-netlist");
        // Each element connects to ~4 random partners.
        let mut pattern = Vec::new();
        for i in 0..ELEMENTS {
            for _ in 0..2 {
                let j = rng.gen_range(0..ELEMENTS);
                if i != j {
                    let (a, b) = (i.min(j), i.max(j));
                    let w = 0.5 + rng.gen_range(0.0..1.0);
                    pattern.push((a, b, w));
                }
            }
        }
        pattern.sort_by_key(|&(a, b, _)| (a, b));
        pattern.dedup_by_key(|&mut (a, b, _)| (a, b));
        CannealApp { pattern }
    }
}

impl CannealApp {
    /// Manhattan distance between two grid positions.
    fn dist(p: usize, q: usize) -> f64 {
        let (pr, pc) = (p / GRID, p % GRID);
        let (qr, qc) = (q / GRID, q % GRID);
        ((pr as i64 - qr as i64).abs() + (pc as i64 - qc as i64).abs()) as f64
    }

    /// Total routing cost of a placement under weights `w` (aligned with
    /// the pattern).
    fn cost(&self, w: &[f64], pos: &[usize]) -> f64 {
        self.pattern
            .iter()
            .zip(w)
            .map(|(&(i, j, _), &wij)| wij * Self::dist(pos[i], pos[j]))
            .sum()
    }

    /// Extract the pattern weights from a flattened dense input.
    fn weights_from_input(&self, x: &[f64]) -> Vec<f64> {
        self.pattern
            .iter()
            .map(|&(i, j, _)| x[i * ELEMENTS + j])
            .collect()
    }
}

impl HpcApp for CannealApp {
    fn name(&self) -> &'static str {
        "Canneal"
    }

    fn app_type(&self) -> AppType {
        AppType::TypeII
    }

    fn region_name(&self) -> &'static str {
        "Annealing"
    }

    fn qoi_name(&self) -> &'static str {
        "routing cost"
    }

    fn input_dim(&self) -> usize {
        ELEMENTS * ELEMENTS
    }

    fn output_dim(&self) -> usize {
        1
    }

    fn gen_problem(&self, index: u64) -> Vec<f64> {
        let mut rng = seeded(index, "canneal-theta");
        let theta = hpcnet_tensor::rng::normal_vec(&mut rng, LATENT, 0.0, 1.0);
        let mut x = vec![0.0; self.input_dim()];
        for &(i, j, base) in &self.pattern {
            let scale = 1.0 + 0.2 * theta[(i + j) % LATENT];
            x[i * ELEMENTS + j] = base * scale.max(0.05);
        }
        x
    }

    fn run_region_counted(&self, x: &[f64]) -> (Vec<f64>, u64) {
        let w = self.weights_from_input(x);
        // Deterministic initial placement: element k at grid cell 2k
        // (spread over the 64-cell grid).
        let mut pos: Vec<usize> = (0..ELEMENTS).map(|k| (2 * k) % (GRID * GRID)).collect();
        let mut cost = self.cost(&w, &pos);
        let mut flops = (3 * self.pattern.len()) as u64;
        // Fixed move stream: same proposals for every input (region is a
        // pure function of the weights).
        let mut move_rng = seeded(0xa11ea1, "canneal-moves");
        let mut temp = 2.0f64;
        for _ in 0..TEMP_STEPS {
            for _ in 0..MOVES_PER_TEMP {
                let a = move_rng.gen_range(0..ELEMENTS);
                let b = move_rng.gen_range(0..ELEMENTS);
                if a == b {
                    continue;
                }
                pos.swap(a, b);
                let new_cost = self.cost(&w, &pos);
                flops += (3 * self.pattern.len()) as u64 + 5;
                let accept = if new_cost <= cost {
                    true
                } else {
                    let p = ((cost - new_cost) / temp).exp();
                    move_rng.gen_range(0.0..1.0) < p
                };
                if accept {
                    cost = new_cost;
                } else {
                    pos.swap(a, b);
                }
            }
            temp *= 0.92;
        }
        (vec![cost], flops)
    }

    fn qoi(&self, _x: &[f64], region_out: &[f64]) -> f64 {
        region_out[0]
    }

    fn run_region_perforated(&self, x: &[f64], skip: f64) -> Option<(Vec<f64>, u64)> {
        // Perforate the annealing schedule: fewer temperature steps.
        let w = self.weights_from_input(x);
        let steps = ((TEMP_STEPS as f64) * (1.0 - skip.clamp(0.0, 0.99))).ceil() as usize;
        let mut pos: Vec<usize> = (0..ELEMENTS).map(|k| (2 * k) % (GRID * GRID)).collect();
        let mut cost = self.cost(&w, &pos);
        let mut flops = (3 * self.pattern.len()) as u64;
        let mut move_rng = seeded(0xa11ea1, "canneal-moves");
        let mut temp = 2.0f64;
        for _ in 0..steps {
            for _ in 0..MOVES_PER_TEMP {
                let a = move_rng.gen_range(0..ELEMENTS);
                let b = move_rng.gen_range(0..ELEMENTS);
                if a == b {
                    continue;
                }
                pos.swap(a, b);
                let new_cost = self.cost(&w, &pos);
                flops += (3 * self.pattern.len()) as u64 + 5;
                let accept = if new_cost <= cost {
                    true
                } else {
                    let p = ((cost - new_cost) / temp).exp();
                    move_rng.gen_range(0.0..1.0) < p
                };
                if accept {
                    cost = new_cost;
                } else {
                    pos.swap(a, b);
                }
            }
            temp *= 0.92;
        }
        Some((vec![cost], flops))
    }

    fn is_sparse(&self) -> bool {
        true
    }

    fn sparse_row(&self, x: &[f64]) -> Option<Csr> {
        let mut coo = Coo::new(1, self.input_dim());
        for &(i, j, _) in &self.pattern {
            let v = x[i * ELEMENTS + j];
            if v != 0.0 {
                coo.push(0, i * ELEMENTS + j, v);
            }
        }
        Some(coo.to_csr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annealing_improves_over_initial_placement() {
        let app = CannealApp::default();
        let x = app.gen_problem(0);
        let w = app.weights_from_input(&x);
        let initial: Vec<usize> = (0..ELEMENTS).map(|k| (2 * k) % (GRID * GRID)).collect();
        let initial_cost = app.cost(&w, &initial);
        let (out, flops) = app.run_region_counted(&x);
        assert!(out[0] < initial_cost, "{} !< {initial_cost}", out[0]);
        assert!(out[0] > 0.0);
        assert!(flops > 10_000);
    }

    #[test]
    fn region_is_deterministic() {
        let app = CannealApp::default();
        let x = app.gen_problem(1);
        assert_eq!(app.run_region_exact(&x), app.run_region_exact(&x));
    }

    #[test]
    fn cost_scales_linearly_with_weights() {
        let app = CannealApp::default();
        let x = app.gen_problem(2);
        let w = app.weights_from_input(&x);
        let pos: Vec<usize> = (0..ELEMENTS).collect();
        let c1 = app.cost(&w, &pos);
        let w2: Vec<f64> = w.iter().map(|v| 2.0 * v).collect();
        assert!((app.cost(&w2, &pos) - 2.0 * c1).abs() < 1e-9);
    }

    #[test]
    fn manhattan_distance_sanity() {
        assert_eq!(CannealApp::dist(0, 0), 0.0);
        assert_eq!(CannealApp::dist(0, GRID - 1), (GRID - 1) as f64);
        assert_eq!(CannealApp::dist(0, GRID), 1.0); // one row down
    }
}
