//! ECP AMG application (Type III).
//!
//! The replaced region is `PCG_solver`: an algebraic-multigrid-style
//! preconditioned conjugate-gradient solve of a variable-coefficient 2-D
//! diffusion problem. The coefficient field (and hence the sparse matrix)
//! varies through a smooth θ parameterization; the region input is the
//! densified `[flatten(A), b]` vector with a CSR view, making AMG the
//! largest sparse-input application — it also powers the paper's Table 3
//! counter study via [`AmgApp::mem_trace`].

use hpcnet_tensor::rng::seeded;
use hpcnet_tensor::{vecops, Coo, Csr};

use crate::solvers::jacobi_sweeps;
use crate::{rms, AppType, HpcApp};

/// Latent coefficient-field parameters.
const LATENT: usize = 6;

/// The AMG application.
pub struct AmgApp {
    /// Grid side (the system has `side*side` unknowns).
    side: usize,
    /// Stencil coordinates (fixed pattern), CSR order.
    pattern: Vec<(usize, usize)>,
    /// Base right-hand side.
    b0: Vec<f64>,
    tol: f64,
}

impl Default for AmgApp {
    fn default() -> Self {
        AmgApp::new(12)
    }
}

impl AmgApp {
    /// Build over a `side x side` grid (`side` must be even).
    pub fn new(side: usize) -> Self {
        assert!(
            side >= 4 && side.is_multiple_of(2),
            "need an even grid side >= 4"
        );
        let n = side * side;
        // 5-point pattern in row-sorted CSR order.
        let mut pattern = Vec::new();
        let idx = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let i = idx(r, c);
                let mut row = vec![(i, i)];
                if r > 0 {
                    row.push((i, idx(r - 1, c)));
                }
                if r + 1 < side {
                    row.push((i, idx(r + 1, c)));
                }
                if c > 0 {
                    row.push((i, idx(r, c - 1)));
                }
                if c + 1 < side {
                    row.push((i, idx(r, c + 1)));
                }
                row.sort_unstable_by_key(|&(_, j)| j);
                pattern.extend(row);
            }
        }
        let b0: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin() + 1.2).collect();
        AmgApp {
            side,
            pattern,
            b0,
            tol: 1e-9,
        }
    }

    /// Grid side.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Number of unknowns.
    pub fn n(&self) -> usize {
        self.side * self.side
    }

    /// Smooth coefficient field from θ.
    fn coefficient_field(&self, theta: &[f64]) -> Vec<f64> {
        let s = self.side;
        let tau = std::f64::consts::TAU;
        (0..s * s)
            .map(|i| {
                let (r, c) = (i / s, i % s);
                let (x, y) = (r as f64 / s as f64, c as f64 / s as f64);
                // High-contrast field (two orders of magnitude): realistic
                // heterogeneous diffusion that keeps the Jacobi-PCG busy
                // for O(100) iterations.
                let log_v = 0.4 * theta[0] * (tau * x).sin()
                    + 0.4 * theta[1] * (tau * y).sin()
                    + 0.3 * theta[2] * (tau * x).cos() * (tau * y).cos()
                    + 0.2 * theta[3]
                    + 1.0 * ((2.0 * tau * x).sin() * (2.0 * tau * y).cos());
                log_v.exp().clamp(0.05, 20.0)
            })
            .collect()
    }

    /// Assemble the variable-coefficient 5-point matrix from a field.
    fn assemble(&self, kappa: &[f64]) -> Csr {
        let s = self.side;
        let n = s * s;
        let idx = |r: usize, c: usize| r * s + c;
        let mut coo = Coo::new(n, n);
        for r in 0..s {
            for c in 0..s {
                let i = idx(r, c);
                let mut diag = 0.0;
                let push_edge = |j: usize, coo: &mut Coo, diag: &mut f64| {
                    let k = 0.5 * (kappa[i] + kappa[j]);
                    coo.push(i, j, -k);
                    *diag += k;
                };
                if r > 0 {
                    push_edge(idx(r - 1, c), &mut coo, &mut diag);
                }
                if r + 1 < s {
                    push_edge(idx(r + 1, c), &mut coo, &mut diag);
                }
                if c > 0 {
                    push_edge(idx(r, c - 1), &mut coo, &mut diag);
                }
                if c + 1 < s {
                    push_edge(idx(r, c + 1), &mut coo, &mut diag);
                }
                // Dirichlet-style shift keeps the matrix SPD.
                coo.push(i, i, diag + 0.25 * kappa[i]);
            }
        }
        coo.to_csr()
    }

    /// Parse `[flatten(A), b]` back into `(A, b)`.
    fn parse_input(&self, x: &[f64]) -> (Csr, Vec<f64>) {
        let n = self.n();
        let mut coo = Coo::new(n, n);
        for &(i, j) in &self.pattern {
            let v = x[i * n + j];
            if v != 0.0 {
                coo.push(i, j, v);
            }
        }
        (coo.to_csr(), x[n * n..].to_vec())
    }

    /// AMG-style solve: Jacobi pre-smoothing as a cheap "setup-free AMG
    /// level", then Jacobi-preconditioned CG on the smoothed residual
    /// system (the hypre-AMG-as-preconditioner usage pattern).
    fn amg_pcg(&self, a: &Csr, b: &[f64]) -> (Vec<f64>, u64) {
        let n = b.len();
        let mut flops = 0u64;
        let mut x = vec![0.0; n];
        flops += jacobi_sweeps(a, b, &mut x, 0.8, 3);
        let ax = a.spmv(&x).expect("dims");
        flops += 2 * a.nnz() as u64;
        let r = vecops::sub(b, &ax);
        let res = crate::solvers::pcg_solve(a, &r, self.tol, 4 * n);
        flops += res.flops;
        for (xi, ei) in x.iter_mut().zip(&res.x) {
            *xi += ei;
        }
        flops += n as u64;
        (x, flops)
    }
}

impl HpcApp for AmgApp {
    fn name(&self) -> &'static str {
        "AMG"
    }

    fn app_type(&self) -> AppType {
        AppType::TypeIII
    }

    fn region_name(&self) -> &'static str {
        "PCG_solver"
    }

    fn qoi_name(&self) -> &'static str {
        "solution of linear systems (RMS)"
    }

    fn input_dim(&self) -> usize {
        self.n() * self.n() + self.n()
    }

    fn output_dim(&self) -> usize {
        self.n()
    }

    fn gen_problem(&self, index: u64) -> Vec<f64> {
        let mut rng = seeded(index, "amg-theta");
        let theta = hpcnet_tensor::rng::normal_vec(&mut rng, LATENT, 0.0, 1.0);
        let kappa = self.coefficient_field(&theta);
        let a = self.assemble(&kappa);
        let n = self.n();
        let mut x = vec![0.0; self.input_dim()];
        for i in 0..n {
            for (j, v) in a.row_iter(i) {
                x[i * n + j] = v;
            }
        }
        for (i, bv) in self.b0.iter().enumerate() {
            x[n * n + i] = bv * (1.0 + 0.2 * theta[4] + 0.1 * theta[5] * (i as f64 * 0.1).sin());
        }
        x
    }

    fn run_region_counted(&self, x: &[f64]) -> (Vec<f64>, u64) {
        let (a, b) = self.parse_input(x);
        self.amg_pcg(&a, &b)
    }

    fn qoi(&self, _x: &[f64], region_out: &[f64]) -> f64 {
        rms(region_out)
    }

    fn run_region_perforated(&self, x: &[f64], skip: f64) -> Option<(Vec<f64>, u64)> {
        // Convergence-loop perforation via tolerance relaxation.
        let (a, b) = self.parse_input(x);
        let n = b.len();
        let mut flops = 0u64;
        let mut sol = vec![0.0; n];
        flops += jacobi_sweeps(&a, &b, &mut sol, 0.8, 3);
        let ax = a.spmv(&sol).expect("dims");
        flops += 2 * a.nnz() as u64;
        let r = vecops::sub(&b, &ax);
        let tol = 10f64.powf(self.tol.log10() * (1.0 - skip.clamp(0.0, 0.99)));
        let res = crate::solvers::pcg_solve(&a, &r, tol, 4 * n);
        flops += res.flops;
        for (xi, ei) in sol.iter_mut().zip(&res.x) {
            *xi += ei;
        }
        Some((sol, flops))
    }

    fn is_sparse(&self) -> bool {
        true
    }

    fn sparse_row(&self, x: &[f64]) -> Option<Csr> {
        let n = self.n();
        let mut coo = Coo::new(1, self.input_dim());
        for &(i, j) in &self.pattern {
            let v = x[i * n + j];
            if v != 0.0 {
                coo.push(0, i * n + j, v);
            }
        }
        for (i, &v) in x[n * n..].iter().enumerate() {
            if v != 0.0 {
                coo.push(0, n * n + i, v);
            }
        }
        Some(coo.to_csr())
    }

    fn mem_trace(&self, x: &[f64], limit: usize) -> Option<Vec<u64>> {
        // The PCG access stream: CSR arrays streamed, x gathered by column
        // index, p/r/x vectors streamed — the pattern whose L2 behaviour
        // Table 3 reports.
        let (a, _) = self.parse_input(x);
        let mut trace = Vec::with_capacity(limit);
        'outer: for _iter in 0..5 {
            for i in 0..a.nrows() {
                for (c, _) in a.row_iter(i) {
                    trace.push(0x1000_0000 + (trace.len() as u64) * 8); // streamed values/indices
                    trace.push(0x2000_0000 + (c as u64) * 8); // gather x[c]
                    if trace.len() >= limit {
                        break 'outer;
                    }
                }
                // y[i], p[i], r[i] streaming updates
                trace.push(0x3000_0000 + (i as u64) * 8);
                trace.push(0x4000_0000 + (i as u64) * 8);
                if trace.len() >= limit {
                    break 'outer;
                }
            }
        }
        Some(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_solves_the_system() {
        let app = AmgApp::new(8);
        let x = app.gen_problem(0);
        let (sol, flops) = app.run_region_counted(&x);
        let (a, b) = app.parse_input(&x);
        let r = vecops::sub(&b, &a.spmv(&sol).unwrap());
        assert!(vecops::norm2(&r) / vecops::norm2(&b) < 1e-6);
        assert!(flops > 10_000);
    }

    #[test]
    fn matrix_is_symmetric_positive_definite() {
        let app = AmgApp::new(6);
        let x = app.gen_problem(1);
        let (a, _) = app.parse_input(&x);
        let d = a.to_dense();
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                assert!((d.at(i, j) - d.at(j, i)).abs() < 1e-12);
            }
        }
        assert!(d.cholesky(0.0).is_ok(), "assembled matrix must be SPD");
    }

    #[test]
    fn coefficient_field_is_positive() {
        let app = AmgApp::new(6);
        let theta = vec![3.0, -3.0, 3.0, -3.0, 0.0, 0.0];
        assert!(app.coefficient_field(&theta).iter().all(|&k| k > 0.0));
    }

    #[test]
    fn input_is_genuinely_sparse() {
        let app = AmgApp::default();
        let row = app.sparse_row(&app.gen_problem(0)).unwrap();
        assert!(row.density() < 0.06, "density {}", row.density());
    }

    #[test]
    fn amg_pcg_beats_unpreconditioned_iterations() {
        let app = AmgApp::new(8);
        let x = app.gen_problem(2);
        let (a, b) = app.parse_input(&x);
        let pcg = crate::solvers::pcg_solve(&a, &b, 1e-9, 4000);
        let plain = crate::solvers::cg_solve(&a, &b, 1e-9, 4000);
        assert!(pcg.iterations <= plain.iterations + 5);
    }
}
