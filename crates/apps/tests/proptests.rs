//! Property-based tests over all 11 applications: region/QoI totality,
//! determinism, perforation monotonicity.

use hpcnet_apps::all_apps;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every application maps every problem index to finite outputs and a
    /// finite QoI (totality over the problem distribution).
    #[test]
    fn regions_are_total_and_finite(index in 0u64..100_000) {
        for app in all_apps() {
            let x = app.gen_problem(index);
            prop_assert_eq!(x.len(), app.input_dim(), "{} input", app.name());
            prop_assert!(x.iter().all(|v| v.is_finite()), "{} input finite", app.name());
            let (y, flops) = app.run_region_counted(&x);
            prop_assert_eq!(y.len(), app.output_dim(), "{} output", app.name());
            prop_assert!(y.iter().all(|v| v.is_finite()), "{} output finite", app.name());
            prop_assert!(flops > 0, "{} flops", app.name());
            prop_assert!(app.qoi(&x, &y).is_finite(), "{} QoI finite", app.name());
        }
    }

    /// Regions are pure functions of their input (bitwise determinism).
    #[test]
    fn regions_are_deterministic(index in 0u64..100_000) {
        for app in all_apps() {
            let x = app.gen_problem(index);
            prop_assert_eq!(
                app.run_region_exact(&x),
                app.run_region_exact(&x),
                "{} determinism",
                app.name()
            );
        }
    }

    /// More perforation never costs more FLOPs (monotone non-increasing).
    #[test]
    fn perforation_flops_monotone(index in 0u64..10_000) {
        for app in all_apps() {
            let x = app.gen_problem(index);
            let rates = [0.0, 0.3, 0.6, 0.9];
            let costs: Vec<Option<u64>> = rates
                .iter()
                .map(|&r| app.run_region_perforated(&x, r).map(|(_, f)| f))
                .collect();
            if costs[0].is_none() {
                continue; // region not perforable
            }
            for w in costs.windows(2) {
                let (a, b) = (w[0].unwrap(), w[1].unwrap());
                prop_assert!(b <= a, "{}: perforation increased flops {a} -> {b}", app.name());
            }
        }
    }

    /// Sparse views always densify back to the generated input.
    #[test]
    fn sparse_views_roundtrip(index in 0u64..100_000) {
        for app in all_apps() {
            if !app.is_sparse() {
                continue;
            }
            let x = app.gen_problem(index);
            let row = app.sparse_row(&x).unwrap();
            let dense = row.to_dense();
            prop_assert_eq!(dense.row(0), &x[..], "{} sparse view", app.name());
        }
    }
}
